"""Host-cost attribution tests, including the coverage acceptance bar.

The executor's instrumentation must attribute >= 95% of a real sweep's
host wall time to named categories (simulate/estimate/cache/codec/
fanout); the residual is reported as ``other`` and the split always
sums to 100%.
"""

from __future__ import annotations

import pytest

from repro.perf.report import CATEGORY_SPANS, attribute_host
from repro.perf.spans import PerfRecorder, recording
from repro.sweep import run_sweep


def _snapshot(wall=10.0, **span_walls):
    rec = PerfRecorder("t")
    rec.wall = wall
    rec.cpu = wall
    for name, w in span_walls.items():
        rec.add_span(name.replace("__", "."), w, w)
    return rec


class TestAttributionArithmetic:
    def test_categories_plus_other_cover_total(self):
        report = attribute_host(
            _snapshot(wall=10.0, cell__simulate=6.0, cache__probe=1.0)
        )
        assert report.wall == pytest.approx(10.0)
        assert sum(e.seconds for e in report.entries) == pytest.approx(10.0)
        assert sum(e.share for e in report.entries) == pytest.approx(1.0)
        assert report.seconds("simulate") == pytest.approx(6.0)
        assert report.seconds("cache") == pytest.approx(1.0)
        assert report.seconds("other") == pytest.approx(3.0)
        assert report.coverage == pytest.approx(0.7)
        assert report.top == "simulate"

    def test_entries_ranked_by_seconds(self):
        report = attribute_host(
            _snapshot(wall=10.0, cache__probe=5.0, cell__simulate=4.0)
        )
        assert [e.category for e in report.entries[:2]] == ["cache", "simulate"]

    def test_nested_detail_not_double_counted(self):
        # engine.drain happens inside cell.simulate: it must show as
        # detail, never inflate the top-level split past the total
        report = attribute_host(
            _snapshot(wall=10.0, cell__simulate=9.0, engine__drain=8.5)
        )
        assert report.seconds("simulate") == pytest.approx(9.0)
        assert report.seconds("other") == pytest.approx(1.0)
        assert ("engine.drain", 8.5, 1) in report.detail

    def test_attributed_overshoot_clamps_other(self):
        # span walls can overshoot the block total by clock resolution;
        # "other" must clamp at zero rather than go negative
        report = attribute_host(_snapshot(wall=1.0, cell__simulate=1.0001))
        assert report.seconds("other") == 0.0

    def test_zero_wall_uses_attributed_total(self):
        report = attribute_host(_snapshot(wall=0.0, cell__simulate=2.0))
        assert report.wall == pytest.approx(2.0)
        assert report.share("simulate") == pytest.approx(1.0)

    def test_accepts_recorder_record_and_snapshot(self):
        rec = _snapshot(wall=4.0, cell__simulate=3.0)
        from_recorder = attribute_host(rec, name="r")
        from_snapshot = attribute_host(rec.snapshot(), name="r")
        record = dict(rec.snapshot())
        record["name"] = "sweep:axpy"
        from_record = attribute_host(record)
        for rep in (from_recorder, from_snapshot):
            assert rep.seconds("simulate") == pytest.approx(3.0)
        assert from_record.name == "sweep:axpy"

    def test_describe_mentions_top_category(self):
        text = attribute_host(
            _snapshot(wall=10.0, cell__simulate=9.0), name="sweep:axpy"
        ).describe()
        assert "sweep:axpy" in text
        assert "dominated by simulate" in text

    def test_category_map_spans_are_unique(self):
        all_spans = [n for names in CATEGORY_SPANS.values() for n in names]
        assert len(all_spans) == len(set(all_spans))


class TestSweepCoverage:
    """The acceptance bar: >= 95% of a real sweep's wall time attributed."""

    def test_serial_sweep_coverage(self):
        with recording("sweep") as rec:
            sweep = run_sweep(
                "axpy", versions=("omp_for", "cilk_for"), threads=(1, 2, 4),
                params={"n": 200_000}, cache=None,
            )
        assert not sweep.errors
        report = attribute_host(rec)
        assert report.coverage >= 0.95
        assert report.top == "simulate"
        assert report.seconds("simulate") > 0

    def test_tier0_sweep_attributes_estimate(self):
        with recording("sweep") as rec:
            sweep = run_sweep(
                "axpy", versions=("omp_for",), threads=(1, 4),
                params={"n": 200_000}, cache=None, fidelity=0,
            )
        assert not sweep.errors
        report = attribute_host(rec)
        assert report.seconds("estimate") > 0
        assert report.seconds("simulate") == 0.0
