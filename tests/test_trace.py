"""Tests for trace/statistics containers."""

import numpy as np
import pytest

from repro.sim.trace import RegionResult, SimResult, WorkerStats, speedup_series


class TestWorkerStats:
    def test_merge(self):
        a = WorkerStats(busy=1.0, overhead=0.1, tasks=2, steals=1, failed_steals=3)
        b = WorkerStats(busy=2.0, overhead=0.2, tasks=4, steals=2, failed_steals=1)
        a.merge(b)
        assert (a.busy, a.overhead, a.tasks, a.steals, a.failed_steals) == (
            3.0, pytest.approx(0.3), 6, 3, 4)


class TestRegionResult:
    def make(self):
        return RegionResult(
            time=2.0,
            nthreads=2,
            workers=[WorkerStats(busy=1.5, overhead=0.5, tasks=3),
                     WorkerStats(busy=1.0, overhead=0.0, tasks=1)],
        )

    def test_totals(self):
        r = self.make()
        assert r.total_busy == pytest.approx(2.5)
        assert r.total_overhead == pytest.approx(0.5)
        assert r.total_tasks == 4

    def test_utilization(self):
        r = self.make()
        assert r.utilization() == pytest.approx(2.5 / 4.0)

    def test_zero_time_utilization(self):
        r = RegionResult(time=0.0, nthreads=2)
        assert r.utilization() == 0.0


class TestSimResult:
    def make(self):
        region = RegionResult(
            time=1.0, nthreads=4, workers=[WorkerStats(busy=2.0, overhead=0.5, tasks=7, steals=2)]
        )
        return SimResult("axpy", "omp_for", 4, 1.0, [region])

    def test_aggregates(self):
        r = self.make()
        assert r.total_busy == 2.0
        assert r.total_steals == 2
        assert r.overhead_fraction() == pytest.approx(0.25)

    def test_describe_mentions_key_facts(self):
        d = self.make().describe()
        assert "axpy/omp_for" in d and "p=4" in d

    def test_overhead_fraction_no_busy(self):
        r = SimResult("x", "v", 1, 0.0, [])
        assert r.overhead_fraction() == 0.0


class TestSpeedupSeries:
    def test_relative_to_first(self):
        s = speedup_series(np.array([8.0, 4.0, 2.0]))
        assert list(s) == [1.0, 2.0, 4.0]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            speedup_series(np.array([1.0, 0.0]))

    def test_empty_ok(self):
        assert speedup_series(np.array([])).size == 0
