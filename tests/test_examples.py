"""Smoke tests for the example scripts.

The fast examples run end-to-end in a subprocess; the two long studies
(kernel_study, rodinia_study) are compile-checked and their figure
machinery is already covered by the benchmark suite.
"""

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Fig. 1" in out
        assert "[PASS]" in out
        assert "TABLE I" in out

    def test_features_guide(self):
        out = run_example("features_guide.py")
        assert "TABLE III" in out
        assert "OpenMP with 13 of 13" in out

    def test_offload_demo(self):
        out = run_example("offload_demo.py", "--n", "1000000")
        assert "resident" in out
        assert "crossover" in out

    def test_native_scaling(self):
        out = run_example("native_scaling.py", "--n", "500000")
        assert "matches reference: True" in out

    def test_scheduler_traces(self):
        out = run_example("scheduler_traces.py")
        assert "cilk_for splitter tree" in out
        assert "w0" in out  # gantt rows


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "kernel_study.py",
        "rodinia_study.py",
        "features_guide.py",
        "native_scaling.py",
        "offload_demo.py",
        "scheduler_traces.py",
        "extension_studies.py",
    ],
)
def test_examples_compile(name):
    py_compile.compile(str(EXAMPLES / name), doraise=True)
