"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime.base import ExecContext
from repro.sim.costs import CostModel
from repro.sim.machine import PAPER_MACHINE, Machine


@pytest.fixture
def machine() -> Machine:
    """The paper's two-socket Xeon."""
    return PAPER_MACHINE


@pytest.fixture
def small_machine() -> Machine:
    """A small machine for fast event-driven tests."""
    return Machine(sockets=2, cores_per_socket=4, smt=2, name="small")


@pytest.fixture
def ctx() -> ExecContext:
    return ExecContext()


@pytest.fixture
def small_ctx(small_machine: Machine) -> ExecContext:
    return ExecContext(machine=small_machine)


@pytest.fixture
def costs() -> CostModel:
    return CostModel()
