"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime.base import ExecContext
from repro.sim.costs import CostModel
from repro.sim.machine import PAPER_MACHINE, Machine


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the committed golden traces under tests/goldens/ "
        "from the current simulator output instead of comparing",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    """True when the run should regenerate golden files, not assert them."""
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def machine() -> Machine:
    """The paper's two-socket Xeon."""
    return PAPER_MACHINE


@pytest.fixture
def small_machine() -> Machine:
    """A small machine for fast event-driven tests."""
    return Machine(sockets=2, cores_per_socket=4, smt=2, name="small")


@pytest.fixture
def ctx() -> ExecContext:
    return ExecContext()


@pytest.fixture
def small_ctx(small_machine: Machine) -> ExecContext:
    return ExecContext(machine=small_machine)


@pytest.fixture
def costs() -> CostModel:
    return CostModel()
