"""Tests for the real-thread native backend."""

import numpy as np
import pytest

from repro.kernels import axpy as axpy_mod
from repro.kernels import matmul as matmul_mod
from repro.kernels import matvec as matvec_mod
from repro.kernels import sumreduce
from repro.native import (
    ThreadPool,
    axpy_parallel,
    matmul_parallel,
    matvec_parallel,
    sum_parallel,
)
from repro.native.pool import parallel_for, parallel_reduce, static_chunks


class TestStaticChunks:
    def test_cover_range_contiguously(self):
        chunks = static_chunks(100, 7)
        assert chunks[0][0] == 0 and chunks[-1][1] == 100
        for (a, b), (c, d) in zip(chunks, chunks[1:]):
            assert b == c

    def test_more_chunks_than_items(self):
        assert static_chunks(3, 10) == [(0, 1), (1, 2), (2, 3)]

    def test_zero_items(self):
        assert static_chunks(0, 4) == [(0, 0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            static_chunks(-1, 2)
        with pytest.raises(ValueError):
            static_chunks(10, 0)


class TestThreadPool:
    def test_map_preserves_order(self):
        with ThreadPool(4) as pool:
            out = pool.map(lambda x: x * x, [(i,) for i in range(20)])
        assert out == [i * i for i in range(20)]

    def test_map_empty(self):
        with ThreadPool(2) as pool:
            assert pool.map(lambda: 1, []) == []

    def test_exceptions_propagate(self):
        def boom(i):
            if i == 3:
                raise ValueError("boom at 3")
            return i

        with ThreadPool(2) as pool:
            with pytest.raises(ValueError, match="boom at 3"):
                pool.map(boom, [(i,) for i in range(6)])

    def test_pool_reusable_across_maps(self):
        with ThreadPool(2) as pool:
            assert pool.map(lambda x: x + 1, [(1,)]) == [2]
            assert pool.map(lambda x: x + 1, [(2,)]) == [3]

    def test_shutdown_prevents_use(self):
        pool = ThreadPool(2)
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.map(lambda: 1, [()])

    def test_double_shutdown_ok(self):
        pool = ThreadPool(2)
        pool.shutdown()
        pool.shutdown()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ThreadPool(0)

    def test_parallel_for_calls_every_chunk(self):
        seen = []
        with ThreadPool(3) as pool:
            parallel_for(lambda lo, hi: seen.append((lo, hi)), 30, pool)
        assert sorted(seen) == static_chunks(30, 3)

    def test_parallel_reduce(self):
        with ThreadPool(4) as pool:
            total = parallel_reduce(
                lambda lo, hi: sum(range(lo, hi)), 1000, pool, lambda a, b: a + b, 0
            )
        assert total == sum(range(1000))


class TestKernelsMatchReferences:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(42)
        return rng.random(10_001), rng.random(10_001)

    def test_axpy(self, data):
        x, y = data
        with ThreadPool(3) as pool:
            out = axpy_parallel(1.7, x, y.copy(), pool)
        assert np.allclose(out, axpy_mod.reference(1.7, x, y))

    def test_axpy_shape_check(self, data):
        x, _ = data
        with ThreadPool(2) as pool:
            with pytest.raises(ValueError):
                axpy_parallel(1.0, x, np.zeros(5), pool)

    def test_sum(self, data):
        x, _ = data
        with ThreadPool(3) as pool:
            s = sum_parallel(2.0, x, pool)
        assert s == pytest.approx(sumreduce.reference(2.0, x), rel=1e-12)

    def test_matvec(self):
        rng = np.random.default_rng(0)
        m, v = rng.random((157, 83)), rng.random(83)
        with ThreadPool(4) as pool:
            out = matvec_parallel(m, v, pool)
        assert np.allclose(out, matvec_mod.reference(m, v))

    def test_matmul(self):
        rng = np.random.default_rng(0)
        a, b = rng.random((61, 47)), rng.random((47, 53))
        with ThreadPool(4) as pool:
            out = matmul_parallel(a, b, pool)
        assert np.allclose(out, matmul_mod.reference(a, b))

    def test_chunking_invariance(self, data):
        """Result must not depend on the decomposition (determinacy)."""
        x, y = data
        results = []
        for nchunks in (1, 2, 7, 64):
            with ThreadPool(4) as pool:
                results.append(axpy_parallel(0.3, x, y.copy(), pool, nchunks=nchunks))
        for r in results[1:]:
            assert np.array_equal(results[0], r)

    def test_pool_type_checked(self, data):
        x, y = data
        with pytest.raises(TypeError):
            axpy_parallel(1.0, x, y.copy(), pool="not a pool")
