"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "axpy", "--threads", "1", "4"])
        assert args.workload == "axpy"
        assert args.threads == [1, 4]


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out and "TABLE III" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "axpy" in out and "srad" in out and "Fig. 9" in out

    def test_machine(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "36 physical cores" in out

    def test_figure(self, capsys):
        assert main(["figure", "axpy", "--threads", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "cilk_for" in out and "p=4" in out

    def test_figure_chart(self, capsys):
        assert main(["figure", "matmul", "--threads", "1", "2"]) == 0

    def test_figure_unknown_workload_exits_2(self, capsys):
        assert main(["figure", "nbody"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "nbody" in err

    def test_compare_unknown_model_exits_2(self, capsys):
        assert main(["compare", "openmp", "no-such-model"]) == 2
        assert "no-such-model" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", "openmp", "cilk", "tbb"]) == 0
        out = capsys.readouterr().out
        assert "OpenMP" in out and "TBB" in out

    def test_microbench(self, capsys):
        assert main(["microbench", "--threads", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "barrier" in out

    def test_offload(self, capsys):
        assert main(["offload", "--n", "1000000", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "host" in out


class TestTraceCommand:
    def test_trace_args(self):
        args = build_parser().parse_args(["trace", "fib", "-m", "cilk", "-p", "8"])
        assert args.workload == "fib" and args.model == "cilk" and args.threads == 8

    def test_trace_smoke_writes_chrome_json(self, capsys, tmp_path):
        """Acceptance: `repro trace fib --model cilk --threads 16 --out t.json`
        writes Chrome-trace JSON with >= 1 span per worker, creating the
        missing output directory."""
        out = tmp_path / "no" / "such" / "dir" / "t.json"
        code = main(
            ["trace", "fib", "--model", "cilk", "--threads", "16", "--out", str(out)]
        )
        assert code == 0
        assert "bottleneck attribution" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        exec_kinds = {"task", "chunk", "serial", "kernel", "transfer"}
        workers = {
            e["tid"]
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e.get("cat") in exec_kinds
        }
        assert workers == set(range(16))

    def test_trace_metrics_and_gantt(self, capsys, tmp_path):
        out = tmp_path / "metrics.json"
        code = main(
            ["trace", "matmul", "-m", "omp", "-p", "4", "--gantt",
             "--metrics-out", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "w0" in printed  # the gantt rows
        doc = json.loads(out.read_text())
        assert doc["version"] == "omp_for" and doc["nthreads"] == 4

    def test_trace_model_prefix_resolution(self, capsys):
        assert main(["trace", "fib", "-m", "omp", "-p", "2"]) == 0
        assert "omp_task" in capsys.readouterr().out

    def test_trace_unknown_workload_exits_2(self, capsys):
        assert main(["trace", "nbody", "-m", "omp"]) == 2
        assert "nbody" in capsys.readouterr().err

    def test_trace_unknown_model_exits_2(self, capsys):
        assert main(["trace", "fib", "-m", "rayon"]) == 2
        err = capsys.readouterr().err
        assert "rayon" in err and "cilk_spawn" in err

    def test_trace_thread_explosion_exits_1(self, capsys):
        # fib's cxx_async at default size exceeds the thread cap: the
        # paper's reproduced "system hangs", reported as failure not crash
        assert main(["trace", "fib", "-m", "cxx", "-p", "16"]) == 1
        assert "error:" in capsys.readouterr().err


class TestFigureOut:
    def test_figure_out_creates_directories(self, capsys, tmp_path):
        out = tmp_path / "fresh" / "figs" / "axpy.txt"
        assert main(["figure", "axpy", "--threads", "1", "2", "--out", str(out)]) == 0
        assert out.exists() and "p=2" in out.read_text()


class TestSweepCommand:
    def test_sweep_fidelity_args(self):
        args = build_parser().parse_args(["sweep", "axpy", "--fidelity", "auto"])
        assert args.fidelity == "auto"
        assert build_parser().parse_args(["sweep", "axpy"]).fidelity == "2"

    def test_sweep_rejects_unknown_fidelity(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "axpy", "--fidelity", "3"])

    def test_sweep_tier0_estimates_every_cell(self, capsys, tmp_path):
        """`repro sweep --fidelity 0` estimates every cell, simulates
        none, and says so in both the summary line and the metrics."""
        metrics = tmp_path / "m.json"
        code = main([
            "sweep", "axpy", "--threads", "1", "4", "--quiet",
            "--cache-dir", str(tmp_path / "cache"), "--fidelity", "0",
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fidelity=0" in out and "simulated=0" in out
        counters = json.load(metrics.open())["metrics"]["counters"]
        assert counters["estimates"] == counters["sweep_cells"] > 0
        assert counters["simulations"] == 0

    def test_sweep_fidelity_auto_picks_the_analytic_tier(self, capsys):
        """A plain sweep needs no events, so `auto` resolves to tier 0."""
        code = main([
            "sweep", "axpy", "--threads", "1", "--quiet", "--no-cache",
            "--fidelity", "auto",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fidelity=auto" in out and "simulated=0" in out
        assert "estimated=0" not in out

    def test_sweep_default_is_the_reference_tier(self, capsys, tmp_path):
        code = main([
            "sweep", "axpy", "--threads", "1", "--quiet",
            "--cache-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fidelity=2" in out and "estimated=0" in out

    def test_trace_fidelity_flag(self, capsys, tmp_path):
        """`repro trace --fidelity 1` produces the same Chrome trace as
        the tier-2 default (tier 1 is bit-identical, traces included)."""
        ref, fast = tmp_path / "t2.json", tmp_path / "t1.json"
        assert main(["trace", "axpy", "-m", "cilk_for", "-p", "4",
                     "--out", str(ref)]) == 0
        assert main(["trace", "axpy", "-m", "cilk_for", "-p", "4",
                     "--fidelity", "1", "--out", str(fast)]) == 0
        assert fast.read_text() == ref.read_text()
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "axpy", "--fidelity", "0"])


class TestValidateCommand:
    def test_validate_args(self):
        args = build_parser().parse_args(["validate", "--deep", "--seed", "7"])
        assert args.deep is True and args.seed == 7 and args.programs is None

    def test_validate_runs_clean(self, capsys):
        assert main(["validate", "--programs", "1"]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "invariant checks passed" in out

    def test_validate_custom_seed(self, capsys):
        assert main(["validate", "--programs", "1", "--seed", "123"]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_validate_unknown_inject_spec_exits_2(self, capsys):
        assert main(["validate", "--programs", "1", "--inject", "explode:task=1"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_validate_malformed_inject_spec_exits_2(self, capsys):
        assert main(["validate", "--programs", "1", "--inject", "fail:frob=1"]) == 2
        assert "unknown fault argument" in capsys.readouterr().err

    def test_validate_model_filter_runs_clean(self, capsys):
        assert main(["validate", "--programs", "1", "--model", "mpi"]) == 0
        assert "OK:" in capsys.readouterr().out

    def test_validate_unknown_model_exits_2(self, capsys):
        assert main(["validate", "--programs", "1", "--model", "corba"]) == 2
        err = capsys.readouterr().err
        assert "unknown model 'corba'" in err and "charm" in err

    def test_validate_unknown_model_exits_2_before_running(self, capsys):
        # resolver failure is a usage error: no battery output, just the
        # error line on stderr
        assert main(["validate", "--model", "charm+++"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "unknown model" in captured.err


class TestFaultsCommand:
    def test_faults_reports_degradation(self, capsys):
        assert main(["faults", "fib", "-m", "cilk", "--inject", "fail:task=5"]) == 0
        out = capsys.readouterr().out
        assert "fault summary:" in out
        assert "wasted_seconds" in out
        assert "error mode: poison" in out

    def test_faults_strict_exits_1(self, capsys):
        assert main(
            ["faults", "fib", "-m", "cilk", "--inject", "fail:task=5", "--strict"]
        ) == 1
        assert "injected fault" in capsys.readouterr().err

    def test_faults_retry_recovers_under_strict(self, capsys):
        assert main(
            ["faults", "fib", "-m", "cilk", "--inject", "fail:task=5,attempts=1",
             "--retries", "1", "--backoff", "1e-6", "--strict"]
        ) == 0
        assert "retries              1" in capsys.readouterr().out

    def test_faults_unknown_spec_exits_2(self, capsys):
        assert main(["faults", "fib", "-m", "cilk", "--inject", "explode:x=1"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_faults_unknown_workload_exits_2(self, capsys):
        assert main(["faults", "nope", "-m", "cilk"]) == 2
        assert "error" in capsys.readouterr().err

    def test_faults_unknown_model_exits_2(self, capsys):
        assert main(["faults", "fib", "-m", "fortran"]) == 2

    def test_faults_requires_workload_and_model(self, capsys):
        assert main(["faults"]) == 2
        assert "requires a workload" in capsys.readouterr().err

    def test_faults_list_demos(self, capsys):
        assert main(["faults", "--list-demos"]) == 0
        out = capsys.readouterr().out
        for name in ("OpenMP", "TBB", "C++11", "PThreads", "OpenCL",
                     "CUDA", "OpenACC", "Cilk Plus"):
            assert name in out

    def test_faults_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "f" / "faults.json"
        assert main(
            ["faults", "fib", "-m", "cilk", "--inject", "fail:task=5",
             "--metrics-out", str(out)]
        ) == 0
        import json

        doc = json.loads(out.read_text())
        assert doc["summary"]["wasted_seconds"] > 0
        assert doc["metrics"]["gauges"]["wasted_work_seconds"] > 0
        assert doc["inject"] == "fail:task=5"


class TestSynthCommand:
    ARGS = ["synth", "--seed", "7", "--count", "2", "--threads", "1", "4"]

    def test_synth_stdout_is_deterministic(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        assert capsys.readouterr().out == first
        assert "spec-digest" in first and "batch-digest" in first

    def test_synth_seed_changes_digests(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(["synth", "--seed", "8", "--count", "2",
                     "--threads", "1", "4"]) == 0
        second = capsys.readouterr().out
        digests = lambda out: [  # noqa: E731
            line for line in out.splitlines() if "spec-digest" in line
        ]
        assert set(digests(first)).isdisjoint(digests(second))

    def test_synth_run_prints_simulated_times(self, capsys):
        assert main(self.ARGS + ["--run"]) == 0
        out = capsys.readouterr().out
        assert "p1=" in out and "p4=" in out

    def test_synth_run_tier2_matches_fidelity_flag(self, capsys):
        assert main(self.ARGS + ["--run", "--fidelity", "2"]) == 0
        assert "fidelity=2" in capsys.readouterr().out

    def test_synth_validate_clean_exit(self, capsys):
        assert main(self.ARGS + ["--validate"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_synth_json_manifest(self, tmp_path, capsys):
        import json

        out = tmp_path / "m" / "manifest.json"
        assert main(self.ARGS + ["--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["seed"] == 7 and len(doc["workloads"]) == 2
        assert doc["batch_digest"]
        for spec in doc["workloads"]:
            assert spec["spec"]["name"].startswith("synth-")
            assert spec["spec"]["recipe"]
            assert spec["cache_keys"]

    def test_synth_does_not_leak_registry_names(self):
        from repro.core.registry import WORKLOADS

        before = set(WORKLOADS)
        assert main(self.ARGS) == 0
        assert set(WORKLOADS) == before


class TestServeCommand:
    """`repro serve` wiring and `repro sweep --server` routing."""

    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.jobs == 2
        assert args.cache_dir is None
        assert args.cache_max_entries is None
        assert args.ttl is None

    def test_serve_parser_full(self, tmp_path):
        args = build_parser().parse_args([
            "serve", "--host", "0.0.0.0", "--port", "9000", "-j", "4",
            "--cache-dir", str(tmp_path), "--cache-max-entries", "100",
            "--ttl", "3600", "--quiet",
        ])
        assert args.port == 9000 and args.jobs == 4
        assert args.cache_max_entries == 100 and args.ttl == 3600.0
        assert args.quiet

    def test_sweep_server_flag_parsed(self):
        args = build_parser().parse_args(
            ["sweep", "axpy", "--server", "http://127.0.0.1:1234"]
        )
        assert args.server == "http://127.0.0.1:1234"
        assert build_parser().parse_args(["sweep", "axpy"]).server is None

    def test_sweep_through_live_server(self, capsys, tmp_path, monkeypatch):
        """End-to-end `repro sweep --server URL`: the cells resolve on
        the service (tier-0 estimates — microseconds), the summary names
        the server instead of a local cache, and no local store is
        touched."""
        monkeypatch.delenv("REPRO_SWEEP_SERVER", raising=False)
        from tests.test_serve import running_server

        with running_server(tmp_path / "store") as srv:
            code = main([
                "sweep", "axpy", "--threads", "1", "4", "--quiet",
                "--fidelity", "0", "--server", srv.url,
            ])
            assert code == 0
            out = capsys.readouterr().out
            assert f"server: {srv.url}" in out
            assert "simulated=0" in out
            assert srv.perf.counters["serve.request"] == 1
            assert srv.perf.counters["serve.estimates"] > 0
        # the server's store holds the entries; no default-dir cache line
        assert "cache:" not in out
