"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "axpy", "--threads", "1", "4"])
        assert args.workload == "axpy"
        assert args.threads == [1, 4]


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out and "TABLE III" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "axpy" in out and "srad" in out and "Fig. 9" in out

    def test_machine(self, capsys):
        assert main(["machine"]) == 0
        out = capsys.readouterr().out
        assert "36 physical cores" in out

    def test_figure(self, capsys):
        assert main(["figure", "axpy", "--threads", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "cilk_for" in out and "p=4" in out

    def test_figure_chart(self, capsys):
        assert main(["figure", "matmul", "--threads", "1", "2"]) == 0

    def test_figure_unknown_workload_exits_2(self, capsys):
        assert main(["figure", "nbody"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "nbody" in err

    def test_compare_unknown_model_exits_2(self, capsys):
        assert main(["compare", "openmp", "no-such-model"]) == 2
        assert "no-such-model" in capsys.readouterr().err

    def test_compare(self, capsys):
        assert main(["compare", "openmp", "cilk", "tbb"]) == 0
        out = capsys.readouterr().out
        assert "OpenMP" in out and "TBB" in out

    def test_microbench(self, capsys):
        assert main(["microbench", "--threads", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "barrier" in out

    def test_offload(self, capsys):
        assert main(["offload", "--n", "1000000", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "host" in out


class TestValidateCommand:
    def test_validate_args(self):
        args = build_parser().parse_args(["validate", "--deep", "--seed", "7"])
        assert args.deep is True and args.seed == 7 and args.programs is None

    def test_validate_runs_clean(self, capsys):
        assert main(["validate", "--programs", "1"]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out and "invariant checks passed" in out

    def test_validate_custom_seed(self, capsys):
        assert main(["validate", "--programs", "1", "--seed", "123"]) == 0
        assert "OK:" in capsys.readouterr().out
