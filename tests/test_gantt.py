"""Tests for execution-trace recording and Gantt rendering."""

import pytest

from repro.runtime.base import ExecContext
from repro.runtime.workstealing import StealingScheduler
from repro.sim.machine import Machine
from repro.sim.trace import render_gantt
from repro.sim.task import TaskGraph

CTX = ExecContext(
    machine=Machine(sockets=1, cores_per_socket=4, smt=1, smt_throughput=1.0, name="tiny")
)


def wide_graph(n, work=10e-6):
    g = TaskGraph("wide")
    for _ in range(n):
        g.add(work, tag="body")
    return g


class TestRecording:
    def test_intervals_recorded_when_asked(self):
        sched = StealingScheduler(wide_graph(16), 4, CTX, record=True)
        res = sched.run()
        intervals = res.meta["intervals"]
        assert len(intervals) == 16
        for w, s, e, tag in intervals:
            assert 0 <= w < 4
            assert e > s >= 0
            assert tag == "body"

    def test_not_recorded_by_default(self):
        res = StealingScheduler(wide_graph(8), 2, CTX).run()
        assert "intervals" not in res.meta

    def test_busy_time_matches_intervals(self):
        sched = StealingScheduler(wide_graph(20), 4, CTX, record=True)
        res = sched.run()
        interval_busy = sum(e - s for _w, s, e, _t in res.meta["intervals"])
        assert interval_busy == pytest.approx(res.total_busy, rel=1e-9)

    def test_intervals_per_worker_disjoint(self):
        sched = StealingScheduler(wide_graph(32), 4, CTX, record=True)
        res = sched.run()
        by_worker: dict[int, list] = {}
        for w, s, e, _t in res.meta["intervals"]:
            by_worker.setdefault(w, []).append((s, e))
        for spans in by_worker.values():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert s2 >= e1 - 1e-12, "a worker cannot run two tasks at once"


class TestGanttRendering:
    def test_rows_per_worker(self):
        sched = StealingScheduler(wide_graph(16), 4, CTX, record=True)
        res = sched.run()
        text = render_gantt(res.meta["intervals"], 4, width=40)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 workers
        assert lines[1].startswith("w0")

    def test_busy_marks_present(self):
        sched = StealingScheduler(wide_graph(16), 2, CTX, record=True)
        res = sched.run()
        text = render_gantt(res.meta["intervals"], 2, width=30)
        assert "b" in text  # tag "body" initial

    def test_empty_trace(self):
        assert render_gantt([], 2) == "(empty trace)"

    def test_validation(self):
        with pytest.raises(ValueError):
            render_gantt([], 0)
        with pytest.raises(ValueError):
            render_gantt([(5, 0.0, 1.0, "x")], 2)
        with pytest.raises(ValueError):
            render_gantt([], 2, width=0)
