"""Tests of the sweep service: protocol, single-flight dedupe, client.

The service's contract is that going remote changes *where* cells
resolve, never *what* resolves: a served sweep is byte-identical to a
local one (same cache-entry payloads, same series/metrics assembly),
a warm server answers without simulating, and two identical in-flight
queries cost one set of simulations (single-flight dedupe, observable
as ``serve.dedup_hit``).
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time

import pytest

from repro.runtime.base import ExecContext
from repro.serve import (
    MatrixQuery,
    ProtocolError,
    ServerError,
    SweepClient,
    SweepServer,
)
from repro.serve import protocol
from repro.sweep import ResultCache, run_sweep
from repro.sweep import executor as executor_mod
from tests.test_sweep_executor import sweep_fingerprint

KWARGS = dict(
    versions=["omp_for", "cxx_thread"], threads=(1, 4), params={"n": 120_000},
    fidelity=1,
)
NCELLS = 4  # 2 versions x 2 thread counts


@contextlib.contextmanager
def running_server(cache, **kwargs):
    """A SweepServer on its own event-loop thread, closed on exit."""
    loop = asyncio.new_event_loop()
    srv = SweepServer(cache, **kwargs)
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(srv.start())
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(10), "server failed to start"
    try:
        yield srv
    finally:
        asyncio.run_coroutine_threadsafe(srv.close(), loop).result(10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(10)
        loop.close()


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_query_round_trips(self):
        query = MatrixQuery("axpy", versions=("omp_for",), threads=(1, 4),
                            params={"n": 10}, fidelity=1, trace=True,
                            refresh=True)
        assert MatrixQuery.from_dict(query.to_dict()) == query

    def test_unknown_fields_rejected(self):
        with pytest.raises(ProtocolError, match="unknown query fields"):
            MatrixQuery.from_dict({"workload": "axpy", "jobs": 4})

    def test_missing_workload_rejected(self):
        with pytest.raises(ProtocolError, match="workload"):
            MatrixQuery.from_dict({"threads": [1]})

    def test_bad_fidelity_rejected(self):
        with pytest.raises(ProtocolError, match="fidelity"):
            MatrixQuery("axpy", fidelity=3)

    def test_decode_event_rejects_garbage(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            protocol.decode_event(b"not json\n")
        with pytest.raises(ProtocolError, match="without a type"):
            protocol.decode_event(b'{"no": "type"}\n')

    def test_context_digest_sensitive_to_simulation_inputs(self):
        base = protocol.context_digest(ExecContext())
        assert protocol.context_digest(ExecContext()) == base
        assert protocol.context_digest(ExecContext(seed=7)) != base
        # fidelity is per-query, not part of the server's identity
        assert protocol.context_digest(ExecContext().with_fidelity(0)) == base

    def test_expand_query_matches_run_sweep_validation(self):
        with pytest.raises(ValueError, match="no version"):
            protocol.expand_query(MatrixQuery("axpy", versions=("bogus",)))


# ---------------------------------------------------------------------------
# end-to-end: serve == local
# ---------------------------------------------------------------------------
class TestServeEndToEnd:
    def test_health_and_stats(self, tmp_path):
        with running_server(tmp_path) as srv:
            client = SweepClient(srv.url)
            assert client.health()
            stats = client.stats()
            assert stats["store"]["root"] == str(tmp_path)
            assert stats["inflight"] == 0

    def test_dead_server_is_unhealthy(self):
        assert not SweepClient("http://127.0.0.1:9").health()

    def test_cold_then_warm_query(self, tmp_path):
        with running_server(tmp_path, jobs=2) as srv:
            cold = run_sweep("axpy", server=srv.url, **KWARGS)
            assert cold.counter("simulations") == NCELLS
            assert cold.counter("cache_hits") == 0
            warm = run_sweep("axpy", server=srv.url, **KWARGS)
            assert warm.counter("simulations") == 0
            assert warm.counter("cache_hits") == NCELLS
            assert sweep_fingerprint(warm) == sweep_fingerprint(cold)
            assert srv.perf.counters["serve.request"] == 2
            assert srv.perf.counters["serve.cache_hit"] == NCELLS

    def test_served_sweep_is_byte_identical_to_local(self, tmp_path):
        served_store = tmp_path / "served"
        local_store = tmp_path / "local"
        with running_server(served_store, jobs=2) as srv:
            served = run_sweep("axpy", server=srv.url, **KWARGS)
        local = run_sweep("axpy", cache=local_store, **KWARGS)
        assert sweep_fingerprint(served) == sweep_fingerprint(local)
        # the stores themselves agree file-for-file: same keys, same bytes
        a, b = ResultCache(served_store), ResultCache(local_store)
        assert a.keys() == b.keys() != []
        for key in a.keys():
            assert a.path_for(key).read_bytes() == b.path_for(key).read_bytes()

    def test_server_store_serves_local_sweeps_too(self, tmp_path):
        """One store, reached both ways: entries written by the server
        are hits for a direct local sweep."""
        with running_server(tmp_path, jobs=2) as srv:
            run_sweep("axpy", server=srv.url, **KWARGS)
        local = run_sweep("axpy", cache=tmp_path, **KWARGS)
        assert local.counter("simulations") == 0
        assert local.counter("cache_hits") == NCELLS

    def test_refresh_forces_resimulation(self, tmp_path):
        with running_server(tmp_path, jobs=2) as srv:
            first = run_sweep("axpy", server=srv.url, **KWARGS)
            again = run_sweep("axpy", server=srv.url, refresh=True, **KWARGS)
            assert again.counter("simulations") == NCELLS
            assert again.counter("cache_hits") == 0
            assert sweep_fingerprint(again) == sweep_fingerprint(first)

    def test_env_var_routes_run_sweep(self, tmp_path, monkeypatch):
        with running_server(tmp_path, jobs=2) as srv:
            monkeypatch.setenv("REPRO_SWEEP_SERVER", srv.url)
            sweep = run_sweep("axpy", **KWARGS)
            assert srv.perf.counters["serve.request"] == 1
            assert sweep.counter("simulations") == NCELLS

    def test_tier0_estimates_served_in_thread(self, tmp_path):
        with running_server(tmp_path) as srv:
            sweep = run_sweep("axpy", server=srv.url,
                              versions=["omp_for"], threads=(1, 4),
                              params={"n": 120_000}, fidelity=0)
            assert sweep.counter("estimates") == 2
            assert srv.perf.counters["serve.estimates"] == 2
            assert srv._pool is None  # no process pool spun up

    def test_bounded_store_pruned_after_request(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        with running_server(cache, jobs=2) as srv:
            run_sweep("axpy", server=srv.url, **KWARGS)
            # the prune runs after the response is complete; give the
            # loop a moment to finish the handler
            deadline = time.monotonic() + 10
            while len(cache) > 2 and time.monotonic() < deadline:
                time.sleep(0.05)
        assert len(cache) == 2
        assert srv.perf.counters["serve.evictions"] == NCELLS - 2


# ---------------------------------------------------------------------------
# single-flight dedupe
# ---------------------------------------------------------------------------
class TestSingleFlight:
    def test_concurrent_identical_queries_simulate_once(self, tmp_path, monkeypatch):
        """Two identical queries in flight at once: every unique cell is
        simulated exactly once (the second request *joins* the first's
        futures — ``serve.dedup_hit``), and both clients get the full,
        identical result set."""
        real = executor_mod._estimate_cell_local

        def slow_estimate(cell, ctx):
            time.sleep(0.3)  # hold cells open so the queries overlap
            return real(cell, ctx)

        monkeypatch.setattr(executor_mod, "_estimate_cell_local", slow_estimate)
        kwargs = dict(versions=["omp_for", "cxx_thread"], threads=(1, 4),
                      params={"n": 120_000}, fidelity=0)
        with running_server(tmp_path) as srv:
            sweeps, errors = [None, None], []

            def work(slot):
                try:
                    sweeps[slot] = run_sweep("axpy", server=srv.url, **kwargs)
                except BaseException as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=work, args=(s,)) for s in (0, 1)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            counters = srv.perf.counters
            # exactly one set of simulations for two requests
            assert counters["serve.estimates"] == NCELLS
            assert counters["serve.dedup_hit"] == NCELLS
            assert counters["serve.store"] == NCELLS
        assert sweep_fingerprint(sweeps[0]) == sweep_fingerprint(sweeps[1])
        # the joiner's client counts its joined cells as dedup hits
        total_joins = sum(s.counter("dedup_hits") for s in sweeps)
        assert total_joins == NCELLS
        # and nobody double-stored: the store holds one entry per cell
        assert len(ResultCache(tmp_path)) == NCELLS


# ---------------------------------------------------------------------------
# refusal and failure paths
# ---------------------------------------------------------------------------
class TestServeRefusals:
    def test_custom_context_refused_client_side(self, tmp_path):
        with running_server(tmp_path) as srv:
            with pytest.raises(ValueError, match="custom machine"):
                run_sweep("axpy", ctx=ExecContext(seed=7), server=srv.url,
                          **KWARGS)

    def test_validation_refused_in_server_mode(self, tmp_path):
        with running_server(tmp_path) as srv:
            with pytest.raises(ValueError, match="server mode"):
                run_sweep("axpy", server=srv.url, validate=True, **KWARGS)

    def test_context_digest_mismatch_detected(self, tmp_path):
        """A server simulating a different machine than the client
        expects answers with a hard error, not different numbers."""
        with running_server(tmp_path, ctx=ExecContext(seed=123)) as srv:
            with pytest.raises(ServerError, match="different execution context"):
                run_sweep("axpy", server=srv.url, **KWARGS)

    def test_unknown_workload_is_a_400(self, tmp_path):
        with running_server(tmp_path) as srv:
            client = SweepClient(srv.url)
            with pytest.raises(ServerError, match="400"):
                list(client.query(MatrixQuery("no_such_workload")))
            assert srv.perf.counters["serve.bad_request"] == 1

    def test_unknown_route_is_a_404(self, tmp_path):
        with running_server(tmp_path) as srv:
            client = SweepClient(srv.url)
            with pytest.raises(ServerError, match="404"):
                client._get_json("/nope")

    def test_worker_crash_streams_fatal(self, tmp_path, monkeypatch):
        def boom(cell, ctx):
            raise RuntimeError("injected estimator crash")

        monkeypatch.setattr(executor_mod, "_estimate_cell_local", boom)
        with running_server(tmp_path) as srv:
            with pytest.raises(ServerError, match="server aborted"):
                run_sweep("axpy", server=srv.url, versions=["omp_for"],
                          threads=(1,), params={"n": 120_000}, fidelity=0)
            assert srv.perf.counters["serve.failed_request"] == 1

    def test_bad_url_rejected(self):
        with pytest.raises(ValueError, match="http"):
            SweepClient("ftp://example.com/")
