"""Tests for the accelerator device model and offload executor."""

import pytest

from repro.runtime.offload import run_offload_loop
from repro.sim.device import K40, Device
from repro.sim.task import IterSpace


@pytest.fixture
def space():
    # axpy-like: 1M iterations, 24 B and 2 flops each
    return IterSpace.uniform(1_000_000, 0.1e-9, 24.0)


class TestDevice:
    def test_k40_defaults(self):
        assert K40.compute_ratio > 1
        assert K40.memory_bandwidth > K40.link_bandwidth

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"compute_ratio": 0},
            {"memory_bandwidth": -1},
            {"link_bandwidth": 0},
            {"link_latency": -1e-9},
            {"launch_overhead": -1e-9},
            {"min_parallel_iters": 0},
            {"random_access_factor": 0},
            {"random_access_factor": 2},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Device(**kwargs)

    def test_occupancy_knee(self):
        assert K40.occupancy(K40.min_parallel_iters) == 1.0
        assert K40.occupancy(K40.min_parallel_iters // 2) == pytest.approx(0.5)
        assert K40.occupancy(10 * K40.min_parallel_iters) == 1.0
        with pytest.raises(ValueError):
            K40.occupancy(0)

    def test_small_kernels_run_inefficiently(self):
        big = IterSpace.uniform(1_000_000, 1e-9)
        small = IterSpace.uniform(1_000, 1e-9)
        # per-iteration cost is higher for the small kernel
        t_big = (K40.kernel_time(big) - K40.launch_overhead) / 1_000_000
        t_small = (K40.kernel_time(small) - K40.launch_overhead) / 1_000
        assert t_small > t_big

    def test_kernel_roofline(self, space):
        t = K40.kernel_time(space)
        mem_floor = space.total_bytes / K40.memory_bandwidth
        assert t >= mem_floor
        assert t >= K40.launch_overhead

    def test_random_access_slows_kernel(self):
        stream = IterSpace.uniform(1_000_000, 0.0, 8.0, locality=1.0)
        rand = IterSpace.uniform(1_000_000, 0.0, 8.0, locality=0.0)
        assert K40.kernel_time(rand) > K40.kernel_time(stream)

    def test_transfer_time(self):
        assert K40.transfer_time(0) == 0.0
        t = K40.transfer_time(1e9)
        assert t == pytest.approx(K40.link_latency + 1e9 / K40.link_bandwidth)
        with pytest.raises(ValueError):
            K40.transfer_time(-1)


class TestOffloadExecutor:
    def test_sync_sums_stages(self, space, ctx):
        res = run_offload_loop(space, 1, ctx, to_bytes=1e6, from_bytes=5e5)
        assert res.time == pytest.approx(
            res.meta["h2d"] + res.meta["kernel"] + res.meta["d2h"]
        )

    def test_resident_skips_transfers(self, space, ctx):
        moving = run_offload_loop(space, 1, ctx, to_bytes=1e8, from_bytes=1e8)
        resident = run_offload_loop(space, 1, ctx, to_bytes=1e8, from_bytes=1e8, resident=True)
        assert resident.time < moving.time
        assert resident.meta["h2d"] == 0.0

    def test_async_overlap_hides_shorter_stage(self, space, ctx):
        sync = run_offload_loop(space, 1, ctx, to_bytes=1e6, from_bytes=1e6)
        over = run_offload_loop(space, 1, ctx, to_bytes=1e6, from_bytes=1e6, async_overlap=True)
        assert over.time < sync.time

    def test_custom_device(self, space, ctx):
        fast = Device(compute_ratio=1000, name="fast")
        res = run_offload_loop(space, 1, ctx, device=fast)
        assert res.meta["device"] == "fast"
