"""Tests for the comparison framework: registry, experiment, metrics, report."""

import pytest

from repro.core.experiment import PAPER_THREADS, SweepResult, run_experiment
from repro.core.metrics import (
    best_version,
    crossover_threads,
    efficiency,
    gap,
    scaling_plateau,
    speedup,
    version_ratio,
)
from repro.core.registry import WORKLOADS, get_workload
from repro.core.report import ascii_chart, figure_table, render_sweep, summary_line
from repro.runtime.base import ExecContext


@pytest.fixture(scope="module")
def axpy_sweep():
    return run_experiment("axpy", threads=(1, 2, 4, 8), n=500_000)


@pytest.fixture(scope="module")
def fib_sweep():
    # includes the exploding cxx_async version
    return run_experiment("fib", threads=(1, 2, 4), n=16)


class TestRegistry:
    def test_eleven_workloads(self):
        assert len(WORKLOADS) == 11
        assert {"axpy", "sum", "matvec", "matmul", "fib",
                "bfs", "hotspot", "lud", "lavamd", "srad",
                "taskbench"} == set(WORKLOADS)

    def test_each_has_figure(self):
        for spec in WORKLOADS.values():
            assert spec.figure.startswith("Fig.")

    def test_fib_task_only(self):
        spec = get_workload("fib")
        assert "omp_for" not in spec.versions
        assert "omp_task" in spec.versions

    def test_paper_params_recorded(self):
        assert get_workload("axpy").paper_params["n"] == 100_000_000
        assert get_workload("bfs").paper_params["n_nodes"] == 16_000_000
        assert get_workload("hotspot").paper_params["grid"] == 8192

    def test_build_rejects_bad_version(self):
        with pytest.raises(ValueError):
            get_workload("axpy").build("tbb_for", ExecContext().machine)

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("nbody")


class TestExperiment:
    def test_paper_threads_constant(self):
        assert PAPER_THREADS == (1, 2, 4, 8, 16, 32, 36)

    def test_sweep_has_all_cells(self, axpy_sweep):
        # the paper's six versions plus the AMT family (charm/hpx/mpi)
        assert len(axpy_sweep.versions) == 9
        for v in axpy_sweep.versions:
            assert len(axpy_sweep.times(v)) == 4
            for p in axpy_sweep.threads:
                assert axpy_sweep.time(v, p) > 0

    def test_time_accessor_matches_series(self, axpy_sweep):
        v = axpy_sweep.versions[0]
        assert axpy_sweep.time(v, 2) == axpy_sweep.times(v)[1]

    def test_restricted_versions(self):
        s = run_experiment("axpy", versions=["omp_for", "cilk_for"], threads=(1, 2), n=100_000)
        assert s.versions == ("omp_for", "cilk_for")

    def test_invalid_version_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("axpy", versions=["cuda"], threads=(1,))

    def test_errors_recorded_not_raised(self, fib_sweep):
        # cxx_async fib(16) has 4806 tasks < cap: runs; use bigger n via cap
        assert isinstance(fib_sweep, SweepResult)

    def test_explosion_recorded_as_error(self):
        s = run_experiment("fib", versions=["cxx_async"], threads=(2,), n=21)
        assert ("cxx_async", 2) in s.errors
        assert s.times("cxx_async") == [None]
        with pytest.raises(RuntimeError):
            s.time("cxx_async", 2)

    def test_figure_attached(self, axpy_sweep):
        assert axpy_sweep.figure == "Fig. 1"


class TestMetrics:
    def test_speedup_baseline_one(self, axpy_sweep):
        sp = speedup(axpy_sweep, "omp_for")
        assert sp[0] == pytest.approx(1.0)
        assert all(s >= 0.9 for s in sp)

    def test_efficiency_bounded(self, axpy_sweep):
        for e in efficiency(axpy_sweep, "omp_for"):
            assert 0 < e <= 1.05

    def test_best_version_is_fastest(self, axpy_sweep):
        p = 4
        best = best_version(axpy_sweep, p)
        t_best = axpy_sweep.time(best, p)
        assert all(axpy_sweep.time(v, p) >= t_best for v in axpy_sweep.versions)

    def test_gap_of_best_is_one(self, axpy_sweep):
        best = best_version(axpy_sweep, 4)
        assert gap(axpy_sweep, best, 4) == pytest.approx(1.0)

    def test_version_ratio_symmetry(self, axpy_sweep):
        r = version_ratio(axpy_sweep, "cilk_for", "omp_for", 4)
        r_inv = version_ratio(axpy_sweep, "omp_for", "cilk_for", 4)
        assert r * r_inv == pytest.approx(1.0)

    def test_cilk_gap_positive(self, axpy_sweep):
        assert gap(axpy_sweep, "cilk_for", 4) > 1.2

    def test_scaling_plateau(self, axpy_sweep):
        p = scaling_plateau(axpy_sweep, "omp_for")
        assert p in axpy_sweep.threads

    def test_crossover_none_when_always_faster(self, axpy_sweep):
        assert crossover_threads(axpy_sweep, "omp_for", "cilk_for") is None

    def test_speedup_requires_one_thread_baseline(self):
        s = run_experiment("axpy", versions=["omp_for"], threads=(2, 4), n=100_000)
        with pytest.raises(ValueError):
            speedup(s, "omp_for")


class TestReport:
    def test_figure_table_contains_versions_and_threads(self, axpy_sweep):
        t = figure_table(axpy_sweep)
        for v in axpy_sweep.versions:
            assert v in t
        assert "p=8" in t

    def test_summary_line_names_winner_and_loser(self, axpy_sweep):
        line = summary_line(axpy_sweep, 4)
        assert "fastest" in line and "slowest" in line
        assert "cilk_for" in line  # the known loser

    def test_render_sweep_composite(self, axpy_sweep):
        out = render_sweep(axpy_sweep, chart=True)
        assert "worst=" in out and "#" in out

    def test_hang_rendered(self):
        s = run_experiment("fib", versions=["cxx_async", "omp_task"], threads=(2,), n=21)
        t = figure_table(s)
        assert "HANG" in t
        line = summary_line(s, 2)
        assert "hung: cxx_async" in line

    def test_ascii_chart_handles_no_data(self):
        s = run_experiment("fib", versions=["cxx_async"], threads=(2,), n=21)
        assert "no successful runs" in ascii_chart(s)
