"""Tests for the NUMA machine model."""


import pytest

from repro.sim.machine import PAPER_MACHINE, Machine


class TestTopology:
    def test_paper_machine_matches_testbed(self):
        m = PAPER_MACHINE
        assert m.sockets == 2
        assert m.cores_per_socket == 18
        assert m.physical_cores == 36
        assert m.hw_threads == 72
        assert m.ghz == pytest.approx(2.3)

    def test_total_bandwidth_sums_sockets(self):
        m = Machine(sockets=2, socket_bandwidth=50e9)
        assert m.total_bandwidth == pytest.approx(100e9)

    def test_sockets_spanned_cores_first(self):
        m = PAPER_MACHINE
        assert m.sockets_spanned(1) == 1
        assert m.sockets_spanned(18) == 1
        assert m.sockets_spanned(19) == 2
        assert m.sockets_spanned(36) == 2
        # SMT contexts do not add sockets
        assert m.sockets_spanned(72) == 2
        assert m.sockets_spanned(1000) == 2

    def test_sockets_spanned_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PAPER_MACHINE.sockets_spanned(0)

    def test_single_socket_machine(self):
        m = Machine(sockets=1, cores_per_socket=8)
        assert m.sockets_spanned(8) == 1
        assert m.sockets_spanned(100) == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sockets": 0},
            {"cores_per_socket": 0},
            {"smt": 0},
            {"ghz": 0.0},
            {"socket_bandwidth": -1.0},
            {"core_bandwidth": 0.0},
            {"random_access_factor": 0.0},
            {"random_access_factor": 1.5},
            {"numa_remote_fraction": -0.1},
            {"numa_penalty": 0.5},
            {"smt_throughput": 0.9},
            {"smt_throughput": 3.0},
            {"oversub_efficiency": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Machine(**kwargs)

    def test_smt_throughput_bounded_by_smt(self):
        # smt=1 forces smt_throughput == 1
        Machine(smt=1, smt_throughput=1.0)
        with pytest.raises(ValueError):
            Machine(smt=1, smt_throughput=1.3)


class TestComputeSpeed:
    def test_full_speed_up_to_physical_cores(self):
        m = PAPER_MACHINE
        for p in (1, 2, 18, 36):
            assert m.compute_speed(p) == 1.0

    def test_smt_regime_degrades_per_thread(self):
        m = PAPER_MACHINE
        s = m.compute_speed(72)
        assert s == pytest.approx(m.smt_throughput / m.smt)
        assert s < 1.0

    def test_smt_regime_interpolates(self):
        m = PAPER_MACHINE
        s50 = m.compute_speed(50)
        assert m.compute_speed(72) < s50 < 1.0
        # aggregate throughput never decreases when adding SMT contexts
        assert 50 * s50 >= 36 * 1.0

    def test_oversubscription_caps_total_throughput(self):
        m = PAPER_MACHINE
        p = 200
        s = m.compute_speed(p)
        total = p * s
        expected = m.physical_cores * m.smt_throughput * m.oversub_efficiency
        assert total == pytest.approx(expected)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PAPER_MACHINE.compute_speed(0)


class TestBandwidth:
    def test_single_core_capped_by_core_bandwidth(self):
        m = PAPER_MACHINE
        assert m.bandwidth_per_thread(1) == pytest.approx(m.core_bandwidth)

    def test_share_shrinks_with_threads(self):
        m = PAPER_MACHINE
        prev = m.bandwidth_per_thread(1)
        for p in (2, 4, 8, 18, 36):
            bw = m.bandwidth_per_thread(p)
            assert bw <= prev + 1e-9
            prev = bw

    def test_saturation_point_single_socket(self):
        m = PAPER_MACHINE
        # with 18 threads on one socket the fair share binds, not the core cap
        assert m.bandwidth_per_thread(18) < m.core_bandwidth

    def test_second_socket_adds_bandwidth(self):
        m = PAPER_MACHINE
        agg18 = 18 * m.bandwidth_per_thread(18)
        agg36 = 36 * m.bandwidth_per_thread(36)
        assert agg36 > agg18

    def test_numa_slowdown_applied_when_spanning(self):
        m = PAPER_MACHINE
        no_numa = Machine(numa_remote_fraction=0.0)
        assert m.bandwidth_per_thread(36) < no_numa.bandwidth_per_thread(36)

    def test_random_access_reduces_bandwidth(self):
        m = PAPER_MACHINE
        stream = m.bandwidth_per_thread(4, locality=1.0)
        rand = m.bandwidth_per_thread(4, locality=0.0)
        assert rand < stream
        assert rand == pytest.approx(stream * m.random_access_factor, rel=0.3)

    def test_locality_interpolates_monotonically(self):
        m = PAPER_MACHINE
        values = [m.bandwidth_per_thread(4, loc) for loc in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values)

    def test_locality_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PAPER_MACHINE.bandwidth_per_thread(4, locality=1.5)
