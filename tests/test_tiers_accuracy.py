"""Tier-0 accuracy battery: analytic estimates vs the tier-2 reference.

The tier-0 estimator's contract is not "close" but *bounded*: every
estimate carries a calibrated relative error bound, and the tier-2
reference time must land inside it — across the entire workload
registry (every kernel × runtime × schedule the paper compares), at
serial and parallel thread counts.  A second battery covers the three
OpenMP worksharing schedules directly (the registry's validation
parameters exercise only ``static``), and a third pins the calibration
machinery itself: refining the calibration partition must tighten the
worst-case bound monotonically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.registry import WORKLOADS
from repro.models.openmp import parallel_for
from repro.runtime.base import ExecContext, ThreadExplosionError
from repro.runtime.run import run_program
from repro.sim.task import IterSpace, Program
from repro.sim.tiers import (
    DEFAULT_CALIBRATION,
    TIER_ANALYTIC,
    Calibration,
    Tier0Result,
    calibrate,
    estimate_program,
    estimate_region,
)

CTX = ExecContext()

REGISTRY_CELLS = [
    (name, version, p)
    for name in sorted(WORKLOADS)
    for version in WORKLOADS[name].versions
    for p in (1, 4)
]


def _build(name: str, version: str) -> Program:
    spec = WORKLOADS[name]
    params = dict(spec.validation_params or spec.default_params)
    return spec.build(version, CTX.machine, **params)


# ---------------------------------------------------------------------------
# the registry-wide bound battery
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "name,version,p", REGISTRY_CELLS, ids=[f"{n}-{v}-p{p}" for n, v, p in REGISTRY_CELLS]
)
def test_registry_estimate_within_declared_bound(name, version, p):
    """Every kernel × runtime × schedule: |t2 - t0| <= t0 * bound."""
    try:
        ref = run_program(_build(name, version), p, CTX, version)
    except ThreadExplosionError:
        with pytest.raises(ThreadExplosionError):
            estimate_program(_build(name, version), p, CTX, version)
        return
    est = estimate_program(_build(name, version), p, CTX, version)
    assert isinstance(est, Tier0Result)
    assert est.time > 0.0
    if est.error_bound == 0.0:
        # fully delegated program: the estimate IS the reference result
        assert est.time == pytest.approx(ref.time, rel=1e-9)
    else:
        rel = abs(ref.time - est.time) / est.time
        assert rel <= est.error_bound, (
            f"{name}/{version} p={p}: relative error {rel:.4f} "
            f"outside declared bound {est.error_bound:.4f}"
        )


def test_registry_estimates_at_high_thread_count():
    """p=16 (the contended regime the steal estimators model) stays
    within bounds for every workload's first and last version."""
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name]
        for version in {spec.versions[0], spec.versions[-1]}:
            try:
                ref = run_program(_build(name, version), 16, CTX, version)
            except ThreadExplosionError:
                continue
            est = estimate_program(_build(name, version), 16, CTX, version)
            if est.error_bound > 0.0:
                rel = abs(ref.time - est.time) / est.time
                assert rel <= est.error_bound, f"{name}/{version} p=16: {rel:.4f}"


# ---------------------------------------------------------------------------
# direct schedule coverage (static / dynamic / guided)
# ---------------------------------------------------------------------------
def _skewed_space() -> IterSpace:
    work = np.linspace(4e-9, 150e-9, 3000)
    return IterSpace.from_profile(work, np.full(3000, 16.0), name="skewed")


@pytest.mark.parametrize("schedule", ["dynamic", "guided"])
@pytest.mark.parametrize("p", [1, 4, 16])
def test_worksharing_schedule_estimates(schedule, p):
    prog = Program(f"ws-{schedule}")
    prog.add(parallel_for(_skewed_space(), schedule=schedule))
    prog.add(parallel_for(IterSpace.uniform(4096, 25e-9, 64.0), schedule=schedule, chunk=8))
    ref = run_program(prog, p, CTX)
    est = estimate_program(prog, p, CTX)
    assert est.error_bound > 0.0  # modelled, not delegated
    rel = abs(ref.time - est.time) / est.time
    assert rel <= est.error_bound
    for region in est.regions:
        assert region.meta["tier"] == TIER_ANALYTIC
        assert region.meta["estimator"] == f"ws_{schedule}"


def test_static_schedule_is_delegated_exact():
    prog = Program("ws-static")
    prog.add(parallel_for(_skewed_space(), schedule="static"))
    ref = run_program(prog, 4, CTX)
    est = estimate_program(prog, 4, CTX)
    assert est.error_bound == 0.0
    assert est.time == pytest.approx(ref.time, rel=1e-12)
    assert est.regions[0].meta["estimator"] == "exact"


# ---------------------------------------------------------------------------
# calibration machinery
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def calibrations():
    kwargs = dict(threads=(1, 4), workloads=("axpy", "sum", "fib", "bfs"))
    return {lvl: calibrate(level=lvl, **kwargs) for lvl in (0, 1, 2)}


def test_bound_tightens_monotonically_with_level(calibrations):
    """Refining the calibration partition never widens the worst bound."""
    b0 = calibrations[0].max_bound
    b1 = calibrations[1].max_bound
    b2 = calibrations[2].max_bound
    assert b2 <= b1 <= b0
    assert b0 > 0.0


def test_calibration_levels_key_granularity(calibrations):
    assert set(calibrations[0].scales) == {"*"}
    assert all("/" not in k for k in calibrations[1].scales)
    assert any("/" in k for k in calibrations[2].scales)


def test_calibration_lookup_fallback():
    cal = Calibration(
        level=2,
        scales={"steal_flat/omp_task": 2.0, "steal_flat": 1.5, "*": 1.1},
        bounds={"steal_flat/omp_task": 0.1, "steal_flat": 0.2, "*": 0.3},
        fallback_bound=0.4,
    )
    assert cal.scale("steal_flat", "omp_task") == 2.0
    assert cal.scale("steal_flat", "other") == 1.5
    assert cal.scale("unknown", "x") == 1.1
    assert cal.bound("unknown", "x") == 0.3
    assert Calibration(level=1, scales={}, bounds={}).bound("anything") == 0.5


def test_shipped_calibration_covers_every_modelled_kind():
    """Every estimator kind the registry + schedules can produce must
    have a fitted (non-fallback) entry in the shipped calibration."""
    kinds = set()
    for name in sorted(WORKLOADS):
        spec = WORKLOADS[name]
        for version in spec.versions:
            try:
                prog = _build(name, version)
            except Exception:  # pragma: no cover - registry always builds
                continue
            try:
                for region in prog:
                    kind, _ = estimate_region(region, 2, CTX)
                    kinds.add(kind)
            except ThreadExplosionError:
                continue
    kinds.discard("exact")
    kinds.update({"ws_dynamic", "ws_guided"})
    assert kinds  # the registry exercises the modelled estimators
    for kind in kinds:
        assert kind in DEFAULT_CALIBRATION.scales, kind
        assert kind in DEFAULT_CALIBRATION.bounds, kind
        assert 0.0 < DEFAULT_CALIBRATION.bounds[kind] < 1.0


def test_program_bound_is_time_weighted(monkeypatch):
    prog = Program("mix")
    prog.add(parallel_for(_skewed_space(), schedule="dynamic"))
    prog.add(parallel_for(IterSpace.uniform(2048, 20e-9), schedule="static"))
    est = estimate_program(prog, 4, CTX)
    bounds = [r.meta["error_bound"] for r in est.regions]
    times = [r.time for r in est.regions]
    expected = sum(b * t for b, t in zip(bounds, times)) / sum(times)
    assert est.error_bound == pytest.approx(expected)
    assert bounds[1] == 0.0  # static region delegated exact


def test_estimate_rejects_bad_nthreads():
    prog = Program("x")
    prog.add(parallel_for(IterSpace.uniform(64, 1e-8)))
    with pytest.raises(ValueError):
        estimate_program(prog, 0, CTX)
