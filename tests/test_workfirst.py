"""Tests for the work-first vs breadth-first task scheduling policy."""

import pytest

from repro.kernels import fib
from repro.runtime.workstealing import StealingScheduler
from repro.sim.task import TaskGraph


def chain(n, work=1e-6):
    g = TaskGraph("chain")
    prev = None
    for _ in range(n):
        prev = g.add(work, deps=[prev] if prev is not None else [])
    return g


class TestWorkFirst:
    def test_completes_dag(self, small_ctx):
        res = StealingScheduler(fib.graph(10), 4, small_ctx, work_first=True).run()
        assert res.total_tasks == len(fib.graph(10))

    def test_work_conserved(self, small_ctx):
        g = fib.graph(10)
        res = StealingScheduler(fib.graph(10), 4, small_ctx, work_first=True).run()
        assert res.total_busy == pytest.approx(g.total_work(), rel=1e-6)

    def test_chain_never_touches_deque(self, small_ctx):
        """A dependency chain is pure execute-on-creation: zero pushes
        after the root."""
        sched = StealingScheduler(chain(20), 1, small_ctx, work_first=True)
        sched.run()
        assert sched.deques[0].pushes == 1  # only the root seed

    def test_breadth_first_queues_everything(self, small_ctx):
        sched = StealingScheduler(chain(20), 1, small_ctx, work_first=False)
        sched.run()
        assert sched.deques[0].pushes == 20

    def test_work_first_cheaper_on_spawn_trees(self, small_ctx):
        """Half the deque traffic disappears; the paper's reason Cilk's
        work-first discipline is the cheap path."""
        wf = StealingScheduler(fib.graph(14), 1, small_ctx, deque="locked", work_first=True)
        bf = StealingScheduler(fib.graph(14), 1, small_ctx, deque="locked", work_first=False)
        t_wf, t_bf = wf.run().time, bf.run().time
        assert t_wf < t_bf
        assert wf.deques[0].pushes < bf.deques[0].pushes

    def test_parallelism_preserved(self, small_ctx):
        """Diving into one child must not serialize the others."""
        g = fib.graph(12)
        t1 = StealingScheduler(fib.graph(12), 1, small_ctx, work_first=True).run().time
        t8 = StealingScheduler(g, 8, small_ctx, work_first=True).run().time
        assert t8 < t1 / 3

    def test_deterministic(self, small_ctx):
        a = StealingScheduler(fib.graph(12), 4, small_ctx, work_first=True).run().time
        b = StealingScheduler(fib.graph(12), 4, small_ctx, work_first=True).run().time
        assert a == b
