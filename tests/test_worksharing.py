"""Tests for the fork-join worksharing executor."""

import numpy as np
import pytest

from repro.runtime.worksharing import chunk_edges, run_worksharing_loop
from repro.sim.task import IterSpace


@pytest.fixture
def uniform():
    return IterSpace.uniform(10_000, 1e-7, 0.0)


class TestChunkEdges:
    def test_exact_division(self):
        e = chunk_edges(100, 25)
        assert list(e) == [0, 25, 50, 75, 100]

    def test_remainder_chunk(self):
        e = chunk_edges(10, 4)
        assert list(e) == [0, 4, 8, 10]

    def test_chunk_larger_than_space(self):
        e = chunk_edges(5, 100)
        assert list(e) == [0, 5]

    def test_invalid_chunk(self):
        with pytest.raises(ValueError):
            chunk_edges(10, 0)


class TestStatic:
    def test_perfect_balance_uniform_loop(self, uniform, ctx):
        res = run_worksharing_loop(uniform, 4, ctx, fork=False, barrier=False)
        busys = [w.busy for w in res.workers]
        assert max(busys) == pytest.approx(min(busys), rel=1e-6)
        assert res.total_tasks == 4

    def test_time_shrinks_with_threads(self, uniform, ctx):
        t1 = run_worksharing_loop(uniform, 1, ctx).time
        t8 = run_worksharing_loop(uniform, 8, ctx).time
        assert t8 < t1

    def test_single_thread_time_is_total_work(self, uniform, ctx):
        res = run_worksharing_loop(uniform, 1, ctx, fork=False, barrier=False)
        assert res.time == pytest.approx(uniform.total_work, rel=1e-3)

    def test_fork_and_barrier_charged(self, uniform, ctx):
        bare = run_worksharing_loop(uniform, 8, ctx, fork=False, barrier=False).time
        full = run_worksharing_loop(uniform, 8, ctx).time
        expected = ctx.costs.fork_cost(8) + ctx.costs.barrier_cost(8)
        assert full - bare == pytest.approx(expected, rel=1e-6)

    def test_static_chunked_round_robin(self, ctx):
        # skewed front half; round-robin chunks rebalance vs contiguous
        work = np.concatenate([np.full(500, 10e-7), np.full(500, 1e-7)])
        space = IterSpace.from_profile(work, max_blocks=100)
        contiguous = run_worksharing_loop(space, 2, ctx, fork=False, barrier=False)
        rr = run_worksharing_loop(space, 2, ctx, chunk=10, fork=False, barrier=False)
        assert rr.time < contiguous.time

    def test_imbalanced_loop_bounded_by_max_chunk(self, ctx):
        work = np.zeros(100)
        work[0] = 1.0  # one huge iteration
        space = IterSpace.from_profile(work)
        res = run_worksharing_loop(space, 4, ctx, fork=False, barrier=False)
        assert res.time >= 1.0

    def test_reduction_adds_combine(self, uniform, ctx):
        plain = run_worksharing_loop(uniform, 8, ctx).time
        red = run_worksharing_loop(uniform, 8, ctx, reduction=True).time
        assert red - plain == pytest.approx(8 * ctx.costs.reduction_per_thread, rel=1e-6)

    def test_work_conservation(self, uniform, ctx):
        res = run_worksharing_loop(uniform, 6, ctx)
        assert res.total_busy == pytest.approx(uniform.total_work, rel=1e-3)


class TestDynamicGuided:
    def test_dynamic_balances_skew(self, ctx):
        # triangular profile (LUD-like): contiguous static chunks are
        # grossly unequal, dynamic chunks rebalance
        work = np.linspace(10, 0.1, 2000) * 1e-6
        space = IterSpace.from_profile(work, max_blocks=2000)
        static = run_worksharing_loop(space, 8, ctx, schedule="static")
        dynamic = run_worksharing_loop(space, 8, ctx, schedule="dynamic", chunk=25)
        assert dynamic.time < static.time

    def test_dynamic_dispatch_serializes(self, ctx):
        # tiny chunks: dispatch lock dominates and caps speedup
        space = IterSpace.uniform(10_000, 1e-9)
        res = run_worksharing_loop(space, 16, ctx, schedule="dynamic", chunk=1)
        # 10k dispatches x dispatch cost is a hard serial floor
        assert res.time >= 10_000 * ctx.costs.dynamic_dispatch * 0.99

    def test_dynamic_default_chunk(self, uniform, ctx):
        res = run_worksharing_loop(uniform, 4, ctx, schedule="dynamic")
        assert res.meta["nchunks"] > 4

    def test_guided_fewer_chunks_than_dynamic(self, uniform, ctx):
        dyn = run_worksharing_loop(uniform, 4, ctx, schedule="dynamic", chunk=50)
        gui = run_worksharing_loop(uniform, 4, ctx, schedule="guided", chunk=50)
        assert gui.meta["nchunks"] < dyn.meta["nchunks"]

    def test_guided_chunks_shrink(self, uniform, ctx):
        res = run_worksharing_loop(uniform, 4, ctx, schedule="guided", chunk=10)
        assert res.meta["schedule"] == "guided"
        assert res.time < uniform.total_work  # still parallel

    def test_dynamic_work_conservation(self, uniform, ctx):
        res = run_worksharing_loop(uniform, 5, ctx, schedule="dynamic", chunk=100)
        assert res.total_busy == pytest.approx(uniform.total_work, rel=1e-3)

    def test_chunk_explosion_guard(self, ctx):
        space = IterSpace.uniform(100_000_000, 1e-9)
        with pytest.raises(ValueError, match="chunks"):
            run_worksharing_loop(space, 4, ctx, schedule="dynamic", chunk=1)


class TestValidation:
    def test_unknown_schedule(self, uniform, ctx):
        with pytest.raises(ValueError, match="unknown schedule"):
            run_worksharing_loop(uniform, 4, ctx, schedule="weird")

    def test_nonpositive_threads(self, uniform, ctx):
        with pytest.raises(ValueError):
            run_worksharing_loop(uniform, 0, ctx)

    def test_work_scale(self, uniform, ctx):
        base = run_worksharing_loop(uniform, 1, ctx, fork=False, barrier=False).time
        doubled = run_worksharing_loop(
            uniform, 1, ctx, fork=False, barrier=False, work_scale=2.0
        ).time
        assert doubled == pytest.approx(2 * base, rel=1e-3)
