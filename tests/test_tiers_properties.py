"""Tier-1 equivalence properties: the fast paths must be bit-identical.

Tier 1 replaces scalar hot loops with vectorized/batched equivalents —
the engine's branch-hoisted drain, the memoized duration model, the
batched ``cilk_for`` graph builder.  "Equivalent" here means **bit
identical**: same final time, same per-worker statistics, same executor
meta, same complete trace event stream, down to the last ULP of every
timestamp.  These properties pin that on seeded random programs (every
executor, nested regions, skewed spaces), under fault injection, and on
the batched builders directly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.runtime.workstealing import cilk_for_graph, cilk_for_graph_batched
from repro.sim.task import IterSpace
from repro.sweep.codec import result_to_dict
from repro.validate.properties import SMALL_MACHINE, random_program

CTX2 = ExecContext(machine=SMALL_MACHINE)
CTX1 = CTX2.with_fidelity(1)

THREADS = (1, 2, 5, 9)
SEEDS = (0, 1, 2, 3, 4, 5, 6, 7)


def _identical(program, p, **kwargs) -> None:
    ref = run_program(program, p, CTX2, trace=True, **kwargs)
    fast = run_program(program, p, CTX1, trace=True, **kwargs)
    assert type(fast.time) is float and fast.time == ref.time
    # full-fidelity comparison: regions, worker stats, meta, every
    # span/instant/engine/lock event — the codec dict covers it all
    assert result_to_dict(fast) == result_to_dict(ref)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_programs_bit_identical_across_tiers(seed):
    rng = random.Random(seed)
    program = random_program(rng, seed)
    for p in THREADS:
        _identical(program, p)


@pytest.mark.parametrize("seed", [10, 11, 12])
def test_random_programs_identical_under_fault_injection(seed):
    rng = random.Random(seed)
    program = random_program(rng, seed)
    policy = {"max_retries": 1, "backoff": 1e-6, "on_failure": "continue"}
    for p in (1, 5):
        _identical(program, p, faults="fail:task=3", policy=policy)


def test_fidelity0_context_runs_like_fidelity1():
    """Executors treat a fidelity-0 context as tier 1 (estimates come
    from ``estimate_program``, never from ``run_program``)."""
    rng = random.Random(99)
    program = random_program(rng, 99)
    r0 = run_program(program, 5, CTX2.with_fidelity(0), trace=True)
    r2 = run_program(program, 5, CTX2, trace=True)
    assert result_to_dict(r0) == result_to_dict(r2)


# ---------------------------------------------------------------------------
# the batched cilk_for graph builder, compared structurally
# ---------------------------------------------------------------------------
def _skewed(niter: int) -> IterSpace:
    rng = np.random.default_rng(7)
    work = rng.uniform(1e-9, 2e-7, niter)
    mbytes = rng.choice([0.0, 24.0, 64.0], niter)
    return IterSpace.from_profile(work, mbytes, locality=0.7, name="skew")


@pytest.mark.parametrize("niter,grainsize", [
    (1, 1), (2, 1), (7, 1), (64, 8), (1000, 13), (4096, 64), (5000, 1024),
])
def test_batched_cilk_graph_equals_scalar(niter, grainsize):
    space = _skewed(niter)
    for kwargs in ({}, {"bytes_penalty": 1.5, "work_scale": 0.9}):
        g_ref = cilk_for_graph(space, grainsize, CTX2, **kwargs)
        g_fast = cilk_for_graph_batched(space, grainsize, CTX2, **kwargs)
        assert len(g_fast) == len(g_ref)
        for a, b in zip(g_fast.tasks, g_ref.tasks):
            # dataclass equality: work/membytes bit-equal floats, same
            # deps tuple (task ids), same split/chunk tag
            assert a == b
        assert g_fast.successors == g_ref.successors


def test_batched_cilk_graph_uniform_space():
    space = IterSpace.uniform(2048, 3e-8, 48.0, locality=0.5)
    g_ref = cilk_for_graph(space, 100, CTX2)
    g_fast = cilk_for_graph_batched(space, 100, CTX2)
    assert [(t.work, t.membytes, t.deps, t.tag) for t in g_fast.tasks] == [
        (t.work, t.membytes, t.deps, t.tag) for t in g_ref.tasks
    ]


def test_batched_builder_falls_back_past_exactness_guard():
    """niter * nblocks >= 2**53 cannot replicate the scalar op order
    bit-exactly, so the batched builder must delegate to the scalar
    one rather than drift."""
    space = IterSpace(2**51, np.full(16, 1e-3), np.zeros(16))
    assert space.niter * space.nblocks >= 2**53
    g_fast = cilk_for_graph_batched(space, 2**49, CTX2)
    g_ref = cilk_for_graph(space, 2**49, CTX2)
    assert [t for t in g_fast.tasks] == [t for t in g_ref.tasks]


# ---------------------------------------------------------------------------
# the memoized duration fast path
# ---------------------------------------------------------------------------
def test_fast_duration_bit_equal_to_memory_model():
    from repro.runtime.workstealing import StealingScheduler
    from repro.sim.task import TaskGraph

    g = TaskGraph()
    g.add(1e-8)
    sched = StealingScheduler(g, 9, CTX1)
    rng = np.random.default_rng(13)
    for _ in range(500):
        work = float(rng.uniform(0, 1e-6))
        membytes = float(rng.choice([0.0, 8.0, 64.0, 4096.0]))
        locality = float(rng.choice([0.1, 0.5, 1.0]))
        active = int(rng.integers(0, 10))
        assert sched._duration(work, membytes, locality, active) == CTX1.duration(
            work, membytes, locality, active
        )


def test_reference_context_uses_reference_duration():
    from repro.runtime.workstealing import StealingScheduler
    from repro.sim.task import TaskGraph

    g = TaskGraph()
    g.add(1e-8)
    sched = StealingScheduler(g, 4, CTX2)
    assert sched._duration == CTX2.duration


# ---------------------------------------------------------------------------
# the engine fast drain
# ---------------------------------------------------------------------------
def test_engine_fast_drain_matches_general_loop():
    from repro.sim.engine import Engine

    def build(engine):
        order = []
        for i, t in enumerate([5e-6, 1e-6, 1e-6, 3e-6]):
            engine.at(t, lambda i=i: order.append((engine.now, i)))
        return order

    fast = Engine()
    fast_order = build(fast)
    fast_end = fast.run()

    slow = Engine()
    slow.enable_audit()  # tracer attached -> general loop
    slow_order = build(slow)
    slow_end = slow.run()

    assert fast_order == slow_order
    assert fast_end == slow_end
    assert fast.events_processed == slow.events_processed == 4


def test_engine_fast_drain_honours_max_events():
    from repro.sim.engine import Engine

    eng = Engine()

    def reschedule():
        eng.after(1e-6, reschedule)

    eng.after(1e-6, reschedule)
    with pytest.raises(RuntimeError, match="exceeded"):
        eng.run(max_events=100)


def test_engine_fast_drain_honours_interrupt():
    from repro.sim.engine import Engine

    eng = Engine()
    seen = []
    eng.at(1e-6, lambda: (seen.append("a"), eng.interrupt("stop")))
    eng.at(2e-6, lambda: seen.append("b"))
    eng.run()
    assert seen == ["a"]
    assert eng.interrupted == "stop"
    assert eng.pending == 1
