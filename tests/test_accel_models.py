"""Tests for the accelerator front-ends (CUDA / OpenACC / OpenMP target)."""

import pytest

from repro.models import cuda, openacc, openmp
from repro.runtime.run import execute_region, run_program
from repro.sim.device import Device
from repro.sim.task import IterSpace, Program


@pytest.fixture
def space():
    return IterSpace.uniform(500_000, 0.1e-9, 24.0)


class TestCuda:
    def test_kernel_launch_region(self, space, ctx):
        r = cuda.kernel_launch(space, copy_in=1e6, copy_out=1e6)
        res = execute_region(r, 1, ctx)
        assert res.meta["h2d"] > 0 and res.meta["d2h"] > 0

    def test_stream_is_async(self, space, ctx):
        sync = execute_region(cuda.kernel_launch(space, copy_in=1e7, copy_out=1e7), 1, ctx)
        stream = execute_region(
            cuda.kernel_launch(space, copy_in=1e7, copy_out=1e7, stream=True), 1, ctx
        )
        assert stream.time < sync.time
        assert stream.meta["async"] is True

    def test_memcpy_bytes_helper(self):
        assert cuda.memcpy_bytes(8.0, 16.0) == 24.0
        with pytest.raises(ValueError):
            cuda.memcpy_bytes(-1.0)


class TestOpenACC:
    def test_parallel_region(self, space, ctx):
        res = execute_region(openacc.parallel_region(space, copyin=1e6), 1, ctx)
        assert res.time > 0

    def test_data_region_amortizes_transfers(self, space, ctx):
        n_loops = 8
        percall = Program("percall")
        for _ in range(n_loops):
            percall.add(openacc.parallel_region(space, copyin=1.2e7, copyout=4e6))
        region = Program("dataregion")
        openacc.data_region(region, [space] * n_loops, copyin=1.2e7, copyout=4e6)
        t_percall = run_program(percall, 1, ctx).time
        t_region = run_program(region, 1, ctx).time
        assert t_region < t_percall

    def test_data_region_structure(self, space, ctx):
        prog = Program("p")
        openacc.data_region(prog, [space, space], copyin=1e6, copyout=1e6)
        # copyin + 2 loops + copyout
        assert len(prog) == 4

    def test_data_region_no_transfers(self, space):
        prog = Program("p")
        openacc.data_region(prog, [space])
        assert len(prog) == 1


class TestOpenMPTarget:
    def test_target_region(self, space, ctx):
        r = openmp.target_parallel_for(space, map_to=1e6, map_from=1e6)
        res = execute_region(r, 1, ctx)
        assert res.meta["h2d"] > 0

    def test_nowait_overlaps(self, space, ctx):
        sync = execute_region(
            openmp.target_parallel_for(space, map_to=1e7, map_from=1e7), 1, ctx
        )
        nowait = execute_region(
            openmp.target_parallel_for(space, map_to=1e7, map_from=1e7, nowait=True), 1, ctx
        )
        assert nowait.time < sync.time

    def test_custom_device_threaded_through(self, space, ctx):
        dev = Device(compute_ratio=500, name="mic")
        res = execute_region(openmp.target_parallel_for(space, device=dev), 1, ctx)
        assert res.meta["device"] == "mic"

    def test_offloading_models_agree_on_same_inputs(self, space, ctx):
        """CUDA launch, ACC parallel and OMP target with identical traffic
        produce identical simulated times (same underlying mechanism)."""
        t_cuda = execute_region(cuda.kernel_launch(space, copy_in=1e6), 1, ctx).time
        t_acc = execute_region(openacc.parallel_region(space, copyin=1e6), 1, ctx).time
        t_omp = execute_region(openmp.target_parallel_for(space, map_to=1e6), 1, ctx).time
        assert t_cuda == pytest.approx(t_acc) == pytest.approx(t_omp)
