"""Tests for region dispatch and program execution."""

import pytest

from repro.models import cilk, cxx11, openmp
from repro.runtime.run import execute_region, run_program
from repro.sim.task import IterSpace, LoopRegion, Program, SerialRegion, TaskGraph, TaskRegion


@pytest.fixture
def space():
    return IterSpace.uniform(1000, 1e-7, 0.0)


class TestSerial:
    def test_serial_region_runs_on_one_thread(self, ctx):
        res = execute_region(SerialRegion(1e-3), 36, ctx)
        assert res.time == pytest.approx(1e-3)
        assert res.nthreads == 1

    def test_serial_region_memory(self, ctx):
        res = execute_region(SerialRegion(0.0, membytes=1e7), 4, ctx)
        assert res.time == pytest.approx(1e7 / ctx.machine.bandwidth_per_thread(1))


class TestDispatch:
    def test_worksharing_loop(self, space, ctx):
        res = execute_region(openmp.parallel_for(space), 4, ctx)
        assert res.meta["schedule"] == "static"

    def test_stealing_loop_cilk(self, space, ctx):
        res = execute_region(cilk.cilk_for(space), 4, ctx)
        assert res.meta["style"] == "cilk_for"

    def test_stealing_loop_flat(self, space, ctx):
        res = execute_region(openmp.task_loop(space), 4, ctx)
        assert res.meta["style"] == "flat"

    def test_threadpool_loop(self, space, ctx):
        res = execute_region(cxx11.thread_for(space), 4, ctx)
        assert res.meta["mode"] == "thread"

    def test_task_region_stealing(self, ctx):
        g = TaskGraph()
        g.add(1e-6)
        res = execute_region(openmp.task_graph(g), 2, ctx)
        assert res.time > 0

    def test_task_region_threadpool(self, ctx):
        g = TaskGraph()
        g.add(1e-6)
        res = execute_region(cxx11.async_graph(g), 2, ctx)
        assert res.time > 0

    def test_unknown_loop_executor(self, space, ctx):
        with pytest.raises(ValueError, match="unknown loop executor"):
            execute_region(LoopRegion(space, "mystery"), 2, ctx)

    def test_unknown_task_executor(self, ctx):
        g = TaskGraph()
        g.add(1.0)
        with pytest.raises(ValueError, match="unknown task executor"):
            execute_region(TaskRegion(g, "mystery"), 2, ctx)

    def test_unknown_region_type(self, ctx):
        with pytest.raises(TypeError):
            execute_region("not a region", 2, ctx)

    def test_unknown_entry_marker(self, space, ctx):
        region = LoopRegion(space, "stealing_loop", {"entry": "hyperdrive"})
        with pytest.raises(ValueError, match="unknown entry marker"):
            execute_region(region, 2, ctx)

    def test_unknown_exit_marker(self, space, ctx):
        region = LoopRegion(space, "stealing_loop", {"exit": "warp"})
        with pytest.raises(ValueError, match="unknown exit marker"):
            execute_region(region, 2, ctx)


class TestProgram:
    def test_times_accumulate(self, space, ctx):
        prog = Program("p").add(SerialRegion(1e-3)).add(openmp.parallel_for(space))
        res = run_program(prog, 4, ctx, "omp_for")
        assert res.time == pytest.approx(sum(r.time for r in res.regions))
        assert len(res.regions) == 2
        assert res.version == "omp_for"

    def test_version_from_meta(self, space, ctx):
        prog = Program("p", meta={"version": "cilk_for"}).add(cilk.cilk_for(space))
        res = run_program(prog, 4, ctx)
        assert res.version == "cilk_for"

    def test_pool_setup_charged_once(self, space, ctx):
        prog = Program("p", meta={"pool_setup": True})
        prog.add(cxx11.thread_for(space, persistent=True))
        prog.add(cxx11.thread_for(space, persistent=True))
        res = run_program(prog, 8, ctx)
        no_setup = Program("q")
        no_setup.add(cxx11.thread_for(space, persistent=True))
        no_setup.add(cxx11.thread_for(space, persistent=True))
        res2 = run_program(no_setup, 8, ctx)
        expected = 8 * (ctx.costs.thread_create + ctx.costs.thread_join)
        assert res.time - res2.time == pytest.approx(expected, rel=1e-6)

    def test_invalid_threads(self, ctx):
        with pytest.raises(ValueError):
            run_program(Program("p"), 0, ctx)

    def test_empty_program(self, ctx):
        res = run_program(Program("empty"), 4, ctx)
        assert res.time == 0.0
