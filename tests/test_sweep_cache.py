"""Property tests for the content-addressed sweep cache key and store.

The cache key must be a pure function of the simulation's inputs:
stable across process restarts and hash seeds, independent of dict
insertion order, sensitive to every input that changes the output, and
collision-free across the whole workload registry (checked with a
seeded hypothesis-style randomized sweep).
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys

import pytest

from repro.core.registry import WORKLOADS
from repro.runtime.base import ExecContext
from repro.sim.machine import Machine
from repro.sweep import ResultCache, SweepCell, cache_key

BASE_CELL = SweepCell("axpy", "omp_for", 4, {"n": 120_000})

_KEY_SNIPPET = """\
import sys
sys.path.insert(0, {src!r})
from repro.runtime.base import ExecContext
from repro.sweep import SweepCell, cache_key
cell = SweepCell("axpy", "omp_for", 4, {{"n": 120_000}})
print(cache_key(cell, ExecContext()))
"""


class TestKeyStability:
    def test_deterministic_in_process(self):
        ctx = ExecContext()
        assert cache_key(BASE_CELL, ctx) == cache_key(BASE_CELL, ctx)

    def test_stable_across_process_restarts(self):
        """Fresh interpreters with different hash seeds agree with us."""
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        snippet = _KEY_SNIPPET.format(src=os.path.abspath(src))
        keys = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            out = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, env=env, check=True,
            )
            keys.append(out.stdout.strip())
        assert keys[0] == keys[1] == cache_key(BASE_CELL, ExecContext())

    def test_independent_of_param_order(self):
        ctx = ExecContext()
        a = SweepCell("lud", "omp_for", 8, {"n": 128, "block": 32})
        b = SweepCell("lud", "omp_for", 8, {"block": 32, "n": 128})
        assert cache_key(a, ctx) == cache_key(b, ctx)

    def test_key_is_hex_sha256(self):
        key = cache_key(BASE_CELL, ExecContext())
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestKeySensitivity:
    """Changing any simulation-relevant input must change the key."""

    def _base(self):
        return cache_key(BASE_CELL, ExecContext())

    def test_workload_params(self):
        cell = SweepCell("axpy", "omp_for", 4, {"n": 120_001})
        assert cache_key(cell, ExecContext()) != self._base()

    def test_version(self):
        cell = SweepCell("axpy", "omp_task", 4, {"n": 120_000})
        assert cache_key(cell, ExecContext()) != self._base()

    def test_threads(self):
        cell = SweepCell("axpy", "omp_for", 8, {"n": 120_000})
        assert cache_key(cell, ExecContext()) != self._base()

    def test_machine(self):
        ctx = ExecContext(machine=Machine(ghz=2.4))
        assert cache_key(BASE_CELL, ctx) != self._base()

    def test_cost_model(self):
        ctx = ExecContext().with_costs(cilk_spawn=21e-9)
        assert cache_key(BASE_CELL, ctx) != self._base()

    def test_seed(self):
        ctx = ExecContext(seed=0xBEEF)
        assert cache_key(BASE_CELL, ctx) != self._base()

    def test_thread_cap(self):
        ctx = ExecContext(thread_cap=1024)
        assert cache_key(BASE_CELL, ctx) != self._base()

    def test_trace_flag(self):
        ctx = ExecContext()
        assert cache_key(BASE_CELL, ctx, trace=True) != cache_key(BASE_CELL, ctx)


class TestNoCollisions:
    def test_full_registry_unique(self):
        """Every (workload, version, threads, trace) cell in the
        registry addresses a distinct entry."""
        ctx = ExecContext()
        keys = set()
        count = 0
        for name, spec in WORKLOADS.items():
            params = dict(spec.validation_params or spec.default_params)
            for version in spec.versions:
                for p in (1, 2, 4):
                    for trace in (False, True):
                        keys.add(
                            cache_key(SweepCell(name, version, p, params), ctx, trace=trace)
                        )
                        count += 1
        assert len(keys) == count

    def test_seeded_random_sweep_unique_and_stable(self):
        """Hypothesis-style seeded sweep: random cells never collide,
        and recomputing any cell's key reproduces it exactly."""
        rng = random.Random(0xC0FFEE)
        ctx = ExecContext()
        names = sorted(WORKLOADS)
        seen: dict[str, tuple] = {}
        for _ in range(300):
            name = rng.choice(names)
            spec = WORKLOADS[name]
            version = rng.choice(spec.versions)
            p = rng.randint(1, 72)
            params = {
                k: (v + rng.randint(0, 3) if isinstance(v, int) else v)
                for k, v in dict(spec.validation_params or spec.default_params).items()
            }
            cell = SweepCell(name, version, p, params)
            key = cache_key(cell, ctx)
            ident = (name, version, p, tuple(sorted(params.items())))
            if key in seen:
                # same key must mean same cell (rng may repeat cells)
                assert seen[key] == ident
            seen[key] = ident
            assert cache_key(SweepCell(name, version, p, dict(params)), ctx) == key


class TestResultCacheStore:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"format": 1, "result": {"time": 0.25}}
        key = "ab" * 32
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert key in cache
        assert cache.keys() == [key]

    def test_missing_is_none(self, tmp_path):
        assert ResultCache(tmp_path).get("cd" * 32) is None

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"format": 1})
        cache.path_for(key).write_text('{"truncated": ')
        assert cache.get(key) is None

    def test_stale_tmp_files_invisible(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / ".deadbeef.123.456.0.tmp").write_text("garbage")
        assert cache.keys() == []
        assert len(cache) == 0

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("12" * 32, {"format": 1})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_prune_evicts_oldest_beyond_bound(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        for i in range(5):
            key = f"{i:02d}" * 32
            cache.put(key, {"format": 1, "i": i})
            os.utime(cache.path_for(key), ns=(i * 10**9, i * 10**9))
        evicted = cache.prune()
        assert evicted == 3
        assert len(cache) == 2
        # the newest two survive
        assert cache.get("04" * 32) is not None
        assert cache.get("03" * 32) is not None

    def test_prune_unbounded_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("77" * 32, {"format": 1})
        assert cache.prune() == 0
        assert len(cache) == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" * 32, {"format": 1})
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_rejects_bad_bound(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(tmp_path, max_entries=0)

    def test_key_document_is_canonical_json(self):
        """The hashed document itself must be JSON-canonicalizable
        (sorted keys, scalar leaves) — the stability guarantee's root."""
        from repro.sweep.cache import _key_document

        doc = _key_document(BASE_CELL, ExecContext(), trace=False)
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        assert json.loads(blob) == doc


class TestShardedLayout:
    """Entries live at ``root/<key[:2]>/<key>.json``; flat pre-sharding
    stores stay readable and migrate shard-ward under read traffic."""

    def test_put_writes_into_shard(self, tmp_path):
        from repro.sweep.cache import SHARD_WIDTH

        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {"format": 1})
        assert cache.path_for(key) == tmp_path / key[:SHARD_WIDTH] / f"{key}.json"
        assert cache.path_for(key).exists()
        assert not cache.flat_path_for(key).exists()

    def test_flat_entry_is_read_and_adopted(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        payload = {"format": 1, "legacy": True}
        cache.flat_path_for(key).write_text(json.dumps(payload))
        assert cache.get(key) == payload
        # the read migrated the entry into its shard
        assert cache.path_for(key).exists()
        assert not cache.flat_path_for(key).exists()
        assert cache.get(key) == payload

    def test_contains_sees_flat_without_migrating(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.flat_path_for(key).write_text(json.dumps({"format": 1}))
        assert key in cache
        # a containment probe is a question, not a use: no adoption
        assert cache.flat_path_for(key).exists()
        assert not cache.path_for(key).exists()

    def test_keys_merge_both_layouts_sharded_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("11" * 32, {"format": 1})
        cache.flat_path_for("22" * 32).write_text(json.dumps({"format": 1}))
        # same key in both layouts (a racing adopter): counted once
        cache.put("33" * 32, {"format": 1, "which": "sharded"})
        cache.flat_path_for("33" * 32).write_text(
            json.dumps({"format": 1, "which": "flat"})
        )
        assert cache.keys() == sorted(["11" * 32, "22" * 32, "33" * 32])
        assert len(cache) == 3
        assert cache.get("33" * 32)["which"] == "sharded"

    def test_prune_spans_both_layouts(self, tmp_path):
        """The LRU bound is store-wide: flat and sharded entries compete
        in one recency order, not per-directory."""
        cache = ResultCache(tmp_path)
        old, new = "44" * 32, "55" * 32
        cache.flat_path_for(old).write_text(json.dumps({"format": 1}))
        os.utime(cache.flat_path_for(old), ns=(10**9, 10**9))
        cache.put(new, {"format": 1})
        assert cache.prune(max_entries=1) == 1
        assert old not in cache
        assert new in cache


class TestTrueLRU:
    """Eviction order must follow *use*, not insertion: ``get()``
    refreshes the entry's mtime, so a hot entry outlives cold ones."""

    def _plant(self, cache, n):
        """n entries with ancient, strictly increasing mtimes."""
        keys = [f"{i:02d}" * 32 for i in range(n)]
        for i, key in enumerate(keys):
            cache.put(key, {"format": 1, "i": i})
            os.utime(cache.path_for(key), ns=((i + 1) * 10**9, (i + 1) * 10**9))
        return keys

    def test_get_refreshes_recency_so_hot_entry_survives_prune(self, tmp_path):
        """Regression: before touch-on-hit, prune's least-recently-
        *modified* order was really insertion-order FIFO, so the store's
        most popular entry was evicted first once it was the oldest
        write.  Reading an entry must move it to the fresh end."""
        cache = ResultCache(tmp_path, max_entries=2)
        oldest, middle, newest = self._plant(cache, 3)
        assert cache.get(oldest) is not None  # use the coldest-by-mtime entry
        assert cache.prune() == 1
        # the *untouched* oldest entry is the victim, not the used one
        assert oldest in cache
        assert middle not in cache
        assert newest in cache

    def test_contains_does_not_refresh_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        oldest, middle, newest = self._plant(cache, 3)
        assert oldest in cache  # a question, not a use
        assert cache.prune() == 1
        assert oldest not in cache
        assert middle in cache and newest in cache

    def test_ttl_expires_only_unused_entries(self, tmp_path):
        cache = ResultCache(tmp_path, ttl_seconds=3600)
        stale, fresh = self._plant(cache, 2)
        assert cache.get(fresh) is not None  # touch: now inside the window
        assert cache.prune() == 1
        assert stale not in cache
        assert fresh in cache

    def test_ttl_and_bound_compose(self, tmp_path):
        """TTL expiry happens first; the bound then applies to the
        survivors."""
        cache = ResultCache(tmp_path)
        keys = self._plant(cache, 4)
        for key in keys[2:]:
            assert cache.get(key) is not None  # two fresh, two expired
        assert cache.prune(max_entries=1, ttl_seconds=3600) == 3
        assert len(cache) == 1
        assert keys[3] in cache

    def test_rejects_bad_ttl(self, tmp_path):
        with pytest.raises(ValueError, match="ttl_seconds"):
            ResultCache(tmp_path, ttl_seconds=0)


class TestStaleTmpGc:
    """Crashed writers leak ``.<key>.*.tmp`` staging files; prune() and
    clear() collect the stale ones and spare in-flight ones."""

    def _plant_tmp(self, cache, name, age_seconds):
        import time as _time

        path = cache.root / name
        path.write_text("half-written garbage")
        stamp = _time.time() - age_seconds
        os.utime(path, (stamp, stamp))
        return path

    def test_prune_collects_stale_spares_fresh(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"format": 1})
        stale = self._plant_tmp(cache, ".deadbeef.1.2.0.tmp", age_seconds=7200)
        fresh = self._plant_tmp(cache, ".cafef00d.3.4.0.tmp", age_seconds=1)
        assert cache.prune() == 0  # tmp GC is not entry eviction
        assert not stale.exists()
        assert fresh.exists()
        assert cache.get("ab" * 32) is not None

    def test_gc_reaches_shard_directories(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"format": 1})
        shard_tmp = cache.path_for("ab" * 32).parent / ".abcd.5.6.0.tmp"
        shard_tmp.write_text("garbage")
        os.utime(shard_tmp, (1, 1))
        assert cache.gc_stale_tmp() == 1
        assert not shard_tmp.exists()

    def test_clear_collects_stale_tmp(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"format": 1})
        stale = self._plant_tmp(cache, ".feedface.7.8.0.tmp", age_seconds=7200)
        assert cache.clear() == 1
        assert not stale.exists()
        assert len(cache) == 0

    def test_grace_is_configurable(self, tmp_path):
        cache = ResultCache(tmp_path, tmp_grace_seconds=5.0)
        doomed = self._plant_tmp(cache, ".0ff1ce.9.1.0.tmp", age_seconds=60)
        assert cache.gc_stale_tmp() == 1
        assert not doomed.exists()


class TestContainsAlignment:
    """``key in cache`` must agree with ``get(key) is not None`` — a
    corrupt entry that get() treats as a miss may not report present."""

    def test_truncated_entry_not_contained(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ab" * 32
        cache.put(key, {"format": 1})
        cache.path_for(key).write_text('{"truncated": ')
        assert cache.get(key) is None
        assert key not in cache

    def test_non_object_entry_not_contained(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, {"format": 1})
        cache.path_for(key).write_text("[1, 2, 3]")
        assert cache.get(key) is None
        assert key not in cache

    def test_overwrite_repairs_corrupt_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"format": 1})
        cache.path_for(key).write_text("not json")
        assert key not in cache
        cache.put(key, {"format": 1, "repaired": True})
        assert key in cache
        assert cache.get(key)["repaired"] is True


class TestIndexJournal:
    """The append-only store journal records publications and
    evictions; it is advisory and corrupt lines never break replay."""

    def test_put_and_evict_recorded(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            key = f"{i:02d}" * 32
            cache.put(key, {"format": 1})
            os.utime(cache.path_for(key), ns=(i * 10**9, i * 10**9))
        cache.prune(max_entries=1)
        events = list(cache.index_events())
        puts = [e["key"] for e in events if e["op"] == "put"]
        evicts = [e["key"] for e in events if e["op"] == "evict"]
        assert puts == [f"{i:02d}" * 32 for i in range(3)]
        assert sorted(evicts) == sorted([f"{i:02d}" * 32 for i in range(2)])

    def test_corrupt_journal_lines_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"format": 1})
        with open(cache.index_path, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
        cache.put("cd" * 32, {"format": 1})
        events = list(cache.index_events())
        assert [e["key"] for e in events] == ["ab" * 32, "cd" * 32]

    def test_journal_never_blocks_entry_io(self, tmp_path):
        """An unwritable index is an inconvenience, not a failure."""
        cache = ResultCache(tmp_path)
        cache.index_path.mkdir()  # make the journal path unopenable
        cache.put("ab" * 32, {"format": 1})
        assert cache.get("ab" * 32) is not None
        assert list(cache.index_events()) == []

    def test_clear_resets_journal(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"format": 1})
        cache.clear()
        assert not cache.index_path.exists()


class TestConcurrentPutPrune:
    """Writers and pruners racing on one sharded store: entries may
    vanish mid-prune, the bound holds across shards, and nobody
    crashes or double-counts."""

    def test_prune_tolerates_entries_vanishing_midway(self, tmp_path):
        """A racing pruner (or clear()) can unlink an entry between our
        directory scan and our unlink; the survivor counts only what it
        actually removed."""
        import threading

        cache = ResultCache(tmp_path, max_entries=1)
        keys = [f"{i:02x}" * 32 for i in range(24)]
        for i, key in enumerate(keys):
            cache.put(key, {"format": 1, "i": i})
            os.utime(cache.path_for(key), ns=(i * 10**9, i * 10**9))
        counts, errors = [], []
        barrier = threading.Barrier(4)

        def racer():
            try:
                barrier.wait()
                counts.append(ResultCache(tmp_path, max_entries=1).prune())
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=racer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # every eviction was counted by exactly one pruner
        assert sum(counts) == len(keys) - 1
        assert len(cache) == 1
        assert keys[-1] in cache

    def test_concurrent_puts_and_prunes_leave_consistent_store(self, tmp_path):
        """Interleaved writers and pruners: every surviving entry is
        complete and decodable, no staging files leak, and the bound is
        enforced store-wide (across shard directories) by the final
        prune."""
        import threading

        bound = 8
        keys = [f"{i:02x}" * 32 for i in range(64)]  # 64 distinct shards
        errors = []

        def writer(chunk):
            try:
                cache = ResultCache(tmp_path, max_entries=bound)
                for i, key in enumerate(chunk):
                    cache.put(key, {"format": 1, "key": key})
                    if i % 4 == 3:
                        cache.prune()
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(keys[i::4],)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        cache = ResultCache(tmp_path, max_entries=bound)
        cache.prune()
        survivors = cache.keys()
        assert 0 < len(survivors) <= bound
        for key in survivors:
            payload = cache.get(key)
            assert payload is not None and payload["key"] == key
        assert list(cache._tmp_paths()) == []


class TestFidelityAddressing:
    """Fidelity tiers must never share cache entries: a tier-0 estimate
    served for a tier-2 request would replace a simulation with a model
    of it, silently."""

    def test_each_tier_addresses_a_distinct_entry(self):
        ctx = ExecContext()
        keys = {
            cache_key(
                SweepCell("axpy", "omp_for", 4, {"n": 120_000}, fidelity=f), ctx
            )
            for f in (0, 1, 2)
        }
        assert len(keys) == 3

    def test_tier2_key_is_the_legacy_key(self):
        """A default (tier-2) cell must hash exactly as cells did before
        fidelity existed — pre-tiers cache entries keep their address."""
        from repro.sweep.cache import _key_document

        class LegacyCell:
            workload = "axpy"
            version = "omp_for"
            nthreads = 4
            params = {"n": 120_000}
            # no faults / policy / fidelity attributes at all

        ctx = ExecContext()
        modern = SweepCell("axpy", "omp_for", 4, {"n": 120_000})
        assert modern.fidelity == 2
        assert cache_key(modern, ctx) == cache_key(LegacyCell(), ctx)
        assert "fidelity" not in _key_document(modern, ctx, trace=False)

    def test_near_miss_tier0_warmed_cache_misses_for_tier2(self, tmp_path):
        """Warm the cache with tier-0 estimates, then request the same
        cells at tier 2: every cell must miss and re-simulate."""
        from repro.sweep import run_sweep

        cache = ResultCache(tmp_path)
        warm = run_sweep(
            "axpy", versions=["omp_for"], threads=(1, 4), params={"n": 120_000},
            cache=cache, fidelity=0,
        )
        assert warm.counter("estimates") == 2
        assert len(cache) == 2
        ref = run_sweep(
            "axpy", versions=["omp_for"], threads=(1, 4), params={"n": 120_000},
            cache=cache, fidelity=2,
        )
        assert ref.counter("cache_hits") == 0
        assert ref.counter("simulations") == 2
        # and the tier-0 entries are still there for tier-0 requests
        replay = run_sweep(
            "axpy", versions=["omp_for"], threads=(1, 4), params={"n": 120_000},
            cache=cache, fidelity=0,
        )
        assert replay.counter("cache_hits") == 2
        assert replay.counter("estimates") == 0

    def test_decode_guard_rejects_mismatched_tier_payload(self, tmp_path):
        """Even a payload stored under the wrong key (copied cache dirs,
        hand-edited files) is rejected when its fidelity stamp does not
        match the request."""
        from repro.sweep import run_sweep
        from repro.sweep.executor import _decode_entry

        cache = ResultCache(tmp_path)
        run_sweep(
            "axpy", versions=["omp_for"], threads=(1,), params={"n": 120_000},
            cache=cache, fidelity=0,
        )
        [key] = cache.keys()
        payload = cache.get(key)
        assert payload["fidelity"] == 0
        assert _decode_entry(payload, 0) is not None
        assert _decode_entry(payload, 2) is None
        assert _decode_entry(payload, 1) is None
        # graft the tier-0 payload under the tier-2 address: the guard
        # still refuses to serve it
        cell = SweepCell("axpy", "omp_for", 1, {"n": 120_000})
        cache.put(cache_key(cell, ExecContext()), payload)
        ref = run_sweep(
            "axpy", versions=["omp_for"], threads=(1,), params={"n": 120_000},
            cache=cache, fidelity=2,
        )
        assert ref.counter("cache_hits") == 0
        assert ref.counter("simulations") == 1

    def test_tier0_round_trip_preserves_error_bound(self, tmp_path):
        from repro.sim.tiers import Tier0Result
        from repro.sweep import run_sweep

        cache = ResultCache(tmp_path)
        kwargs = dict(
            versions=["omp_task"], threads=(4,), params={"n": 120_000},
            cache=cache, fidelity=0,
        )
        first = run_sweep("axpy", **kwargs)
        replay = run_sweep("axpy", **kwargs)
        assert replay.counter("cache_hits") == 1
        a = first.results[("omp_task", 4)]
        b = replay.results[("omp_task", 4)]
        assert isinstance(a, Tier0Result) and isinstance(b, Tier0Result)
        assert a.error_bound > 0.0
        assert b.error_bound == a.error_bound
        assert b.time == a.time
