"""Property tests for the content-addressed sweep cache key and store.

The cache key must be a pure function of the simulation's inputs:
stable across process restarts and hash seeds, independent of dict
insertion order, sensitive to every input that changes the output, and
collision-free across the whole workload registry (checked with a
seeded hypothesis-style randomized sweep).
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys

import pytest

from repro.core.registry import WORKLOADS
from repro.runtime.base import ExecContext
from repro.sim.machine import Machine
from repro.sweep import ResultCache, SweepCell, cache_key

BASE_CELL = SweepCell("axpy", "omp_for", 4, {"n": 120_000})

_KEY_SNIPPET = """\
import sys
sys.path.insert(0, {src!r})
from repro.runtime.base import ExecContext
from repro.sweep import SweepCell, cache_key
cell = SweepCell("axpy", "omp_for", 4, {{"n": 120_000}})
print(cache_key(cell, ExecContext()))
"""


class TestKeyStability:
    def test_deterministic_in_process(self):
        ctx = ExecContext()
        assert cache_key(BASE_CELL, ctx) == cache_key(BASE_CELL, ctx)

    def test_stable_across_process_restarts(self):
        """Fresh interpreters with different hash seeds agree with us."""
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        snippet = _KEY_SNIPPET.format(src=os.path.abspath(src))
        keys = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            out = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, env=env, check=True,
            )
            keys.append(out.stdout.strip())
        assert keys[0] == keys[1] == cache_key(BASE_CELL, ExecContext())

    def test_independent_of_param_order(self):
        ctx = ExecContext()
        a = SweepCell("lud", "omp_for", 8, {"n": 128, "block": 32})
        b = SweepCell("lud", "omp_for", 8, {"block": 32, "n": 128})
        assert cache_key(a, ctx) == cache_key(b, ctx)

    def test_key_is_hex_sha256(self):
        key = cache_key(BASE_CELL, ExecContext())
        assert len(key) == 64
        int(key, 16)  # raises if not hex


class TestKeySensitivity:
    """Changing any simulation-relevant input must change the key."""

    def _base(self):
        return cache_key(BASE_CELL, ExecContext())

    def test_workload_params(self):
        cell = SweepCell("axpy", "omp_for", 4, {"n": 120_001})
        assert cache_key(cell, ExecContext()) != self._base()

    def test_version(self):
        cell = SweepCell("axpy", "omp_task", 4, {"n": 120_000})
        assert cache_key(cell, ExecContext()) != self._base()

    def test_threads(self):
        cell = SweepCell("axpy", "omp_for", 8, {"n": 120_000})
        assert cache_key(cell, ExecContext()) != self._base()

    def test_machine(self):
        ctx = ExecContext(machine=Machine(ghz=2.4))
        assert cache_key(BASE_CELL, ctx) != self._base()

    def test_cost_model(self):
        ctx = ExecContext().with_costs(cilk_spawn=21e-9)
        assert cache_key(BASE_CELL, ctx) != self._base()

    def test_seed(self):
        ctx = ExecContext(seed=0xBEEF)
        assert cache_key(BASE_CELL, ctx) != self._base()

    def test_thread_cap(self):
        ctx = ExecContext(thread_cap=1024)
        assert cache_key(BASE_CELL, ctx) != self._base()

    def test_trace_flag(self):
        ctx = ExecContext()
        assert cache_key(BASE_CELL, ctx, trace=True) != cache_key(BASE_CELL, ctx)


class TestNoCollisions:
    def test_full_registry_unique(self):
        """Every (workload, version, threads, trace) cell in the
        registry addresses a distinct entry."""
        ctx = ExecContext()
        keys = set()
        count = 0
        for name, spec in WORKLOADS.items():
            params = dict(spec.validation_params or spec.default_params)
            for version in spec.versions:
                for p in (1, 2, 4):
                    for trace in (False, True):
                        keys.add(
                            cache_key(SweepCell(name, version, p, params), ctx, trace=trace)
                        )
                        count += 1
        assert len(keys) == count

    def test_seeded_random_sweep_unique_and_stable(self):
        """Hypothesis-style seeded sweep: random cells never collide,
        and recomputing any cell's key reproduces it exactly."""
        rng = random.Random(0xC0FFEE)
        ctx = ExecContext()
        names = sorted(WORKLOADS)
        seen: dict[str, tuple] = {}
        for _ in range(300):
            name = rng.choice(names)
            spec = WORKLOADS[name]
            version = rng.choice(spec.versions)
            p = rng.randint(1, 72)
            params = {
                k: (v + rng.randint(0, 3) if isinstance(v, int) else v)
                for k, v in dict(spec.validation_params or spec.default_params).items()
            }
            cell = SweepCell(name, version, p, params)
            key = cache_key(cell, ctx)
            ident = (name, version, p, tuple(sorted(params.items())))
            if key in seen:
                # same key must mean same cell (rng may repeat cells)
                assert seen[key] == ident
            seen[key] = ident
            assert cache_key(SweepCell(name, version, p, dict(params)), ctx) == key


class TestResultCacheStore:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"format": 1, "result": {"time": 0.25}}
        key = "ab" * 32
        cache.put(key, payload)
        assert cache.get(key) == payload
        assert key in cache
        assert cache.keys() == [key]

    def test_missing_is_none(self, tmp_path):
        assert ResultCache(tmp_path).get("cd" * 32) is None

    def test_corrupt_entry_is_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "ef" * 32
        cache.put(key, {"format": 1})
        cache.path_for(key).write_text('{"truncated": ')
        assert cache.get(key) is None

    def test_stale_tmp_files_invisible(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / ".deadbeef.123.456.0.tmp").write_text("garbage")
        assert cache.keys() == []
        assert len(cache) == 0

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("12" * 32, {"format": 1})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    def test_prune_evicts_oldest_beyond_bound(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        for i in range(5):
            key = f"{i:02d}" * 32
            cache.put(key, {"format": 1, "i": i})
            os.utime(cache.path_for(key), ns=(i * 10**9, i * 10**9))
        evicted = cache.prune()
        assert evicted == 3
        assert len(cache) == 2
        # the newest two survive
        assert cache.get("04" * 32) is not None
        assert cache.get("03" * 32) is not None

    def test_prune_unbounded_is_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("77" * 32, {"format": 1})
        assert cache.prune() == 0
        assert len(cache) == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" * 32, {"format": 1})
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_rejects_bad_bound(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(tmp_path, max_entries=0)

    def test_key_document_is_canonical_json(self):
        """The hashed document itself must be JSON-canonicalizable
        (sorted keys, scalar leaves) — the stability guarantee's root."""
        from repro.sweep.cache import _key_document

        doc = _key_document(BASE_CELL, ExecContext(), trace=False)
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        assert json.loads(blob) == doc


class TestFidelityAddressing:
    """Fidelity tiers must never share cache entries: a tier-0 estimate
    served for a tier-2 request would replace a simulation with a model
    of it, silently."""

    def test_each_tier_addresses_a_distinct_entry(self):
        ctx = ExecContext()
        keys = {
            cache_key(
                SweepCell("axpy", "omp_for", 4, {"n": 120_000}, fidelity=f), ctx
            )
            for f in (0, 1, 2)
        }
        assert len(keys) == 3

    def test_tier2_key_is_the_legacy_key(self):
        """A default (tier-2) cell must hash exactly as cells did before
        fidelity existed — pre-tiers cache entries keep their address."""
        from repro.sweep.cache import _key_document

        class LegacyCell:
            workload = "axpy"
            version = "omp_for"
            nthreads = 4
            params = {"n": 120_000}
            # no faults / policy / fidelity attributes at all

        ctx = ExecContext()
        modern = SweepCell("axpy", "omp_for", 4, {"n": 120_000})
        assert modern.fidelity == 2
        assert cache_key(modern, ctx) == cache_key(LegacyCell(), ctx)
        assert "fidelity" not in _key_document(modern, ctx, trace=False)

    def test_near_miss_tier0_warmed_cache_misses_for_tier2(self, tmp_path):
        """Warm the cache with tier-0 estimates, then request the same
        cells at tier 2: every cell must miss and re-simulate."""
        from repro.sweep import run_sweep

        cache = ResultCache(tmp_path)
        warm = run_sweep(
            "axpy", versions=["omp_for"], threads=(1, 4), params={"n": 120_000},
            cache=cache, fidelity=0,
        )
        assert warm.counter("estimates") == 2
        assert len(cache) == 2
        ref = run_sweep(
            "axpy", versions=["omp_for"], threads=(1, 4), params={"n": 120_000},
            cache=cache, fidelity=2,
        )
        assert ref.counter("cache_hits") == 0
        assert ref.counter("simulations") == 2
        # and the tier-0 entries are still there for tier-0 requests
        replay = run_sweep(
            "axpy", versions=["omp_for"], threads=(1, 4), params={"n": 120_000},
            cache=cache, fidelity=0,
        )
        assert replay.counter("cache_hits") == 2
        assert replay.counter("estimates") == 0

    def test_decode_guard_rejects_mismatched_tier_payload(self, tmp_path):
        """Even a payload stored under the wrong key (copied cache dirs,
        hand-edited files) is rejected when its fidelity stamp does not
        match the request."""
        from repro.sweep import run_sweep
        from repro.sweep.executor import _decode_entry

        cache = ResultCache(tmp_path)
        run_sweep(
            "axpy", versions=["omp_for"], threads=(1,), params={"n": 120_000},
            cache=cache, fidelity=0,
        )
        [key] = cache.keys()
        payload = cache.get(key)
        assert payload["fidelity"] == 0
        assert _decode_entry(payload, 0) is not None
        assert _decode_entry(payload, 2) is None
        assert _decode_entry(payload, 1) is None
        # graft the tier-0 payload under the tier-2 address: the guard
        # still refuses to serve it
        cell = SweepCell("axpy", "omp_for", 1, {"n": 120_000})
        cache.put(cache_key(cell, ExecContext()), payload)
        ref = run_sweep(
            "axpy", versions=["omp_for"], threads=(1,), params={"n": 120_000},
            cache=cache, fidelity=2,
        )
        assert ref.counter("cache_hits") == 0
        assert ref.counter("simulations") == 1

    def test_tier0_round_trip_preserves_error_bound(self, tmp_path):
        from repro.sim.tiers import Tier0Result
        from repro.sweep import run_sweep

        cache = ResultCache(tmp_path)
        kwargs = dict(
            versions=["omp_task"], threads=(4,), params={"n": 120_000},
            cache=cache, fidelity=0,
        )
        first = run_sweep("axpy", **kwargs)
        replay = run_sweep("axpy", **kwargs)
        assert replay.counter("cache_hits") == 1
        a = first.results[("omp_task", 4)]
        b = replay.results[("omp_task", 4)]
        assert isinstance(a, Tier0Result) and isinstance(b, Tier0Result)
        assert a.error_bound > 0.0
        assert b.error_bound == a.error_bound
        assert b.time == a.time
