"""Tests for the bare-thread (C++11/PThreads) executor."""

import pytest

from repro.runtime.base import ThreadExplosionError
from repro.runtime.threadpool import run_threadpool_graph, run_threadpool_loop
from repro.sim.task import IterSpace, TaskGraph


@pytest.fixture
def space():
    return IterSpace.uniform(10_000, 1e-7, 0.0)


class TestLoop:
    def test_one_chunk_per_thread_default(self, space, ctx):
        res = run_threadpool_loop(space, 4, ctx)
        assert res.meta["nthreads_created"] == 4
        assert res.total_tasks == 4

    def test_creation_is_serial_in_master(self, space, ctx):
        t2 = run_threadpool_loop(space, 2, ctx, mode="thread").time
        t16_small = run_threadpool_loop(
            IterSpace.uniform(16, 1e-9), 16, ctx, mode="thread"
        ).time
        # 16 creations+joins dominate a trivial loop
        assert t16_small >= 16 * ctx.costs.thread_create

    def test_async_cheaper_creation_than_thread(self, space, ctx):
        tiny = IterSpace.uniform(64, 1e-9)
        t_thread = run_threadpool_loop(tiny, 16, ctx, mode="thread").time
        t_async = run_threadpool_loop(tiny, 16, ctx, mode="async").time
        assert t_async < t_thread

    def test_parallel_speedup(self, space, ctx):
        t1 = run_threadpool_loop(space, 1, ctx).time
        t8 = run_threadpool_loop(space, 8, ctx).time
        assert t8 < t1

    def test_oversubscription_degrades(self, ctx):
        space = IterSpace.uniform(100_000, 1e-7)
        t36 = run_threadpool_loop(space, 36, ctx, nchunks=36).time
        t200 = run_threadpool_loop(space, 36, ctx, nchunks=200).time
        # 200 threads on 72 contexts: creation + timeslicing hurt
        assert t200 > t36

    def test_explosion_guard(self, space, ctx):
        with pytest.raises(ThreadExplosionError):
            run_threadpool_loop(
                IterSpace.uniform(100_000, 1e-9), 4, ctx, nchunks=ctx.thread_cap + 1
            )

    def test_reduction_combine_charged(self, space, ctx):
        plain = run_threadpool_loop(space, 8, ctx).time
        red = run_threadpool_loop(space, 8, ctx, reduction=True).time
        assert red == pytest.approx(plain + 8 * ctx.costs.atomic_op, rel=1e-6)

    def test_persistent_pool_skips_creation(self, space, ctx):
        per_phase = run_threadpool_loop(space, 8, ctx, mode="thread").time
        persistent = run_threadpool_loop(space, 8, ctx, mode="thread", persistent=True).time
        assert persistent < per_phase
        assert (per_phase - persistent) > 4 * ctx.costs.thread_create

    def test_persistent_pays_manual_barrier(self, space, ctx):
        res = run_threadpool_loop(space, 8, ctx, persistent=True)
        floor = space.total_work / 8
        assert res.time >= floor + ctx.costs.condvar_wake

    def test_work_conservation(self, space, ctx):
        res = run_threadpool_loop(space, 6, ctx)
        assert res.total_busy == pytest.approx(space.total_work, rel=1e-3)

    def test_invalid_mode(self, space, ctx):
        with pytest.raises(ValueError):
            run_threadpool_loop(space, 4, ctx, mode="fibers")

    def test_invalid_threads(self, space, ctx):
        with pytest.raises(ValueError):
            run_threadpool_loop(space, 0, ctx)


class TestGraph:
    def tree(self, depth):
        g = TaskGraph("tree")

        def rec(d, dep):
            tid = g.add(1e-6, deps=dep)
            if d > 0:
                rec(d - 1, (tid,))
                rec(d - 1, (tid,))
            return tid

        rec(depth, ())
        return g

    def test_small_tree_runs(self, ctx):
        res = run_threadpool_graph(self.tree(4), 8, ctx)
        assert res.time > 0
        assert res.meta["nthreads_created"] == 31

    def test_explosion_at_cap(self, ctx):
        from dataclasses import replace

        tight = replace(ctx, thread_cap=10)
        with pytest.raises(ThreadExplosionError, match="hangs"):
            run_threadpool_graph(self.tree(4), 8, tight)

    def test_empty_graph(self, ctx):
        assert run_threadpool_graph(TaskGraph(), 4, ctx).time == 0.0

    def test_critical_path_lower_bound(self, ctx):
        g = TaskGraph()
        prev = None
        for _ in range(10):
            prev = g.add(1e-3, deps=[prev] if prev is not None else [])
        res = run_threadpool_graph(g, 8, ctx)
        assert res.time >= 10e-3

    def test_invalid_mode(self, ctx):
        with pytest.raises(ValueError):
            run_threadpool_graph(self.tree(2), 4, ctx, mode="green")
