"""Executor tests: serial ≡ parallel ≡ cached, and shared-cache safety.

Covers the sweep subsystem's behavioural contract beyond the golden
traces: bit-identical results across ``jobs`` settings for every
registered workload, expected failures (``ThreadExplosionError``)
recorded without poisoning the process pool, concurrent executors
sharing one cache directory without corruption, corrupt entries
repaired as misses, ``refresh`` and resume semantics, and the
serial fallback when fork is unavailable.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.registry import WORKLOADS
from repro.obs.metrics import MetricsRegistry
from repro.sweep import ResultCache, run_sweep
from repro.sweep import executor as executor_mod
from repro.sweep.codec import result_to_dict

SMALL_THREADS = (1, 4)


def sweep_fingerprint(sweep, *, trace=False):
    """Full-fidelity comparable form of a sweep (exact floats included)."""
    return {
        "series": sweep.series,
        "errors": dict(sweep.errors),
        "results": {
            f"{v}-p{p}": result_to_dict(res, with_trace=trace)
            for (v, p), res in sorted(sweep.results.items())
        },
    }


# ---------------------------------------------------------------------------
# serial ≡ parallel, over the whole registry
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_parallel_matches_serial_for_every_workload(workload):
    spec = WORKLOADS[workload]
    params = dict(spec.validation_params or spec.default_params)
    serial = run_sweep(workload, threads=SMALL_THREADS, params=params, jobs=1)
    fanned = run_sweep(workload, threads=SMALL_THREADS, params=params, jobs=4)
    assert sweep_fingerprint(serial) == sweep_fingerprint(fanned)


def test_parallel_merges_same_metrics_as_serial():
    serial = run_sweep("fib", versions=["cilk_spawn"], threads=SMALL_THREADS,
                       params={"n": 10}, jobs=1)
    fanned = run_sweep("fib", versions=["cilk_spawn"], threads=SMALL_THREADS,
                       params={"n": 10}, jobs=2)
    for name in ("tasks", "steals", "simulations", "sweep_cells"):
        assert serial.counter(name) == fanned.counter(name), name


# ---------------------------------------------------------------------------
# expected failures don't poison the pool
# ---------------------------------------------------------------------------
def test_thread_explosion_recorded_not_raised_parallel():
    sweep = run_sweep("fib", threads=SMALL_THREADS, params={"n": 22}, jobs=2)
    # cxx_async spawns a thread per task and blows the thread cap...
    for p in SMALL_THREADS:
        assert ("cxx_async", p) in sweep.errors
        assert ("cxx_async", p) not in sweep.results
    # ...while its pool-mates complete normally in the same sweep.
    for p in SMALL_THREADS:
        assert ("omp_task", p) in sweep.results
        assert ("cilk_spawn", p) in sweep.results
    assert sweep.counter("sweep_errors") == len(SMALL_THREADS)
    assert sweep.series["cxx_async"] == [None] * len(SMALL_THREADS)


def test_thread_explosion_errors_identical_serial_vs_parallel():
    kwargs = dict(threads=SMALL_THREADS, params={"n": 22})
    serial = run_sweep("fib", jobs=1, **kwargs)
    fanned = run_sweep("fib", jobs=2, **kwargs)
    assert serial.errors == fanned.errors


def test_thread_explosion_is_cached_and_replayed(tmp_path):
    kwargs = dict(
        versions=["cxx_async"], threads=(1,), params={"n": 22}, cache=tmp_path
    )
    first = run_sweep("fib", **kwargs)
    assert first.counter("simulations") == 1
    assert ("cxx_async", 1) in first.errors
    replay = run_sweep("fib", **kwargs)
    assert replay.counter("simulations") == 0
    assert replay.counter("cache_hits") == 1
    assert replay.errors == first.errors


def test_unexpected_worker_crash_raises_in_parent():
    with pytest.raises(RuntimeError, match="failed in worker"):
        run_sweep("fib", versions=["cilk_spawn"], threads=SMALL_THREADS,
                  params={"n": 10, "bogus_param": 1}, jobs=2)


# ---------------------------------------------------------------------------
# shared cache directory: concurrency and corruption
# ---------------------------------------------------------------------------
def test_concurrent_executors_share_cache_without_corruption(tmp_path):
    """Two executors racing on one cache directory (same cells, so every
    write races on the same keys) leave only complete, decodable entries
    and agree on the results."""
    kwargs = dict(
        versions=["cilk_spawn", "omp_task"],
        threads=SMALL_THREADS,
        params={"n": 10},
        cache=tmp_path,
        jobs=2,
    )
    sweeps = [None, None]
    errors = []

    def work(slot):
        try:
            sweeps[slot] = run_sweep("fib", **kwargs)
        except BaseException as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=work, args=(slot,)) for slot in (0, 1)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert sweep_fingerprint(sweeps[0]) == sweep_fingerprint(sweeps[1])

    cache = ResultCache(tmp_path)
    keys = cache.keys()
    assert len(keys) == 4  # 2 versions x 2 thread counts, no duplicates
    for key in keys:
        payload = cache.get(key)
        assert payload is not None and payload["format"] == 1
    # no staging files leaked by either racer
    assert [p.name for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []

    # a third run is served entirely from the shared cache
    replay = run_sweep("fib", **kwargs)
    assert replay.counter("simulations") == 0
    assert replay.counter("cache_hits") == 4
    assert sweep_fingerprint(replay) == sweep_fingerprint(sweeps[0])


def test_corrupt_entry_is_resimulated_and_repaired(tmp_path):
    kwargs = dict(versions=["cilk_spawn"], threads=(1,), params={"n": 8},
                  cache=tmp_path)
    first = run_sweep("fib", **kwargs)
    cache = ResultCache(tmp_path)
    (key,) = cache.keys()
    cache.path_for(key).write_text('{"format": 1, "result": ')  # truncated
    second = run_sweep("fib", **kwargs)
    assert second.counter("simulations") == 1
    assert second.counter("cache_misses") == 1
    assert sweep_fingerprint(second) == sweep_fingerprint(first)
    # the entry was repaired in place
    assert cache.get(key) is not None


def test_unknown_payload_format_is_a_miss(tmp_path):
    kwargs = dict(versions=["cilk_spawn"], threads=(1,), params={"n": 8},
                  cache=tmp_path)
    run_sweep("fib", **kwargs)
    cache = ResultCache(tmp_path)
    (key,) = cache.keys()
    entry = cache.get(key)
    entry["format"] = 999
    cache.path_for(key).write_text(json.dumps(entry))
    again = run_sweep("fib", **kwargs)
    assert again.counter("simulations") == 1
    assert cache.get(key)["format"] == 1


# ---------------------------------------------------------------------------
# refresh / resume / eviction
# ---------------------------------------------------------------------------
def test_refresh_resimulates_everything(tmp_path):
    kwargs = dict(versions=["cilk_spawn"], threads=SMALL_THREADS,
                  params={"n": 8}, cache=tmp_path)
    first = run_sweep("fib", **kwargs)
    assert first.counter("simulations") == 2
    refreshed = run_sweep("fib", refresh=True, **kwargs)
    assert refreshed.counter("simulations") == 2
    assert refreshed.counter("cache_hits") == 0
    assert sweep_fingerprint(refreshed) == sweep_fingerprint(first)


def test_resume_simulates_only_missing_cells(tmp_path):
    kwargs = dict(versions=["cilk_spawn", "omp_task"], threads=SMALL_THREADS,
                  params={"n": 8}, cache=tmp_path)
    first = run_sweep("fib", **kwargs)
    assert first.counter("simulations") == 4
    cache = ResultCache(tmp_path)
    victim = cache.keys()[0]
    cache.path_for(victim).unlink()  # an "interrupted" sweep left a hole
    resumed = run_sweep("fib", **kwargs)
    assert resumed.counter("simulations") == 1
    assert resumed.counter("cache_hits") == 3
    assert sweep_fingerprint(resumed) == sweep_fingerprint(first)


def test_bounded_cache_evicts_and_counts(tmp_path):
    store = ResultCache(tmp_path, max_entries=2)
    sweep = run_sweep("fib", versions=["cilk_spawn", "omp_task"],
                      threads=SMALL_THREADS, params={"n": 8}, cache=store)
    assert sweep.counter("cache_stores") == 4
    assert sweep.counter("cache_evictions") == 2
    assert len(store) == 2


# ---------------------------------------------------------------------------
# executor plumbing
# ---------------------------------------------------------------------------
def test_serial_fallback_when_fork_unavailable(monkeypatch):
    """jobs>1 on a fork-less platform degrades to the serial path, which
    resolves run_program through the executor module (the patch point)."""
    monkeypatch.setattr(executor_mod, "_pool_context", lambda: None)
    calls = []
    real_run_program = executor_mod.run_program

    def spying(*args, **kwargs):
        calls.append(args)
        return real_run_program(*args, **kwargs)

    monkeypatch.setattr(executor_mod, "run_program", spying)
    sweep = run_sweep("fib", versions=["cilk_spawn"], threads=SMALL_THREADS,
                      params={"n": 8}, jobs=4)
    assert len(calls) == 2  # every cell went through the serial path
    assert set(sweep.results) == {("cilk_spawn", 1), ("cilk_spawn", 4)}


def test_rejects_unknown_version():
    with pytest.raises(ValueError, match="no version"):
        run_sweep("fib", versions=["cxx_thread"], threads=(1,), params={"n": 8})


def test_progress_callback_sees_every_cell(tmp_path):
    seen = []
    kwargs = dict(versions=["cilk_spawn"], threads=SMALL_THREADS,
                  params={"n": 8}, cache=tmp_path,
                  progress=lambda done, total, cell, status:
                      seen.append((done, total, cell.key, status)))
    run_sweep("fib", **kwargs)
    assert [s[3] for s in seen] == ["run", "run"]
    assert [s[:2] for s in seen] == [(1, 2), (2, 2)]
    seen.clear()
    run_sweep("fib", **kwargs)
    assert [s[3] for s in seen] == ["hit", "hit"]


def test_explicit_metrics_registry_is_used_and_attached():
    reg = MetricsRegistry()
    sweep = run_sweep("fib", versions=["cilk_spawn"], threads=(1,),
                      params={"n": 8}, metrics=reg)
    assert sweep.metrics is reg
    assert reg.counter("sweep_cells").value == 1
    assert reg.counter("simulations").value == 1
