"""Tests for the programming-model front-ends (openmp / cilk / cxx11)."""

import pytest

from repro.models import TASK_ONLY_VERSIONS, VERSIONS, cilk, cxx11, openmp
from repro.sim.task import IterSpace, LoopRegion, TaskGraph, TaskRegion


@pytest.fixture
def space():
    return IterSpace.uniform(1000, 1e-7, 8.0)


class TestVersionsConstant:
    def test_six_versions(self):
        assert len(VERSIONS) == 6
        assert set(TASK_ONLY_VERSIONS) <= set(VERSIONS)

    def test_two_per_model(self):
        prefixes = [v.split("_")[0] for v in VERSIONS]
        assert prefixes.count("omp") == 2
        assert prefixes.count("cilk") == 2
        assert prefixes.count("cxx") == 2


class TestOpenMP:
    def test_parallel_for_defaults_static(self, space):
        r = openmp.parallel_for(space)
        assert isinstance(r, LoopRegion)
        assert r.executor == "worksharing"
        assert r.params["schedule"] == "static"
        assert r.params["fork"] and r.params["barrier"]

    def test_parallel_for_schedule_clause(self, space):
        r = openmp.parallel_for(space, schedule="dynamic", chunk=64)
        assert r.params["schedule"] == "dynamic"
        assert r.params["chunk"] == 64

    def test_task_loop_uses_locked_deques(self, space):
        r = openmp.task_loop(space)
        assert r.executor == "stealing_loop"
        assert r.params["deque"] == "locked"
        assert r.params["style"] == "flat"
        assert r.params["undeferred_single"] is True
        assert r.params["exit"] == "taskwait+barrier"

    def test_task_loop_reduction_atomic(self, space):
        r = openmp.task_loop(space, reduction=True)
        assert r.params["per_task_overhead"] > 0

    def test_task_graph(self):
        g = TaskGraph()
        g.add(1.0)
        r = openmp.task_graph(g)
        assert isinstance(r, TaskRegion)
        assert r.params["deque"] == "locked"
        assert r.params["entry"] == "omp_parallel"

    def test_simd_hint_divides_compute_only(self, space):
        s = openmp.simd_hint(space, 4.0)
        assert s.total_work == pytest.approx(space.total_work / 4)
        assert s.total_bytes == pytest.approx(space.total_bytes)

    def test_simd_hint_rejects_subunit_width(self, space):
        with pytest.raises(ValueError):
            openmp.simd_hint(space, 0.5)


class TestCilk:
    def test_cilk_for_uses_the_deques(self, space):
        r = cilk.cilk_for(space)
        assert r.executor == "stealing_loop"
        assert r.params["deque"] == "the"
        assert r.params["style"] == "cilk_for"
        assert r.params["exit"] == "sync"

    def test_cilk_for_grainsize_pragma(self, space):
        r = cilk.cilk_for(space, grainsize=512)
        assert r.params["grainsize"] == 512

    def test_cilk_for_reducer(self, space):
        r = cilk.cilk_for(space, reducer=True)
        assert r.params["reducer"] is True

    def test_spawn_loop_flat_no_penalty_path(self, space):
        r = cilk.spawn_loop(space)
        assert r.params["style"] == "flat"
        assert r.params["deque"] == "the"

    def test_spawn_graph(self):
        g = TaskGraph()
        g.add(1.0)
        r = cilk.spawn_graph(g)
        assert r.params["deque"] == "the"
        assert r.params["entry"] == "cilk"

    def test_array_notation_matches_simd(self, space):
        a = cilk.array_notation_hint(space, 8.0)
        b = openmp.simd_hint(space, 8.0)
        assert a.total_work == pytest.approx(b.total_work)


class TestCxx11:
    def test_base_cutoff(self):
        assert cxx11.base_cutoff(100, 4) == 25
        assert cxx11.base_cutoff(3, 10) == 1

    def test_base_cutoff_invalid(self):
        with pytest.raises(ValueError):
            cxx11.base_cutoff(100, 0)

    def test_thread_for(self, space):
        r = cxx11.thread_for(space)
        assert r.executor == "threadpool"
        assert r.params["mode"] == "thread"
        assert r.params["persistent"] is False

    def test_async_for(self, space):
        r = cxx11.async_for(space, persistent=True)
        assert r.params["mode"] == "async"
        assert r.params["persistent"] is True

    def test_graphs(self):
        g = TaskGraph()
        g.add(1.0)
        assert cxx11.thread_graph(g).params["mode"] == "thread"
        assert cxx11.async_graph(g).params["mode"] == "async"
