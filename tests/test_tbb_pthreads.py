"""Tests for the TBB and PThreads extension front-ends."""

import pytest

from repro.models import pthreads, tbb
from repro.runtime.run import execute_region, run_program
from repro.sim.task import IterSpace, TaskGraph


@pytest.fixture
def space():
    return IterSpace.uniform(100_000, 1e-8, 8.0)


class TestTBBParallelFor:
    def test_partitioners_accepted(self, space, ctx):
        for part in ("auto", "simple", "affinity"):
            res = execute_region(tbb.parallel_for(space, partitioner=part), 8, ctx)
            assert res.time > 0

    def test_unknown_partitioner(self, space):
        with pytest.raises(ValueError, match="partitioner"):
            tbb.parallel_for(space, partitioner="range")

    def test_simple_partitioner_is_fine_grained(self, space, ctx):
        simple = execute_region(tbb.parallel_for(space, partitioner="simple"), 8, ctx)
        auto = execute_region(tbb.parallel_for(space, partitioner="auto"), 8, ctx)
        assert simple.time > auto.time
        assert simple.total_tasks > auto.total_tasks

    def test_affinity_partitioner_avoids_placement_penalty(self, ctx):
        # bandwidth-bound loop where scatter hurts
        mem_space = IterSpace.uniform(1_000_000, 0.1e-9, 24.0)
        auto = execute_region(tbb.parallel_for(mem_space, partitioner="auto"), 8, ctx)
        aff = execute_region(tbb.parallel_for(mem_space, partitioner="affinity"), 8, ctx)
        assert aff.time < auto.time

    def test_work_conserved(self, space, ctx):
        res = execute_region(tbb.parallel_for(space), 4, ctx)
        assert res.total_busy >= space.total_work * 0.99


class TestTBBReduceAndTasks:
    def test_reduce_close_to_for(self, space, ctx):
        """parallel_reduce costs a join per split, NOT a per-access
        hyperobject like a Cilk reducer."""
        plain = execute_region(tbb.parallel_for(space), 8, ctx)
        reduce_ = execute_region(tbb.parallel_reduce(space), 8, ctx)
        assert reduce_.time < plain.time * 1.2

    def test_task_spawn_graph(self, ctx):
        g = TaskGraph()
        for _ in range(64):
            g.add(1e-6)
        res = execute_region(tbb.task_spawn_graph(g), 8, ctx)
        assert res.total_tasks == 64


class TestTBBPipeline:
    def test_pipeline_graph_structure(self):
        g = tbb.pipeline_graph([1e-6, 2e-6], [True, False], 5)
        assert len(g) == 10
        g.validate()
        # serial first stage: token i depends on token i-1
        assert g.tasks[1].deps == (0,)
        # parallel second stage: token i depends only on stage-1 token i
        stage2 = [t for t in g.tasks if t.tag == "stage1"]
        assert all(len(t.deps) == 1 for t in stage2)

    def test_serial_stage_bounds_throughput(self, ctx):
        ntokens = 100
        serial_work = 2e-6
        region = tbb.pipeline([serial_work, 1e-6], [True, False], ntokens)
        res = execute_region(region, 8, ctx)
        assert res.time >= ntokens * serial_work

    def test_parallel_pipeline_scales(self, ctx):
        region1 = tbb.pipeline([5e-6, 5e-6], [False, False], 64)
        region8 = tbb.pipeline([5e-6, 5e-6], [False, False], 64)
        t1 = execute_region(region1, 1, ctx).time
        t8 = execute_region(region8, 8, ctx).time
        assert t8 < t1 / 3

    def test_pipeline_validation(self):
        with pytest.raises(ValueError):
            tbb.pipeline_graph([1e-6], [True, False], 4)
        with pytest.raises(ValueError):
            tbb.pipeline_graph([], [], 4)
        with pytest.raises(ValueError):
            tbb.pipeline_graph([1e-6], [True], 0)
        with pytest.raises(ValueError):
            tbb.pipeline_graph([-1e-6], [True], 2)


class TestPThreads:
    def test_create_join_matches_cxx_thread(self, space, ctx):
        from repro.models import cxx11

        t_pthread = execute_region(pthreads.create_join_loop(space), 8, ctx).time
        t_cxx = execute_region(cxx11.thread_for(space), 8, ctx).time
        assert t_pthread == pytest.approx(t_cxx)

    def test_spmd_program_single_setup(self, space, ctx):
        prog = pthreads.spmd_program("app", [space] * 6)
        assert prog.meta["pool_setup"] is True
        res = run_program(prog, 8, ctx)
        assert len(res.regions) == 6

    def test_spmd_beats_create_per_phase(self, space, ctx):
        from repro.sim.task import Program

        spmd = pthreads.spmd_program("spmd", [space] * 10)
        naive = Program("naive")
        for _ in range(10):
            naive.add(pthreads.create_join_loop(space))
        assert run_program(spmd, 16, ctx).time < run_program(naive, 16, ctx).time

    def test_reduction_last_phase(self, space, ctx):
        prog = pthreads.spmd_program("app", [space] * 2, reduction_last=True)
        assert prog.regions[-1].params["reduction"] is True
        assert prog.regions[0].params["reduction"] is False
