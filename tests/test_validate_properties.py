"""Tests for the random-program property harness (repro.validate.properties)."""

import random


from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.sim.task import LoopRegion, SerialRegion
from repro.validate.invariants import check_result
from repro.validate.properties import (
    SMALL_MACHINE,
    random_graph,
    random_program,
    random_space,
    run_property_suite,
)


class TestGenerators:
    def test_random_space_is_well_formed(self):
        rng = random.Random(7)
        for _ in range(50):
            space = random_space(rng)
            assert space.niter > 0
            assert space.total_work > 0
            assert space.total_bytes >= 0
            assert 0.0 <= space.locality <= 1.0

    def test_random_graph_is_valid_dag(self):
        rng = random.Random(11)
        for _ in range(50):
            g = random_graph(rng)
            g.validate()  # raises on structural problems
            assert g.critical_path() <= g.total_work() + 1e-18

    def test_random_program_mixes_region_types(self):
        rng = random.Random(3)
        kinds = set()
        for i in range(40):
            for region in random_program(rng, i):
                kinds.add(type(region).__name__)
        assert kinds == {"SerialRegion", "LoopRegion", "TaskRegion"}

    def test_generation_is_seed_deterministic(self):
        def fingerprint(seed):
            rng = random.Random(seed)
            out = []
            for i in range(10):
                for r in random_program(rng, i):
                    if isinstance(r, SerialRegion):
                        out.append(("s", r.work))
                    elif isinstance(r, LoopRegion):
                        out.append((r.executor, r.space.niter, r.space.total_work))
                    else:
                        out.append((r.executor, len(r.graph_for(1))))
            return out

        assert fingerprint(42) == fingerprint(42)
        assert fingerprint(42) != fingerprint(43)


class TestPropertySuite:
    def test_small_suite_is_clean(self):
        rep = run_property_suite(seed=5, programs=5)
        assert rep.ok, rep.describe()
        assert rep.checks > 200

    def test_suite_runs_on_paper_machine_too(self):
        ctx = ExecContext()
        rep = run_property_suite(seed=2, programs=3, threads=(1, 4), ctx=ctx)
        assert rep.ok, rep.describe()

    def test_random_programs_pass_run_program_validate(self):
        # the integration the benchmark conftest relies on
        ctx = ExecContext(machine=SMALL_MACHINE)
        rng = random.Random(8)
        for i in range(5):
            prog = random_program(rng, i)
            res = run_program(prog, 5, ctx, validate=True)
            assert check_result(res, ctx=ctx).ok

    def test_oversubscribed_thread_count_is_audited(self):
        # 9 threads on an 8-core/16-context machine exercises SMT sharing
        rep = run_property_suite(seed=13, programs=3, threads=(9,))
        assert rep.ok, rep.describe()
