"""Task Bench task-graph workload battery.

Three layers pin :mod:`repro.workloads.taskgraph`:

1. **graph shape** — node/edge counts, topological validity and grain
   accounting (``T_1``, ``T_inf``) for every dependency pattern as pure
   functions of the parameters;
2. **tier identity** — the tier-1 vectorized fast paths must reproduce
   the tier-2 scalar reference bit-for-bit (results *and* traces) for
   every task-capable runtime;
3. **goldens** — committed serial traces for two small graphs which a
   ``jobs=2`` parallel sweep (process + codec boundary) must reproduce
   exactly.  Regenerate intentionally-changed goldens with
   ``pytest tests/test_taskgraph.py --update-goldens``.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.registry import WORKLOADS, get_workload
from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.sweep import run_sweep
from repro.sweep.codec import result_to_dict, tracer_to_dict
from repro.workloads.taskgraph import (
    PATTERNS,
    TASKBENCH_VERSIONS,
    GrainPoint,
    build_taskgraph_program,
    met_sweep,
    minimum_effective_grain,
    program,
    taskbench_graph,
    tree_levels,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


# ---------------------------------------------------------------------------
# graph shape: node/edge counts, acyclicity, grain accounting
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("pattern", ["stencil", "fft", "random"])
@pytest.mark.parametrize("width,steps", [(4, 3), (8, 5), (7, 4)])
def test_grid_patterns_have_width_by_steps_tasks(pattern, width, steps):
    g = taskbench_graph(pattern, width, steps, 1e-6)
    assert len(g) == width * steps
    g.validate()


@pytest.mark.parametrize(
    "width,steps,expected",
    [
        (8, 6, [1, 2, 4, 4, 2, 1]),
        (8, 7, [1, 2, 4, 8, 4, 2, 1]),
        (5, 4, [1, 2, 2, 1]),
        (1, 3, [1, 1, 1]),
    ],
)
def test_tree_levels(width, steps, expected):
    assert tree_levels(width, steps) == expected


@pytest.mark.parametrize("width,steps", [(4, 4), (8, 7), (5, 6)])
def test_tree_node_count_matches_levels(width, steps):
    g = taskbench_graph("tree", width, steps, 1e-6)
    assert len(g) == sum(tree_levels(width, steps))
    g.validate()
    # exactly one root (the fork apex) and every non-root task reachable
    assert g.roots == [0]


@pytest.mark.parametrize("width,steps", [(4, 3), (8, 5)])
def test_stencil_edge_count(width, steps):
    # fan=3 => radius 1: interior tasks have 3 parents, the two edge
    # tasks 2, so each of the steps-1 level transitions carries 3w - 2
    # edges.
    g = taskbench_graph("stencil", width, steps, 1e-6, fan=3)
    edges = sum(len(t.deps) for t in g.tasks)
    assert edges == (steps - 1) * (3 * width - 2)


@pytest.mark.parametrize("width,steps", [(4, 3), (8, 5), (16, 4)])
def test_fft_edge_count_power_of_two(width, steps):
    # power-of-two width: every XOR partner exists, so each task past
    # step 0 has exactly two parents (itself + butterfly partner).
    g = taskbench_graph("fft", width, steps, 1e-6)
    edges = sum(len(t.deps) for t in g.tasks)
    assert edges == 2 * width * (steps - 1)


def test_random_pattern_is_a_pure_function_of_seed():
    a = taskbench_graph("random", 16, 6, 1e-6, fan=4, seed=7)
    b = taskbench_graph("random", 16, 6, 1e-6, fan=4, seed=7)
    c = taskbench_graph("random", 16, 6, 1e-6, fan=4, seed=8)
    deps = lambda g: [t.deps for t in g.tasks]  # noqa: E731
    assert deps(a) == deps(b)
    assert deps(a) != deps(c)
    # the chain dependency (s-1, i) is always present
    for s in range(1, 6):
        for i in range(16):
            assert (s - 1) * 16 + i in a.tasks[s * 16 + i].deps


@pytest.mark.parametrize("pattern", PATTERNS)
def test_grain_accounting(pattern):
    width, steps, grain = 6, 5, 2.5e-6
    g = taskbench_graph(pattern, width, steps, grain)
    assert g.total_work() == pytest.approx(len(g) * grain)
    # every pattern is level-structured: the critical path is one task
    # per step
    assert g.critical_path() == pytest.approx(steps * grain)


def test_bad_parameters_raise():
    with pytest.raises(ValueError):
        taskbench_graph("ring", 4, 3, 1e-6)
    with pytest.raises(ValueError):
        taskbench_graph("stencil", 0, 3, 1e-6)
    with pytest.raises(ValueError):
        taskbench_graph("stencil", 4, 0, 1e-6)
    with pytest.raises(ValueError):
        taskbench_graph("stencil", 4, 3, -1e-6)
    with pytest.raises(ValueError):
        taskbench_graph("stencil", 4, 3, 1e-6, fan=0)
    with pytest.raises(ValueError):
        tree_levels(0, 3)


# ---------------------------------------------------------------------------
# program construction and registry wiring
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("version", TASKBENCH_VERSIONS)
def test_program_builds_for_every_task_runtime(version, ctx):
    prog = program(version, machine=ctx.machine, width=4, steps=3, grain=1e-6)
    res = run_program(prog, 4, ctx, version, validate=True)
    assert res.time > 0


@pytest.mark.parametrize("version", ["omp_for", "cilk_for", "nope"])
def test_loop_versions_are_rejected(version, ctx):
    with pytest.raises(ValueError):
        program(version, machine=ctx.machine, width=4, steps=3, grain=1e-6)


def test_registry_builder_dispatch(ctx):
    assert "taskbench" in WORKLOADS
    spec = get_workload("taskbench")
    assert spec.kind == "taskgraph"
    assert spec.versions == TASKBENCH_VERSIONS
    prog = spec.build("omp_task", ctx.machine, **spec.validation_params)
    assert prog.meta["kernel"] == "taskbench"
    with pytest.raises(KeyError):
        build_taskgraph_program("lattice", "omp_task", ctx.machine)


# ---------------------------------------------------------------------------
# tier identity: tier-1 fast paths == tier-2 scalar reference, bitwise
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("version", TASKBENCH_VERSIONS)
@pytest.mark.parametrize("pattern", PATTERNS)
def test_tier1_bit_identical_to_tier2(version, pattern):
    params = dict(pattern=pattern, width=4, steps=3, grain=1e-6)
    docs = []
    for fidelity in (1, 2):
        ctx = ExecContext().with_fidelity(fidelity)
        prog = program(version, machine=ctx.machine, **params)
        res = run_program(prog, 4, ctx, version, trace=True)
        docs.append(result_to_dict(res, with_trace=True))
    assert docs[0] == docs[1]


# ---------------------------------------------------------------------------
# MET sweep helpers
# ---------------------------------------------------------------------------
def test_minimum_effective_grain_picks_smallest_passing():
    pts = [
        GrainPoint(1e-6, 4e-5, 1e-5),   # efficiency 0.25
        GrainPoint(2e-6, 3e-5, 1.8e-5),  # efficiency 0.6
        GrainPoint(4e-6, 4e-5, 3.8e-5),  # efficiency 0.95
    ]
    assert minimum_effective_grain(pts) == 2e-6
    assert minimum_effective_grain(pts, threshold=0.9) == 4e-6
    assert minimum_effective_grain(pts, threshold=0.99) is None


def test_met_sweep_shapes_and_monotone_overhead(ctx):
    grains = (1e-6, 1e-4)
    curves = met_sweep(
        ("omp_task", "cilk_spawn"), grains,
        pattern="stencil", width=4, steps=3, nthreads=4, ctx=ctx,
    )
    for version, pts in curves.items():
        assert [p.grain for p in pts] == sorted(grains)
        for p in pts:
            assert p.overhead > 0.0
            assert 0.0 < p.efficiency <= 1.0
        # growing the grain amortizes per-task overhead away
        assert pts[-1].overhead < pts[0].overhead


def test_met_sweep_tier0_estimates(ctx):
    curves = met_sweep(
        ("omp_task",), (1e-5,),
        pattern="stencil", width=4, steps=3, nthreads=4, ctx=ctx, fidelity=0,
    )
    (pt,) = curves["omp_task"]
    assert pt.time > 0 and pt.ideal > 0


# ---------------------------------------------------------------------------
# goldens: serial run == committed trace == jobs=2 parallel sweep
# ---------------------------------------------------------------------------
#: Two small graphs, both thread counts: a stencil grid on OpenMP's
#: locked deques and a fork/join tree on Cilk's THE deques.
GOLDEN_CASES = [
    ("omp_task", {"pattern": "stencil", "width": 4, "steps": 3, "grain": 1e-6}),
    ("cilk_spawn", {"pattern": "tree", "width": 4, "steps": 4, "grain": 1e-6}),
]

GOLDEN_IDS = [f"{params['pattern']}-{version}" for version, params in GOLDEN_CASES]


def golden_path(version: str, pattern: str, nthreads: int) -> pathlib.Path:
    return GOLDEN_DIR / f"taskbench_{pattern}_{version}_p{nthreads}.json"


def serial_payload(version: str, params: dict, nthreads: int) -> dict:
    ctx = ExecContext()
    prog = get_workload("taskbench").build(version, ctx.machine, **params)
    res = run_program(prog, nthreads, ctx, version, trace=True)
    return {
        "workload": "taskbench",
        "version": version,
        "nthreads": nthreads,
        "params": dict(params),
        "time": res.time,
        "trace": tracer_to_dict(res.trace),
    }


@pytest.mark.parametrize("nthreads", [1, 4], ids=["p1", "p4"])
@pytest.mark.parametrize("version,params", GOLDEN_CASES, ids=GOLDEN_IDS)
def test_serial_run_matches_golden(version, params, nthreads, update_goldens):
    payload = serial_payload(version, params, nthreads)
    path = golden_path(version, params["pattern"], nthreads)
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"updated {path.name}")
    if not path.exists():
        pytest.fail(
            f"missing golden {path}; generate with "
            "`pytest tests/test_taskgraph.py --update-goldens`"
        )
    assert payload == json.loads(path.read_text())


@pytest.mark.parametrize("version,params", GOLDEN_CASES, ids=GOLDEN_IDS)
def test_parallel_sweep_matches_golden(version, params, update_goldens):
    if update_goldens:
        pytest.skip("golden update run")
    sweep = run_sweep(
        "taskbench", versions=[version], threads=(1, 4), params=params,
        jobs=2, trace=True,
    )
    for p in (1, 4):
        golden = json.loads(golden_path(version, params["pattern"], p).read_text())
        res = sweep.results[(version, p)]
        assert res.time == golden["time"]
        assert tracer_to_dict(res.trace) == golden["trace"]


def test_goldens_pin_parallel_execution():
    """The p=4 goldens must show real multi-worker interleaving (a
    single-worker trace would pin nothing about the scheduler)."""
    for version, params in GOLDEN_CASES:
        golden = json.loads(golden_path(version, params["pattern"], 4).read_text())
        # codec spans are [worker, start, end, kind, tag, ...] rows
        workers = {s[0] for s in golden["trace"]["spans"]}
        assert len(workers) > 1, (version, params["pattern"])
        assert golden["time"] > 0
