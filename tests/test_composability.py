"""Tests for the composability (nested parallelism) study."""

import pytest

from repro.extensions.composability import (
    OS_QUANTUM,
    composability_study,
    nested_times,
    render_composability,
)
from repro.runtime.base import ExecContext

CTX = ExecContext()


class TestNestedTimes:
    def test_strategies_present(self):
        t = nested_times(CTX, 8)
        assert set(t) == {"omp_nested", "omp_serialized", "cilk"}
        assert all(v > 0 for v in t.values())

    def test_nested_fine_within_hw_contexts(self):
        """p^2 <= hw threads: nesting exploits real extra parallelism."""
        t = nested_times(CTX, 8)  # 64 threads on 72 contexts
        assert t["omp_nested"] < t["omp_serialized"]

    def test_nested_collapses_when_oversubscribed(self):
        """The paper's claim: mandatory static teams oversubscribe."""
        t = nested_times(CTX, 36)  # 1296 threads on 72 contexts
        assert t["omp_nested"] > 5 * t["cilk"]
        assert t["omp_nested"] > 5 * t["omp_serialized"]

    def test_cilk_composes_flat(self):
        """Work grows with p (outer = p) and Cilk absorbs it at the
        serialized-equivalent time — perfect composition."""
        t8 = nested_times(CTX, 8)["cilk"]
        t36 = nested_times(CTX, 36)["cilk"]
        assert t36 == pytest.approx(t8, rel=0.15)

    def test_descheduled_barrier_scale(self):
        """The oversubscribed inner barrier is OS-quantum scale."""
        t = nested_times(CTX, 36)
        assert t["omp_nested"] > OS_QUANTUM

    def test_explicit_outer(self):
        small = nested_times(CTX, 8, outer=2)
        big = nested_times(CTX, 8, outer=16)
        assert big["cilk"] > small["cilk"]

    def test_validation(self):
        with pytest.raises(ValueError):
            nested_times(CTX, 8, outer=0)


class TestStudy:
    def test_sweep_shapes(self):
        threads = (4, 16)
        res = composability_study(CTX, threads=threads)
        assert all(len(v) == 2 for v in res.values())

    def test_render(self):
        threads = (4, 16)
        res = composability_study(CTX, threads=threads)
        text = render_composability(res, threads)
        assert "omp_nested" in text and "p=16" in text
