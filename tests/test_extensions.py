"""Tests for the extension studies: UTS, wavefront, offload."""

import pytest

from repro.extensions import offload_study, uts, wavefront
from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.sim.machine import PAPER_MACHINE

CTX = ExecContext()


class TestUTSTree:
    def test_deterministic(self):
        a = uts.generate_tree(seed=5, max_nodes=5_000)
        b = uts.generate_tree(seed=5, max_nodes=5_000)
        assert a.parents == b.parents

    def test_seed_changes_tree(self):
        a = uts.generate_tree(seed=5, max_nodes=5_000)
        b = uts.generate_tree(seed=6, max_nodes=5_000)
        assert a.parents != b.parents

    def test_capped_at_max_nodes(self):
        tree = uts.generate_tree(max_nodes=2_000)
        assert tree.n_nodes <= 2_000 + 2  # last expansion may overshoot by m

    def test_subtree_sizes_consistent(self):
        tree = uts.generate_tree(max_nodes=3_000)
        sizes = tree.subtree_sizes()
        assert sizes[0] == tree.n_nodes
        top = [i for i, p in enumerate(tree.parents) if p == 0]
        assert sum(int(sizes[i]) for i in top) == tree.n_nodes - 1

    def test_subtrees_are_imbalanced(self):
        tree = uts.generate_tree(max_nodes=30_000)
        sizes = tree.subtree_sizes()
        top = sorted(int(sizes[i]) for i in tree_top(tree))
        assert top[-1] > 5 * max(1, top[len(top) // 2])  # heavy tail

    def test_validation(self):
        with pytest.raises(ValueError):
            uts.generate_tree(b0=0)
        with pytest.raises(ValueError):
            uts.generate_tree(q=1.0)
        with pytest.raises(ValueError):
            uts.generate_tree(max_nodes=0)


def tree_top(tree):
    return [i for i, p in enumerate(tree.parents) if p == 0]


class TestUTSPrograms:
    @pytest.mark.parametrize("version", uts.VERSIONS)
    def test_versions_run(self, version):
        prog = uts.program(version, machine=PAPER_MACHINE, max_nodes=3_000)
        res = run_program(prog, 8, CTX, version)
        assert res.time > 0

    def test_unknown_version(self):
        with pytest.raises(ValueError):
            uts.program("cuda", machine=PAPER_MACHINE)

    def test_stealing_beats_static_partition(self):
        """The headline UTS result: dynamic load balancing wins big."""
        times = {}
        for v in ("omp_task", "cxx_static"):
            prog = uts.program(v, machine=PAPER_MACHINE, max_nodes=20_000)
            times[v] = run_program(prog, 16, CTX, v).time
        assert times["omp_task"] < times["cxx_static"] / 2

    def test_cilk_at_least_as_good_as_omp(self):
        times = {}
        for v in ("omp_task", "cilk_spawn"):
            prog = uts.program(v, machine=PAPER_MACHINE, max_nodes=20_000)
            times[v] = run_program(prog, 8, CTX, v).time
        assert times["cilk_spawn"] <= times["omp_task"]


class TestWavefront:
    def test_graph_structure(self):
        g = wavefront.wavefront_graph(4, 1e-6)
        assert len(g) == 16
        g.validate()
        # corner block depends on nothing; interior on two
        assert g.tasks[0].deps == ()
        assert len(g.tasks[5].deps) == 2

    def test_graph_validation(self):
        with pytest.raises(ValueError):
            wavefront.wavefront_graph(0, 1e-6)
        with pytest.raises(ValueError):
            wavefront.wavefront_graph(4, -1.0)

    def test_critical_path_is_2nb_minus_1(self):
        g = wavefront.wavefront_graph(6, 1e-6)
        assert g.critical_path() == pytest.approx(11e-6)

    @pytest.mark.parametrize("version", wavefront.VERSIONS)
    def test_versions_run(self, version):
        prog = wavefront.program(version, machine=PAPER_MACHINE, nb=12)
        res = run_program(prog, 8, CTX, version)
        assert res.time > 0

    def test_unknown_version(self):
        with pytest.raises(ValueError):
            wavefront.program("mpi", machine=PAPER_MACHINE)

    def test_depend_beats_barriers_at_scale(self):
        """The point of the depend clause: no 2nb-1 barrier sequence."""
        times = {}
        for v in ("omp_depend", "omp_for_diag"):
            prog = wavefront.program(v, machine=PAPER_MACHINE, nb=32)
            times[v] = run_program(prog, 16, CTX, v).time
        assert times["omp_depend"] < times["omp_for_diag"]

    def test_barrier_version_region_count(self):
        prog = wavefront.program("omp_for_diag", machine=PAPER_MACHINE, nb=10)
        assert len(prog) == 19  # 2nb - 1 diagonals


class TestOffloadStudy:
    def test_per_call_transfers_lose_on_bandwidth_bound(self):
        cmp = offload_study.axpy_offload_study(CTX, n=2_000_000, iterations=5)
        assert not cmp.per_call_wins

    def test_residency_amortizes(self):
        few = offload_study.axpy_offload_study(CTX, n=2_000_000, iterations=1)
        many = offload_study.axpy_offload_study(CTX, n=2_000_000, iterations=40)
        assert many.device_resident / many.host_time < few.device_resident / few.host_time
        assert many.resident_wins

    def test_crossover_found(self):
        cross = offload_study.crossover_iterations(CTX, n=2_000_000, max_iterations=64)
        assert cross is not None
        before = offload_study.axpy_offload_study(CTX, n=2_000_000, iterations=cross - 1)
        after = offload_study.axpy_offload_study(CTX, n=2_000_000, iterations=cross)
        assert not before.resident_wins and after.resident_wins

    def test_describe_mentions_winner(self):
        cmp = offload_study.axpy_offload_study(CTX, n=2_000_000, iterations=2)
        assert "wins" in cmp.describe()
