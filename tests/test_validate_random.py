"""Randomized (seeded, dependency-free) property tests for the deque
protocols and the work-stealing scheduler, checked against a reference
model and the trace invariant checker."""

import random
from collections import deque as pydeque

import pytest

from repro.runtime.base import ExecContext
from repro.runtime.workstealing import run_stealing_graph, run_stealing_loop
from repro.sim.costs import CostModel
from repro.sim.deque import make_deque
from repro.validate.invariants import check_lock_log, check_region
from repro.validate.properties import random_graph, random_space

COSTS = CostModel()
CTX = ExecContext()


@pytest.mark.parametrize("kind", ["the", "locked"])
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
class TestDequeAgainstReferenceModel:
    """Drive a deque with a random op sequence and mirror it with a plain
    ``collections.deque``: owner ops at the tail, steals at the head."""

    def test_matches_reference_and_audits_clean(self, kind, seed):
        rng = random.Random(1000 * seed + (kind == "locked"))
        dq = make_deque(kind, owner=0, costs=COSTS, audit=True)
        ref: pydeque[int] = pydeque()
        t = 0.0
        next_tid = 0
        for _ in range(400):
            t += rng.random() * 1e-7
            op = rng.choice(["push", "push", "pop", "steal"])
            if op == "push":
                t2 = dq.push(t, next_tid)
                ref.append(next_tid)
                next_tid += 1
            elif op == "pop":
                tid, t2 = dq.pop(t)
                expect = ref.pop() if ref else None
                assert tid == expect
            else:
                tid, t2 = dq.steal(t)
                expect = ref.popleft() if ref else None
                assert tid == expect
            assert t2 >= t  # operations never finish before they start
            t = t2
            assert list(dq.items) == list(ref)

        assert dq.pushes == next_tid
        assert dq.pops + dq.steals == next_tid - len(ref)
        # audit log invariants: causality + mutual exclusion of holds
        rep = check_lock_log(dq.lock.log, where=f"{kind} seed={seed}")
        assert rep.ok, rep.describe()
        if kind == "locked":
            assert len(dq.lock.log) == dq.pushes + dq.pops + dq.steals
        else:
            assert len(dq.lock.log) == dq.steals  # owner ops are lock-free


class TestRandomizedScheduler:
    """Random DAGs / loops through the stealing scheduler, audited."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graph_runs_are_invariant_clean(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, max_tasks=80)
        deque_kind = rng.choice(["the", "locked"])
        p = rng.choice([1, 2, 3, 5, 8])
        res = run_stealing_graph(
            graph,
            p,
            CTX,
            deque=deque_kind,
            work_first=rng.random() < 0.5,
            record=True,
            audit=True,
        )
        rep = check_region(res, ctx=CTX, where=f"rand-graph seed={seed}")
        assert rep.ok, rep.describe()
        tasks_run = sum(w.tasks for w in res.workers)
        assert tasks_run == len(graph)  # every task exactly once

    @pytest.mark.parametrize("seed", range(4))
    def test_random_loop_runs_are_invariant_clean(self, seed):
        rng = random.Random(100 + seed)
        space = random_space(rng)
        res = run_stealing_loop(
            space,
            rng.choice([1, 2, 4, 7]),
            CTX,
            style=rng.choice(["cilk_for", "flat"]),
            deque=rng.choice(["the", "locked"]),
            record=True,
            audit=True,
        )
        rep = check_region(res, ctx=CTX, where=f"rand-loop seed={seed}")
        assert rep.ok, rep.describe()

    def test_central_queue_is_audited_too(self):
        rng = random.Random(77)
        graph = random_graph(rng, max_tasks=50)
        res = run_stealing_graph(
            graph, 4, CTX, deque="locked", central_queue=True, record=True, audit=True
        )
        rep = check_region(res, ctx=CTX, where="central-queue")
        assert rep.ok, rep.describe()
        # all deque traffic went through worker 0's lock
        logs = dict(res.meta["lock_audit"])
        assert list(logs) == ["locked[0]"]
