"""Tests for the OpenCL front-end."""

import pytest

from repro.models import cuda, opencl, openmp
from repro.runtime.run import execute_region
from repro.sim.task import IterSpace


@pytest.fixture
def space():
    return IterSpace.uniform(500_000, 1e-9, 8.0)


class TestWorkGroups:
    def test_chunks(self):
        assert opencl.work_group_chunks(1024, 64) == 16
        assert opencl.work_group_chunks(1000, 64) == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            opencl.work_group_chunks(0, 64)
        with pytest.raises(ValueError):
            opencl.work_group_chunks(64, 0)


class TestEnqueueKernel:
    def test_gpu_matches_cuda_mechanism(self, space, ctx):
        t_cl = execute_region(
            opencl.enqueue_kernel(space, device="gpu", buffer_write=1e6), 1, ctx
        ).time
        t_cuda = execute_region(cuda.kernel_launch(space, copy_in=1e6), 1, ctx).time
        assert t_cl == pytest.approx(t_cuda)

    def test_cpu_runs_on_host_threads(self, space, ctx):
        t1 = execute_region(opencl.enqueue_kernel(space, device="cpu"), 1, ctx).time
        t8 = execute_region(opencl.enqueue_kernel(space, device="cpu"), 8, ctx).time
        assert t8 < t1

    def test_cpu_pays_more_than_openmp(self, space, ctx):
        """The OpenCL CPU runtime's dynamic work-group dispatch costs
        more than an OpenMP static worksharing loop."""
        t_cl = execute_region(opencl.enqueue_kernel(space, device="cpu"), 8, ctx).time
        t_omp = execute_region(openmp.parallel_for(space), 8, ctx).time
        assert t_cl > t_omp

    def test_local_size_respected(self, space, ctx):
        res = execute_region(
            opencl.enqueue_kernel(space, device="cpu", local_size=space.niter // 8), 8, ctx
        )
        assert res.meta["nchunks"] == 8

    def test_resident_buffers(self, space, ctx):
        moving = execute_region(
            opencl.enqueue_kernel(space, device="gpu", buffer_write=1e8), 1, ctx
        ).time
        resident = execute_region(
            opencl.enqueue_kernel(space, device="gpu", buffer_write=1e8, resident=True),
            1,
            ctx,
        ).time
        assert resident < moving

    def test_unknown_device(self, space):
        with pytest.raises(ValueError):
            opencl.enqueue_kernel(space, device="fpga")


class TestEnqueueTask:
    def test_cpu_task_serial(self, ctx):
        region = opencl.enqueue_task(1e-3)
        res = execute_region(region, 8, ctx)
        assert res.time == pytest.approx(1e-3 + opencl.CPU_ENQUEUE_OVERHEAD)

    def test_gpu_task_is_an_antipattern(self, ctx):
        cpu = execute_region(opencl.enqueue_task(1e-4, device="cpu"), 1, ctx).time
        gpu = execute_region(opencl.enqueue_task(1e-4, device="gpu"), 1, ctx).time
        assert gpu > cpu  # one device lane is far slower than a host core

    def test_validation(self):
        with pytest.raises(ValueError):
            opencl.enqueue_task(-1.0)
        with pytest.raises(ValueError):
            opencl.enqueue_task(1.0, device="dsp")
