"""Tests for the Rodinia workload builders."""

import numpy as np
import pytest

from repro.models import VERSIONS
from repro.rodinia import RODINIA, bfs, build_rodinia_program, hotspot, lavamd, lud, srad
from repro.rodinia.common import skewed_profile
from repro.rodinia.graphs import bfs_levels
from repro.sim.machine import PAPER_MACHINE
from repro.sim.task import LoopRegion, SerialRegion


class TestRegistry:
    def test_all_apps_registered(self):
        assert set(RODINIA) == {"bfs", "hotspot", "lavamd", "lud", "srad"}

    def test_build_unknown_raises(self):
        with pytest.raises(KeyError):
            build_rodinia_program("nw", "omp_for", PAPER_MACHINE)


class TestSkewedProfile:
    def test_mean_preserved(self):
        rng = np.random.default_rng(0)
        s = skewed_profile(10_000, 1e-6, cv=0.8, rng=rng)
        assert s.total_work == pytest.approx(10_000 * 1e-6, rel=1e-9)

    def test_zero_cv_uniform(self):
        rng = np.random.default_rng(0)
        s = skewed_profile(1000, 1e-6, cv=0.0, rng=rng, nblocks=10)
        w1, _ = s.chunk_cost(0, 100)
        w2, _ = s.chunk_cost(900, 1000)
        assert w1 == pytest.approx(w2)

    def test_cv_creates_spread(self):
        rng = np.random.default_rng(0)
        s = skewed_profile(10_000, 1e-6, cv=1.0, rng=rng, nblocks=100)
        block_works = np.diff(s._cum_work)
        assert block_works.std() / block_works.mean() > 0.5

    def test_correlation_concentrates_skew(self):
        rng1, rng2 = np.random.default_rng(5), np.random.default_rng(5)
        iid = skewed_profile(10_000, 1e-6, cv=0.6, rng=rng1, nblocks=512, corr=1)
        corr = skewed_profile(10_000, 1e-6, cv=0.6, rng=rng2, nblocks=512, corr=64)
        # contiguous halves differ more when skew is spatially correlated
        def half_gap(s):
            a, _ = s.chunk_cost(0, 5000)
            b, _ = s.chunk_cost(5000, 10_000)
            return abs(a - b) / (a + b)

        assert half_gap(corr) > half_gap(iid)

    def test_bytes_uniform(self):
        rng = np.random.default_rng(0)
        s = skewed_profile(1000, 1e-6, cv=0.5, rng=rng, bytes_per_iter=8.0, nblocks=10)
        _, b1 = s.chunk_cost(0, 100)
        _, b2 = s.chunk_cost(500, 600)
        assert b1 == pytest.approx(b2)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            skewed_profile(10, 1e-6, cv=-1.0, rng=rng)
        with pytest.raises(ValueError):
            skewed_profile(10, 1e-6, cv=0.5, rng=rng, corr=0)


class TestBFSLevels:
    def test_levels_cover_most_nodes(self):
        levels = bfs_levels(1_000_000, 6.0, seed=1)
        assert 0.9 * 1_000_000 <= sum(levels) <= 1_000_000

    def test_deterministic(self):
        assert bfs_levels(100_000, 6.0, seed=7) == bfs_levels(100_000, 6.0, seed=7)

    def test_growth_then_decay(self):
        levels = bfs_levels(1_000_000, 6.0, seed=1)
        peak = levels.index(max(levels))
        assert 0 < peak < len(levels) - 1
        assert levels[0] < max(levels)

    def test_small_degree_may_die_out(self):
        levels = bfs_levels(1000, 0.5, seed=3)
        assert sum(levels) < 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            bfs_levels(0)
        with pytest.raises(ValueError):
            bfs_levels(10, avg_degree=0)


class TestBuilders:
    @pytest.mark.parametrize("version", VERSIONS)
    def test_bfs_builds_two_phases_per_level(self, version):
        prog = bfs.program(version, machine=PAPER_MACHINE, n_nodes=50_000)
        assert len(prog) == 2 * prog.meta["levels"]

    def test_bfs_low_locality(self):
        prog = bfs.program("omp_for", machine=PAPER_MACHINE, n_nodes=50_000)
        visit_regions = [r for r in prog if isinstance(r, LoopRegion) and "visit" in r.space.name]
        assert any(r.space.locality < 0.6 for r in visit_regions)

    def test_hotspot_two_loops_per_step(self):
        prog = hotspot.program("omp_for", machine=PAPER_MACHINE, grid=256, steps=3)
        assert len(prog) == 6

    def test_hotspot_stencil_skewed(self):
        prog = hotspot.program("omp_for", machine=PAPER_MACHINE, grid=512, steps=1)
        stencil = prog.regions[0].space
        blocks = np.diff(stencil._cum_work)
        assert blocks.std() / blocks.mean() > 0.2

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            hotspot.program("omp_for", machine=PAPER_MACHINE, grid=0)

    def test_lud_shrinking_phases(self):
        prog = lud.program("omp_for", machine=PAPER_MACHINE, n=256, block=32)
        loops = [r for r in prog if isinstance(r, LoopRegion)]
        serials = [r for r in prog if isinstance(r, SerialRegion)]
        nb = 256 // 32
        assert len(loops) == 2 * (nb - 1)
        assert len(serials) == nb
        inner_sizes = [r.space.niter for r in loops if "interior" in r.space.name]
        assert inner_sizes == sorted(inner_sizes, reverse=True)
        assert inner_sizes[0] == (nb - 1) ** 2

    def test_lud_block_divides(self):
        with pytest.raises(ValueError):
            lud.program("omp_for", machine=PAPER_MACHINE, n=100, block=32)

    def test_lavamd_single_uniform_region(self):
        prog = lavamd.program("omp_for", machine=PAPER_MACHINE, boxes1d=5)
        assert len(prog) == 1
        assert prog.meta["nboxes"] == 125

    def test_lavamd_validation(self):
        with pytest.raises(ValueError):
            lavamd.program("omp_for", machine=PAPER_MACHINE, boxes1d=0)

    def test_srad_two_loops_per_iter(self):
        prog = srad.program("omp_for", machine=PAPER_MACHINE, grid=256, iters=5)
        assert len(prog) == 10

    def test_cxx_versions_get_persistent_pool(self):
        for app, kw in (
            (bfs, {"n_nodes": 50_000}),
            (hotspot, {"grid": 256, "steps": 1}),
            (lud, {"n": 128, "block": 32}),
            (srad, {"grid": 128, "iters": 1}),
        ):
            prog = app.program("cxx_thread", machine=PAPER_MACHINE, **kw)
            assert prog.meta.get("pool_setup") is True, app.__name__
            prog_omp = app.program("omp_for", machine=PAPER_MACHINE, **kw)
            assert "pool_setup" not in prog_omp.meta

    def test_deterministic_builds(self):
        a = hotspot.program("omp_for", machine=PAPER_MACHINE, grid=256, steps=2, seed=9)
        b = hotspot.program("omp_for", machine=PAPER_MACHINE, grid=256, steps=2, seed=9)
        wa = a.regions[0].space.total_work
        wb = b.regions[0].space.total_work
        assert wa == wb
