"""Tests for the work-stealing deque models."""

import pytest

from repro.sim.costs import CostModel
from repro.sim.deque import LockedDeque, THEDeque, make_deque


@pytest.fixture
def costs():
    return CostModel()


class TestSemantics:
    """Both flavours share LIFO-pop / FIFO-steal double-ended semantics."""

    @pytest.mark.parametrize("kind", ["the", "locked"])
    def test_pop_is_lifo(self, kind, costs):
        d = make_deque(kind, 0, costs)
        for tid in (10, 11, 12):
            d.push(0.0, tid)
        assert d.pop(1.0)[0] == 12
        assert d.pop(1.0)[0] == 11
        assert d.pop(1.0)[0] == 10

    @pytest.mark.parametrize("kind", ["the", "locked"])
    def test_steal_is_fifo(self, kind, costs):
        d = make_deque(kind, 0, costs)
        for tid in (10, 11, 12):
            d.push(0.0, tid)
        assert d.steal(1.0)[0] == 10
        assert d.steal(1.0)[0] == 11

    @pytest.mark.parametrize("kind", ["the", "locked"])
    def test_pop_empty_returns_none(self, kind, costs):
        d = make_deque(kind, 0, costs)
        tid, t = d.pop(3.0)
        assert tid is None
        assert t == 3.0  # empty pop is free

    @pytest.mark.parametrize("kind", ["the", "locked"])
    def test_steal_empty_counts_failure(self, kind, costs):
        d = make_deque(kind, 0, costs)
        tid, t = d.steal(3.0)
        assert tid is None
        assert t > 3.0  # probing costs latency
        assert d.failed_steals == 1

    @pytest.mark.parametrize("kind", ["the", "locked"])
    def test_len_tracks_contents(self, kind, costs):
        d = make_deque(kind, 0, costs)
        assert len(d) == 0
        d.push(0.0, 1)
        d.push(0.0, 2)
        assert len(d) == 2
        d.pop(0.0)
        assert len(d) == 1

    @pytest.mark.parametrize("kind", ["the", "locked"])
    def test_statistics(self, kind, costs):
        d = make_deque(kind, 0, costs)
        d.push(0.0, 1)
        d.push(0.0, 2)
        d.pop(0.0)
        d.steal(0.0)
        assert (d.pushes, d.pops, d.steals) == (2, 1, 1)


class TestCostDiscipline:
    def test_the_owner_ops_do_not_touch_lock(self, costs):
        d = THEDeque(0, costs)
        d.push(0.0, 1)
        d.pop(0.0)
        assert d.lock.acquisitions == 0

    def test_the_steal_takes_lock(self, costs):
        d = THEDeque(0, costs)
        d.push(0.0, 1)
        d.steal(0.0)
        assert d.lock.acquisitions == 1

    def test_locked_everything_takes_lock(self, costs):
        d = LockedDeque(0, costs)
        d.push(0.0, 1)
        d.push(0.0, 2)
        d.pop(0.0)
        d.steal(0.0)
        assert d.lock.acquisitions == 4

    def test_locked_owner_contends_with_thief(self, costs):
        """An owner push right after a steal waits for the lock —
        the contention mechanism behind the paper's fib gap."""
        d = LockedDeque(0, costs)
        d.push(0.0, 1)
        steal_done = d.steal(1.0)[1]
        push_done = d.push(1.0, 2)
        assert push_done >= steal_done  # serialized behind the steal

    def test_the_owner_does_not_wait_for_thief(self, costs):
        d = THEDeque(0, costs)
        d.push(0.0, 1)
        d.push(0.0, 2)
        d.steal(1.0)
        push_done = d.push(1.0, 3)
        assert push_done == pytest.approx(1.0 + costs.the_push)

    def test_op_costs_match_model(self, costs):
        d = THEDeque(0, costs)
        assert d.push(0.0, 1) == pytest.approx(costs.the_push)
        assert d.pop(1.0)[1] == pytest.approx(1.0 + costs.the_pop)
        d.push(2.0, 2)
        assert d.steal(3.0)[1] == pytest.approx(3.0 + costs.the_steal)

    def test_locked_costs_match_model(self, costs):
        d = LockedDeque(0, costs)
        assert d.push(0.0, 1) == pytest.approx(costs.locked_push)
        assert d.pop(10.0)[1] == pytest.approx(10.0 + costs.locked_pop)


class TestFactory:
    def test_factory_kinds(self, costs):
        assert isinstance(make_deque("the", 0, costs), THEDeque)
        assert isinstance(make_deque("locked", 0, costs), LockedDeque)

    def test_factory_rejects_unknown(self, costs):
        with pytest.raises(ValueError, match="unknown deque kind"):
            make_deque("lockfree", 0, costs)
