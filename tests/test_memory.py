"""Tests for the roofline memory/duration model."""

import pytest

from repro.sim.machine import PAPER_MACHINE
from repro.sim.memory import MemoryModel


@pytest.fixture
def mem():
    return MemoryModel(PAPER_MACHINE)


class TestDuration:
    def test_compute_only(self, mem):
        assert mem.duration(1e-3) == pytest.approx(1e-3)

    def test_memory_only(self, mem):
        membytes = 1e6
        expected = membytes / PAPER_MACHINE.bandwidth_per_thread(1)
        assert mem.duration(0.0, membytes) == pytest.approx(expected)

    def test_roofline_takes_max(self, mem):
        work = 1e-3
        membytes = 1.0  # trivially fast transfer
        assert mem.duration(work, membytes) == pytest.approx(work)
        big = 1e9  # memory dominates
        assert mem.duration(work, big) > work

    def test_active_threads_shrink_bandwidth(self, mem):
        membytes = 1e8
        t1 = mem.duration(0.0, membytes, active=1)
        t18 = mem.duration(0.0, membytes, active=18)
        assert t18 > t1

    def test_active_clamped_to_one(self, mem):
        assert mem.duration(1e-3, active=0) == mem.duration(1e-3, active=1)

    def test_smt_slows_compute(self, mem):
        t36 = mem.duration(1e-3, active=36)
        t72 = mem.duration(1e-3, active=72)
        assert t72 > t36

    def test_locality_matters(self, mem):
        fast = mem.duration(0.0, 1e7, locality=1.0)
        slow = mem.duration(0.0, 1e7, locality=0.0)
        assert slow > fast

    def test_negative_inputs_rejected(self, mem):
        with pytest.raises(ValueError):
            mem.duration(-1.0)
        with pytest.raises(ValueError):
            mem.duration(1.0, membytes=-5)


class TestModes:
    def test_disabled_ignores_memory(self):
        mem = MemoryModel(PAPER_MACHINE, enabled=False)
        assert mem.duration(1e-3, 1e12) == pytest.approx(1e-3)

    def test_no_overlap_sums(self):
        over = MemoryModel(PAPER_MACHINE, overlap=True)
        seq = MemoryModel(PAPER_MACHINE, overlap=False)
        work, membytes = 1e-3, 1e7
        assert seq.duration(work, membytes) > over.duration(work, membytes)
        mem_t = membytes / PAPER_MACHINE.bandwidth_per_thread(1)
        assert seq.duration(work, membytes) == pytest.approx(work + mem_t)

    def test_loop_chunk_alias(self):
        mem = MemoryModel(PAPER_MACHINE)
        assert mem.loop_chunk_duration(1e-3, 1e6, 0.5, 4) == mem.duration(1e-3, 1e6, 0.5, 4)
