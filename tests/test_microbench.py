"""Tests for the EPCC-style overhead microbenchmarks."""

import pytest

from repro.microbench import (
    OverheadReport,
    barrier_overhead,
    for_overhead,
    parallel_overhead,
    render_report,
    run_suite,
    schedule_overhead,
    task_overhead,
)


class TestIndividualMeasurements:
    def test_parallel_overhead_grows_with_threads(self, ctx):
        values = [parallel_overhead(p, ctx) for p in (2, 4, 8, 16)]
        assert values == sorted(values)

    def test_parallel_overhead_matches_cost_model(self, ctx):
        measured = parallel_overhead(8, ctx)
        modelled = ctx.costs.fork_cost(8) + ctx.costs.barrier_cost(8)
        # measured includes the static chunk bookkeeping on top
        assert modelled <= measured <= modelled * 1.5

    def test_barrier_overhead_isolated(self, ctx):
        assert barrier_overhead(8, ctx) == pytest.approx(ctx.costs.barrier_cost(8), rel=0.01)

    def test_barrier_free_at_one_thread(self, ctx):
        assert barrier_overhead(1, ctx) == 0.0

    def test_static_for_overhead_tiny(self, ctx):
        assert for_overhead(8, ctx, "static") < 1e-6

    def test_dynamic_for_overhead_larger(self, ctx):
        assert for_overhead(8, ctx, "dynamic") > for_overhead(8, ctx, "static")

    def test_schedule_overhead_keys(self, ctx):
        d = schedule_overhead(4, ctx)
        assert set(d) == {"static", "dynamic", "guided"}

    def test_task_overhead_locked_exceeds_the(self, ctx):
        """The paper's III.B point, measured: lock-based deques cost more
        per task than the THE protocol."""
        for p in (2, 8):
            assert task_overhead(p, ctx, deque="locked") > task_overhead(p, ctx, deque="the")

    def test_task_overhead_contention_grows(self, ctx):
        assert task_overhead(16, ctx, deque="locked") > task_overhead(2, ctx, deque="locked")


class TestSuite:
    def test_run_suite_rows(self, ctx):
        report = run_suite((1, 2, 4), ctx)
        assert report.threads == (1, 2, 4)
        assert len(report.rows) == 7
        for values in report.rows.values():
            assert len(values) == 3
            assert all(v >= 0 for v in values)

    def test_report_add_validates_length(self):
        r = OverheadReport((1, 2))
        with pytest.raises(ValueError):
            r.add("x", [1.0])

    def test_render_report(self, ctx):
        text = render_report(run_suite((1, 2), ctx))
        assert "barrier" in text
        assert "p=2" in text
        assert "THE deque" in text
