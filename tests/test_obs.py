"""Tests for the observability layer (repro.obs).

Covers the ISSUE 2 acceptance criteria: Chrome-trace exporter
round-trip with well-formed monotonic spans, metrics arithmetic, the
zero-overhead disabled path (bit-identical simulations), at least one
span per worker for the traced fib run, and the bottleneck attribution
ranking compute above steal overhead for matmul while fib shows a
measurable steal/overhead share at high thread counts.
"""

import json

import pytest

from repro.core.registry import get_workload
from repro.obs import (
    EXEC_KINDS,
    OVERHEAD_KINDS,
    MetricsRegistry,
    Tracer,
    attribute_result,
    chrome_trace,
    render_timeline,
    result_metrics,
    write_chrome_trace,
    write_metrics,
)
from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.validate.invariants import check_trace

CTX = ExecContext()


def traced_run(workload, version, p, **overrides):
    spec = get_workload(workload)
    params = dict(spec.validation_params or spec.default_params)
    params.update(overrides)
    prog = spec.build(version, CTX.machine, **params)
    return run_program(prog, p, CTX, version, validate=True, trace=True)


def plain_run(workload, version, p, **overrides):
    spec = get_workload(workload)
    params = dict(spec.validation_params or spec.default_params)
    params.update(overrides)
    prog = spec.build(version, CTX.machine, **params)
    return run_program(prog, p, CTX, version)


def snapshot(res):
    return (
        res.time,
        tuple(
            tuple((w.busy, w.overhead, w.tasks, w.steals, w.failed_steals)
                  for w in r.workers)
            for r in res.regions
        ),
    )


class TestTracer:
    def test_offset_shifts_spans(self):
        tr = Tracer()
        tr.begin_region("a", offset=0.0)
        tr.span(0, 0.0, 1.0, "task", "t0")
        tr.begin_region("b", offset=5.0)
        tr.span(0, 0.0, 1.0, "task", "t1")
        assert tr.spans[0].start == 0.0 and tr.spans[0].end == 1.0
        assert tr.spans[1].start == 5.0 and tr.spans[1].end == 6.0
        assert tr.spans[0].region == 0 and tr.spans[1].region == 1
        assert tr.region_names == ["a", "b"]

    def test_kind_partitions_are_disjoint(self):
        assert not (EXEC_KINDS & OVERHEAD_KINDS)

    def test_queries(self):
        tr = Tracer()
        tr.span(0, 0.0, 1.0, "task")
        tr.span(1, 1.0, 2.0, "steal")
        tr.instant(2, 1.5, "wake")
        assert tr.nworkers == 3
        assert tr.horizon == 2.0
        assert len(tr.exec_spans()) == 1
        assert tr.intervals() == [(0, 0.0, 1.0, "task")]
        assert tr.time_by_kind() == {"task": 1.0, "steal": 1.0}
        assert len(tr) == 3
        assert "2 spans" in tr.describe()

    def test_fib_has_span_on_every_worker(self):
        """Acceptance: traced fib at p=16 emits >= 1 span per worker."""
        res = traced_run("fib", "cilk_spawn", 16)
        workers = {s.worker for s in res.trace.exec_spans()}
        assert workers == set(range(16))

    def test_spans_well_formed_and_within_horizon(self):
        for version in ("omp_for", "cilk_for", "omp_task", "cxx_thread"):
            res = traced_run("matvec", version, 8)
            assert res.trace is not None and len(res.trace.spans) > 0
            for s in res.trace.spans:
                assert s.start >= 0.0
                assert s.end >= s.start
                assert s.end <= res.time * (1 + 1e-9)

    def test_check_trace_flags_injected_overlap(self):
        res = traced_run("fib", "omp_task", 4)
        rep = check_trace(res.trace, horizon=res.time)
        assert rep.ok, rep.describe()
        res.trace.span(0, 0.0, res.time, "task", "tamper")
        res.trace.span(0, 0.0, res.time / 2, "task", "tamper")
        rep2 = check_trace(res.trace, horizon=res.time)
        assert not rep2.ok
        assert any(v.invariant == "interval-overlap" for v in rep2.violations)


class TestZeroOverheadPath:
    """Tracing off must mean *no* per-event state and identical physics."""

    @pytest.mark.parametrize(
        "workload,version",
        [("fib", "cilk_spawn"), ("fib", "omp_task"), ("matmul", "cilk_for"),
         ("axpy", "omp_for"), ("sum", "cxx_async")],
    )
    def test_traced_run_is_bit_identical(self, workload, version):
        a = plain_run(workload, version, 8)
        b = traced_run(workload, version, 8)
        assert snapshot(a) == snapshot(b)

    def test_untraced_result_carries_no_trace(self):
        res = plain_run("fib", "cilk_spawn", 4)
        assert res.trace is None


class TestMetrics:
    def test_counter_gauge_histogram_arithmetic(self):
        m = MetricsRegistry()
        m.counter("steals").inc(3)
        m.counter("steals").inc()
        assert m.counter("steals").value == 4
        with pytest.raises(ValueError):
            m.counter("steals").inc(-1)
        m.gauge("util").set(0.5)
        m.gauge("util").add(0.25)
        assert m.gauge("util").value == 0.75
        h = m.histogram("depth")
        for v in (1.0, 2.0, 6.0):
            h.observe(v)
        assert h.count == 3 and h.total == 9.0
        assert h.min == 1.0 and h.max == 6.0 and h.mean == 3.0

    def test_merge_pools_all_three_kinds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("tasks").inc(2)
        b.counter("tasks").inc(3)
        a.gauge("busy").add(1.0)
        b.gauge("busy").add(2.0)
        a.histogram("x").observe(1.0)
        b.histogram("x").observe(3.0)
        a.merge(b)
        assert a.counter("tasks").value == 5
        assert a.gauge("busy").value == 3.0
        assert a.histogram("x").to_dict() == {
            "count": 2, "total": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_result_metrics_agree_with_result(self):
        res = plain_run("fib", "cilk_spawn", 8)
        m = result_metrics(res)
        assert m.counter("tasks").value == res.total_tasks
        assert m.counter("steals").value == res.total_steals
        assert m.gauge("busy_seconds").value == pytest.approx(res.total_busy)
        assert m.gauge("utilization").value == pytest.approx(res.utilization())
        assert m.gauge("sim_time_seconds").value == res.time
        # same numbers via the result-side convenience accessor
        assert res.metrics().to_dict() == m.to_dict()

    def test_to_dict_is_json_ready(self):
        m = traced_run("matmul", "omp_for", 4).metrics()
        json.dumps(m.to_dict())
        assert "metrics:" in m.describe()


class TestChromeExport:
    def test_round_trip_valid_json(self, tmp_path):
        res = traced_run("fib", "cilk_spawn", 8)
        path = tmp_path / "nested" / "dir" / "trace.json"
        write_chrome_trace(path, res.trace, metadata={"program": "fib"})
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["program"] == "fib"
        events = doc["traceEvents"]
        assert isinstance(events, list) and events
        phases = {e["ph"] for e in events}
        assert "X" in phases and "M" in phases
        for e in events:
            if e["ph"] == "X":
                assert e["ts"] >= 0.0 and e["dur"] >= 0.0
        # one thread_name metadata row per worker
        names = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        worker_rows = {e["tid"] for e in names if e["tid"] < 1_000_000}
        assert worker_rows == set(range(res.trace.nworkers))

    def test_spans_monotonic_per_worker(self):
        res = traced_run("fib", "omp_task", 8)
        doc = chrome_trace(res.trace)
        by_tid = {}
        for e in doc["traceEvents"]:
            if e["ph"] == "X" and e.get("cat") in EXEC_KINDS:
                by_tid.setdefault(e["tid"], []).append((e["ts"], e["ts"] + e["dur"]))
        assert by_tid
        for tid, spans in by_tid.items():
            spans.sort()
            for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
                assert s1 >= e0 - 1e-6, f"worker {tid} spans overlap"

    def test_lock_tracks_present_for_locked_deque(self):
        res = traced_run("fib", "omp_task", 4)
        doc = chrome_trace(res.trace)
        lock_rows = [
            e for e in doc["traceEvents"]
            if e["ph"] == "M" and e["args"].get("name", "").startswith("lock ")
        ]
        assert lock_rows  # omp task uses locked deques -> per-lock tracks

    def test_gantt_renders_worker_rows(self):
        res = traced_run("matmul", "omp_for", 4)
        text = render_timeline(res.trace, nworkers=4)
        assert "w0" in text and "w3" in text

    def test_metrics_payload_round_trip(self, tmp_path):
        res = traced_run("fib", "cilk_spawn", 8)
        path = tmp_path / "m" / "metrics.json"
        write_metrics(path, res, tracer=res.trace, extra={"note": "t"})
        doc = json.loads(path.read_text())
        assert doc["program"] == "fib(12)" or doc["program"].startswith("fib")
        assert doc["nthreads"] == 8
        assert doc["metrics"]["counters"]["tasks"] == res.total_tasks
        assert doc["trace"]["workers"] == res.trace.nworkers
        assert doc["note"] == "t"
        cats = {e["category"] for e in doc["attribution"]}
        assert cats == {"compute", "memory", "steal", "lock", "runtime", "idle"}


class TestAttribution:
    def test_shares_cover_the_run(self):
        res = traced_run("fib", "cilk_spawn", 16)
        rep = attribute_result(res, ctx=CTX)
        assert sum(e.share for e in rep.entries) == pytest.approx(1.0, abs=1e-6)
        assert rep.total == pytest.approx(res.time * 16)

    def test_matmul_ranks_compute_above_steal(self):
        """Acceptance: matmul attribution puts compute above steal."""
        res = traced_run("matmul", "cilk_for", 16)
        rep = attribute_result(res, ctx=CTX)
        assert rep.top == "compute"
        assert rep.share("compute") > rep.share("steal")

    def test_fib_high_threads_shows_steal_overhead(self):
        """Acceptance: fib at high thread counts shows a measurable
        steal/runtime-overhead share."""
        res = traced_run("fib", "omp_task", 16)
        rep = attribute_result(res, ctx=CTX)
        assert rep.share("steal") + rep.share("runtime") > 0.01
        assert rep.seconds("steal") > 0.0

    def test_memory_bound_kernel_attributes_memory(self):
        res = traced_run("axpy", "omp_for", 16)
        rep = attribute_result(res, ctx=CTX)
        assert rep.share("memory") > rep.share("runtime")

    def test_describe_uses_paper_vocabulary(self):
        res = traced_run("fib", "omp_task", 8)
        text = attribute_result(res, ctx=CTX, program="fib", version="omp_task").describe()
        assert "bottleneck attribution" in text
        assert "work-stealing overhead" in text
        assert "=> dominated by" in text


class TestEngineAuditShim:
    def test_enable_audit_still_returns_event_list(self):
        from repro.sim.engine import Engine

        eng = Engine()
        log = eng.enable_audit()
        eng.after(0.0, lambda: None)
        eng.after(1.0, lambda: None)
        eng.run()
        assert len(log) == 2
        assert log is eng.tracer.engine_events

    def test_simlock_audit_log_still_works(self):
        from repro.sim.engine import SimLock

        tr = Tracer()
        lock = SimLock("l", audit=True, tracer=tr)
        lock.acquire(0.0, 1.0)
        lock.acquire(0.5, 1.0)
        assert lock.log == [(0.0, 0.0, 1.0), (0.5, 1.0, 1.0)]
        assert tr.lock_events["l"] == lock.log
