"""End-to-end telemetry guarantees across the executor and exporters.

The load-bearing contract: host telemetry must never perturb the
simulation.  Results with instrumentation on, off (``REPRO_PERF_OFF=1``)
and absent (no active recorder) are bit-identical; ``SweepResult.perf``
carries the executor's own recording; the sweep metrics payload exposes
it under ``host``.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.export import sweep_metrics_payload
from repro.perf.spans import PERF_OFF_ENV, recording
from repro.sweep import ResultCache, run_sweep
from repro.sweep.codec import result_to_dict

THREADS = (1, 4)
PARAMS = {"n": 200_000}


def fingerprint(sweep, *, trace=False):
    """Full-fidelity comparable form (exact floats, per-cell results)."""
    return {
        "series": sweep.series,
        "errors": dict(sweep.errors),
        "results": {
            f"{v}-p{p}": result_to_dict(res, with_trace=trace)
            for (v, p), res in sorted(sweep.results.items())
        },
    }


def _sweep(**kwargs):
    kwargs.setdefault("threads", THREADS)
    kwargs.setdefault("params", PARAMS)
    return run_sweep("axpy", **kwargs)


class TestBitIdentity:
    def test_off_and_unmetered_and_metered_agree(self, monkeypatch):
        unmetered = _sweep()  # no recorder active: spans are null objects

        with recording("sweep"):
            metered = _sweep()

        monkeypatch.setenv(PERF_OFF_ENV, "1")
        disabled = _sweep()

        fp = fingerprint(unmetered)
        assert fingerprint(metered) == fp
        assert fingerprint(disabled) == fp

    def test_traced_runs_identical_under_telemetry(self):
        plain = _sweep(versions=("omp_task",), trace=True)
        with recording("sweep"):
            metered = _sweep(versions=("omp_task",), trace=True)
        assert fingerprint(metered, trace=True) == fingerprint(plain, trace=True)

    def test_cache_entries_identical_under_telemetry(self, tmp_path):
        plain = _sweep(cache=ResultCache(tmp_path / "a"), versions=("omp_for",))
        with recording("sweep"):
            metered = _sweep(cache=ResultCache(tmp_path / "b"), versions=("omp_for",))
        entries_a = sorted(p.read_text() for p in (tmp_path / "a").rglob("*.json"))
        entries_b = sorted(p.read_text() for p in (tmp_path / "b").rglob("*.json"))
        assert entries_a == entries_b
        assert fingerprint(plain) == fingerprint(metered)


class TestSweepResultPerf:
    def test_perf_populated_by_default(self):
        sweep = _sweep()
        assert sweep.perf is not None
        assert sweep.perf["label"] == "sweep"
        assert sweep.host_wall_seconds > 0
        assert sweep.host_cpu_seconds > 0
        assert sweep.perf["spans"]["cell.simulate"]["count"] == len(THREADS) * len(
            sweep.versions
        )

    def test_perf_none_when_disabled(self, monkeypatch):
        monkeypatch.setenv(PERF_OFF_ENV, "1")
        sweep = _sweep()
        assert sweep.perf is None
        assert sweep.host_wall_seconds == 0.0
        assert sweep.host_cpu_seconds == 0.0

    def test_outer_recording_sees_sweep_detail(self):
        with recording("outer") as outer:
            sweep = _sweep(versions=("omp_for",))
        assert sweep.perf is not None
        # nested recording folded its spans and one "sweep" block span up
        assert outer.spans["cell.simulate"].count == len(THREADS)
        assert outer.spans["sweep"].count == 1

    def test_cache_counters_recorded(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = _sweep(versions=("omp_for",), cache=cache)
        warm = _sweep(versions=("omp_for",), cache=cache)
        assert cold.perf["counters"]["cache.miss"] == len(THREADS)
        assert cold.perf["counters"]["cache.store"] == len(THREADS)
        assert warm.perf["counters"]["cache.hit"] == len(THREADS)
        probe = warm.perf["observations"]["cache.probe_seconds"]
        assert probe["count"] == len(THREADS)
        assert probe["max"] >= probe["min"] >= 0.0

    def test_parallel_sweep_records_fanout(self):
        sweep = _sweep(jobs=2)
        spans = sweep.perf["spans"]
        assert spans["fanout.pool"]["count"] == 2  # pool setup + shutdown
        assert spans["fanout.submit"]["count"] == 1
        assert spans["fanout.wait"]["count"] >= len(THREADS) * len(sweep.versions)
        # worker processes simulate; the parent must not claim cell.simulate
        assert "cell.simulate" not in spans


class TestMetricsPayload:
    def test_host_section_present(self):
        sweep = _sweep()
        payload = sweep_metrics_payload(sweep, jobs=1)
        json.dumps(payload)  # JSON-ready
        assert payload["host"]["wall_seconds"] == sweep.host_wall_seconds
        # host wall backfills the top-level wall when the caller has none
        assert payload["wall_seconds"] == pytest.approx(sweep.host_wall_seconds)

    def test_explicit_wall_wins(self):
        sweep = _sweep()
        payload = sweep_metrics_payload(sweep, wall_seconds=123.0)
        assert payload["wall_seconds"] == 123.0

    def test_no_host_section_when_disabled(self, monkeypatch):
        monkeypatch.setenv(PERF_OFF_ENV, "1")
        sweep = _sweep()
        payload = sweep_metrics_payload(sweep)
        assert "host" not in payload
        assert "wall_seconds" not in payload
