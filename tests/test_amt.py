"""Unit tests for the AMT runtime family: Charm++ / HPX / MPI executors.

Covers the six executors in :mod:`repro.runtime.amt` directly (loop and
graph forms), the model front-ends that build their regions, the
``resolve_models`` family resolver behind ``repro validate --model``,
Table III fault semantics through :func:`run_program`, and the tier-0
exactness contract (the static charm/mpi placements are analyzable, so
their estimators reproduce the reference executor bit-for-bit).
"""

import numpy as np
import pytest

from repro.core.registry import get_workload
from repro.faults.semantics import error_mode
from repro.kernels import fib as fib_kernel
from repro.models import AMT_VERSIONS, resolve_models
from repro.models.charm import chare_for, chare_graph
from repro.models.hpx import async_for, future_graph
from repro.models.mpi import rank_for, rank_graph
from repro.obs.tracer import Tracer
from repro.runtime.amt import (
    run_charm_graph,
    run_charm_loop,
    run_hpx_graph,
    run_hpx_loop,
    run_mpi_graph,
    run_mpi_loop,
)
from repro.runtime.base import ExecContext
from repro.runtime.run import execute_region, run_program
from repro.sim.task import IterSpace, LoopRegion, TaskRegion
from repro.sim.tiers import DEFAULT_CALIBRATION, estimate_region
from repro.workloads.taskgraph import taskbench_graph

LOOP_RUNNERS = {"charm": run_charm_loop, "hpx": run_hpx_loop, "mpi": run_mpi_loop}
GRAPH_RUNNERS = {"charm": run_charm_graph, "hpx": run_hpx_graph, "mpi": run_mpi_graph}
FAULT_POLICY = {"max_retries": 0, "backoff": 1e-6, "on_failure": "continue"}


@pytest.fixture(scope="module")
def ctx():
    return ExecContext()


def flat_space(niter=100_000, nblocks=16, flops=4.0):
    work = np.full(nblocks, niter / nblocks * flops)
    return IterSpace(niter, work, np.zeros(nblocks), name="flat")


def fault_docs(result):
    return [r.meta["fault"] for r in result.regions if "fault" in r.meta]


class TestLoopExecutors:
    @pytest.mark.parametrize("version", AMT_VERSIONS)
    def test_basic_run_shape(self, ctx, version):
        space = flat_space()
        res = LOOP_RUNNERS[version](space, 4, ctx)
        assert res.time > 0
        assert res.nthreads == 4
        assert len(res.workers) == 4
        assert res.meta["mode"] == version
        # AMT workers persist across the program: no fork/join threads
        assert res.meta["nthreads_created"] == 0
        assert sum(w.tasks for w in res.workers) == res.meta["ntasks_created"]

    @pytest.mark.parametrize("version", AMT_VERSIONS)
    def test_parallel_speedup(self, ctx, version):
        space = flat_space()
        t1 = LOOP_RUNNERS[version](space, 1, ctx).time
        t8 = LOOP_RUNNERS[version](space, 8, ctx).time
        assert t8 < t1

    @pytest.mark.parametrize("version", AMT_VERSIONS)
    def test_deterministic(self, ctx, version):
        space = flat_space()
        a = LOOP_RUNNERS[version](space, 6, ctx)
        b = LOOP_RUNNERS[version](space, 6, ctx)
        assert a.time == b.time
        assert [(w.busy, w.overhead, w.tasks) for w in a.workers] == [
            (w.busy, w.overhead, w.tasks) for w in b.workers
        ]

    @pytest.mark.parametrize("version", AMT_VERSIONS)
    def test_rejects_nonpositive_threads(self, ctx, version):
        with pytest.raises(ValueError):
            LOOP_RUNNERS[version](flat_space(), 0, ctx)

    @pytest.mark.parametrize("version", AMT_VERSIONS)
    def test_busy_matches_chunk_spans(self, ctx, version):
        tracer = Tracer()
        res = LOOP_RUNNERS[version](flat_space(), 4, ctx, tracer=tracer)
        traced = sum(s.duration for s in tracer.spans if s.kind == "chunk")
        assert traced == pytest.approx(sum(w.busy for w in res.workers))

    def test_charm_overdecomposes_four_per_pe(self, ctx):
        res = run_charm_loop(flat_space(), 4, ctx)
        assert res.meta["ntasks_created"] == 16

    def test_mpi_one_chunk_per_rank_and_collective(self, ctx):
        tracer = Tracer()
        res = run_mpi_loop(flat_space(), 4, ctx, tracer=tracer)
        assert res.meta["ntasks_created"] == 4
        # the region ends in a log-tree collective: one barrier span per rank
        assert sum(1 for s in tracer.spans if s.kind == "barrier") == 4

    def test_mpi_serial_has_no_collective(self, ctx):
        tracer = Tracer()
        run_mpi_loop(flat_space(), 1, ctx, tracer=tracer)
        assert not any(s.kind == "barrier" for s in tracer.spans)


class TestGraphExecutors:
    @pytest.mark.parametrize("version", AMT_VERSIONS)
    def test_aggregate_accounting(self, ctx, version):
        g = fib_kernel.graph(12)
        res = GRAPH_RUNNERS[version](g, 4, ctx)
        assert res.meta["aggregate_workers"] is True
        assert len(res.workers) == 1
        (w,) = res.workers
        assert w.busy == pytest.approx(g.total_work())
        assert w.tasks == len(g) == res.meta["ntasks_created"]
        # makespan cannot beat perfect scaling of the busy work
        assert res.time >= w.busy / 4

    @pytest.mark.parametrize("version", ["charm", "hpx"])
    def test_parallelism_helps(self, ctx, version):
        g = fib_kernel.graph(13)
        t1 = GRAPH_RUNNERS[version](g, 1, ctx).time
        t8 = GRAPH_RUNNERS[version](g, 8, ctx).time
        assert t8 < t1

    def test_mpi_speedup_needs_a_partitionable_graph(self, ctx):
        # the static block partition parallelizes a wide independent level,
        # but an irregular recursion tree pays cross-rank latency instead
        wide = taskbench_graph("stencil", width=64, steps=1, grain=5e-6)
        assert run_mpi_graph(wide, 8, ctx).time < run_mpi_graph(wide, 1, ctx).time
        fib = fib_kernel.graph(13)
        assert run_mpi_graph(fib, 8, ctx).time >= run_mpi_graph(fib, 1, ctx).time

    @pytest.mark.parametrize("version", AMT_VERSIONS)
    def test_deterministic(self, ctx, version):
        g = fib_kernel.graph(11)
        assert GRAPH_RUNNERS[version](g, 5, ctx).time == GRAPH_RUNNERS[version](g, 5, ctx).time

    def test_charm_messages_are_transfer_spans(self, ctx):
        tracer = Tracer()
        run_charm_graph(fib_kernel.graph(10), 4, ctx, tracer=tracer)
        kinds = {s.kind for s in tracer.spans}
        assert "transfer" in kinds and "task" in kinds

    def test_hpx_continuations_are_dispatch_spans(self, ctx):
        tracer = Tracer()
        run_hpx_graph(fib_kernel.graph(10), 4, ctx, tracer=tracer)
        kinds = {s.kind for s in tracer.spans}
        assert "dispatch" in kinds and "task" in kinds
        assert "transfer" not in kinds

    def test_mpi_cross_rank_deps_are_transfer_spans(self, ctx):
        tracer = Tracer()
        run_mpi_graph(fib_kernel.graph(10), 4, ctx, tracer=tracer)
        assert any(s.kind == "transfer" for s in tracer.spans)

    def test_invariants_hold_through_run_program(self, ctx):
        for version in AMT_VERSIONS:
            prog = get_workload("fib").build(version, ctx.machine, n=12)
            res = run_program(prog, 8, ctx, version=version, validate=True)
            assert res.time > 0


class TestFaultSemantics:
    def test_mode_resolution(self):
        assert error_mode("charm") == "msg_loss"
        assert error_mode("hpx") == "future_poison"
        assert error_mode("mpi") == "rank_fail"
        assert error_mode("", "charm_graph") == "msg_loss"
        assert error_mode("", "hpx_loop") == "future_poison"
        assert error_mode("", "mpi_loop") == "rank_fail"

    def test_charm_runs_to_completion(self, ctx):
        prog = get_workload("axpy").build("charm", ctx.machine, n=120_000)
        res = run_program(prog, 4, ctx, version="charm",
                          faults="fail:task=2", policy=FAULT_POLICY)
        (doc,) = [d for d in fault_docs(res) if d["failed"]]
        assert doc["mode"] == "msg_loss"
        assert not doc["cancelled"]
        assert doc["skipped"] == 0  # message-driven execution cannot cancel
        assert doc["wasted"] > 0 and doc["useful"] == 0.0

    def test_hpx_poisons_dependent_futures(self, ctx):
        prog = get_workload("fib").build("hpx", ctx.machine, n=10)
        res = run_program(prog, 4, ctx, version="hpx",
                          faults="fail:task=5", policy=FAULT_POLICY)
        (doc,) = [d for d in fault_docs(res) if d["failed"]]
        assert doc["mode"] == "future_poison"
        assert not doc["cancelled"]
        assert doc["skipped"] > 0  # transitive dependents never fire

    def test_mpi_aborts_the_job(self, ctx):
        prog = get_workload("axpy").build("mpi", ctx.machine, n=120_000)
        res = run_program(prog, 4, ctx, version="mpi",
                          faults="fail:task=1", policy=FAULT_POLICY)
        (doc,) = [d for d in fault_docs(res) if d["failed"]]
        assert doc["mode"] == "rank_fail"
        assert doc["cancelled"]
        assert doc["cancel_time"] > 0
        assert doc["useful"] == 0.0


class TestFrontEnds:
    def test_loop_builders(self):
        space = flat_space()
        for build, executor in ((chare_for, "charm_loop"), (async_for, "hpx_loop"),
                                (rank_for, "mpi_loop")):
            region = build(space, reduction=True)
            assert isinstance(region, LoopRegion)
            assert region.executor == executor
            assert region.params["reduction"] is True
            assert region.params["work_scale"] == 1.0

    def test_graph_builders(self):
        g = fib_kernel.graph(8)
        for build, executor in ((chare_graph, "charm_graph"), (future_graph, "hpx_graph"),
                                (rank_graph, "mpi_graph")):
            region = build(g)
            assert isinstance(region, TaskRegion)
            assert region.executor == executor
            assert region.graph_for(4) is g

    def test_graph_builder_accepts_callable(self):
        region = chare_graph(lambda p: fib_kernel.graph(8), name="lazy")
        assert len(region.graph_for(2)) == len(fib_kernel.graph(8))


class TestResolveModels:
    def test_family_expansion(self):
        assert resolve_models(["openmp"]) == ("omp_for", "omp_task")
        assert resolve_models(["charm++"]) == ("charm",)
        assert resolve_models(["parallex"]) == ("hpx",)

    def test_version_passthrough_and_case(self):
        assert resolve_models(["omp_task", "MPI"]) == ("omp_task", "mpi")

    def test_order_preserving_dedup(self):
        assert resolve_models(["mpi", "charm", "mpi"]) == ("mpi", "charm")

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown model 'corba'"):
            resolve_models(["corba"])


class TestTier0Exactness:
    @pytest.mark.parametrize("p", [1, 3, 8])
    @pytest.mark.parametrize("build,expected_kind", [
        (chare_graph, "amt_charm"),
        (rank_graph, "amt_mpi"),
    ])
    def test_static_placements_are_exact(self, ctx, p, build, expected_kind):
        # charm/mpi place tasks statically, so the occupancy-coupled
        # forward pass reproduces the reference executor exactly
        region = build(fib_kernel.graph(12))
        kind, est = estimate_region(region, p, ctx)
        ref = execute_region(region, p, ctx)
        assert kind == expected_kind
        assert est.time == pytest.approx(ref.time, rel=1e-9)
        assert DEFAULT_CALIBRATION.scale(kind) == pytest.approx(1.0)
        assert DEFAULT_CALIBRATION.bound(kind) == pytest.approx(0.02)

    @pytest.mark.parametrize("p", [1, 4, 16])
    def test_hpx_bound_covers_fib(self, ctx, p):
        # greedy placement is not statically analyzable; the calibrated
        # scale + bound must still cover the reference time
        region = future_graph(fib_kernel.graph(12))
        kind, est = estimate_region(region, p, ctx)
        ref = execute_region(region, p, ctx)
        assert kind == "amt_hpx"
        scaled = est.time * DEFAULT_CALIBRATION.scale(kind)
        assert abs(scaled - ref.time) <= DEFAULT_CALIBRATION.bound(kind) * ref.time
