"""Tests for the feature database (Tables I-III)."""

import pytest

from repro.features import (
    ALL_MODELS,
    MODELS,
    Support,
    compare,
    get_model,
    models_supporting,
    recommend,
    render_table1,
    render_table3,
    support_matrix,
)
from repro.features.model import FEATURE_FIELDS
from repro.features.tables import table1_rows, table2_rows, table3_rows


class TestSupport:
    def test_yes_cell(self):
        s = Support.yes("cilk_spawn")
        assert bool(s) and s.cell() == "cilk_spawn"

    def test_no_cell_is_x(self):
        assert Support.no().cell() == "x"

    def test_na_cell(self):
        s = Support.na("N/A (host only)")
        assert not s
        assert s.not_applicable
        assert s.cell() == "N/A (host only)"


class TestDatabase:
    def test_models_in_paper_order(self):
        # the paper's eight rows plus the AMT extension rows (Charm++,
        # HPX, MPI), all in one alphabetical order
        names = [m.name for m in ALL_MODELS]
        assert names == [
            "Charm++", "Cilk Plus", "CUDA", "C++11", "HPX", "MPI",
            "OpenACC", "OpenCL", "OpenMP", "PThreads", "TBB",
        ]

    def test_openmp_supports_everything(self):
        omp = MODELS["OpenMP"]
        for f in FEATURE_FIELDS:
            assert omp.supports(f), f

    def test_openmp_is_unique_in_that(self):
        full = [m.name for m in ALL_MODELS if all(m.supports(f) for f in FEATURE_FIELDS)]
        assert full == ["OpenMP"]

    def test_host_only_models_have_no_offloading(self):
        for name in ("Cilk Plus", "C++11", "PThreads", "TBB"):
            assert not MODELS[name].supports("offloading")

    def test_only_openmp_and_openacc_bind_fortran(self):
        fortran = [m.name for m in ALL_MODELS if "Fortran" in m.language]
        assert fortran == ["MPI", "OpenACC", "OpenMP"]

    def test_baseline_models_lack_data_parallelism(self):
        # "PThreads and C++11 are baseline APIs"
        assert not MODELS["C++11"].supports("data_parallelism")
        assert not MODELS["PThreads"].supports("data_parallelism")

    def test_task_parallelism_universal(self):
        # "asynchronous tasking or threading can be viewed as the
        # foundational parallel mechanism supported by all the models"
        # -- MPI is the one deliberate exception: its process set is
        # fixed at startup (the SPMD model the AMT papers contrast with)
        for m in ALL_MODELS:
            if m.name == "MPI":
                assert not m.supports("task_parallelism")
                continue
            assert m.supports("task_parallelism"), m.name

    def test_cilk_tbb_no_barrier_by_design(self):
        # "the concept of a thread barrier makes little sense in their model"
        assert MODELS["TBB"].barrier.not_applicable
        assert MODELS["Cilk Plus"].barrier.cell() == "implicit for cilk_for only"

    def test_get_model_aliases(self):
        assert get_model("openmp").name == "OpenMP"
        assert get_model("Cilk").name == "Cilk Plus"
        assert get_model("c++11").name == "C++11"
        assert get_model("posix threads").name == "PThreads"

    def test_get_model_unknown(self):
        with pytest.raises(KeyError):
            get_model("rust rayon")

    def test_supports_unknown_feature(self):
        with pytest.raises(KeyError):
            MODELS["OpenMP"].supports("quantum")


class TestTables:
    def test_table1_has_paper_cells(self):
        t = render_table1()
        for text in ("cilk_spawn/cilk_sync", "depend (in/out/inout)",
                     "pthread_create/join", "host and device"):
            assert text in t

    def test_table2_has_paper_cells(self):
        cells = {c for row in table2_rows() for c in row}
        joined = " ".join(cells)
        for text in ("OMP_PLACES", "proc_bind clause", "reducers",
                     "affinity_partitioner", "pthread_barrier"):
            assert text in joined

    def test_table3_has_paper_cells(self):
        cells = " ".join(c for row in table3_rows() for c in row)
        for text in ("locks, critical, atomic, single, master", "omp cancel",
                     "Cilkscreen, Cilkview", "pthread_cancel"):
            assert text in cells
        # short tokens survive wrapping in the rendered table too
        t = render_table3()
        assert "omp cancel" in t and "pthread_cancel" in t

    def test_rows_cover_all_models(self):
        for rows in (table1_rows(), table2_rows(), table3_rows()):
            assert len(rows) == 11
            assert [r[0] for r in rows] == [m.name for m in ALL_MODELS]

    def test_table1_columns(self):
        for row in table1_rows():
            assert len(row) == 5

    def test_table2_columns(self):
        for row in table2_rows():
            assert len(row) == 7


class TestQueries:
    def test_models_supporting_offloading(self):
        names = {m.name for m in models_supporting("offloading")}
        assert names == {"CUDA", "OpenACC", "OpenCL", "OpenMP"}

    def test_models_supporting_unknown(self):
        with pytest.raises(KeyError):
            models_supporting("teleportation")

    def test_support_matrix_shape(self):
        m = support_matrix()
        assert len(m) == 11
        assert all(set(v) == set(FEATURE_FIELDS) for v in m.values())

    def test_compare_renders(self):
        text = compare(["OpenMP", "Cilk Plus"], ["reduction", "barrier"])
        assert "OpenMP" in text and "reduction" in text

    def test_compare_unknown_feature(self):
        with pytest.raises(KeyError):
            compare(["OpenMP"], ["nonsense"])

    def test_recommend_required_filters(self):
        ranked = recommend(["offloading", "data_binding"])
        assert [m.name for m, _ in ranked] == ["OpenMP"]

    def test_recommend_openmp_most_comprehensive(self):
        ranked = recommend([], list(FEATURE_FIELDS))
        assert ranked[0][0].name == "OpenMP"
        assert ranked[0][1] == len(FEATURE_FIELDS)

    def test_recommend_empty_requirements_returns_all(self):
        assert len(recommend([])) == 11

    def test_recommend_unknown_feature(self):
        with pytest.raises(KeyError):
            recommend(["warp_drive"])
