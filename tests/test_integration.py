"""Cross-module integration tests: every workload x version end to end."""

import pytest

from repro.core.registry import WORKLOADS, get_workload
from repro.runtime.base import ExecContext, ThreadExplosionError
from repro.runtime.run import run_program

CTX = ExecContext()

# small-but-structured parameters so the full matrix runs in seconds
SMALL = {
    "axpy": {"n": 200_000},
    "sum": {"n": 200_000},
    "matvec": {"n": 2_000},
    "matmul": {"n": 256},
    "fib": {"n": 14},
    "bfs": {"n_nodes": 100_000},
    "hotspot": {"grid": 512, "steps": 2},
    "lud": {"n": 512, "block": 32},
    "lavamd": {"boxes1d": 4},
    "srad": {"grid": 512, "iters": 2},
    "taskbench": {"pattern": "stencil", "width": 8, "steps": 4, "grain": 2e-6},
}


def all_cells():
    for name, spec in sorted(WORKLOADS.items()):
        for version in spec.versions:
            yield name, version


@pytest.mark.parametrize("workload,version", list(all_cells()))
def test_every_workload_version_runs(workload, version):
    """All 60 (workload, version) combinations build and execute."""
    spec = get_workload(workload)
    prog = spec.build(version, CTX.machine, **SMALL[workload])
    for p in (1, 8):
        res = run_program(prog, p, CTX, version)
        assert res.time > 0
        assert res.nthreads == p


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_parallelism_helps_at_small_scale(workload):
    """8 threads never lose to 1 thread (overheads stay bounded)."""
    spec = get_workload(workload)
    version = spec.versions[0]
    prog = spec.build(version, CTX.machine, **SMALL[workload])
    t1 = run_program(prog, 1, CTX, version).time
    t8 = run_program(prog, 8, CTX, version).time
    assert t8 < t1


def test_region_results_sum_to_program_time():
    spec = get_workload("hotspot")
    prog = spec.build("omp_for", CTX.machine, grid=512, steps=2)
    res = run_program(prog, 4, CTX, "omp_for")
    assert res.time == pytest.approx(sum(r.time for r in res.regions))
    assert len(res.regions) == 4


def test_cost_ablation_changes_results():
    """Zeroing the stealing costs collapses the cilk_for penalty path."""
    spec = get_workload("fib")
    prog = spec.build("omp_task", CTX.machine, n=14)
    base = run_program(prog, 4, CTX, "omp_task").time
    free_ctx = CTX.with_costs(omp_task_spawn=0.0, locked_push=0.0, locked_pop=0.0)
    cheap = run_program(prog, 4, free_ctx, "omp_task").time
    assert cheap < base


def test_machine_ablation_changes_results():
    """Halving memory bandwidth slows a bandwidth-bound kernel."""
    from dataclasses import replace

    spec = get_workload("axpy")
    prog = spec.build("omp_for", CTX.machine, n=500_000)
    base = run_program(prog, 8, CTX, "omp_for").time
    slow_machine = replace(CTX.machine, socket_bandwidth=CTX.machine.socket_bandwidth / 2,
                           core_bandwidth=CTX.machine.core_bandwidth / 2)
    slow = run_program(prog, 8, CTX.with_machine(slow_machine), "omp_for").time
    assert slow > base * 1.5


def test_thread_explosion_is_clean_error():
    spec = get_workload("fib")
    prog = spec.build("cxx_async", CTX.machine, n=22)
    with pytest.raises(ThreadExplosionError):
        run_program(prog, 8, CTX, "cxx_async")


def test_results_are_reproducible_across_processes_shape():
    """Same build + same ctx = identical simulated times (bit-stable)."""
    spec = get_workload("bfs")
    prog1 = spec.build("cilk_for", CTX.machine, n_nodes=100_000)
    prog2 = spec.build("cilk_for", CTX.machine, n_nodes=100_000)
    t1 = run_program(prog1, 8, CTX, "cilk_for").time
    t2 = run_program(prog2, 8, CTX, "cilk_for").time
    assert t1 == t2
