"""Tests for the functional Rodinia algorithms (serial references and
thread-parallel versions), validated against independent ground truth
(networkx BFS, scipy LU, physical invariants)."""

import networkx as nx
import numpy as np
import pytest
import scipy.linalg

from repro.native.pool import ThreadPool
from repro.native.rodinia import bfs_parallel, hotspot_parallel, lud_parallel, srad_parallel
from repro.rodinia.reference import (
    bfs_reference,
    hotspot_reference,
    lavamd_reference,
    lud_reference,
    random_adjacency,
    srad_reference,
)


@pytest.fixture(scope="module")
def pool():
    with ThreadPool(4) as p:
        yield p


# ---------------------------------------------------------------------------
# BFS
# ---------------------------------------------------------------------------
class TestBFS:
    def test_adjacency_is_symmetric(self):
        adj = random_adjacency(200, 4.0, seed=1)
        for u, nbrs in enumerate(adj):
            for v in nbrs:
                assert u in adj[int(v)]

    def test_depths_match_networkx(self):
        adj = random_adjacency(300, 5.0, seed=2)
        g = nx.Graph()
        g.add_nodes_from(range(300))
        for u, nbrs in enumerate(adj):
            g.add_edges_from((u, int(v)) for v in nbrs)
        expected = nx.single_source_shortest_path_length(g, 0)
        depth = bfs_reference(adj, 0)
        for node in range(300):
            if node in expected:
                assert depth[node] == expected[node], node
            else:
                assert depth[node] == -1, node

    def test_source_depth_zero(self):
        adj = random_adjacency(50, 3.0, seed=3)
        assert bfs_reference(adj, 7)[7] == 0

    def test_parallel_matches_reference(self, pool):
        adj = random_adjacency(400, 5.0, seed=4)
        assert np.array_equal(bfs_parallel(adj, pool), bfs_reference(adj))

    def test_disconnected_graph(self):
        adj = [np.array([1]), np.array([0]), np.array([], dtype=np.int64)]
        depth = bfs_reference(adj, 0)
        assert list(depth) == [0, 1, -1]

    def test_source_validation(self):
        adj = random_adjacency(10, 2.0)
        with pytest.raises(ValueError):
            bfs_reference(adj, 10)
        with pytest.raises(ValueError):
            bfs_parallel(adj, None, 99)  # source checked before pool use


# ---------------------------------------------------------------------------
# HotSpot
# ---------------------------------------------------------------------------
class TestHotSpot:
    def make(self, n=64, seed=5):
        rng = np.random.default_rng(seed)
        temp = 300.0 + 10.0 * rng.random((n, n))
        power = rng.random((n, n))
        return temp, power

    def test_zero_steps_identity(self):
        temp, power = self.make()
        assert np.array_equal(hotspot_reference(temp, power, 0), temp)

    def test_diffusion_smooths(self):
        temp, power = self.make()
        out = hotspot_reference(temp, np.zeros_like(power), 50)
        # with no power injection, spatial variance decays toward ambient
        assert out.std() < temp.std()

    def test_power_heats_the_hotspot(self):
        temp = np.full((32, 32), 80.0)
        power = np.zeros((32, 32))
        power[16, 16] = 50.0
        out = hotspot_reference(temp, power, 10)
        assert out[16, 16] == out.max()
        assert out[16, 16] > 80.0

    def test_uniform_grid_stays_uniform_without_power(self):
        temp = np.full((16, 16), ref_amb := 80.0)
        out = hotspot_reference(temp, np.zeros((16, 16)), 5)
        assert np.allclose(out, ref_amb)

    def test_parallel_matches_reference(self, pool):
        temp, power = self.make(96)
        serial = hotspot_reference(temp, power, 7)
        par = hotspot_parallel(temp, power, pool, 7)
        assert np.allclose(par, serial, rtol=0, atol=0)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            hotspot_reference(np.zeros((4, 4)), np.zeros((5, 4)))
        with pytest.raises(ValueError):
            hotspot_reference(np.zeros((4, 4)), np.zeros((4, 4)), steps=-1)


# ---------------------------------------------------------------------------
# LUD
# ---------------------------------------------------------------------------
def _dominant(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.random((n, n))
    a += n * np.eye(n)  # diagonally dominant: pivot-free LU is stable
    return a


class TestLUD:
    def test_reconstructs_input(self):
        a = _dominant(60, 6)
        lower, upper = lud_reference(a, block=16)
        assert np.allclose(lower @ upper, a, atol=1e-9)

    def test_triangular_structure(self):
        a = _dominant(33, 7)  # non-multiple of block exercises the tail
        lower, upper = lud_reference(a, block=8)
        assert np.allclose(np.triu(lower, 1), 0)
        assert np.allclose(np.diag(lower), 1)
        assert np.allclose(np.tril(upper, -1), 0)

    def test_matches_scipy_lu_when_no_pivoting_happens(self):
        a = _dominant(40, 8)
        _p, l_scipy, u_scipy = scipy.linalg.lu(a)
        lower, upper = lud_reference(a, block=10)
        # scipy pivots; on a strongly dominant matrix the permutation
        # is identity, so the factors coincide
        assert np.allclose(lower, l_scipy, atol=1e-8)
        assert np.allclose(upper, u_scipy, atol=1e-8)

    def test_block_size_independent(self):
        a = _dominant(48, 9)
        l1, u1 = lud_reference(a, block=4)
        l2, u2 = lud_reference(a, block=48)
        assert np.allclose(l1, l2, atol=1e-9)
        assert np.allclose(u1, u2, atol=1e-9)

    def test_zero_pivot_raises(self):
        with pytest.raises(ZeroDivisionError):
            lud_reference(np.zeros((4, 4)))

    def test_parallel_matches_reference(self, pool):
        a = _dominant(64, 10)
        l_s, u_s = lud_reference(a, block=16)
        l_p, u_p = lud_parallel(a, pool, block=16)
        assert np.array_equal(l_p, l_s)
        assert np.array_equal(u_p, u_s)

    def test_validation(self):
        with pytest.raises(ValueError):
            lud_reference(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            lud_reference(_dominant(8, 0), block=0)


# ---------------------------------------------------------------------------
# SRAD
# ---------------------------------------------------------------------------
class TestSRAD:
    def make(self, n=64, seed=11):
        rng = np.random.default_rng(seed)
        clean = 100.0 + 20.0 * np.sin(np.linspace(0, 3, n))[:, None]
        speckle = rng.gamma(50.0, 1.0 / 50.0, size=(n, n))
        return clean * speckle

    def test_zero_iters_identity(self):
        img = self.make()
        assert np.array_equal(srad_reference(img, 0), img)

    def test_reduces_speckle_variance(self):
        img = self.make()
        out = srad_reference(img, 20)
        # normalized variance (the speckle statistic) must fall
        assert out.var() / out.mean() ** 2 < img.var() / img.mean() ** 2

    def test_preserves_positivity_and_scale(self):
        img = self.make()
        out = srad_reference(img, 10)
        assert (out > 0).all()
        assert abs(out.mean() - img.mean()) / img.mean() < 0.05

    def test_parallel_matches_reference(self, pool):
        img = self.make(80)
        assert np.allclose(
            srad_parallel(img, pool, 5), srad_reference(img, 5), rtol=0, atol=0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            srad_reference(np.ones(5))
        with pytest.raises(ValueError):
            srad_reference(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            srad_reference(np.ones((4, 4)), iters=-1)


# ---------------------------------------------------------------------------
# LavaMD
# ---------------------------------------------------------------------------
class TestLavaMD:
    def make(self, boxes1d=3, ppb=8, seed=12):
        rng = np.random.default_rng(seed)
        nboxes = boxes1d**3
        positions = rng.random((nboxes, ppb, 3))
        # spread boxes in space so the box grid means something
        for bx in range(boxes1d):
            for by in range(boxes1d):
                for bz in range(boxes1d):
                    b = (bx * boxes1d + by) * boxes1d + bz
                    positions[b] += np.array([bx, by, bz], dtype=float)
        charges = rng.random((nboxes, ppb))
        return positions, charges

    def test_shapes(self):
        pos, q = self.make()
        out = lavamd_reference(pos, q, 3)
        assert out.shape == q.shape
        assert (out > 0).all()

    def test_self_interaction_included(self):
        # a single isolated particle sees its own charge (exp(0) = 1)
        pos = np.zeros((1, 1, 3))
        q = np.array([[2.5]])
        out = lavamd_reference(pos, q, 1)
        assert out[0, 0] == pytest.approx(2.5)

    def test_matches_brute_force(self):
        """Against an O(n^2) all-pairs computation restricted to
        neighbouring boxes."""
        boxes1d, ppb = 2, 4
        pos, q = self.make(boxes1d, ppb, seed=13)
        out = lavamd_reference(pos, q, boxes1d, alpha=0.3)
        # with boxes1d=2 every box neighbours every other
        flat_p = pos.reshape(-1, 3)
        flat_q = q.reshape(-1)
        diff = flat_p[:, None, :] - flat_p[None, :, :]
        r2 = np.einsum("ijk,ijk->ij", diff, diff)
        brute = (flat_q[None, :] * np.exp(-0.3 * r2)).sum(axis=1)
        assert np.allclose(out.reshape(-1), brute)

    def test_distant_boxes_ignored(self):
        boxes1d = 4  # corner boxes are not neighbours
        pos, q = self.make(boxes1d, 2, seed=14)
        base = lavamd_reference(pos, q, boxes1d)
        q2 = q.copy()
        q2[-1] *= 100.0  # far corner box
        out = lavamd_reference(pos, q2, boxes1d)
        assert np.allclose(out[0], base[0])  # home corner unaffected

    def test_validation(self):
        pos, q = self.make()
        with pytest.raises(ValueError):
            lavamd_reference(pos[:5], q, 3)
        with pytest.raises(ValueError):
            lavamd_reference(pos, q[:, :2], 3)
