"""Tests for the ``repro perf`` CLI and the automatic ledger appends.

Exit-code contract: 0 success / within tolerance, 1 regression past
tolerance, 2 bad input (missing baseline, empty ledger, telemetry
disabled for a measurement run).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.perf import Ledger, write_baseline
from repro.perf.ledger import LEDGER_DIR_ENV
from repro.perf.spans import PERF_OFF_ENV


@pytest.fixture
def ledger_dir(tmp_path, monkeypatch):
    """Point every command in the test at a scratch ledger."""
    root = tmp_path / "ledger"
    monkeypatch.setenv(LEDGER_DIR_ENV, str(root))
    monkeypatch.delenv(PERF_OFF_ENV, raising=False)
    return root


def _seed_ledger(args=()):
    """One real sweep through the CLI so the ledger has a record."""
    rc = main(
        ["sweep", "axpy", "--threads", "1", "2", "--no-cache", "-q", *args]
    )
    assert rc == 0


class TestParser:
    def test_perf_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf"])

    def test_compare_requires_baseline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "compare"])

    def test_record_args(self):
        args = build_parser().parse_args(
            ["perf", "record", "axpy", "--repeat", "3", "--update-baseline"]
        )
        assert args.perf_command == "record"
        assert args.repeat == 3 and args.update_baseline


class TestSweepLedgerAppend:
    def test_sweep_appends_record_and_trajectory(self, ledger_dir, capsys):
        _seed_ledger()
        capsys.readouterr()
        ledger = Ledger(ledger_dir)
        rec = ledger.last(kind="sweep", name="sweep:axpy")
        assert rec is not None
        assert rec["wall_seconds"] > 0
        assert rec["extra"]["cache"] == "off"
        assert rec["extra"]["simulations"] == 18
        assert (ledger_dir / "BENCH_sweep_axpy.json").exists()

    def test_sweep_perf_off_appends_nothing(self, ledger_dir, monkeypatch, capsys):
        monkeypatch.setenv(PERF_OFF_ENV, "1")
        _seed_ledger()
        capsys.readouterr()
        assert not ledger_dir.exists()


class TestPerfReport:
    def test_report_from_ledger(self, ledger_dir, capsys):
        _seed_ledger()
        capsys.readouterr()
        assert main(["perf", "report"]) == 0
        out = capsys.readouterr().out
        assert "host-cost attribution" in out
        assert "simulate" in out

    def test_report_empty_ledger_exits_2(self, ledger_dir, capsys):
        assert main(["perf", "report"]) == 2
        assert "no matching ledger record" in capsys.readouterr().err

    def test_report_from_metrics_file(self, ledger_dir, tmp_path, capsys):
        out_json = tmp_path / "metrics.json"
        _seed_ledger(["--metrics-out", str(out_json)])
        capsys.readouterr()
        doc = json.loads(out_json.read_text())
        assert doc["host"]["wall_seconds"] > 0  # satellite: host cost in --metrics-out
        assert main(["perf", "report", "--input", str(out_json)]) == 0
        assert "host-cost attribution" in capsys.readouterr().out


class TestPerfLedgerCommand:
    def test_ledger_tail(self, ledger_dir, capsys):
        _seed_ledger()
        capsys.readouterr()
        assert main(["perf", "ledger"]) == 0
        out = capsys.readouterr().out
        assert "sweep:axpy" in out and "wall=" in out

    def test_ledger_json(self, ledger_dir, capsys):
        _seed_ledger()
        capsys.readouterr()
        assert main(["perf", "ledger", "--json", "--tail", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "sweep:axpy"

    def test_ledger_empty_exits_2(self, ledger_dir, capsys):
        assert main(["perf", "ledger"]) == 2
        assert "empty" in capsys.readouterr().err


class TestPerfCompare:
    def test_missing_baseline_exits_2(self, ledger_dir, capsys):
        assert main(["perf", "compare", "--baseline", "no-such-baseline"]) == 2
        assert "no baseline" in capsys.readouterr().err

    def test_within_tolerance_exits_0(self, ledger_dir, tmp_path, capsys):
        _seed_ledger()
        capsys.readouterr()
        rec = Ledger(ledger_dir).last(name="sweep:axpy")
        base = write_baseline(
            "sweep:axpy",
            {"wall_seconds": rec["wall_seconds"], "cpu_seconds": rec["cpu_seconds"]},
            root=tmp_path / "baselines", meta={"subject": "sweep:axpy"},
        )
        assert main(["perf", "compare", "--baseline", str(base)]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_2x_slowdown_exits_1_and_warn_only_0(self, ledger_dir, tmp_path, capsys):
        _seed_ledger()
        capsys.readouterr()
        rec = Ledger(ledger_dir).last(name="sweep:axpy")
        base = write_baseline(
            "sweep:axpy",
            {"wall_seconds": rec["wall_seconds"] / 2.5},  # current is 2.5x over
            root=tmp_path / "baselines", meta={"subject": "sweep:axpy"},
        )
        argv = ["perf", "compare", "--baseline", str(base), "--tolerance", "0.5"]
        assert main(argv) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main([*argv, "--warn-only"]) == 0

    def test_no_matching_record_exits_2(self, ledger_dir, tmp_path, capsys):
        base = write_baseline(
            "sweep:nope", {"wall_seconds": 1.0},
            root=tmp_path / "baselines", meta={"subject": "sweep:nope"},
        )
        assert main(["perf", "compare", "--baseline", str(base)]) == 2
        assert "no ledger record" in capsys.readouterr().err


class TestPerfRecord:
    def test_record_updates_baseline(self, ledger_dir, tmp_path, capsys):
        bdir = tmp_path / "baselines"
        rc = main(
            ["perf", "record", "axpy", "--threads", "1", "2", "--repeat", "2",
             "--update-baseline", "--baseline-dir", str(bdir)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "repeat 0:" in out and "repeat 1:" in out
        doc = json.loads((bdir / "sweep_axpy.json").read_text())
        assert doc["meta"]["subject"] == "sweep:axpy"
        walls = [
            r["wall_seconds"]
            for r in Ledger(ledger_dir).records(kind="record", name="sweep:axpy")
        ]
        assert len(walls) == 2
        # baseline takes the best repeat
        assert doc["metrics"]["wall_seconds"] == pytest.approx(min(walls), abs=1e-6)

    def test_record_with_perf_off_exits_2(self, ledger_dir, monkeypatch, capsys):
        monkeypatch.setenv(PERF_OFF_ENV, "1")
        assert main(["perf", "record", "axpy"]) == 2
        assert "REPRO_PERF_OFF" in capsys.readouterr().err


class TestFaultsValidateAppend:
    def test_faults_appends_record(self, ledger_dir, capsys):
        assert main(["faults", "axpy", "--model", "omp_for"]) == 0
        capsys.readouterr()
        rec = Ledger(ledger_dir).last(kind="faults")
        assert rec is not None
        assert rec["name"] == "faults:axpy:omp_for"
        assert rec["extra"]["inject"] == "fail:task=1"

    def test_validate_appends_record(self, ledger_dir, capsys):
        assert main(["validate", "--programs", "2"]) == 0
        capsys.readouterr()
        rec = Ledger(ledger_dir).last(kind="validate")
        assert rec is not None
        assert rec["extra"]["checks"] > 0
        assert rec["spans"]["validate.differential"]["count"] == 1
