"""Tests for the benchmark kernels (builders + numpy references)."""

import numpy as np
import pytest

from repro.kernels import KERNELS, axpy, build_kernel_program, fib, matmul, matvec, sumreduce
from repro.kernels.common import dispatch_loop, kernel_module, op_seconds
from repro.models import VERSIONS
from repro.sim.machine import PAPER_MACHINE
from repro.sim.task import IterSpace


class TestCommon:
    def test_op_seconds(self):
        t = op_seconds(PAPER_MACHINE, 2.3e9 * 8)  # ipc=8 -> one second
        assert t == pytest.approx(1.0)

    def test_op_seconds_validation(self):
        with pytest.raises(ValueError):
            op_seconds(PAPER_MACHINE, -1)
        with pytest.raises(ValueError):
            op_seconds(PAPER_MACHINE, 1, ipc=0)

    def test_registry_contains_all_kernels(self):
        assert set(KERNELS) == {"axpy", "sum", "matvec", "matmul", "fib"}

    def test_kernel_module_lookup(self):
        assert kernel_module("axpy") is axpy
        with pytest.raises(KeyError):
            kernel_module("nope")

    def test_dispatch_loop_all_versions(self):
        space = IterSpace.uniform(100, 1e-7)
        for v in VERSIONS:
            region = dispatch_loop(v, space)
            assert region is not None

    def test_dispatch_loop_unknown_version(self):
        with pytest.raises(ValueError):
            dispatch_loop("tbb_for", IterSpace.uniform(10, 1e-7))


class TestAxpy:
    def test_space_totals(self):
        s = axpy.space(PAPER_MACHINE, 1000)
        assert s.niter == 1000
        assert s.total_bytes == pytest.approx(24 * 1000)

    def test_program_meta(self):
        prog = axpy.program("omp_for", machine=PAPER_MACHINE, n=100)
        assert prog.meta["kernel"] == "axpy"
        assert prog.meta["version"] == "omp_for"
        assert len(prog) == 1

    def test_reference(self):
        x = np.array([1.0, 2.0])
        y = np.array([3.0, 4.0])
        out = axpy.reference(2.0, x, y)
        assert np.allclose(out, [5.0, 8.0])
        assert np.allclose(y, [3.0, 4.0]), "reference must not mutate"

    def test_reference_shape_check(self):
        with pytest.raises(ValueError):
            axpy.reference(1.0, np.ones(3), np.ones(4))


class TestSum:
    def test_all_versions_reduce(self):
        for v in VERSIONS:
            prog = sumreduce.program(v, machine=PAPER_MACHINE, n=100)
            assert len(prog) == 1

    def test_reference(self):
        x = np.arange(10.0)
        assert sumreduce.reference(2.0, x) == pytest.approx(90.0)


class TestMatvecMatmul:
    def test_matvec_space_scales_quadratically(self):
        s1 = matvec.space(PAPER_MACHINE, 100)
        s2 = matvec.space(PAPER_MACHINE, 200)
        assert s2.total_work == pytest.approx(4 * s1.total_work, rel=1e-6)

    def test_matvec_reference(self):
        m = np.arange(6.0).reshape(2, 3)
        v = np.ones(3)
        assert np.allclose(matvec.reference(m, v), m @ v)

    def test_matvec_reference_shape_check(self):
        with pytest.raises(ValueError):
            matvec.reference(np.ones((2, 3)), np.ones(4))

    def test_matmul_compute_bound(self):
        s = matmul.space(PAPER_MACHINE, 2048)
        w, b = s.chunk_cost(0, 1)
        bw = PAPER_MACHINE.bandwidth_per_thread(1)
        assert w > b / bw, "matmul rows must be compute bound"

    def test_matmul_reference(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(12.0).reshape(3, 4)
        assert np.allclose(matmul.reference(a, b), a @ b)

    def test_matmul_reference_shape_check(self):
        with pytest.raises(ValueError):
            matmul.reference(np.ones((2, 3)), np.ones((4, 2)))


class TestFib:
    def test_reference_values(self):
        assert [fib.reference(i) for i in range(8)] == [0, 1, 1, 2, 3, 5, 8, 13]
        assert fib.reference(40) == 102_334_155

    def test_reference_rejects_negative(self):
        with pytest.raises(ValueError):
            fib.reference(-1)

    def test_task_count_formula(self):
        assert fib.task_count(0) == 1
        assert fib.task_count(1) == 1
        assert fib.task_count(2) == 4
        assert fib.task_count(5) == 3 * fib.reference(6) - 2

    def test_graph_matches_task_count(self):
        for n in (0, 1, 2, 5, 10):
            assert len(fib.graph(n)) == fib.task_count(n)

    def test_graph_structure(self):
        g = fib.graph(3)
        g.validate()
        tags = {t.tag for t in g.tasks}
        assert tags == {"spawn", "cont", "leaf"}
        # exactly one final continuation with no successors
        sinks = [t.tid for t in g.tasks if not g.successors[t.tid]]
        assert len(sinks) == 1

    def test_graph_size_guard(self):
        with pytest.raises(ValueError, match="tasks"):
            fib.graph(40)

    def test_program_versions(self):
        for v in ("omp_task", "cilk_spawn", "cxx_async", "cxx_thread"):
            prog = fib.program(v, machine=PAPER_MACHINE, n=10)
            assert prog.meta["kernel"] == "fib"

    def test_program_rejects_data_parallel(self):
        with pytest.raises(ValueError, match="not practical"):
            fib.program("omp_for", machine=PAPER_MACHINE, n=10)

    def test_build_kernel_program_registry(self):
        prog = build_kernel_program("fib", "cilk_spawn", PAPER_MACHINE, n=8)
        assert prog.meta["n"] == 8
