"""Run-ledger tests: append/round-trip, concurrency, corruption tolerance.

The ledger is append-only JSONL written with single ``O_APPEND`` writes,
so records from concurrent writers must interleave as whole lines and a
corrupt line must cost only itself.
"""

from __future__ import annotations

import json
import multiprocessing
import sys

from repro.perf.ledger import LEDGER_DIR_ENV, Ledger, ledger_dir, make_record
from repro.perf.spans import PerfRecorder


def _record(name="sweep:axpy", kind="sweep", wall=1.25):
    rec = PerfRecorder("t")
    rec.wall = wall
    rec.cpu = wall * 0.9
    rec.add_span("cell.simulate", wall * 0.8, wall * 0.7)
    rec.count("cache.hit", 3)
    rec.observe("cache.probe_seconds", 0.001)
    return make_record(kind, name, rec, extra={"jobs": 2})


class TestMakeRecord:
    def test_from_recorder(self):
        doc = _record()
        assert doc["schema"] == 1
        assert doc["kind"] == "sweep"
        assert doc["name"] == "sweep:axpy"
        assert doc["wall_seconds"] == 1.25
        assert doc["spans"]["cell.simulate"]["count"] == 1
        assert doc["counters"]["cache.hit"] == 3
        assert doc["extra"] == {"jobs": 2}
        env = doc["env"]
        assert env["python"].startswith(f"{sys.version_info[0]}.")
        assert "platform" in env and "cpu_count" in env

    def test_from_snapshot_dict(self):
        rec = PerfRecorder("t")
        rec.wall, rec.cpu = 2.0, 1.5
        rec.add_span("x", 1.0, 1.0)
        doc = make_record("sweep", "s", rec.snapshot(), env=False)
        assert doc["wall_seconds"] == 2.0
        assert doc["cpu_seconds"] == 1.5
        assert doc["spans"]["x"]["wall"] == 1.0
        assert "env" not in doc

    def test_none_recorder(self):
        doc = make_record("bench", "b", None, env=False)
        assert doc["wall_seconds"] == 0.0
        assert "spans" not in doc


class TestLedgerRoundTrip:
    def test_append_and_read_back(self, tmp_path):
        ledger = Ledger(tmp_path)
        out = ledger.append(_record())
        assert "ts" in out
        recs = list(ledger)
        assert len(recs) == 1
        assert recs[0]["name"] == "sweep:axpy"
        assert recs[0]["spans"]["cell.simulate"]["wall"] > 0

    def test_lazy_directory(self, tmp_path):
        root = tmp_path / "nested" / "ledger"
        ledger = Ledger(root)
        assert not root.exists()
        assert list(ledger) == []  # reading a missing ledger is empty, not an error
        ledger.append(_record())
        assert ledger.path.exists()

    def test_filters_tail_last(self, tmp_path):
        ledger = Ledger(tmp_path)
        for i in range(5):
            ledger.append(_record(name=f"sweep:w{i % 2}", wall=float(i)))
        assert len(ledger) == 5
        w0 = ledger.records(name="sweep:w0")
        assert [r["wall_seconds"] for r in w0] == [0.0, 2.0, 4.0]
        assert len(ledger.tail(2)) == 2
        last = ledger.last(name="sweep:w1")
        assert last is not None and last["wall_seconds"] == 3.0
        assert ledger.last(name="sweep:nope") is None
        assert ledger.records(kind="bench") == []

    def test_corrupt_lines_are_skipped(self, tmp_path):
        ledger = Ledger(tmp_path)
        ledger.append(_record(wall=1.0))
        with open(ledger.path, "a") as fh:
            fh.write("{torn json...\n")
            fh.write("[1, 2, 3]\n")  # valid JSON but not a record object
            fh.write("\n")
        ledger.append(_record(wall=2.0))
        recs = list(ledger)
        assert [r["wall_seconds"] for r in recs] == [1.0, 2.0]

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_DIR_ENV, str(tmp_path / "override"))
        assert ledger_dir() == tmp_path / "override"
        assert Ledger().root == tmp_path / "override"
        monkeypatch.delenv(LEDGER_DIR_ENV)
        assert str(ledger_dir()).endswith("ledger")


def _writer(root: str, worker: int, n: int) -> None:
    ledger = Ledger(root)
    for i in range(n):
        ledger.append(
            make_record("test", f"w{worker}", None, extra={"i": i}, env=False)
        )


class TestConcurrentWriters:
    def test_parallel_appends_never_tear(self, tmp_path):
        nproc, nrec = 4, 25
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_writer, args=(str(tmp_path), w, nrec))
            for w in range(nproc)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        # every line parses (no interleaving) and every record arrived
        lines = Ledger(tmp_path).path.read_text().splitlines()
        assert len(lines) == nproc * nrec
        docs = [json.loads(line) for line in lines]
        for w in range(nproc):
            mine = [d for d in docs if d["name"] == f"w{w}"]
            assert sorted(d["extra"]["i"] for d in mine) == list(range(nrec))
