"""Property-based tests on core data structures and scheduling invariants."""


import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.runtime.base import ExecContext
from repro.runtime.worksharing import run_worksharing_loop
from repro.runtime.workstealing import StealingScheduler, cilk_for_graph, flat_chunk_graph
from repro.sim.costs import CostModel
from repro.sim.deque import make_deque
from repro.sim.engine import SimLock
from repro.sim.machine import Machine
from repro.sim.task import IterSpace, TaskGraph

SMALL_CTX = ExecContext(machine=Machine(sockets=2, cores_per_socket=4, smt=2, name="prop"))


# ---------------------------------------------------------------------------
# IterSpace
# ---------------------------------------------------------------------------
@given(
    niter=st.integers(1, 10_000),
    w=st.floats(1e-9, 1e-3),
    b=st.floats(0, 1e3),
    cut=st.floats(0, 1),
)
def test_iterspace_chunk_cost_additive(niter, w, b, cut):
    """cost([0,m)) + cost([m,n)) == cost([0,n)) for any split point."""
    s = IterSpace.uniform(niter, w, b)
    m = int(cut * niter)
    w1, b1 = s.chunk_cost(0, m)
    w2, b2 = s.chunk_cost(m, niter)
    assert w1 + w2 == pytest.approx(s.total_work, rel=1e-9, abs=1e-18)
    assert b1 + b2 == pytest.approx(s.total_bytes, rel=1e-9, abs=1e-12)


@given(
    work=st.lists(st.floats(0, 1e-3), min_size=1, max_size=500),
    max_blocks=st.integers(1, 64),
)
def test_iterspace_profile_total_preserved(work, max_blocks):
    """Block compression never changes the total cost."""
    arr = np.array(work)
    s = IterSpace.from_profile(arr, max_blocks=max_blocks)
    assert s.total_work == pytest.approx(float(arr.sum()), rel=1e-9, abs=1e-15)


@given(
    niter=st.integers(2, 5000),
    edges=st.lists(st.integers(0, 5000), min_size=2, max_size=20),
)
def test_iterspace_chunk_costs_monotone(niter, edges):
    """Chunk costs are non-negative for any sorted bound sequence."""
    bounds = sorted(set(e % (niter + 1) for e in edges))
    assume(len(bounds) >= 2)
    s = IterSpace.uniform(niter, 1e-6, 2.0)
    ws, bs = s.chunk_costs(np.array(bounds))
    assert (ws >= -1e-15).all()
    assert (bs >= -1e-12).all()


# ---------------------------------------------------------------------------
# TaskGraph
# ---------------------------------------------------------------------------
@st.composite
def random_dag(draw):
    n = draw(st.integers(1, 40))
    g = TaskGraph("rand")
    for i in range(n):
        ndeps = draw(st.integers(0, min(3, i)))
        deps = draw(
            st.lists(st.integers(0, i - 1), min_size=ndeps, max_size=ndeps, unique=True)
        ) if i else []
        g.add(draw(st.floats(1e-8, 1e-5)), deps=deps)
    return g


@given(random_dag())
def test_critical_path_bounds(g):
    """T_inf <= T_1, and T_inf >= the longest single task."""
    cp = g.critical_path()
    assert cp <= g.total_work() + 1e-12
    assert cp >= max(t.work for t in g.tasks) - 1e-15


@given(random_dag(), st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_stealing_executes_every_dag(g, p):
    """The scheduler completes any topological DAG, conserving work."""
    res = StealingScheduler(g, p, SMALL_CTX).run()
    assert res.total_tasks == len(g)
    assert res.total_busy == pytest.approx(g.total_work(), rel=1e-6)
    # makespan respects the greedy lower bounds
    assert res.time >= g.critical_path() * (1 - 1e-9)
    assert res.time >= g.total_work() / p * (1 - 1e-9)


@given(random_dag(), st.integers(1, 8), st.sampled_from(["the", "locked"]))
@settings(max_examples=30, deadline=None)
def test_stealing_deterministic(g, p, deque):
    a = StealingScheduler(g, p, SMALL_CTX, deque=deque).run().time
    b = StealingScheduler(g, p, SMALL_CTX, deque=deque).run().time
    assert a == b


# ---------------------------------------------------------------------------
# Deques
# ---------------------------------------------------------------------------
@given(
    ops=st.lists(st.sampled_from(["push", "pop", "steal"]), max_size=200),
    kind=st.sampled_from(["the", "locked"]),
)
def test_deque_model_matches_reference(ops, kind):
    """Deque contents always match a plain list double-ended model."""
    d = make_deque(kind, 0, CostModel())
    ref: list[int] = []
    t, next_tid = 0.0, 0
    for op in ops:
        if op == "push":
            t = d.push(t, next_tid)
            ref.append(next_tid)
            next_tid += 1
        elif op == "pop":
            tid, t = d.pop(t)
            assert tid == (ref.pop() if ref else None)
        else:
            tid, t = d.steal(t)
            assert tid == (ref.pop(0) if ref else None)
        assert len(d) == len(ref)


@given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 1)), max_size=50))
def test_simlock_grants_never_overlap(requests):
    """Sequential grants: each grant starts no earlier than the previous
    release, when requests arrive in time order."""
    lock = SimLock()
    prev_release = 0.0
    for t, hold in sorted(requests):
        grant = lock.acquire(t, hold)
        assert grant >= t
        assert grant >= prev_release - 1e-12
        prev_release = grant + hold


# ---------------------------------------------------------------------------
# Machine monotonicity
# ---------------------------------------------------------------------------
@given(st.integers(1, 200), st.integers(1, 200))
def test_machine_aggregate_compute_monotone_within_regime(p1, p2):
    """Within a placement regime (shared-context or oversubscribed),
    more software threads never reduce aggregate compute throughput.
    Crossing into oversubscription may legitimately drop it (the
    context-switching cliff modelled by oversub_efficiency)."""
    m = Machine()
    lo, hi = min(p1, p2), max(p1, p2)
    same_regime = (hi <= m.hw_threads) or (lo > m.hw_threads)
    if same_regime:
        assert lo * m.compute_speed(lo) <= hi * m.compute_speed(hi) + 1e-9
    else:
        # even across the cliff, throughput never falls below the
        # oversubscribed plateau
        floor = m.physical_cores * m.smt_throughput * m.oversub_efficiency
        assert hi * m.compute_speed(hi) >= floor - 1e-9


@given(st.integers(1, 144), st.floats(0, 1))
def test_machine_bandwidth_share_positive(p, loc):
    m = Machine()
    assert m.bandwidth_per_thread(p, loc) > 0


# ---------------------------------------------------------------------------
# Worksharing
# ---------------------------------------------------------------------------
@given(
    niter=st.integers(1, 20_000),
    p=st.integers(1, 16),
    schedule=st.sampled_from(["static", "dynamic", "guided"]),
)
@settings(max_examples=50, deadline=None)
def test_worksharing_conserves_work(niter, p, schedule):
    space = IterSpace.uniform(niter, 1e-8, 0.0)
    res = run_worksharing_loop(space, p, SMALL_CTX, schedule=schedule)
    # busy time is wall time: SMT sharing may inflate it, never deflate
    assert res.total_busy >= space.total_work * (1 - 1e-6)
    if p <= SMALL_CTX.machine.physical_cores:
        assert res.total_busy == pytest.approx(space.total_work, rel=1e-6)
    assert res.time >= space.total_work / p * (1 - 1e-9)


@given(niter=st.integers(1, 5000), grainsize=st.integers(1, 512))
@settings(max_examples=50, deadline=None)
def test_cilk_tree_leaves_partition_space(niter, grainsize):
    space = IterSpace.uniform(niter, 1e-8, 4.0)
    g = cilk_for_graph(space, grainsize, SMALL_CTX)
    leaves = [t for t in g.tasks if t.tag == "chunk"]
    assert sum(t.work for t in leaves) == pytest.approx(space.total_work, rel=1e-9)
    g.validate()


@given(niter=st.integers(1, 5000), nchunks=st.integers(1, 64))
def test_flat_graph_partitions_space(niter, nchunks):
    space = IterSpace.uniform(niter, 1e-8, 4.0)
    g = flat_chunk_graph(space, nchunks, SMALL_CTX)
    assert len(g) == min(nchunks, niter)
    assert sum(t.work for t in g.tasks) == pytest.approx(space.total_work, rel=1e-9)
