"""Regression-tracker tests: trajectories, baselines, compare edge cases.

The detector must be one-sided (faster is never a regression), exact at
the tolerance boundary, safe on zero-time baselines, and loud on a
missing baseline.  Baseline files must be byte-deterministic.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.perf.regress import (
    ZERO_FLOOR,
    MissingBaselineError,
    baseline_path,
    compare,
    load_baseline,
    slugify,
    trajectory_path,
    update_trajectory,
    write_baseline,
)


def _record(name="sweep:axpy", wall=2.0, cpu=1.5, ts=100.0, **extra):
    doc = {
        "name": name,
        "kind": "sweep",
        "wall_seconds": wall,
        "cpu_seconds": cpu,
        "ts": ts,
        "env": {"python": "3.12.1", "git_sha": "abc123", "machine": "x86_64"},
    }
    if extra:
        doc["extra"] = extra
    return doc


class TestSlug:
    def test_slugify(self):
        assert slugify("sweep:axpy") == "sweep_axpy"
        assert slugify("a b/c") == "a_b_c"
        assert slugify("::") == "run"


class TestTrajectory:
    def test_update_creates_and_appends(self, tmp_path):
        path = update_trajectory(_record(ts=1.0), tmp_path)
        assert path == trajectory_path("sweep:axpy", tmp_path)
        assert path.name == "BENCH_sweep_axpy.json"
        update_trajectory(_record(ts=2.0, wall=3.0), tmp_path)
        doc = json.loads(path.read_text())
        assert doc["name"] == "sweep:axpy"
        assert [e["ts"] for e in doc["entries"]] == [1.0, 2.0]
        assert doc["entries"][1]["wall_seconds"] == 3.0
        assert doc["entries"][0]["env"]["git_sha"] == "abc123"

    def test_extra_carried_and_sorted(self, tmp_path):
        path = update_trajectory(_record(jobs=4, fidelity="2"), tmp_path)
        entry = json.loads(path.read_text())["entries"][0]
        assert entry["extra"] == {"fidelity": "2", "jobs": 4}

    def test_keep_caps_length(self, tmp_path):
        for i in range(7):
            update_trajectory(_record(ts=float(i)), tmp_path, keep=3)
        doc = json.loads(trajectory_path("sweep:axpy", tmp_path).read_text())
        assert [e["ts"] for e in doc["entries"]] == [4.0, 5.0, 6.0]

    def test_corrupt_trajectory_restarts(self, tmp_path):
        path = trajectory_path("sweep:axpy", tmp_path)
        path.write_text("not json")
        update_trajectory(_record(ts=9.0), tmp_path)
        doc = json.loads(path.read_text())
        assert [e["ts"] for e in doc["entries"]] == [9.0]


class TestBaselines:
    def test_write_is_deterministic(self, tmp_path):
        a = write_baseline(
            "sweep:axpy", {"wall_seconds": 1.23456789, "cpu_seconds": 1.0},
            root=tmp_path / "a", meta={"jobs": 1, "subject": "sweep:axpy"},
        )
        b = write_baseline(
            "sweep:axpy", {"cpu_seconds": 1.0, "wall_seconds": 1.23456789},
            root=tmp_path / "b", meta={"subject": "sweep:axpy", "jobs": 1},
        )
        assert a.read_text() == b.read_text()  # key order never leaks
        doc = json.loads(a.read_text())
        assert doc["metrics"]["wall_seconds"] == 1.234568  # rounded to 6 places
        assert "ts" not in doc and "time" not in doc

    def test_load_by_name_and_path(self, tmp_path):
        path = write_baseline("sweep:axpy", {"wall_seconds": 1.0}, root=tmp_path)
        assert path == baseline_path("sweep:axpy", tmp_path)
        by_name = load_baseline("sweep:axpy", root=tmp_path)
        by_path = load_baseline(path)
        assert by_name == by_path

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(MissingBaselineError):
            load_baseline("sweep:nope", root=tmp_path)
        # MissingBaselineError is a FileNotFoundError: callers may catch either
        assert issubclass(MissingBaselineError, FileNotFoundError)

    def test_invalid_baseline_raises_valueerror(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError):
            load_baseline(bad)
        bad.write_text(json.dumps({"metrics": [1, 2]}))
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestCompare:
    BASE = {"name": "sweep:axpy", "metrics": {"wall_seconds": 1.0, "cpu_seconds": 0.8}}

    def test_within_tolerance_ok(self):
        report = compare(self.BASE, _record(wall=1.2, cpu=0.9), tolerance=0.5)
        assert report.ok
        assert report.regressions == []
        assert report.check("wall_seconds").ratio == pytest.approx(1.2)

    def test_exact_boundary_passes(self):
        # current == baseline * (1 + tolerance) is within tolerance
        report = compare(self.BASE, _record(wall=1.5, cpu=1.2), tolerance=0.5)
        assert report.ok

    def test_injected_2x_slowdown_fails(self):
        report = compare(self.BASE, _record(wall=2.0, cpu=1.6), tolerance=0.5)
        assert not report.ok
        assert {c.metric for c in report.regressions} == {
            "wall_seconds", "cpu_seconds",
        }
        assert report.check("wall_seconds").ratio == pytest.approx(2.0)
        assert "REGRESSION" in report.describe()

    def test_faster_is_never_a_regression(self):
        report = compare(self.BASE, _record(wall=0.001, cpu=0.001), tolerance=0.0)
        assert report.ok

    def test_zero_baseline_zero_current_ok(self):
        base = {"metrics": {"wall_seconds": 0.0}}
        report = compare(base, {"wall_seconds": 0.0}, tolerance=0.5)
        assert report.ok
        assert report.check("wall_seconds").ratio == 1.0

    def test_zero_baseline_real_current_fails(self):
        base = {"metrics": {"wall_seconds": 0.0}}
        report = compare(base, {"wall_seconds": 0.25}, tolerance=0.5)
        assert not report.ok
        assert math.isinf(report.check("wall_seconds").ratio)
        assert "inf" in report.describe()

    def test_subresolution_baseline_uses_floor(self):
        base = {"metrics": {"wall_seconds": ZERO_FLOOR / 10}}
        report = compare(base, {"wall_seconds": ZERO_FLOOR / 10}, tolerance=0.0)
        assert report.ok  # clock noise under the floor never fails

    def test_metric_missing_from_current_is_zero(self):
        report = compare(self.BASE, {"name": "x"}, tolerance=0.5)
        assert report.ok
        assert report.check("cpu_seconds").current == 0.0

    def test_metrics_come_from_baseline(self):
        # current may carry extra metrics; only baseline's are judged
        cur = _record(wall=1.0, cpu=0.8)
        cur["gpu_seconds"] = 99.0
        report = compare(self.BASE, cur, tolerance=0.1)
        assert {c.metric for c in report.checks} == {"wall_seconds", "cpu_seconds"}

    def test_explicit_metric_subset(self):
        report = compare(
            self.BASE, _record(wall=5.0, cpu=0.8),
            tolerance=0.5, metrics=["cpu_seconds"],
        )
        assert report.ok  # wall regressed but was not selected

    def test_bare_metric_mapping_accepted(self):
        report = compare({"wall_seconds": 1.0}, {"wall_seconds": 1.1}, tolerance=0.2)
        assert report.ok

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare(self.BASE, _record(), tolerance=-0.1)
