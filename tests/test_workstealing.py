"""Tests for the work-stealing scheduler and its loop front-ends."""

import pytest

from repro.runtime.base import ExecContext
from repro.runtime.workstealing import (
    StealingScheduler,
    cilk_for_graph,
    default_grainsize,
    flat_chunk_graph,
    run_stealing_graph,
    run_stealing_loop,
    scatter_penalty,
)
from repro.sim.task import IterSpace, TaskGraph


def chain_graph(n, work=1e-6):
    g = TaskGraph("chain")
    prev = None
    for _ in range(n):
        prev = g.add(work, deps=[prev] if prev is not None else [])
    return g


def wide_graph(n, work=1e-6):
    g = TaskGraph("wide")
    for _ in range(n):
        g.add(work)
    return g


class TestScheduler:
    def test_all_tasks_complete(self, small_ctx):
        g = wide_graph(50)
        res = StealingScheduler(g, 4, small_ctx).run()
        assert res.total_tasks == 50
        assert res.time > 0

    def test_empty_graph(self, small_ctx):
        res = StealingScheduler(TaskGraph(), 4, small_ctx).run()
        assert res.time == 0.0

    def test_work_conservation(self, small_ctx):
        g = wide_graph(64, 2e-6)
        res = StealingScheduler(g, 4, small_ctx).run()
        assert res.total_busy == pytest.approx(64 * 2e-6, rel=1e-6)

    def test_chain_cannot_parallelize(self, small_ctx):
        g = chain_graph(20, 1e-6)
        res = StealingScheduler(g, 4, small_ctx).run()
        assert res.time >= 20e-6

    def test_parallel_speedup_on_wide_graph(self, small_ctx):
        g = wide_graph(256, 50e-6)
        t1 = StealingScheduler(wide_graph(256, 50e-6), 1, small_ctx).run().time
        t4 = StealingScheduler(g, 4, small_ctx).run().time
        assert t4 < t1 / 2.5

    def test_deterministic_given_seed(self, small_ctx):
        t_a = StealingScheduler(wide_graph(128, 5e-6), 4, small_ctx).run().time
        t_b = StealingScheduler(wide_graph(128, 5e-6), 4, small_ctx).run().time
        assert t_a == t_b

    def test_seed_changes_schedule(self, small_machine):
        ctx1 = ExecContext(machine=small_machine, seed=1)
        ctx2 = ExecContext(machine=small_machine, seed=2)
        t1 = StealingScheduler(wide_graph(200, 3e-6), 6, ctx1).run()
        t2 = StealingScheduler(wide_graph(200, 3e-6), 6, ctx2).run()
        # same totals, possibly different schedule
        assert t1.total_tasks == t2.total_tasks

    def test_makespan_at_least_greedy_bounds(self, small_ctx):
        g = wide_graph(100, 10e-6)
        res = StealingScheduler(g, 4, small_ctx).run()
        t1 = g.total_work()
        tinf = g.critical_path()
        assert res.time >= t1 / 4 * 0.999
        assert res.time >= tinf * 0.999

    def test_steals_happen_with_multiple_workers(self, small_ctx):
        g = wide_graph(64, 20e-6)
        res = StealingScheduler(g, 4, small_ctx).run()
        assert res.meta["steals"] > 0

    def test_no_steals_single_worker(self, small_ctx):
        g = wide_graph(32)
        res = StealingScheduler(g, 1, small_ctx).run()
        assert res.meta["steals"] == 0

    def test_locked_deque_slower_per_task(self, small_ctx):
        g1 = wide_graph(500, 0.2e-6)
        g2 = wide_graph(500, 0.2e-6)
        t_the = StealingScheduler(g1, 1, small_ctx, deque="the").run().time
        t_locked = StealingScheduler(g2, 1, small_ctx, deque="locked").run().time
        assert t_locked > t_the

    def test_undeferred_single_skips_deque(self, small_ctx):
        g = wide_graph(100, 1e-6)
        res = StealingScheduler(
            g, 1, small_ctx, deque="locked", undeferred_single=True
        ).run()
        assert res.meta.get("undeferred") is True
        spawn = small_ctx.costs.omp_task_spawn
        assert res.time == pytest.approx(100 * (1e-6 + spawn), rel=1e-6)

    def test_undeferred_only_at_one_thread(self, small_ctx):
        g = wide_graph(100, 1e-6)
        res = StealingScheduler(
            g, 2, small_ctx, deque="locked", undeferred_single=True
        ).run()
        assert "undeferred" not in res.meta

    def test_per_task_overhead_charged(self, small_ctx):
        g = wide_graph(50, 1e-6)
        base = StealingScheduler(wide_graph(50, 1e-6), 1, small_ctx).run().time
        extra = StealingScheduler(g, 1, small_ctx, per_task_overhead=1e-6).run().time
        assert extra == pytest.approx(base + 50e-6, rel=0.01)

    def test_reducer_views_merge_at_end(self, small_ctx):
        g = wide_graph(64, 20e-6)
        plain = StealingScheduler(wide_graph(64, 20e-6), 4, small_ctx).run()
        red = StealingScheduler(g, 4, small_ctx, reducer=True).run()
        assert red.meta["reducer_views"] == red.total_steals
        if red.total_steals:
            assert red.time > plain.time * 0.99

    def test_explicit_spawn_cost_overrides_default(self, small_ctx):
        g = wide_graph(50, 1e-6)
        cheap = StealingScheduler(wide_graph(50, 1e-6), 1, small_ctx, spawn_cost=0.0).run()
        costly = StealingScheduler(g, 1, small_ctx, spawn_cost=1e-5).run()
        assert costly.time > cheap.time

    def test_task_level_spawn_cost_wins(self, small_ctx):
        g = TaskGraph()
        g.add(1e-6, spawn_cost=1e-3)
        res = StealingScheduler(g, 1, small_ctx, spawn_cost=0.0).run()
        assert res.time >= 1e-3

    def test_invalid_thread_count(self, small_ctx):
        with pytest.raises(ValueError):
            StealingScheduler(wide_graph(5), 0, small_ctx)


class TestLoopFrontEnds:
    def test_default_grainsize_caps_at_2048(self):
        assert default_grainsize(100_000_000, 4) == 2048

    def test_default_grainsize_eighth_per_thread(self):
        assert default_grainsize(800, 10) == 10  # ceil(800/80)

    def test_default_grainsize_at_least_one(self):
        assert default_grainsize(5, 100) == 1

    def test_cilk_for_graph_covers_space(self, small_ctx):
        space = IterSpace.uniform(1000, 1e-8, 4.0)
        g = cilk_for_graph(space, 100, small_ctx)
        leaves = [t for t in g.tasks if t.tag == "chunk"]
        splits = [t for t in g.tasks if t.tag == "split"]
        assert sum(t.work for t in leaves) == pytest.approx(space.total_work, rel=1e-6)
        assert len(leaves) == len(splits) + 1  # binary tree
        assert 1000 / 100 <= len(leaves) <= 2 * (1000 / 100)

    def test_cilk_for_graph_single_leaf(self, small_ctx):
        space = IterSpace.uniform(10, 1e-8)
        g = cilk_for_graph(space, 100, small_ctx)
        assert len(g) == 1
        assert g.tasks[0].tag == "chunk"

    def test_cilk_for_penalty_inflates_bytes(self, small_ctx):
        space = IterSpace.uniform(1000, 1e-8, 8.0)
        g = cilk_for_graph(space, 100, small_ctx, bytes_penalty=2.0)
        leaves = [t for t in g.tasks if t.tag == "chunk"]
        assert sum(t.membytes for t in leaves) == pytest.approx(2 * space.total_bytes, rel=1e-6)

    def test_flat_chunk_graph(self, small_ctx):
        space = IterSpace.uniform(1000, 1e-8, 4.0)
        g = flat_chunk_graph(space, 8, small_ctx)
        assert len(g) == 8
        assert all(not t.deps for t in g.tasks)
        assert sum(t.work for t in g.tasks) == pytest.approx(space.total_work, rel=1e-6)

    def test_flat_chunk_graph_caps_at_niter(self, small_ctx):
        space = IterSpace.uniform(3, 1e-8)
        g = flat_chunk_graph(space, 10, small_ctx)
        assert len(g) == 3

    def test_flat_chunk_graph_rejects_zero(self, small_ctx):
        with pytest.raises(ValueError):
            flat_chunk_graph(IterSpace.uniform(10, 1e-8), 0, small_ctx)

    def test_run_stealing_loop_cilk_style(self, small_ctx):
        space = IterSpace.uniform(10_000, 1e-8, 8.0)
        res = run_stealing_loop(space, 4, small_ctx, style="cilk_for")
        assert res.meta["style"] == "cilk_for"
        assert res.total_busy >= space.total_work * 0.99

    def test_run_stealing_loop_flat_default_chunks(self, small_ctx):
        space = IterSpace.uniform(10_000, 1e-8)
        res = run_stealing_loop(space, 4, small_ctx, style="flat")
        assert res.total_tasks == 4

    def test_run_stealing_loop_chunks_per_thread(self, small_ctx):
        space = IterSpace.uniform(10_000, 1e-8)
        res = run_stealing_loop(space, 4, small_ctx, style="flat", chunks_per_thread=3)
        assert res.total_tasks == 12

    def test_run_stealing_loop_unknown_style(self, small_ctx):
        with pytest.raises(ValueError):
            run_stealing_loop(IterSpace.uniform(10, 1e-8), 2, small_ctx, style="magic")

    def test_reducer_inflates_loop_work(self, small_ctx):
        space = IterSpace.uniform(100_000, 1e-9)
        plain = run_stealing_loop(space, 1, small_ctx, style="flat")
        red = run_stealing_loop(space, 1, small_ctx, style="flat", reducer=True)
        assert red.time > plain.time + 100_000 * small_ctx.costs.reducer_access * 0.9


class TestScatterPenalty:
    def space(self, bytes_per_iter=8.0, locality=1.0):
        return IterSpace.uniform(1_000_000, 1e-9, bytes_per_iter, locality)

    def test_no_penalty_single_thread(self, ctx):
        assert scatter_penalty(self.space(), 1000, 1, ctx) == 1.0

    def test_no_penalty_without_bytes(self, ctx):
        assert scatter_penalty(self.space(bytes_per_iter=0.0), 1000, 8, ctx) == 1.0

    def test_small_chunks_penalized(self, ctx):
        fine = scatter_penalty(self.space(), 100_000, 4, ctx)  # 80B chunks
        coarse = scatter_penalty(self.space(), 4, 4, ctx)  # 2MB chunks
        assert fine > coarse

    def test_numa_term_kicks_in_across_sockets(self, ctx):
        single = scatter_penalty(self.space(), 4, 18, ctx)
        dual = scatter_penalty(self.space(), 4, 19, ctx)
        assert dual > single

    def test_saturation_fades_fine_chunk_term(self, ctx):
        p_low = scatter_penalty(self.space(), 100_000, 2, ctx)
        p_high = scatter_penalty(self.space(), 100_000, 18, ctx)
        assert p_high < p_low

    def test_penalty_bounded_below_by_one(self, ctx):
        for n in (1, 2, 8, 36, 72):
            assert scatter_penalty(self.space(), 1000, n, ctx) >= 1.0


class TestGraphEntryExit:
    def test_entry_exit_costs_added(self, small_ctx):
        g = wide_graph(10, 1e-6)
        base = run_stealing_graph(wide_graph(10, 1e-6), 2, small_ctx).time
        wrapped = run_stealing_graph(g, 2, small_ctx, entry_cost=1e-3, exit_cost=1e-3).time
        assert wrapped == pytest.approx(base + 2e-3, rel=0.01)
