"""Tests for the runtime cost model."""


import pytest

from repro.sim.costs import CostModel


class TestDefaults:
    def test_defaults_construct(self):
        c = CostModel()
        assert c.cilk_spawn < c.omp_task_spawn, "cilk spawn must be cheaper (Cilk-5)"
        assert c.the_push < c.locked_push, "THE owner ops are lock-free"
        assert c.thread_create > c.omp_task_spawn, "OS threads are costly"

    def test_all_costs_nonnegative(self):
        c = CostModel()
        for name, value in c.__dict__.items():
            assert value >= 0, name

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(cilk_spawn=-1e-9)

    def test_nan_cost_rejected(self):
        with pytest.raises(ValueError):
            CostModel(barrier_base=float("nan"))


class TestForkBarrier:
    def test_single_thread_is_free(self):
        c = CostModel()
        assert c.fork_cost(1) == 0.0
        assert c.barrier_cost(1) == 0.0

    def test_logarithmic_growth(self):
        c = CostModel()
        assert c.fork_cost(4) == pytest.approx(c.fork_base + 2 * c.fork_per_step)
        assert c.barrier_cost(16) == pytest.approx(c.barrier_base + 4 * c.barrier_per_step)

    def test_monotone_in_threads(self):
        c = CostModel()
        costs = [c.fork_cost(p) for p in (1, 2, 4, 8, 16, 32)]
        assert costs == sorted(costs)


class TestOverrides:
    def test_with_overrides_replaces(self):
        c = CostModel().with_overrides(the_steal=5e-6)
        assert c.the_steal == 5e-6
        assert c.the_push == CostModel().the_push

    def test_with_overrides_returns_new_object(self):
        base = CostModel()
        changed = base.with_overrides(cilk_spawn=1e-9)
        assert base.cilk_spawn != changed.cilk_spawn

    def test_zeroed(self):
        c = CostModel().zeroed("fork_base", "fork_per_step", "barrier_base", "barrier_per_step")
        assert c.fork_cost(36) == 0.0
        assert c.barrier_cost(36) == 0.0

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError):
            CostModel().with_overrides(not_a_cost=1.0)
