"""Fault-injection subsystem: plans, policies, semantics, accounting.

Covers the spec grammar and its validation errors, the per-model error
mode table (Table III), deterministic injection through every executor
family, retry/timeout/backoff recovery in ``run_program``, the
graceful-degradation accounting, and the Table III demo matrix.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    ERROR_MODES,
    FAULT_KINDS,
    Fault,
    FaultPlan,
    Policy,
    RegionFailedError,
    error_mode,
    fault_summary,
)
from repro.faults.demos import FAULT_DEMOS, run_demo
from repro.features.data import ALL_MODELS
from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.validate.invariants import check_region, check_result


# ---------------------------------------------------------------------------
# plan parsing and validation
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_single(self):
        plan = FaultPlan.parse("fail:task=5")
        (fault,) = tuple(plan)
        assert fault.kind == "task_fail"
        assert fault.task == 5

    def test_parse_multi(self):
        plan = FaultPlan.parse(
            "fail:task=1;stall:worker=0,at=1e-4,duration=2e-4;bandwidth:factor=4"
        )
        kinds = [f.kind for f in plan]
        assert kinds == ["task_fail", "worker_stall", "bandwidth_degrade"]

    def test_parse_aliases(self):
        for alias, kind in [
            ("fail:task=0", "task_fail"),
            ("stall:worker=0,duration=1e-5", "worker_stall"),
            ("lockdelay:duration=1e-6", "lock_delay"),
            ("bandwidth:factor=2", "bandwidth_degrade"),
        ]:
            (fault,) = tuple(FaultPlan.parse(alias))
            assert fault.kind == kind
            assert kind in FAULT_KINDS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.parse("explode:task=1")

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("fail:task=1,frobnicate=2")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("")

    def test_task_fail_needs_target(self):
        with pytest.raises(ValueError):
            Fault(kind="task_fail")

    def test_bandwidth_needs_positive_factor(self):
        with pytest.raises(ValueError):
            Fault(kind="bandwidth_degrade", factor=0.0)

    def test_roundtrip_dict(self):
        plan = FaultPlan.parse("fail:task=3,attempts=2;stall:worker=1,duration=1e-5")
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_coerce(self):
        plan = FaultPlan.parse("fail:task=1")
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce("fail:task=1") == plan
        assert FaultPlan.coerce(plan.to_dict()) == plan
        assert FaultPlan.coerce(None) is None

    def test_for_region_matching(self):
        plan = FaultPlan.parse("fail:task=1,region=loop")
        assert plan.for_region("my_loop", 0) is not None
        assert plan.for_region("kernel", 3) is None
        assert plan.for_region("kernel", 3, attempt=0) is None

    def test_attempts_gate(self):
        # attempts=1: the fault arms only on attempt 0; retries run clean
        plan = FaultPlan.parse("fail:task=0,attempts=1")
        assert plan.for_region("loop", 0, attempt=0) is not None
        assert plan.for_region("loop", 0, attempt=1) is None


class TestPolicy:
    def test_defaults(self):
        pol = Policy()
        assert pol.max_retries == 0
        assert pol.on_failure == "raise"

    def test_validation(self):
        with pytest.raises(ValueError):
            Policy(max_retries=-1)
        with pytest.raises(ValueError):
            Policy(on_failure="shrug")
        with pytest.raises(ValueError):
            Policy(timeout=0.0)

    def test_backoff_schedule(self):
        pol = Policy(max_retries=3, backoff=1e-6, backoff_factor=2.0)
        assert pol.retry_delay(0) == 1e-6
        assert pol.retry_delay(1) == 2e-6
        assert pol.retry_delay(2) == 4e-6

    def test_coerce_roundtrip(self):
        pol = Policy(max_retries=2, backoff=1e-6, on_failure="continue")
        assert Policy.coerce(pol.to_dict()) == pol
        assert Policy.coerce(None) is None


# ---------------------------------------------------------------------------
# Table III error-mode table
# ---------------------------------------------------------------------------
class TestErrorModes:
    @pytest.mark.parametrize("version,mode", [
        ("omp_for", "cancel"),
        ("omp_task", "cancel"),
        ("cilk_for", "none"),
        ("cilk_spawn", "poison"),
        ("cxx_thread", "rethrow"),
        ("cxx_async", "rethrow"),
    ])
    def test_registry_versions(self, version, mode):
        executor = "stealing" if version == "cilk_spawn" else ""
        if version == "cilk_for":
            executor = "stealing_loop"
        assert error_mode(version, executor) == mode
        assert mode in ERROR_MODES

    def test_accelerator_models_have_no_error_handling(self):
        assert error_mode("cuda") == "none"
        assert error_mode("openacc") == "none"

    def test_pthread_async_cancel(self):
        assert error_mode("pthread") == "async_cancel"

    def test_modes_match_feature_table(self):
        # Table III: supported error handling <-> a mode that acts on it
        expectations = {
            "OpenMP": "omp", "TBB": "tbb", "C++11": "cxx",
            "PThreads": "pthread", "OpenCL": "opencl",
        }
        for model in ALL_MODELS:
            prefix = expectations.get(model.name)
            if prefix is None:
                continue
            assert model.error_handling.supported
            assert error_mode(prefix) != "none"


# ---------------------------------------------------------------------------
# end-to-end: run_program with faults and recovery policies
# ---------------------------------------------------------------------------
def _fib_program(ctx, n=10):
    from repro.core.registry import get_workload

    return get_workload("fib").build("cilk_spawn", ctx.machine, n=n)


class TestRunProgramFaults:
    def test_fault_free_run_is_bit_identical(self):
        ctx = ExecContext()
        prog = _fib_program(ctx)
        base = run_program(prog, 4, ctx, "cilk_spawn")
        again = run_program(prog, 4, ctx, "cilk_spawn", faults=None, policy=None)
        assert base.time == again.time

    def test_failure_without_policy_raises(self):
        ctx = ExecContext()
        with pytest.raises(RegionFailedError) as err:
            run_program(_fib_program(ctx), 4, ctx, "cilk_spawn", faults="fail:task=5")
        assert err.value.attempts == 1

    def test_retry_recovers(self):
        ctx = ExecContext()
        res = run_program(
            _fib_program(ctx), 4, ctx, "cilk_spawn",
            faults="fail:task=5,attempts=1",
            policy={"max_retries": 1, "backoff": 1e-6},
        )
        assert len(res.regions) == 2  # failed attempt + clean retry
        first = res.regions[0].meta["fault"]
        assert first["failed"] and first["recovery"] == 1e-6
        assert "fault" not in res.regions[1].meta
        check_result(res, ctx=ctx).raise_if_failed()

    def test_retries_are_deterministic(self):
        ctx = ExecContext()
        kwargs = dict(
            faults="fail:task=5,attempts=1",
            policy={"max_retries": 2, "backoff": 1e-6},
        )
        r1 = run_program(_fib_program(ctx), 4, ctx, "cilk_spawn", **kwargs)
        r2 = run_program(_fib_program(ctx), 4, ctx, "cilk_spawn", **kwargs)
        assert r1.time == r2.time
        assert [r.time for r in r1.regions] == [r.time for r in r2.regions]

    def test_on_failure_continue(self):
        ctx = ExecContext()
        res = run_program(
            _fib_program(ctx), 4, ctx, "cilk_spawn",
            faults="fail:task=5", policy={"on_failure": "continue"},
        )
        doc = res.regions[-1].meta["fault"]
        assert doc["failed"] and doc["useful"] == 0.0 and doc["wasted"] > 0.0

    def test_timeout_marks_failure(self):
        ctx = ExecContext()
        clean = run_program(_fib_program(ctx), 4, ctx, "cilk_spawn")
        res = run_program(
            _fib_program(ctx), 4, ctx, "cilk_spawn",
            faults="stall:worker=0,duration=1",  # stall >> region time
            policy={"timeout": clean.time * 2, "on_failure": "continue"},
        )
        doc = res.regions[-1].meta["fault"]
        assert doc["failed"] and doc["kind"] == "timeout"

    def test_retry_budget_exhausted_raises_with_attempts(self):
        ctx = ExecContext()
        with pytest.raises(RegionFailedError) as err:
            run_program(
                _fib_program(ctx), 4, ctx, "cilk_spawn",
                faults="fail:task=5,attempts=99",
                policy={"max_retries": 2, "backoff": 1e-6},
            )
        assert err.value.attempts == 3

    def test_summary_accounting(self):
        ctx = ExecContext()
        res = run_program(
            _fib_program(ctx), 4, ctx, "cilk_spawn",
            faults="fail:task=5,attempts=1",
            policy={"max_retries": 1, "backoff": 1e-6},
        )
        s = fault_summary(res)
        assert s["failed_regions"] == 1
        assert s["retries"] == 1
        assert s["wasted_seconds"] > 0
        assert s["useful_seconds"] > 0  # the clean retry's work
        assert s["recovery_seconds"] == 1e-6

    def test_metrics_expose_fault_counters(self):
        from repro.obs.metrics import result_metrics

        ctx = ExecContext()
        res = run_program(
            _fib_program(ctx), 4, ctx, "cilk_spawn",
            faults="fail:task=5,attempts=1",
            policy={"max_retries": 1, "backoff": 1e-6},
        )
        m = result_metrics(res).to_dict()
        assert m["counters"]["region_failures"] == 1
        assert m["counters"]["retries"] == 1
        assert m["gauges"]["wasted_work_seconds"] > 0
        assert m["gauges"]["useful_work_seconds"] > 0
        assert m["gauges"]["recovery_seconds"] == 1e-6

    def test_perf_faults_degrade_without_failing(self):
        ctx = ExecContext()
        clean = run_program(_fib_program(ctx), 4, ctx, "cilk_spawn")
        res = run_program(
            _fib_program(ctx), 4, ctx, "cilk_spawn",
            # factor is a bandwidth multiplier: 0.25 = quarter bandwidth
            faults="bandwidth:factor=0.25,duration=1",
        )
        doc = res.regions[0].meta["fault"]
        assert not doc["failed"]
        assert res.time > clean.time
        check_result(res, ctx=ctx).raise_if_failed()


# ---------------------------------------------------------------------------
# Table III demos
# ---------------------------------------------------------------------------
class TestDemos:
    def test_every_supported_model_has_a_demo(self):
        for model in ALL_MODELS:
            if model.error_handling.supported:
                assert model.name in FAULT_DEMOS, model.name

    def test_every_model_row_is_covered(self):
        # the "x" rows are demos too (run to completion, wasted work)
        assert set(FAULT_DEMOS) == {m.name for m in ALL_MODELS}

    def test_feature_cells_cross_link_demos(self):
        for model in ALL_MODELS:
            assert model.error_handling.demo == f"faults:{model.name}"

    def test_unknown_demo_rejected(self):
        with pytest.raises(KeyError):
            run_demo("Fortran coarrays")

    @pytest.mark.parametrize("name", sorted(FAULT_DEMOS))
    def test_demo_matches_declared_semantics(self, name):
        demo = FAULT_DEMOS[name]
        res = run_demo(name, nthreads=4)
        doc = res.meta["fault"]
        assert doc["mode"] == demo.mode
        assert bool(doc["failed"]) == demo.expect_failed
        assert bool(doc["cancelled"]) == demo.expect_cancelled
        if demo.expect_wasted:
            assert doc["wasted"] > 0
        check_region(res, ctx=ExecContext()).raise_if_failed()


# ---------------------------------------------------------------------------
# validation battery integration
# ---------------------------------------------------------------------------
class TestFaultValidation:
    def test_fault_matrix_passes(self):
        from repro.validate.faultcheck import run_fault_matrix

        rep = run_fault_matrix(threads=(1, 4))
        assert rep.ok, rep.describe()
        assert rep.checks > 100

    def test_fault_audit_rejects_bad_spec_before_running(self):
        from repro.validate import run_validation
        from repro.validate.faultcheck import run_fault_audit

        with pytest.raises(ValueError):
            run_fault_audit("explode:task=1")
        with pytest.raises(ValueError):
            run_validation(inject="explode:task=1", programs=0)

    def test_invariants_catch_broken_accounting(self):
        ctx = ExecContext()
        res = run_program(
            _fib_program(ctx), 4, ctx, "cilk_spawn",
            faults="fail:task=5", policy={"on_failure": "continue"},
        )
        doc = res.regions[-1].meta["fault"]
        doc["useful"] = doc["wasted"]  # cook the books
        rep = check_region(res.regions[-1], ctx=ctx)
        assert not rep.ok
        names = {v.invariant for v in rep.violations}
        assert "fault-accounting" in names
        assert "fault-failed-no-useful" in names

    def test_invariants_catch_issue_after_cancel(self):
        ctx = ExecContext()
        res = run_program(
            _fib_program(ctx), 4, ctx, "cilk_spawn",
            faults="fail:task=5", policy={"on_failure": "continue"},
        )
        doc = res.regions[-1].meta["fault"]
        doc["issued_after_cancel"] = 3
        rep = check_region(res.regions[-1], ctx=ctx)
        assert any(v.invariant == "fault-cancel-issues" for v in rep.violations)

    def test_invariants_catch_retry_after_success(self):
        ctx = ExecContext()
        res = run_program(
            _fib_program(ctx), 4, ctx, "cilk_spawn",
            faults="fail:task=5,attempts=1",
            policy={"max_retries": 1, "backoff": 1e-6},
        )
        # pretend the runner re-ran the region after its clean attempt
        res.regions.append(res.regions[0])
        rep = check_result(res, ctx=ctx)
        assert any(v.invariant == "fault-retry-idempotent" for v in rep.violations)


# ---------------------------------------------------------------------------
# sweep integration
# ---------------------------------------------------------------------------
class TestSweepFaults:
    def test_strict_policy_records_cell_errors(self, tmp_path):
        from repro.sweep import run_sweep

        sweep = run_sweep(
            "fib", versions=["cilk_spawn"], threads=(1, 2), params={"n": 10},
            cache=tmp_path, faults="fail:task=5",
        )
        assert len(sweep.errors) == 2
        # cached as errors too: the replay must not re-simulate
        replay = run_sweep(
            "fib", versions=["cilk_spawn"], threads=(1, 2), params={"n": 10},
            cache=tmp_path, faults="fail:task=5",
        )
        assert replay.counter("simulations") == 0
        assert len(replay.errors) == 2

    def test_cache_keys_distinguish_plans(self):
        from repro.core.experiment import ExperimentConfig
        from repro.sweep import cache_key
        from repro.sweep.cells import expand_cells

        ctx = ExecContext()
        cfg = ExperimentConfig("fib", ("cilk_spawn",), (1,), {"n": 10})
        plain = expand_cells(cfg)[0]
        f1 = expand_cells(cfg, FaultPlan.parse("fail:task=5").to_dict())[0]
        f2 = expand_cells(cfg, FaultPlan.parse("fail:task=6").to_dict())[0]
        keys = {cache_key(c, ctx) for c in (plain, f1, f2)}
        assert len(keys) == 3


# ---------------------------------------------------------------------------
# task-graph workloads under injection (ISSUE 8)
# ---------------------------------------------------------------------------
class TestTaskGraphFaults:
    """The Task Bench dependency-grid workload obeys the same
    fault-accounting contract as the hand-written kernels."""

    def _taskbench(self, ctx, version):
        from repro.workloads.taskgraph import program

        return program(
            version, machine=ctx.machine, pattern="stencil",
            width=4, steps=3, grain=1e-6,
        )

    @pytest.mark.parametrize("version", ["omp_task", "cilk_spawn"])
    def test_useful_plus_wasted_equals_busy(self, version):
        ctx = ExecContext()
        res = run_program(
            self._taskbench(ctx, version), 4, ctx, version,
            faults="fail:task=5", policy={"on_failure": "continue"},
        )
        region = res.regions[-1]
        doc = region.meta["fault"]
        assert doc["failed"] and doc["wasted"] > 0.0
        # every busy second is accounted exactly once: useful + wasted
        # must equal the region's total busy time
        assert doc["useful"] + doc["wasted"] == pytest.approx(region.total_busy)
        check_result(res, ctx=ctx).raise_if_failed()

    def test_injected_graph_run_is_deterministic(self):
        ctx = ExecContext()
        kwargs = dict(
            faults="fail:task=5,attempts=1",
            policy={"max_retries": 1, "backoff": 1e-6},
        )
        prog = self._taskbench(ctx, "omp_task")
        r1 = run_program(prog, 4, ctx, "omp_task", **kwargs)
        r2 = run_program(self._taskbench(ctx, "omp_task"), 4, ctx, "omp_task", **kwargs)
        assert r1.time == r2.time
        assert len(r1.regions) == 2  # failed attempt + clean retry
        s = fault_summary(r1)
        assert s["failed_regions"] == 1 and s["retries"] == 1
