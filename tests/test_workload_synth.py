"""Generator battery for the seeded workload synthesizer.

The synthesizer's contract (see :mod:`repro.workloads.synth`) is that a
synthesized app is a **pure function of (seed, config)**:

- same seed: bit-identical spec document, name, built program and
  simulation result (compared on the codec form the sweep cache
  stores);
- distinct seeds: distinct names, hence distinct sweep cache keys;
- every synthesized app is a well-formed registry citizen — it builds
  for all six versions and passes the invariant checker
  (``run_program(validate=True)``) on each.
"""

from __future__ import annotations

import pytest

from repro.core.registry import WORKLOADS, get_workload
from repro.models import VERSIONS
from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.sweep import SweepCell, cache_key, run_sweep
from repro.sweep.codec import result_to_dict
from repro.validate import run_synth_audit
from repro.workloads.synth import (
    DEFAULT_CONFIG,
    KERNEL_POOL,
    SynthConfig,
    generate,
    registered,
    synthesize,
)


# ---------------------------------------------------------------------------
# determinism: same seed => bit-identical everything
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 42, 2**40 + 7])
def test_same_seed_same_spec(seed):
    a, b = synthesize(seed), synthesize(seed)
    assert a.document() == b.document()
    assert a.digest() == b.digest()
    assert a == b  # frozen dataclass equality over every field


def test_same_seed_same_simulation(ctx):
    spec = synthesize(3)
    for version in ("omp_for", "cilk_spawn"):
        r1 = run_program(spec.build(version, ctx.machine), 4, ctx, version)
        r2 = run_program(spec.build(version, ctx.machine), 4, ctx, version)
        assert result_to_dict(r1) == result_to_dict(r2)


def test_generate_is_pure_and_collision_free():
    batch1 = generate(42, 8)
    batch2 = generate(42, 8)
    assert [s.document() for s in batch1] == [s.document() for s in batch2]
    assert len({s.name for s in batch1}) == len(batch1)
    # a different master seed draws a different batch
    assert [s.name for s in generate(43, 8)] != [s.name for s in batch1]


def test_distinct_seeds_distinct_cache_keys():
    ctx = ExecContext()
    specs = generate(0, 4)
    with registered(specs):
        keys = {
            cache_key(SweepCell(s.name, "omp_for", 4, {}), ctx) for s in specs
        }
    assert len(keys) == len(specs)


def test_config_changes_the_name():
    tight = SynthConfig(parallel_fraction=(0.5, 0.6))
    assert synthesize(7).name != synthesize(7, tight).name
    assert synthesize(7).name.startswith("synth-")


# ---------------------------------------------------------------------------
# recipes draw from the configured distributions
# ---------------------------------------------------------------------------
def test_recipe_respects_config_bounds():
    cfg = DEFAULT_CONFIG
    for spec in generate(1, 12):
        assert cfg.min_phases <= len(spec.recipe) <= cfg.max_phases
        lo, hi = cfg.parallel_fraction
        assert lo <= spec.fraction <= hi
        for phase in spec.recipe:
            assert phase["kernel"] in KERNEL_POOL
            assert phase["n"] >= 16
            assert phase["schedule"] in cfg.schedules
            assert phase["chunks_per_thread"] in cfg.chunks_per_thread
            assert phase["grainsize"] in cfg.grainsizes


def test_coverage_selects_kernel_subsets():
    # over many seeds the Bernoulli occurrence draw must produce both
    # full-pool and strict-subset apps (otherwise coverage is inert)
    used = [
        {p["kernel"] for p in synthesize(seed).recipe} for seed in range(40)
    ]
    assert any(len(u) < len(KERNEL_POOL) for u in used)
    assert len(set().union(*used)) == len(KERNEL_POOL)


# ---------------------------------------------------------------------------
# every synthesized app is a well-formed workload
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("version", VERSIONS)
def test_synth_apps_pass_invariants_everywhere(version, ctx):
    for spec in generate(5, 2):
        res = run_program(
            spec.build(version, ctx.machine), 4, ctx, version, validate=True
        )
        assert res.time > 0


def test_build_rejects_overrides_and_unknown_versions(ctx):
    spec = synthesize(0)
    with pytest.raises(ValueError):
        spec.build("omp_for", ctx.machine, n=5)
    with pytest.raises(ValueError):
        spec.build("pthreads", ctx.machine)


def test_serial_share_tracks_parallel_fraction(ctx):
    # T_1 of the built program splits into serial + loop work in the
    # (1-f) : f ratio the generator drew
    spec = synthesize(11)
    prog = spec.build("omp_for", ctx.machine)
    serial = sum(r.work for r in prog.regions if hasattr(r, "work"))
    loop = sum(r.space.total_work for r in prog.regions if hasattr(r, "space"))
    assert serial / (serial + loop) == pytest.approx(1.0 - spec.fraction)


# ---------------------------------------------------------------------------
# registry + sweep integration
# ---------------------------------------------------------------------------
def test_registered_restores_the_registry():
    specs = generate(9, 3)
    before = set(WORKLOADS)
    with registered(specs):
        for s in specs:
            assert get_workload(s.name) is s
    assert set(WORKLOADS) == before


def test_synth_sweep_caches_and_replays(tmp_path):
    (spec,) = generate(2, 1)
    with registered([spec]):
        kwargs = dict(versions=["omp_for"], threads=(1, 4), cache=tmp_path)
        first = run_sweep(spec.name, **kwargs)
        assert first.counter("simulations") == 2
        replay = run_sweep(spec.name, **kwargs)
    assert replay.counter("simulations") == 0
    assert replay.counter("cache_hits") == 2
    for key in first.results:
        assert first.results[key].time == replay.results[key].time


def test_synth_audit_is_clean():
    report = run_synth_audit(seed=0, count=2, threads=(1, 4))
    assert report.ok, report.describe()
    assert report.checks > 0
