"""Golden-trace regression suite.

Committed golden JSON traces (``tests/goldens/``) pin the simulator's
*exact* event streams — span intervals, instants, engine events, lock
grants — and final times for small axpy and fib runs at p in {1, 4}.
Three execution paths must reproduce each golden bit-for-bit:

1. a direct serial :func:`~repro.runtime.run.run_program` call;
2. a ``jobs=N`` parallel sweep (results cross a process + JSON codec
   boundary);
3. a cache-hit replay (results decoded from the content-addressed
   on-disk cache without simulating).

This is the enforcement arm of the sweep subsystem's determinism
contract: if a scheduler, cost-model or codec change alters even one
event timestamp, all three paths fail here together — and if only the
parallel or cached path drifts, the diff points straight at the
executor/codec layer.

Regenerate intentionally-changed goldens with::

    pytest tests/test_golden_traces.py --update-goldens
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.registry import get_workload
from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.sweep import run_sweep
from repro.sweep.codec import tracer_to_dict

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: (workload, version, params, nthreads) — small enough to commit, rich
#: enough to cover a worksharing loop (axpy) and a work-stealing task
#: tree with engine events and lock grants (fib).
CASES = [
    ("axpy", "omp_for", {"n": 120_000}, 1),
    ("axpy", "omp_for", {"n": 120_000}, 4),
    ("fib", "cilk_spawn", {"n": 10}, 1),
    ("fib", "cilk_spawn", {"n": 10}, 4),
]

CASE_IDS = [f"{w}-{v}-p{p}" for w, v, params, p in CASES]


def golden_path(workload: str, version: str, nthreads: int) -> pathlib.Path:
    return GOLDEN_DIR / f"{workload}_{version}_p{nthreads}.json"


def serial_payload(workload: str, version: str, params: dict, nthreads: int) -> dict:
    """Golden document for one cell: final time + full trace streams."""
    ctx = ExecContext()
    spec = get_workload(workload)
    program = spec.build(version, ctx.machine, **params)
    res = run_program(program, nthreads, ctx, version, trace=True)
    return {
        "workload": workload,
        "version": version,
        "nthreads": nthreads,
        "params": dict(params),
        "time": res.time,
        "trace": tracer_to_dict(res.trace),
    }


def load_golden(workload: str, version: str, nthreads: int) -> dict:
    path = golden_path(workload, version, nthreads)
    if not path.exists():
        pytest.fail(
            f"missing golden {path}; generate with "
            "`pytest tests/test_golden_traces.py --update-goldens`"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize("workload,version,params,nthreads", CASES, ids=CASE_IDS)
def test_serial_run_matches_golden(workload, version, params, nthreads, update_goldens):
    payload = serial_payload(workload, version, params, nthreads)
    path = golden_path(workload, version, nthreads)
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"updated {path.name}")
    golden = load_golden(workload, version, nthreads)
    # JSON round-trips floats exactly, so this is bit-level equality of
    # every timestamp, not an approximate comparison.
    assert payload == golden


@pytest.mark.parametrize(
    "workload,version,params",
    [("axpy", "omp_for", {"n": 120_000}), ("fib", "cilk_spawn", {"n": 10})],
    ids=["axpy", "fib"],
)
def test_parallel_sweep_matches_golden(workload, version, params, update_goldens):
    if update_goldens:
        pytest.skip("golden update run")
    sweep = run_sweep(
        workload, versions=[version], threads=(1, 4), params=params, jobs=2, trace=True
    )
    for p in (1, 4):
        golden = load_golden(workload, version, p)
        res = sweep.results[(version, p)]
        assert res.time == golden["time"]
        assert tracer_to_dict(res.trace) == golden["trace"]


@pytest.mark.parametrize(
    "workload,version,params",
    [("axpy", "omp_for", {"n": 120_000}), ("fib", "cilk_spawn", {"n": 10})],
    ids=["axpy", "fib"],
)
def test_cache_replay_matches_golden(workload, version, params, tmp_path, update_goldens):
    if update_goldens:
        pytest.skip("golden update run")
    kwargs = dict(
        versions=[version], threads=(1, 4), params=params, cache=tmp_path, trace=True
    )
    first = run_sweep(workload, **kwargs)
    assert first.counter("simulations") == 2
    replay = run_sweep(workload, **kwargs)
    assert replay.counter("simulations") == 0
    assert replay.counter("cache_hits") == 2
    for p in (1, 4):
        golden = load_golden(workload, version, p)
        res = replay.results[(version, p)]
        assert res.time == golden["time"]
        assert tracer_to_dict(res.trace) == golden["trace"]


def test_goldens_cover_engine_events():
    """The committed fib goldens must actually exercise the engine's
    event stream (an empty stream would make the suite vacuous)."""
    golden = load_golden("fib", "cilk_spawn", 4)
    assert len(golden["trace"]["engine_events"]) > 100
    assert len(golden["trace"]["spans"]) > 100
    assert golden["trace"]["lock_events"]
