"""Golden-trace regression suite.

Committed golden JSON traces (``tests/goldens/``) pin the simulator's
*exact* event streams — span intervals, instants, engine events, lock
grants — and final times for small axpy and fib runs at p in {1, 4}.
Three execution paths must reproduce each golden bit-for-bit:

1. a direct serial :func:`~repro.runtime.run.run_program` call;
2. a ``jobs=N`` parallel sweep (results cross a process + JSON codec
   boundary);
3. a cache-hit replay (results decoded from the content-addressed
   on-disk cache without simulating).

This is the enforcement arm of the sweep subsystem's determinism
contract: if a scheduler, cost-model or codec change alters even one
event timestamp, all three paths fail here together — and if only the
parallel or cached path drifts, the diff points straight at the
executor/codec layer.

Regenerate intentionally-changed goldens with::

    pytest tests/test_golden_traces.py --update-goldens
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.registry import get_workload
from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.sweep import run_sweep
from repro.sweep.codec import tracer_to_dict

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: (workload, version, params, nthreads) — small enough to commit, rich
#: enough to cover a worksharing loop (axpy) and a work-stealing task
#: tree with engine events and lock grants (fib).
CASES = [
    ("axpy", "omp_for", {"n": 120_000}, 1),
    ("axpy", "omp_for", {"n": 120_000}, 4),
    ("fib", "cilk_spawn", {"n": 10}, 1),
    ("fib", "cilk_spawn", {"n": 10}, 4),
]

CASE_IDS = [f"{w}-{v}-p{p}" for w, v, params, p in CASES]


def golden_path(workload: str, version: str, nthreads: int) -> pathlib.Path:
    return GOLDEN_DIR / f"{workload}_{version}_p{nthreads}.json"


def serial_payload(workload: str, version: str, params: dict, nthreads: int) -> dict:
    """Golden document for one cell: final time + full trace streams."""
    ctx = ExecContext()
    spec = get_workload(workload)
    program = spec.build(version, ctx.machine, **params)
    res = run_program(program, nthreads, ctx, version, trace=True)
    return {
        "workload": workload,
        "version": version,
        "nthreads": nthreads,
        "params": dict(params),
        "time": res.time,
        "trace": tracer_to_dict(res.trace),
    }


def load_golden(workload: str, version: str, nthreads: int) -> dict:
    path = golden_path(workload, version, nthreads)
    if not path.exists():
        pytest.fail(
            f"missing golden {path}; generate with "
            "`pytest tests/test_golden_traces.py --update-goldens`"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize("workload,version,params,nthreads", CASES, ids=CASE_IDS)
def test_serial_run_matches_golden(workload, version, params, nthreads, update_goldens):
    payload = serial_payload(workload, version, params, nthreads)
    path = golden_path(workload, version, nthreads)
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"updated {path.name}")
    golden = load_golden(workload, version, nthreads)
    # JSON round-trips floats exactly, so this is bit-level equality of
    # every timestamp, not an approximate comparison.
    assert payload == golden


@pytest.mark.parametrize(
    "workload,version,params",
    [("axpy", "omp_for", {"n": 120_000}), ("fib", "cilk_spawn", {"n": 10})],
    ids=["axpy", "fib"],
)
def test_parallel_sweep_matches_golden(workload, version, params, update_goldens):
    if update_goldens:
        pytest.skip("golden update run")
    sweep = run_sweep(
        workload, versions=[version], threads=(1, 4), params=params, jobs=2, trace=True
    )
    for p in (1, 4):
        golden = load_golden(workload, version, p)
        res = sweep.results[(version, p)]
        assert res.time == golden["time"]
        assert tracer_to_dict(res.trace) == golden["trace"]


@pytest.mark.parametrize(
    "workload,version,params",
    [("axpy", "omp_for", {"n": 120_000}), ("fib", "cilk_spawn", {"n": 10})],
    ids=["axpy", "fib"],
)
def test_cache_replay_matches_golden(workload, version, params, tmp_path, update_goldens):
    if update_goldens:
        pytest.skip("golden update run")
    kwargs = dict(
        versions=[version], threads=(1, 4), params=params, cache=tmp_path, trace=True
    )
    first = run_sweep(workload, **kwargs)
    assert first.counter("simulations") == 2
    replay = run_sweep(workload, **kwargs)
    assert replay.counter("simulations") == 0
    assert replay.counter("cache_hits") == 2
    for p in (1, 4):
        golden = load_golden(workload, version, p)
        res = replay.results[(version, p)]
        assert res.time == golden["time"]
        assert tracer_to_dict(res.trace) == golden["trace"]


# ---------------------------------------------------------------------------
# fault-injected goldens: the same three-path determinism contract must
# hold when a fault plan + retry policy are active (the failed attempt,
# its backoff, and the retry all land in the pinned event streams)
# ---------------------------------------------------------------------------
FAULT_SPEC = "fail:task=5"
FAULT_POLICY = {"max_retries": 1, "backoff": 1e-6, "on_failure": "continue"}


def fault_golden_path(nthreads: int) -> pathlib.Path:
    return GOLDEN_DIR / f"fib_cilk_spawn_p{nthreads}_fault.json"


def fault_serial_payload(nthreads: int) -> dict:
    ctx = ExecContext()
    spec = get_workload("fib")
    program = spec.build("cilk_spawn", ctx.machine, n=10)
    res = run_program(
        program, nthreads, ctx, "cilk_spawn",
        trace=True, faults=FAULT_SPEC, policy=FAULT_POLICY,
    )
    return {
        "workload": "fib",
        "version": "cilk_spawn",
        "nthreads": nthreads,
        "inject": FAULT_SPEC,
        "policy": dict(FAULT_POLICY),
        "time": res.time,
        "faults": [r.meta.get("fault") for r in res.regions],
        "trace": tracer_to_dict(res.trace),
    }


def load_fault_golden(nthreads: int) -> dict:
    path = fault_golden_path(nthreads)
    if not path.exists():
        pytest.fail(
            f"missing golden {path}; generate with "
            "`pytest tests/test_golden_traces.py --update-goldens`"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize("nthreads", [1, 4], ids=["p1", "p4"])
def test_fault_serial_run_matches_golden(nthreads, update_goldens):
    payload = fault_serial_payload(nthreads)
    path = fault_golden_path(nthreads)
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"updated {path.name}")
    assert payload == load_fault_golden(nthreads)


def test_fault_parallel_sweep_matches_golden(update_goldens):
    if update_goldens:
        pytest.skip("golden update run")
    sweep = run_sweep(
        "fib", versions=["cilk_spawn"], threads=(1, 4), params={"n": 10},
        jobs=2, trace=True, faults=FAULT_SPEC, policy=FAULT_POLICY,
    )
    for p in (1, 4):
        golden = load_fault_golden(p)
        res = sweep.results[("cilk_spawn", p)]
        assert res.time == golden["time"]
        assert [r.meta.get("fault") for r in res.regions] == golden["faults"]
        assert tracer_to_dict(res.trace) == golden["trace"]


def test_fault_cache_replay_matches_golden(tmp_path, update_goldens):
    if update_goldens:
        pytest.skip("golden update run")
    kwargs = dict(
        versions=["cilk_spawn"], threads=(1, 4), params={"n": 10},
        cache=tmp_path, trace=True, faults=FAULT_SPEC, policy=FAULT_POLICY,
    )
    first = run_sweep("fib", **kwargs)
    assert first.counter("simulations") == 2
    replay = run_sweep("fib", **kwargs)
    assert replay.counter("simulations") == 0
    assert replay.counter("cache_hits") == 2
    # fault-injected entries must not collide with fault-free ones
    clean = run_sweep(
        "fib", versions=["cilk_spawn"], threads=(1, 4), params={"n": 10},
        cache=tmp_path, trace=True,
    )
    assert clean.counter("cache_hits") == 0
    for p in (1, 4):
        golden = load_fault_golden(p)
        res = replay.results[("cilk_spawn", p)]
        assert res.time == golden["time"]
        assert [r.meta.get("fault") for r in res.regions] == golden["faults"]
        assert tracer_to_dict(res.trace) == golden["trace"]


def test_fault_goldens_record_failure_and_retry():
    """The committed fault goldens must pin a real failed attempt plus a
    clean retry (otherwise the fault suite pins nothing interesting)."""
    for p in (1, 4):
        golden = load_fault_golden(p)
        docs = [d for d in golden["faults"] if d]
        assert docs, "no fault document in golden"
        assert any(d.get("failed") for d in docs)
        assert any(d.get("recovery", 0) > 0 for d in docs)
        # the retried attempt succeeded: last region has no fault doc
        assert golden["faults"][-1] is None


def test_goldens_cover_engine_events():
    """The committed fib goldens must actually exercise the engine's
    event stream (an empty stream would make the suite vacuous)."""
    golden = load_golden("fib", "cilk_spawn", 4)
    assert len(golden["trace"]["engine_events"]) > 100
    assert len(golden["trace"]["spans"]) > 100
    assert golden["trace"]["lock_events"]


# ---------------------------------------------------------------------------
# AMT fault goldens: one cell per asynchronous many-tasking runtime,
# under its canonical Table III error mode (charm -> message loss,
# hpx -> future poisoning, mpi -> rank failure / abort), pinned across
# the same serial / jobs=2 / cache-replay determinism contract
# ---------------------------------------------------------------------------
AMT_FAULT_CASES = [
    ("axpy", "charm", {"n": 120_000}, "fail:task=2"),
    ("fib", "hpx", {"n": 10}, "fail:task=5"),
    ("axpy", "mpi", {"n": 120_000}, "fail:task=1"),
]

AMT_FAULT_IDS = [f"{w}-{v}" for w, v, _params, _spec in AMT_FAULT_CASES]

AMT_P = 4


def amt_fault_golden_path(workload: str, version: str) -> pathlib.Path:
    return GOLDEN_DIR / f"{workload}_{version}_p{AMT_P}_fault.json"


def amt_fault_serial_payload(workload, version, params, spec_str) -> dict:
    ctx = ExecContext()
    spec = get_workload(workload)
    program = spec.build(version, ctx.machine, **params)
    res = run_program(
        program, AMT_P, ctx, version,
        trace=True, faults=spec_str, policy=FAULT_POLICY,
    )
    return {
        "workload": workload,
        "version": version,
        "nthreads": AMT_P,
        "params": dict(params),
        "inject": spec_str,
        "policy": dict(FAULT_POLICY),
        "time": res.time,
        "faults": [r.meta.get("fault") for r in res.regions],
        "trace": tracer_to_dict(res.trace),
    }


def load_amt_fault_golden(workload: str, version: str) -> dict:
    path = amt_fault_golden_path(workload, version)
    if not path.exists():
        pytest.fail(
            f"missing golden {path}; generate with "
            "`pytest tests/test_golden_traces.py --update-goldens`"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize("workload,version,params,spec_str",
                         AMT_FAULT_CASES, ids=AMT_FAULT_IDS)
def test_amt_fault_serial_run_matches_golden(
    workload, version, params, spec_str, update_goldens
):
    payload = amt_fault_serial_payload(workload, version, params, spec_str)
    path = amt_fault_golden_path(workload, version)
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"updated {path.name}")
    assert payload == load_amt_fault_golden(workload, version)


@pytest.mark.parametrize("workload,version,params,spec_str",
                         AMT_FAULT_CASES, ids=AMT_FAULT_IDS)
def test_amt_fault_parallel_sweep_matches_golden(
    workload, version, params, spec_str, update_goldens
):
    if update_goldens:
        pytest.skip("golden update run")
    sweep = run_sweep(
        workload, versions=[version], threads=(AMT_P,), params=params,
        jobs=2, trace=True, faults=spec_str, policy=FAULT_POLICY,
    )
    golden = load_amt_fault_golden(workload, version)
    res = sweep.results[(version, AMT_P)]
    assert res.time == golden["time"]
    assert [r.meta.get("fault") for r in res.regions] == golden["faults"]
    assert tracer_to_dict(res.trace) == golden["trace"]


@pytest.mark.parametrize("workload,version,params,spec_str",
                         AMT_FAULT_CASES, ids=AMT_FAULT_IDS)
def test_amt_fault_cache_replay_matches_golden(
    workload, version, params, spec_str, tmp_path, update_goldens
):
    if update_goldens:
        pytest.skip("golden update run")
    kwargs = dict(
        versions=[version], threads=(AMT_P,), params=params,
        cache=tmp_path, trace=True, faults=spec_str, policy=FAULT_POLICY,
    )
    first = run_sweep(workload, **kwargs)
    assert first.counter("simulations") == 1
    replay = run_sweep(workload, **kwargs)
    assert replay.counter("simulations") == 0
    assert replay.counter("cache_hits") == 1
    golden = load_amt_fault_golden(workload, version)
    res = replay.results[(version, AMT_P)]
    assert res.time == golden["time"]
    assert [r.meta.get("fault") for r in res.regions] == golden["faults"]
    assert tracer_to_dict(res.trace) == golden["trace"]


def test_amt_fault_goldens_pin_table3_semantics():
    """Each committed AMT golden must exhibit its model's Table III
    discipline, not just any fault document."""
    charm = [d for d in load_amt_fault_golden("axpy", "charm")["faults"] if d]
    assert any(d["mode"] == "msg_loss" and d["failed"] for d in charm)
    # run-to-completion: nothing is cancelled or skipped
    assert all(not d["cancelled"] and not d.get("skipped") for d in charm)
    hpx = [d for d in load_amt_fault_golden("fib", "hpx")["faults"] if d]
    assert any(
        d["mode"] == "future_poison" and d["failed"] and d.get("skipped")
        for d in hpx
    )
    mpi = [d for d in load_amt_fault_golden("axpy", "mpi")["faults"] if d]
    assert any(
        d["mode"] == "rank_fail" and d["cancelled"] and d["failed"]
        for d in mpi
    )


# ---------------------------------------------------------------------------
# tiered fidelity: tier-1 fast paths must reproduce the same goldens
# ---------------------------------------------------------------------------
#: Cases chosen to drive the tier-1 fast paths hard: lud/cilk_for builds
#: batched cilk_for graphs over skewed triangular iteration spaces;
#: bfs/omp_task runs flat chunk tasks on locked deques through the
#: engine's fast drain with memoized durations.
TIER1_CASES = [
    ("lud", "cilk_for", 4),
    ("bfs", "omp_task", 4),
]

TIER1_IDS = [f"{w}-{v}-p{p}" for w, v, p in TIER1_CASES]


def tier1_golden_path(workload: str, version: str, nthreads: int) -> pathlib.Path:
    return GOLDEN_DIR / f"{workload}_{version}_p{nthreads}_tier1.json"


def tier1_serial_payload(workload: str, version: str, nthreads: int) -> dict:
    """Golden document for one tier-1 (vectorized fast-path) run."""
    ctx = ExecContext().with_fidelity(1)
    spec = get_workload(workload)
    params = dict(spec.validation_params or spec.default_params)
    program = spec.build(version, ctx.machine, **params)
    res = run_program(program, nthreads, ctx, version, trace=True)
    return {
        "workload": workload,
        "version": version,
        "nthreads": nthreads,
        "params": params,
        "fidelity": 1,
        "time": res.time,
        "trace": tracer_to_dict(res.trace),
    }


@pytest.mark.parametrize("workload,version,nthreads", TIER1_CASES, ids=TIER1_IDS)
def test_tier1_run_matches_golden(workload, version, nthreads, update_goldens):
    payload = tier1_serial_payload(workload, version, nthreads)
    path = tier1_golden_path(workload, version, nthreads)
    if update_goldens:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        pytest.skip(f"updated {path.name}")
    if not path.exists():
        pytest.fail(
            f"missing golden {path}; generate with "
            "`pytest tests/test_golden_traces.py --update-goldens`"
        )
    assert payload == json.loads(path.read_text())


@pytest.mark.parametrize("workload,version,nthreads", TIER1_CASES, ids=TIER1_IDS)
def test_tier1_golden_equals_tier2_reference(workload, version, nthreads, update_goldens):
    """The committed tier-1 goldens must be exactly what the tier-2
    scalar reference produces — the on-disk form of the bit-identity
    contract between the fast paths and the reference simulation."""
    if update_goldens:
        pytest.skip("golden update run")
    ctx = ExecContext()
    spec = get_workload(workload)
    params = dict(spec.validation_params or spec.default_params)
    program = spec.build(version, ctx.machine, **params)
    res = run_program(program, nthreads, ctx, version, trace=True)
    path = tier1_golden_path(workload, version, nthreads)
    golden = json.loads(path.read_text())
    assert res.time == golden["time"]
    assert tracer_to_dict(res.trace) == golden["trace"]


@pytest.mark.parametrize("workload,version,params,nthreads", CASES, ids=CASE_IDS)
def test_existing_goldens_reproduce_at_fidelity1(
    workload, version, params, nthreads, update_goldens
):
    """The original tier-2 goldens, re-run with the tier-1 fast paths
    enabled, must reproduce bit-for-bit — same files, no new goldens."""
    if update_goldens:
        pytest.skip("golden update run")
    ctx = ExecContext().with_fidelity(1)
    spec = get_workload(workload)
    program = spec.build(version, ctx.machine, **params)
    res = run_program(program, nthreads, ctx, version, trace=True)
    golden = load_golden(workload, version, nthreads)
    assert res.time == golden["time"]
    assert tracer_to_dict(res.trace) == golden["trace"]
