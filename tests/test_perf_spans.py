"""Unit tests for the host-telemetry span/counter primitives.

The recording stack must be exact in its accounting (span arithmetic,
nesting, merge) and *inert* when no recorder is active or when
``REPRO_PERF_OFF=1`` disables telemetry entirely.
"""

from __future__ import annotations

import json

import pytest

from repro.perf.spans import (
    PERF_OFF_ENV,
    PerfRecorder,
    Stopwatch,
    counter,
    current,
    observe,
    perf_enabled,
    recording,
    span,
)


def _busy(n: int = 2_000) -> int:
    return sum(range(n))


class TestRecorderArithmetic:
    def test_add_span_accumulates(self):
        rec = PerfRecorder("t")
        rec.add_span("x", 0.5, 0.4)
        rec.add_span("x", 1.5, 1.0)
        stat = rec.spans["x"]
        assert stat.count == 2
        assert stat.wall == pytest.approx(2.0)
        assert stat.cpu == pytest.approx(1.4)
        assert stat.min == pytest.approx(0.5)
        assert stat.max == pytest.approx(1.5)

    def test_counters_and_observations(self):
        rec = PerfRecorder("t")
        rec.count("hits")
        rec.count("hits", 4)
        rec.observe("lat", 2.0)
        rec.observe("lat", 6.0)
        assert rec.counters["hits"] == 5
        obs = rec.observations["lat"].to_dict()
        assert obs["count"] == 2
        assert obs["total"] == pytest.approx(8.0)
        assert obs["mean"] == pytest.approx(4.0)
        assert obs["min"] == pytest.approx(2.0)
        assert obs["max"] == pytest.approx(6.0)

    def test_span_wall_sums_named(self):
        rec = PerfRecorder("t")
        rec.add_span("a", 1.0, 1.0)
        rec.add_span("b", 2.0, 2.0)
        rec.add_span("c", 4.0, 4.0)
        assert rec.span_wall("a", "c") == pytest.approx(5.0)
        assert rec.span_wall("missing") == 0.0

    def test_merge_folds_everything(self):
        parent, child = PerfRecorder("p"), PerfRecorder("c")
        parent.add_span("x", 1.0, 1.0)
        child.add_span("x", 3.0, 2.0)
        child.add_span("y", 0.5, 0.5)
        child.count("n", 7)
        child.observe("lat", 1.0)
        parent.merge(child)
        assert parent.spans["x"].count == 2
        assert parent.spans["x"].wall == pytest.approx(4.0)
        assert parent.spans["y"].wall == pytest.approx(0.5)
        assert parent.counters["n"] == 7
        assert parent.observations["lat"].count == 1

    def test_snapshot_is_json_ready_and_sorted(self):
        rec = PerfRecorder("snap")
        rec.add_span("b", 1.0, 1.0)
        rec.add_span("a", 1.0, 1.0)
        rec.count("k")
        rec.observe("o", 1.0)
        snap = rec.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["spans"]) == ["a", "b"]
        assert set(snap) == {
            "label", "wall_seconds", "cpu_seconds",
            "spans", "counters", "observations",
        }


class TestRecordingStack:
    def test_no_recorder_means_noop(self):
        assert current() is None
        s1 = span("anything")
        s2 = span("else")
        assert s1 is s2  # shared null object: nothing allocated
        with s1:
            counter("c")
            observe("o", 1.0)
        assert current() is None

    def test_recording_times_block(self):
        with recording("blk") as rec:
            assert current() is rec
            with span("work"):
                _busy()
        assert current() is None
        assert rec.wall > 0.0
        assert rec.spans["work"].count == 1
        assert rec.spans["work"].wall <= rec.wall

    def test_nested_recording_folds_into_parent(self):
        with recording("outer") as outer:
            with recording("inner") as inner:
                with span("leaf"):
                    _busy()
                counter("c", 3)
        assert inner.spans["leaf"].count == 1
        # the parent sees the leaf's detail plus one span for the block
        assert outer.spans["leaf"].count == 1
        assert outer.spans["inner"].count == 1
        assert outer.counters["c"] == 3

    def test_recording_pops_on_exception(self):
        with pytest.raises(RuntimeError):
            with recording("boom"):
                raise RuntimeError("x")
        assert current() is None

    def test_counter_batched_increment(self):
        with recording() as rec:
            counter("evicted", 5)
            counter("evicted", 2)
        assert rec.counters["evicted"] == 7

    def test_stack_is_thread_local(self):
        # concurrent recorders on different threads must not interleave
        # (the sweep tests race two executors in one process)
        import threading

        errors = []
        barrier = threading.Barrier(2)

        def work(tag):
            try:
                with recording(tag) as rec:
                    barrier.wait(timeout=10)  # both recordings open at once
                    with span("leaf"):
                        counter(tag)
                    barrier.wait(timeout=10)
                assert rec.counters == {tag: 1}
                assert rec.spans["leaf"].count == 1
                assert current() is None
            except BaseException as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestPerfOff:
    def test_perf_enabled_env(self, monkeypatch):
        monkeypatch.delenv(PERF_OFF_ENV, raising=False)
        assert perf_enabled()
        monkeypatch.setenv(PERF_OFF_ENV, "1")
        assert not perf_enabled()

    def test_recording_disabled_yields_none(self, monkeypatch):
        monkeypatch.setenv(PERF_OFF_ENV, "1")
        with recording("off") as rec:
            assert rec is None
            assert current() is None
            with span("never"):
                counter("never")
        assert current() is None

    def test_stopwatch_works_regardless(self, monkeypatch):
        monkeypatch.setenv(PERF_OFF_ENV, "1")
        with Stopwatch() as sw:
            _busy()
        assert sw.wall > 0.0
        assert sw.cpu >= 0.0
