"""Tests for sweep JSON serialization."""

import json

import pytest

from repro.core.experiment import run_experiment
from repro.core.report import figure_table
from repro.core.serialize import dump_sweep, load_sweep, sweep_from_dict, sweep_to_dict


@pytest.fixture(scope="module")
def sweep():
    return run_experiment("fib", threads=(1, 4), n=21)  # includes a hang


class TestRoundTrip:
    def test_times_survive(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep))
        for v in sweep.versions:
            assert back.times(v) == sweep.times(v)

    def test_errors_survive(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep))
        assert back.errors == sweep.errors

    def test_config_survives(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep))
        assert back.workload == sweep.workload
        assert back.threads == sweep.threads
        assert back.figure == sweep.figure
        assert back.config.params == dict(sweep.config.params)

    def test_summary_stats_present(self, sweep):
        d = sweep_to_dict(sweep)
        run = d["runs"]["omp_task@1"]
        assert run["time"] > 0 and run["tasks"] > 0

    def test_rendered_tables_match(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep))
        assert figure_table(back) == figure_table(sweep)

    def test_json_serializable(self, sweep):
        json.dumps(sweep_to_dict(sweep))

    def test_file_round_trip(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        dump_sweep(sweep, str(path))
        back = load_sweep(str(path))
        assert back.times("cilk_spawn") == sweep.times("cilk_spawn")

    def test_version_check(self, sweep):
        d = sweep_to_dict(sweep)
        d["format"] = 99
        with pytest.raises(ValueError, match="format"):
            sweep_from_dict(d)


class TestFullFormat:
    """format 2 (``full=True``): codec-encoded runs survive bit-exactly."""

    def test_format_stamp(self, sweep):
        assert sweep_to_dict(sweep)["format"] == 1
        assert sweep_to_dict(sweep, full=True)["format"] == 2

    def test_regions_and_worker_stats_survive(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep, full=True))
        for key, res in sweep.results.items():
            other = back.results[key]
            assert other.time == res.time
            assert len(other.regions) == len(res.regions)
            for mine, theirs in zip(res.regions, other.regions):
                assert theirs.time == mine.time
                assert theirs.nthreads == mine.nthreads
                assert theirs.meta == mine.meta
                assert [w.__dict__ for w in theirs.workers] == [
                    w.__dict__ for w in mine.workers
                ]

    def test_exact_summary_stats(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep, full=True))
        for key, res in sweep.results.items():
            other = back.results[key]
            assert other.total_busy == res.total_busy
            assert other.total_tasks == res.total_tasks
            assert other.total_steals == res.total_steals

    def test_trace_survives(self, tmp_path):
        from repro.sweep.codec import tracer_to_dict

        traced = run_experiment(
            "fib", versions=["cilk_spawn"], threads=(2,), n=10, trace=True
        )
        path = tmp_path / "full.json"
        dump_sweep(traced, str(path), full=True)
        back = load_sweep(str(path))
        res, other = traced.results[("cilk_spawn", 2)], back.results[("cilk_spawn", 2)]
        assert other.trace is not None
        assert tracer_to_dict(other.trace) == tracer_to_dict(res.trace)

    def test_rendered_tables_match(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep, full=True))
        assert figure_table(back) == figure_table(sweep)

    def test_json_serializable(self, sweep):
        json.dumps(sweep_to_dict(sweep, full=True))
