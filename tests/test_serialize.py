"""Tests for sweep JSON serialization."""

import json

import pytest

from repro.core.experiment import run_experiment
from repro.core.report import figure_table
from repro.core.serialize import dump_sweep, load_sweep, sweep_from_dict, sweep_to_dict


@pytest.fixture(scope="module")
def sweep():
    return run_experiment("fib", threads=(1, 4), n=21)  # includes a hang


class TestRoundTrip:
    def test_times_survive(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep))
        for v in sweep.versions:
            assert back.times(v) == sweep.times(v)

    def test_errors_survive(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep))
        assert back.errors == sweep.errors

    def test_config_survives(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep))
        assert back.workload == sweep.workload
        assert back.threads == sweep.threads
        assert back.figure == sweep.figure
        assert back.config.params == dict(sweep.config.params)

    def test_summary_stats_present(self, sweep):
        d = sweep_to_dict(sweep)
        run = d["runs"]["omp_task@1"]
        assert run["time"] > 0 and run["tasks"] > 0

    def test_rendered_tables_match(self, sweep):
        back = sweep_from_dict(sweep_to_dict(sweep))
        assert figure_table(back) == figure_table(sweep)

    def test_json_serializable(self, sweep):
        json.dumps(sweep_to_dict(sweep))

    def test_file_round_trip(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        dump_sweep(sweep, str(path))
        back = load_sweep(str(path))
        assert back.times("cilk_spawn") == sweep.times("cilk_spawn")

    def test_version_check(self, sweep):
        d = sweep_to_dict(sweep)
        d["format"] = 99
        with pytest.raises(ValueError, match="format"):
            sweep_from_dict(d)
