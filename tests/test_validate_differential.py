"""Tests for the differential runtime oracle (repro.validate.differential)."""


from repro.cli import main
from repro.runtime.base import ExecContext
from repro.runtime.workstealing import StealingScheduler
from repro.validate import run_validation
from repro.validate.differential import (
    graph_runtime_matrix,
    loop_runtime_matrix,
    run_differential_matrix,
    run_registry_audit,
)

CTX = ExecContext()


class TestDifferentialMatrix:
    def test_small_matrix_is_clean(self):
        rep = run_differential_matrix(CTX, threads=(1, 2), fib_n=10)
        assert rep.ok, rep.describe()
        assert rep.checks > 1000

    def test_matrix_covers_all_runtimes(self):
        loops = loop_runtime_matrix()
        graphs = graph_runtime_matrix()
        assert any(k.startswith("worksharing") for k in loops)
        assert any(k.startswith("workstealing") for k in loops)
        assert any(k.startswith("threadpool") for k in loops)
        assert any(k.startswith("stealing") for k in graphs)
        assert any(k.startswith("threadpool_graph") for k in graphs)


class TestRegistryAudit:
    def test_every_workload_version_is_clean(self):
        rep = run_registry_audit(CTX, threads=(1, 3))
        assert rep.ok, rep.describe()
        assert rep.checks > 500


class TestValidateCli:
    def test_validate_exits_zero_when_clean(self, capsys):
        assert main(["validate", "--programs", "2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("OK:")

    def test_validate_exits_nonzero_on_injected_violation(self, monkeypatch, capsys):
        """Acceptance criterion: a deliberately broken invariant (an
        overlapping execution span smuggled into every traced stealing
        run) must turn the exit code non-zero."""
        real = StealingScheduler.run

        def tampered(self):
            res = real(self)
            if self.tracer is not None:
                end = max(res.time, 1.0)
                self.tracer.span(0, 0.0, end, "task", "tamper")
                self.tracer.span(0, 0.0, end / 2, "task", "tamper")
            return res

        monkeypatch.setattr(StealingScheduler, "run", tampered)
        assert main(["validate", "--programs", "0"]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "interval-overlap" in out

    def test_validate_seed_changes_property_programs(self):
        r0 = run_validation(seed=0, programs=1)
        r1 = run_validation(seed=99, programs=1)
        assert r0.ok and r1.ok
        # different random programs => different numbers of checks
        assert r0.checks != r1.checks


class TestCliExitCodes:
    def test_unknown_workload_is_exit_2(self, capsys):
        assert main(["figure", "nbody"]) == 2
        err = capsys.readouterr().err
        assert "nbody" in err

    def test_unknown_model_is_exit_2(self, capsys):
        assert main(["compare", "openmp", "rust-rayon"]) == 2
        err = capsys.readouterr().err
        assert "rust-rayon" in err


class TestSynthesizedWorkloadsInMatrix:
    """Synthesized apps ride the same differential oracle as the
    registry's hand-written workloads (ISSUE 8: scenario diversity)."""

    def test_registry_audit_covers_synthesized_apps(self):
        from repro.workloads.synth import generate, registered

        baseline = run_registry_audit(CTX, threads=(1, 2)).checks
        with registered(generate(0, 3)):
            rep = run_registry_audit(CTX, threads=(1, 2))
        assert rep.ok, rep.describe()
        # three extra apps x six versions x two thread counts => the
        # audit demonstrably widened
        assert rep.checks > baseline

    def test_synth_audit_feeds_run_validation(self):
        rep = run_validation(programs=0)
        assert rep.ok, rep.describe()
