"""Tests for the trace invariant checker (repro.validate.invariants)."""

import pytest

from repro.kernels import axpy, fib
from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.runtime.workstealing import run_stealing_graph, run_stealing_loop
from repro.sim.machine import Machine
from repro.sim.trace import RegionResult, SimResult, WorkerStats
from repro.validate.invariants import (
    SimulationInvariantError,
    ValidationReport,
    Violation,
    busy_envelope,
    check_event_times,
    check_intervals,
    check_lock_log,
    check_region,
    check_result,
)

CTX = ExecContext()


class TestValidationReport:
    def test_empty_report_is_ok(self):
        rep = ValidationReport()
        assert rep.ok and rep.checks == 0
        assert rep.describe().startswith("OK")
        rep.raise_if_failed()  # no-op

    def test_failed_check_recorded(self):
        rep = ValidationReport()
        assert rep.check(True, "a", "here") is True
        assert rep.check(False, "b", "there", "1 != 2") is False
        assert rep.checks == 2 and not rep.ok
        assert rep.violations == [Violation("b", "there", "1 != 2")]
        assert "[b] there: 1 != 2" in rep.describe()
        with pytest.raises(SimulationInvariantError, match="1 of 2"):
            rep.raise_if_failed()

    def test_merge_accumulates(self):
        a, b = ValidationReport(), ValidationReport()
        a.check(True, "x", "a")
        b.check(False, "y", "b")
        a.merge(b)
        assert a.checks == 2 and len(a.violations) == 1

    def test_describe_truncates(self):
        rep = ValidationReport()
        for i in range(30):
            rep.check(False, "inv", f"site{i}")
        text = rep.describe(max_violations=5)
        assert "and 25 more" in text


class TestCheckIntervals:
    def test_clean_intervals_pass(self):
        ivs = [(0, 0.0, 1.0, "a"), (0, 1.0, 2.0, "b"), (1, 0.5, 1.5, "c")]
        assert check_intervals(ivs, 2, horizon=2.0).ok

    def test_overlap_same_worker_flagged(self):
        # the deliberate trace-tampering case from the acceptance criteria
        ivs = [(0, 0.0, 1.0, "a"), (0, 0.5, 1.5, "b")]
        rep = check_intervals(ivs, 1)
        assert [v.invariant for v in rep.violations] == ["interval-overlap"]

    def test_overlap_across_workers_is_fine(self):
        ivs = [(0, 0.0, 1.0, "a"), (1, 0.0, 1.0, "b")]
        assert check_intervals(ivs, 2).ok

    def test_worker_out_of_range(self):
        rep = check_intervals([(5, 0.0, 1.0, "a")], 2)
        assert any(v.invariant == "interval-worker-range" for v in rep.violations)

    def test_horizon_and_ordering(self):
        rep = check_intervals([(0, 2.0, 1.0, "a")], 1, horizon=1.5)
        kinds = {v.invariant for v in rep.violations}
        assert "interval-ordered" in kinds


class TestCheckLockLog:
    def test_fifo_grants_pass(self):
        log = [(0.0, 0.0, 1.0), (0.5, 1.0, 1.0), (1.2, 2.0, 0.5)]
        assert check_lock_log(log).ok

    def test_overlapping_grants_flagged(self):
        log = [(0.0, 0.0, 1.0), (0.1, 0.5, 1.0)]
        rep = check_lock_log(log)
        assert any(v.invariant == "lock-exclusivity" for v in rep.violations)

    def test_grant_before_request_flagged(self):
        rep = check_lock_log([(5.0, 4.0, 0.1)])
        assert any(v.invariant == "lock-causality" for v in rep.violations)

    def test_negative_hold_flagged(self):
        rep = check_lock_log([(0.0, 0.0, -1.0)])
        assert any(v.invariant == "lock-hold-nonnegative" for v in rep.violations)


class TestCheckEventTimes:
    def test_monotonic_passes(self):
        assert check_event_times([(0.0, 1), (1.0, 2), (1.0, 3), (2.0, 1)]).ok

    def test_backwards_clock_flagged(self):
        rep = check_event_times([(1.0, 1), (0.5, 2)])
        assert any(v.invariant == "event-monotonic" for v in rep.violations)

    def test_tie_out_of_insertion_order_flagged(self):
        rep = check_event_times([(1.0, 7), (1.0, 3)])
        assert any(v.invariant == "event-tie-order" for v in rep.violations)


class TestBusyEnvelope:
    def test_compute_bound_lower_is_work(self):
        lower, upper = busy_envelope(1.0, 0.0, 1.0, 4, CTX)
        assert lower == 1.0 and upper >= 1.0

    def test_memory_bound_lower_uses_single_thread_bandwidth(self):
        bw1 = CTX.machine.bandwidth_per_thread(1, 1.0)
        lower, upper = busy_envelope(0.0, 1e9, 1.0, 8, CTX)
        assert lower == pytest.approx(1e9 / bw1)
        assert upper >= lower

    def test_envelope_widens_with_threads(self):
        _, up1 = busy_envelope(1.0, 1e8, 1.0, 1, CTX)
        _, up72 = busy_envelope(1.0, 1e8, 1.0, 72, CTX)
        assert up72 > up1

    def test_mixed_locality_uses_both_edges(self):
        # best locality for the lower edge, worst for the upper edge
        lo_hi, up_hi = busy_envelope(0.0, 1e8, 1.0, 4, CTX, locality_min=0.0)
        lo_rand, up_rand = busy_envelope(0.0, 1e8, 0.0, 4, CTX)
        assert lo_hi < lo_rand  # streaming bytes can move faster
        assert up_hi == pytest.approx(up_rand)  # both bounded by random access


class TestCheckRegion:
    def test_real_stealing_run_passes(self):
        space = axpy.space(CTX.machine, 200_000)
        res = run_stealing_loop(space, 4, CTX, record=True, audit=True)
        rep = check_region(res, ctx=CTX)
        assert rep.ok, rep.describe()
        assert rep.checks > 100  # intervals + locks + events all audited

    def test_tampered_overlapping_interval_caught(self):
        space = axpy.space(CTX.machine, 200_000)
        res = run_stealing_loop(space, 4, CTX, record=True, audit=True)
        res.meta["intervals"].append((0, 0.0, res.time, "tamper"))
        rep = check_region(res, ctx=CTX)
        assert any(v.invariant == "interval-overlap" for v in rep.violations)

    def test_dropped_work_caught(self):
        space = axpy.space(CTX.machine, 200_000)
        res = run_stealing_loop(space, 2, CTX)
        for w in res.workers:
            w.busy *= 0.5  # "lose" half the executed work
        rep = check_region(res, ctx=CTX)
        assert any(v.invariant == "work-conservation-lower" for v in rep.violations)

    def test_invented_work_caught(self):
        space = axpy.space(CTX.machine, 200_000)
        res = run_stealing_loop(space, 2, CTX)
        res.workers[0].busy += res.time * 100
        rep = check_region(res, ctx=CTX)
        assert any(v.invariant == "work-conservation-upper" for v in rep.violations)

    def test_makespan_below_critical_path_caught(self):
        graph = fib.graph(10)
        res = run_stealing_graph(graph, 4, CTX)
        broken = RegionResult(
            time=graph.critical_path() * 0.5,
            nthreads=res.nthreads,
            workers=res.workers,
            meta=res.meta,
        )
        rep = check_region(broken, ctx=CTX)
        assert any(v.invariant == "makespan-critical-path" for v in rep.violations)

    def test_worker_busier_than_wallclock_caught(self):
        res = RegionResult(time=1.0, nthreads=1, workers=[WorkerStats(busy=2.0)])
        rep = check_region(res)
        assert any(v.invariant == "worker-wallclock" for v in rep.violations)

    def test_negative_stats_caught(self):
        res = RegionResult(time=1.0, nthreads=1, workers=[WorkerStats(busy=-1.0)])
        rep = check_region(res)
        assert any(v.invariant == "worker-stats-nonnegative" for v in rep.violations)


class TestCheckResult:
    def test_real_program_passes(self):
        prog = fib.program("cilk_spawn", machine=CTX.machine, n=10)
        res = run_program(prog, 4, CTX)
        assert check_result(res, ctx=CTX).ok

    def test_program_time_below_region_sum_caught(self):
        prog = fib.program("omp_task", machine=CTX.machine, n=8)
        res = run_program(prog, 2, CTX)
        broken = SimResult(
            program=res.program,
            version=res.version,
            nthreads=res.nthreads,
            time=res.time * 0.5,
            regions=res.regions,
        )
        rep = check_result(broken, ctx=CTX)
        assert any(
            v.invariant == "program-time-covers-regions" for v in rep.violations
        )


class TestRunProgramValidate:
    def test_validate_flag_passes_clean_run(self):
        prog = fib.program("cilk_spawn", machine=CTX.machine, n=10)
        res = run_program(prog, 4, CTX, validate=True)
        assert res.time > 0

    def test_validate_flag_raises_on_tampered_executor(self, monkeypatch):
        import repro.runtime.run as run_mod

        real = run_mod.run_stealing_graph

        def tampered(graph, nthreads, ctx, **kw):
            res = real(graph, nthreads, ctx, **kw)
            res.meta["intervals"] = [(0, 0.0, 1.0, "x"), (0, 0.5, 1.5, "x")]
            return res

        monkeypatch.setattr(run_mod, "run_stealing_graph", tampered)
        prog = fib.program("cilk_spawn", machine=CTX.machine, n=10)
        with pytest.raises(SimulationInvariantError, match="interval-overlap"):
            run_program(prog, 4, CTX, validate=True)

    def test_validate_on_small_machine(self):
        ctx = ExecContext(machine=Machine(sockets=1, cores_per_socket=2, smt=2))
        prog = fib.program("omp_task", machine=ctx.machine, n=9)
        res = run_program(prog, 3, ctx, validate=True)
        assert check_result(res, ctx=ctx).ok
