"""Acceptance tests: every finding of the paper must reproduce.

These run the full claim battery (section IV's qualitative statements
encoded as predicates) on the default reduced problem sizes.  They are
the slowest tests in the suite (~15 s total) and the most important.
"""

import pytest

from repro.core.claims import ALL_CLAIMS, SweepCache, check_claim


@pytest.fixture(scope="module")
def cache():
    return SweepCache()


class TestClaimFramework:
    def test_eleven_claims(self):
        assert len(ALL_CLAIMS) == 11

    def test_ids_unique(self):
        ids = [c.claim_id for c in ALL_CLAIMS]
        assert len(set(ids)) == len(ids)

    def test_every_claim_quotes_the_paper(self):
        for c in ALL_CLAIMS:
            assert len(c.paper_says) > 20

    def test_unknown_claim_id(self):
        with pytest.raises(KeyError):
            check_claim("axpy_is_fast")

    def test_result_str_format(self, cache):
        r = check_claim("fib_cxx_hangs", cache)
        assert str(r).startswith("[PASS]") or str(r).startswith("[FAIL]")


@pytest.mark.parametrize("claim_id", [c.claim_id for c in ALL_CLAIMS])
def test_paper_claim_reproduces(claim_id, cache):
    """Each of the paper's findings holds in the simulation."""
    result = check_claim(claim_id, cache)
    assert result.passed, f"{claim_id}: {result.details}\npaper: {result.paper_says}"
