"""Tests for the central-queue scheduler mode and the runtime comparison."""

import pytest

from repro.extensions.runtimes import RUNTIMES, compare_task_runtimes, render_comparison
from repro.runtime.base import ExecContext
from repro.runtime.workstealing import StealingScheduler
from repro.sim.costs import GCC_COSTS, INTEL_COSTS
from repro.sim.task import TaskGraph


def wide_graph(n, work=2e-6):
    g = TaskGraph("wide")
    for _ in range(n):
        g.add(work)
    return g


class TestCentralQueue:
    def test_completes_all_tasks(self, small_ctx):
        res = StealingScheduler(
            wide_graph(64), 4, small_ctx, deque="locked", central_queue=True
        ).run()
        assert res.total_tasks == 64

    def test_work_conserved(self, small_ctx):
        g = wide_graph(40, 3e-6)
        res = StealingScheduler(
            g, 4, small_ctx, deque="locked", central_queue=True
        ).run()
        assert res.total_busy == pytest.approx(g.total_work(), rel=1e-6)

    def test_no_steals_everything_through_queue(self, small_ctx):
        res = StealingScheduler(
            wide_graph(64), 4, small_ctx, deque="locked", central_queue=True
        ).run()
        assert res.meta["steals"] == 0

    def test_only_queue_zero_used(self, small_ctx):
        sched = StealingScheduler(
            wide_graph(64), 4, small_ctx, deque="locked", central_queue=True
        )
        sched.run()
        assert sched.deques[0].pops == 64
        for d in sched.deques[1:]:
            assert d.pushes == 0 and d.pops == 0

    def test_central_lock_contention_hurts_recursive_trees(self, small_ctx):
        """Per-worker deques execute a spawn tree mostly locally (cheap
        owner pops); the central queue forces every push and pop of
        every worker through one lock."""
        from repro.kernels import fib

        per_worker = StealingScheduler(fib.graph(14), 8, small_ctx, deque="locked").run().time
        central = StealingScheduler(
            fib.graph(14), 8, small_ctx, deque="locked", central_queue=True
        ).run().time
        assert central > per_worker

    def test_central_queue_fine_for_flat_bags(self, small_ctx):
        """On a flat master-spawned bag, per-worker deques degenerate to
        steal-per-task, so the central queue is not worse there —
        libgomp's weakness is specifically recursive task parallelism."""
        fine = wide_graph(512, 0.2e-6)
        per_worker = StealingScheduler(fine, 8, small_ctx, deque="locked").run().time
        central = StealingScheduler(
            wide_graph(512, 0.2e-6), 8, small_ctx, deque="locked", central_queue=True
        ).run().time
        assert central <= per_worker * 1.05

    def test_deterministic(self, small_ctx):
        a = StealingScheduler(
            wide_graph(100), 4, small_ctx, deque="locked", central_queue=True
        ).run().time
        b = StealingScheduler(
            wide_graph(100), 4, small_ctx, deque="locked", central_queue=True
        ).run().time
        assert a == b


class TestPresets:
    def test_gcc_costs_heavier(self):
        assert GCC_COSTS.omp_task_spawn > INTEL_COSTS.omp_task_spawn
        assert GCC_COSTS.barrier_cost(16) > INTEL_COSTS.barrier_cost(16)

    def test_intel_is_default(self):
        assert INTEL_COSTS == ExecContext().costs


class TestComparison:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_task_runtimes(n=14, threads=(1, 4, 8))

    def test_all_runtimes_present(self, results):
        assert set(results) == set(RUNTIMES)

    def test_ordering(self, results):
        for i in range(3):
            assert results["cilk"][i] <= results["intel_omp"][i] <= results["gcc_libgomp"][i]

    def test_libgomp_scales_worst(self, results):
        sp = {r: results[r][0] / results[r][-1] for r in RUNTIMES}
        assert sp["gcc_libgomp"] < sp["intel_omp"]
        assert sp["gcc_libgomp"] < sp["cilk"]

    def test_render(self, results):
        text = render_comparison(results, (1, 4, 8), 14)
        assert "gcc_libgomp" in text and "p=8" in text

    def test_unknown_runtime(self):
        with pytest.raises(ValueError):
            compare_task_runtimes(n=10, threads=(1,), runtimes=("tbb_flow",))
