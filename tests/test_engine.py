"""Tests for the discrete-event engine and the SimLock resource."""

import pytest

from repro.sim.engine import Engine, SimLock


class TestEngine:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        seen = []
        eng.at(3.0, lambda: seen.append("c"))
        eng.at(1.0, lambda: seen.append("a"))
        eng.at(2.0, lambda: seen.append("b"))
        eng.run()
        assert seen == ["a", "b", "c"]
        assert eng.now == 3.0

    def test_ties_break_by_insertion_order(self):
        eng = Engine()
        seen = []
        for tag in ("first", "second", "third"):
            eng.at(1.0, lambda t=tag: seen.append(t))
        eng.run()
        assert seen == ["first", "second", "third"]

    def test_callbacks_can_schedule_more(self):
        eng = Engine()
        seen = []

        def chain(k):
            seen.append(k)
            if k < 5:
                eng.after(1.0, lambda: chain(k + 1))

        eng.at(0.0, lambda: chain(0))
        eng.run()
        assert seen == [0, 1, 2, 3, 4, 5]
        assert eng.now == 5.0

    def test_cannot_schedule_in_past(self):
        eng = Engine()
        eng.at(5.0, lambda: eng.at(1.0, lambda: None))
        with pytest.raises(ValueError):
            eng.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().after(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        eng = Engine()
        seen = []
        eng.at(1.0, lambda: seen.append(1))
        eng.at(10.0, lambda: seen.append(10))
        eng.run(until=5.0)
        assert seen == [1]
        assert eng.pending == 1
        eng.run()
        assert seen == [1, 10]

    def test_max_events_guard(self):
        eng = Engine()

        def forever():
            eng.after(1.0, forever)

        eng.at(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            eng.run(max_events=100)

    def test_events_processed_counter(self):
        eng = Engine()
        for i in range(7):
            eng.at(float(i), lambda: None)
        eng.run()
        assert eng.events_processed == 7

    def test_empty_run_returns_now(self):
        eng = Engine()
        assert eng.run() == 0.0

    def test_direct_at_in_past_after_clock_advanced(self):
        eng = Engine()
        eng.at(5.0, lambda: None)
        eng.run()
        assert eng.now == 5.0
        with pytest.raises(ValueError, match="before now"):
            eng.at(4.999, lambda: None)
        eng.at(5.0, lambda: None)  # exactly now is fine

    def test_negative_absolute_time_rejected(self):
        with pytest.raises(ValueError):
            Engine().at(-0.001, lambda: None)

    def test_negative_delay_after_advance_rejected(self):
        eng = Engine()
        eng.at(3.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.after(-1.0, lambda: None)
        eng.after(0.0, lambda: None)  # zero delay is fine

    def test_tie_breaker_is_deterministic_across_runs(self):
        def run_once():
            eng = Engine()
            seen = []
            # interleave equal-time events from top level and callbacks
            for i in range(5):
                eng.at(1.0, lambda i=i: seen.append(("top", i)))
            eng.at(0.5, lambda: [eng.at(1.0, lambda j=j: seen.append(("cb", j)))
                                 for j in range(5)])
            eng.run()
            return seen

        first = run_once()
        assert first == run_once()
        # insertion order within the tie: top-level events were queued first
        assert first[:5] == [("top", i) for i in range(5)]
        assert first[5:] == [("cb", j) for j in range(5)]


class TestEngineAudit:
    def test_audit_off_by_default(self):
        eng = Engine()
        eng.at(1.0, lambda: None)
        eng.run()
        assert eng.audit is None

    def test_audit_records_time_and_seq(self):
        eng = Engine()
        log = eng.enable_audit()
        eng.at(2.0, lambda: None)
        eng.at(1.0, lambda: None)
        eng.at(1.0, lambda: None)
        eng.run()
        assert log == [(1.0, 2), (1.0, 3), (2.0, 1)]
        times = [t for t, _ in log]
        assert times == sorted(times)

    def test_enable_audit_is_idempotent(self):
        eng = Engine()
        log = eng.enable_audit()
        assert eng.enable_audit() is log


class TestSimLock:
    def test_uncontended_grant_is_immediate(self):
        lock = SimLock()
        assert lock.acquire(5.0, 1.0) == 5.0
        assert lock.busy_until == 6.0

    def test_contended_waits_fifo(self):
        lock = SimLock()
        g1 = lock.acquire(0.0, 2.0)
        g2 = lock.acquire(1.0, 2.0)
        g3 = lock.acquire(1.5, 2.0)
        assert (g1, g2, g3) == (0.0, 2.0, 4.0)

    def test_acquire_release_returns_end(self):
        lock = SimLock()
        assert lock.acquire_release(3.0, 0.5) == 3.5

    def test_gap_resets_contention(self):
        lock = SimLock()
        lock.acquire(0.0, 1.0)
        assert lock.acquire(10.0, 1.0) == 10.0

    def test_statistics(self):
        lock = SimLock("d")
        lock.acquire(0.0, 2.0)
        lock.acquire(0.0, 2.0)  # waits 2
        assert lock.acquisitions == 2
        assert lock.wait_time == pytest.approx(2.0)
        assert lock.hold_time == pytest.approx(4.0)
        assert 0.0 < lock.contended_fraction < 1.0

    def test_zero_hold_allowed(self):
        lock = SimLock()
        assert lock.acquire(1.0, 0.0) == 1.0

    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            SimLock().acquire(0.0, -1.0)

    def test_fresh_lock_uncontended_fraction_zero(self):
        assert SimLock().contended_fraction == 0.0

    def test_audit_log_off_by_default(self):
        lock = SimLock()
        lock.acquire(0.0, 1.0)
        assert lock.log is None

    def test_audit_log_records_request_grant_hold(self):
        lock = SimLock(audit=True)
        lock.acquire(0.0, 2.0)
        lock.acquire(1.0, 0.5)  # contended: granted at 2.0
        assert lock.log == [(0.0, 0.0, 2.0), (1.0, 2.0, 0.5)]
        for req, grant, hold in lock.log:
            assert grant >= req and hold >= 0.0
