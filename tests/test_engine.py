"""Tests for the discrete-event engine and the SimLock resource."""

import pytest

from repro.sim.engine import Engine, SimLock


class TestEngine:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        seen = []
        eng.at(3.0, lambda: seen.append("c"))
        eng.at(1.0, lambda: seen.append("a"))
        eng.at(2.0, lambda: seen.append("b"))
        eng.run()
        assert seen == ["a", "b", "c"]
        assert eng.now == 3.0

    def test_ties_break_by_insertion_order(self):
        eng = Engine()
        seen = []
        for tag in ("first", "second", "third"):
            eng.at(1.0, lambda t=tag: seen.append(t))
        eng.run()
        assert seen == ["first", "second", "third"]

    def test_callbacks_can_schedule_more(self):
        eng = Engine()
        seen = []

        def chain(k):
            seen.append(k)
            if k < 5:
                eng.after(1.0, lambda: chain(k + 1))

        eng.at(0.0, lambda: chain(0))
        eng.run()
        assert seen == [0, 1, 2, 3, 4, 5]
        assert eng.now == 5.0

    def test_cannot_schedule_in_past(self):
        eng = Engine()
        eng.at(5.0, lambda: eng.at(1.0, lambda: None))
        with pytest.raises(ValueError):
            eng.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().after(-1.0, lambda: None)

    def test_run_until_stops_early(self):
        eng = Engine()
        seen = []
        eng.at(1.0, lambda: seen.append(1))
        eng.at(10.0, lambda: seen.append(10))
        eng.run(until=5.0)
        assert seen == [1]
        assert eng.pending == 1
        eng.run()
        assert seen == [1, 10]

    def test_max_events_guard(self):
        eng = Engine()

        def forever():
            eng.after(1.0, forever)

        eng.at(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            eng.run(max_events=100)

    def test_events_processed_counter(self):
        eng = Engine()
        for i in range(7):
            eng.at(float(i), lambda: None)
        eng.run()
        assert eng.events_processed == 7

    def test_empty_run_returns_now(self):
        eng = Engine()
        assert eng.run() == 0.0


class TestSimLock:
    def test_uncontended_grant_is_immediate(self):
        lock = SimLock()
        assert lock.acquire(5.0, 1.0) == 5.0
        assert lock.busy_until == 6.0

    def test_contended_waits_fifo(self):
        lock = SimLock()
        g1 = lock.acquire(0.0, 2.0)
        g2 = lock.acquire(1.0, 2.0)
        g3 = lock.acquire(1.5, 2.0)
        assert (g1, g2, g3) == (0.0, 2.0, 4.0)

    def test_acquire_release_returns_end(self):
        lock = SimLock()
        assert lock.acquire_release(3.0, 0.5) == 3.5

    def test_gap_resets_contention(self):
        lock = SimLock()
        lock.acquire(0.0, 1.0)
        assert lock.acquire(10.0, 1.0) == 10.0

    def test_statistics(self):
        lock = SimLock("d")
        lock.acquire(0.0, 2.0)
        lock.acquire(0.0, 2.0)  # waits 2
        assert lock.acquisitions == 2
        assert lock.wait_time == pytest.approx(2.0)
        assert lock.hold_time == pytest.approx(4.0)
        assert 0.0 < lock.contended_fraction < 1.0

    def test_zero_hold_allowed(self):
        lock = SimLock()
        assert lock.acquire(1.0, 0.0) == 1.0

    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            SimLock().acquire(0.0, -1.0)

    def test_fresh_lock_uncontended_fraction_zero(self):
        assert SimLock().contended_fraction == 0.0
