"""Tests for the sensitivity-analysis module and placement policy."""


import pytest

from repro.core.experiment import run_experiment
from repro.core.metrics import version_ratio
from repro.core.sensitivity import (
    SensitivityResult,
    cost_sensitivity,
    machine_sensitivity,
    render_sensitivity,
)
from repro.runtime.base import ExecContext
from repro.sim.machine import Machine


def fib_ratio(ctx: ExecContext) -> float:
    s = run_experiment("fib", versions=("omp_task", "cilk_spawn"), threads=(4,), ctx=ctx, n=16)
    return version_ratio(s, "omp_task", "cilk_spawn", 4)


def axpy_gap(ctx: ExecContext) -> float:
    s = run_experiment(
        "axpy", versions=("omp_for", "cilk_for"), threads=(4,), ctx=ctx, n=1_000_000
    )
    return version_ratio(s, "cilk_for", "omp_for", 4)


class TestCostSensitivity:
    def test_fib_finding_stable_under_steal_cost(self):
        r = cost_sensitivity("the_steal", fib_ratio, factors=(0.25, 1.0, 4.0))
        assert all(v > 1.0 for v in r.metric_values), "cilk stays ahead"
        assert r.stable_within(1.5)

    def test_spawn_cost_moves_the_metric(self):
        r = cost_sensitivity("omp_task_spawn", fib_ratio, factors=(0.25, 1.0, 4.0))
        assert r.metric_values[0] < r.metric_values[-1]

    def test_unknown_cost_rejected(self):
        with pytest.raises(AttributeError):
            cost_sensitivity("warp_cost", fib_ratio)

    def test_base_value_recorded(self):
        ctx = ExecContext()
        r = cost_sensitivity("the_steal", lambda c: 1.0, factors=(1.0,), ctx=ctx)
        assert r.base_value == ctx.costs.the_steal


class TestMachineSensitivity:
    def test_bandwidth_drives_axpy_gap(self):
        r = machine_sensitivity(
            "core_bandwidth", axpy_gap, factors=(0.5, 1.0, 2.0), metric_name="axpy gap"
        )
        assert len(r.metric_values) == 3
        assert all(v >= 1.0 for v in r.metric_values)

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeError):
            machine_sensitivity("name", axpy_gap)


class TestRender:
    def test_table(self):
        r = SensitivityResult("costs.x", 1e-6, (0.5, 1.0), (1.2, 1.3), "ratio")
        text = render_sensitivity([r])
        assert "costs.x" in text and "x0.5" in text and "spread" in text

    def test_empty(self):
        assert "no sensitivity" in render_sensitivity([])

    def test_mismatched_grids_rejected(self):
        a = SensitivityResult("a", 1.0, (1.0,), (1.0,), "m")
        b = SensitivityResult("b", 1.0, (0.5, 1.0), (1.0, 1.0), "m")
        with pytest.raises(ValueError):
            render_sensitivity([a, b])

    def test_spread(self):
        r = SensitivityResult("a", 1.0, (0.5, 1.0), (1.0, 2.0), "m")
        assert r.spread() == pytest.approx(2.0)
        assert r.stable_within(2.0)
        assert not r.stable_within(1.5)


class TestPlacement:
    def test_close_default(self):
        assert Machine().placement == "close"
        assert Machine().sockets_spanned(8) == 1

    def test_spread_spans_early(self):
        m = Machine(placement="spread")
        assert m.sockets_spanned(1) == 1
        assert m.sockets_spanned(2) == 2
        assert m.sockets_spanned(36) == 2

    def test_invalid_placement(self):
        with pytest.raises(ValueError):
            Machine(placement="random")

    def test_spread_gives_more_bandwidth_midrange(self):
        close = Machine(placement="close")
        spread = Machine(placement="spread")
        # at 8 threads: close is limited to one socket's controllers
        assert spread.bandwidth_per_thread(8) > close.bandwidth_per_thread(8)

    def test_spread_helps_bandwidth_bound_workload(self):
        ctx_close = ExecContext()
        ctx_spread = ExecContext(machine=Machine(placement="spread"))
        t_close = axpy_gap_time(ctx_close)
        t_spread = axpy_gap_time(ctx_spread)
        assert t_spread < t_close


def axpy_gap_time(ctx: ExecContext) -> float:
    s = run_experiment("axpy", versions=("omp_for",), threads=(8,), ctx=ctx, n=2_000_000)
    return s.time("omp_for", 8)
