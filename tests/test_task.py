"""Tests for the workload IR: tasks, graphs, iteration spaces, programs."""

import numpy as np
import pytest

from repro.sim.task import (
    IterSpace,
    LoopRegion,
    Program,
    SerialRegion,
    TaskGraph,
    TaskRegion,
)


class TestTaskGraph:
    def test_add_returns_sequential_ids(self):
        g = TaskGraph()
        assert [g.add(1.0) for _ in range(3)] == [0, 1, 2]
        assert len(g) == 3

    def test_dependencies_build_successors(self):
        g = TaskGraph()
        a = g.add(1.0)
        b = g.add(1.0, deps=[a])
        c = g.add(1.0, deps=[a, b])
        assert g.successors[a] == [b, c]
        assert g.successors[b] == [c]
        assert g.roots == [a]
        assert g.indegrees() == [0, 1, 2]

    def test_forward_dep_rejected(self):
        g = TaskGraph()
        g.add(1.0)
        with pytest.raises(ValueError, match="unknown/future"):
            g.add(1.0, deps=[5])

    def test_self_dep_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add(1.0, deps=[0])  # would be its own id

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph().add(-1.0)

    def test_bad_locality_rejected(self):
        with pytest.raises(ValueError):
            TaskGraph().add(1.0, locality=2.0)

    def test_total_work(self):
        g = TaskGraph()
        g.add(1.0)
        g.add(2.5)
        assert g.total_work() == pytest.approx(3.5)

    def test_critical_path_chain(self):
        g = TaskGraph()
        prev = g.add(1.0)
        for _ in range(4):
            prev = g.add(1.0, deps=[prev])
        assert g.critical_path() == pytest.approx(5.0)

    def test_critical_path_diamond(self):
        g = TaskGraph()
        a = g.add(1.0)
        b = g.add(5.0, deps=[a])
        c = g.add(1.0, deps=[a])
        g.add(1.0, deps=[b, c])
        assert g.critical_path() == pytest.approx(7.0)

    def test_critical_path_le_total_work(self):
        g = TaskGraph()
        a = g.add(3.0)
        g.add(2.0, deps=[a])
        g.add(4.0, deps=[a])
        assert g.critical_path() <= g.total_work()

    def test_validate_passes_on_wellformed(self):
        g = TaskGraph()
        a = g.add(1.0)
        g.add(1.0, deps=[a])
        g.validate()

    def test_empty_graph(self):
        g = TaskGraph()
        assert g.roots == []
        assert g.critical_path() == 0.0
        assert g.total_work() == 0.0


class TestIterSpaceUniform:
    def test_totals(self):
        s = IterSpace.uniform(1000, 1e-6, 8.0)
        assert s.total_work == pytest.approx(1e-3)
        assert s.total_bytes == pytest.approx(8000.0)

    def test_chunk_cost_proportional(self):
        s = IterSpace.uniform(1000, 1e-6, 8.0)
        w, b = s.chunk_cost(0, 500)
        assert w == pytest.approx(5e-4)
        assert b == pytest.approx(4000.0)

    def test_chunk_cost_additive(self):
        s = IterSpace.uniform(997, 2e-6, 3.0)
        w1, b1 = s.chunk_cost(0, 400)
        w2, b2 = s.chunk_cost(400, 997)
        assert w1 + w2 == pytest.approx(s.total_work)
        assert b1 + b2 == pytest.approx(s.total_bytes)

    def test_empty_chunk_is_free(self):
        s = IterSpace.uniform(10, 1.0)
        assert s.chunk_cost(5, 5) == (0.0, 0.0)

    def test_out_of_range_rejected(self):
        s = IterSpace.uniform(10, 1.0)
        with pytest.raises(ValueError):
            s.chunk_cost(0, 11)
        with pytest.raises(ValueError):
            s.chunk_cost(-1, 5)
        with pytest.raises(ValueError):
            s.chunk_cost(7, 3)

    def test_chunk_costs_vectorized_matches_scalar(self):
        s = IterSpace.uniform(1000, 1e-6, 4.0)
        bounds = np.array([0, 100, 350, 999, 1000])
        ws, bs = s.chunk_costs(bounds)
        for i in range(len(bounds) - 1):
            w, b = s.chunk_cost(int(bounds[i]), int(bounds[i + 1]))
            assert ws[i] == pytest.approx(w)
            assert bs[i] == pytest.approx(b)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            IterSpace.uniform(0, 1.0)
        with pytest.raises(ValueError):
            IterSpace(10, np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            IterSpace(10, np.array([-1.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            IterSpace.uniform(10, 1.0, locality=1.5)


class TestIterSpaceProfile:
    def test_from_profile_preserves_totals(self):
        rng = np.random.default_rng(1)
        work = rng.random(5000)
        s = IterSpace.from_profile(work, max_blocks=128)
        assert s.nblocks == 128
        assert s.total_work == pytest.approx(work.sum())

    def test_from_profile_exact_when_small(self):
        work = np.array([1.0, 2.0, 3.0, 4.0])
        s = IterSpace.from_profile(work)
        w, _ = s.chunk_cost(1, 3)
        assert w == pytest.approx(5.0)

    def test_skew_visible_at_block_resolution(self):
        work = np.concatenate([np.full(500, 1.0), np.full(500, 3.0)])
        s = IterSpace.from_profile(work, max_blocks=10)
        w_lo, _ = s.chunk_cost(0, 500)
        w_hi, _ = s.chunk_cost(500, 1000)
        assert w_hi == pytest.approx(3 * w_lo)

    def test_empty_profile_rejected(self):
        with pytest.raises(ValueError):
            IterSpace.from_profile(np.array([]))

    def test_bytes_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IterSpace.from_profile(np.ones(5), np.ones(6))

    def test_with_extra_work_per_iter(self):
        s = IterSpace.uniform(1000, 1e-6, 8.0)
        s2 = s.with_extra_work_per_iter(1e-6)
        assert s2.total_work == pytest.approx(2e-3)
        assert s2.total_bytes == pytest.approx(s.total_bytes)
        assert s2.niter == s.niter

    def test_with_extra_zero_returns_self(self):
        s = IterSpace.uniform(10, 1.0)
        assert s.with_extra_work_per_iter(0.0) is s

    def test_with_extra_negative_rejected(self):
        with pytest.raises(ValueError):
            IterSpace.uniform(10, 1.0).with_extra_work_per_iter(-1.0)


class TestRegionsAndProgram:
    def test_program_accumulates_regions(self):
        prog = Program("p")
        prog.add(SerialRegion(1.0)).add(
            LoopRegion(IterSpace.uniform(10, 1.0), "worksharing")
        )
        assert len(prog) == 2
        assert prog.serial_work() == pytest.approx(1.0)

    def test_task_region_static_graph(self):
        g = TaskGraph()
        g.add(1.0)
        r = TaskRegion(g, "stealing")
        assert r.graph_for(4) is g

    def test_task_region_builder_gets_nthreads(self):
        seen = []

        def builder(p):
            seen.append(p)
            g = TaskGraph()
            g.add(float(p))
            return g

        r = TaskRegion(builder, "stealing")
        g = r.graph_for(7)
        assert seen == [7]
        assert g.tasks[0].work == 7.0

    def test_task_region_builder_type_checked(self):
        r = TaskRegion(lambda p: "nope", "stealing")
        with pytest.raises(TypeError):
            r.graph_for(2)

    def test_program_iterates_in_order(self):
        prog = Program("p")
        a, b = SerialRegion(1.0), SerialRegion(2.0)
        prog.add(a).add(b)
        assert list(prog) == [a, b]
