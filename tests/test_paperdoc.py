"""Tests for the one-shot report generator and its CLI command."""

import pathlib

import pytest

from repro.cli import main
from repro.core.paperdoc import generate_report


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def outdir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("report")
        generate_report(out, threads=(1, 4), workloads=["matmul", "fib"])
        return pathlib.Path(out)

    def test_tables_written(self, outdir):
        for n in (1, 2, 3):
            text = (outdir / f"table{n}.txt").read_text()
            assert "TABLE" in text

    def test_figures_written(self, outdir):
        fig = (outdir / "fig4_matmul.txt").read_text()
        assert "cilk_for" in fig and "p=4" in fig
        assert (outdir / "fig5_fib.txt").exists()

    def test_claims_written(self, outdir):
        text = (outdir / "claims.txt").read_text()
        assert "[PASS]" in text
        assert "paper:" in text

    def test_index_links_everything(self, outdir):
        index = (outdir / "INDEX.md").read_text()
        assert "Table 1" in index
        assert "fig4_matmul.txt" in index
        assert "claims.txt" in index
        assert "11/11" in index

    def test_cli_report(self, tmp_path, capsys):
        out = tmp_path / "r"
        assert main(
            ["report", "--out", str(out), "--workloads", "matmul",
             "--threads", "1", "2", "--no-claims"]
        ) == 0
        assert (out / "INDEX.md").exists()
        assert "wrote artifacts" in capsys.readouterr().out
