"""A persistent worker thread pool with static chunking.

Mirrors the structure of the paper's C++11 versions: a pool of plain
threads, manual contiguous chunking (``BASE = N / nthreads``), and a
join/barrier at the end of each parallel region.  Work items should be
numpy block operations so the GIL is released during execution.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Optional, Sequence

__all__ = ["ThreadPool", "parallel_for", "parallel_reduce", "static_chunks"]


def static_chunks(n: int, nchunks: int) -> list[tuple[int, int]]:
    """Contiguous [lo, hi) chunk bounds, the manual-chunking pattern."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if nchunks <= 0:
        raise ValueError("nchunks must be positive")
    nchunks = min(nchunks, n) or 1
    return [(i * n // nchunks, (i + 1) * n // nchunks) for i in range(nchunks)]


class ThreadPool:
    """Persistent threads draining a shared work queue.

    Not a scheduler — deliberately minimal, like ``std::thread`` code:
    ``map`` submits one item per chunk and blocks until all complete,
    re-raising the first worker exception.
    """

    def __init__(self, nthreads: int) -> None:
        if nthreads <= 0:
            raise ValueError("nthreads must be positive")
        self.nthreads = nthreads
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._shutdown = False
        self._threads = [
            threading.Thread(target=self._worker, name=f"repro-worker-{i}", daemon=True)
            for i in range(nthreads)
        ]
        for t in self._threads:
            t.start()

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            fn, args, result, index, done = item
            try:
                result[index] = (True, fn(*args))
            except BaseException as exc:  # propagate to the caller
                result[index] = (False, exc)
            finally:
                done.release()

    def map(self, fn: Callable[..., Any], argss: Sequence[tuple]) -> list[Any]:
        """Run ``fn(*args)`` for every args tuple; ordered results."""
        if self._shutdown:
            raise RuntimeError("pool is shut down")
        n = len(argss)
        if n == 0:
            return []
        results: list[Any] = [None] * n
        done = threading.Semaphore(0)
        for i, args in enumerate(argss):
            self._queue.put((fn, args, results, i, done))
        for _ in range(n):
            done.acquire()
        out = []
        for ok, value in results:
            if not ok:
                raise value
            out.append(value)
        return out

    def shutdown(self) -> None:
        """Stop the workers; the pool cannot be reused."""
        if self._shutdown:
            return
        self._shutdown = True
        for _ in self._threads:
            self._queue.put(None)
        for t in self._threads:
            t.join()

    def __enter__(self) -> "ThreadPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def parallel_for(
    fn: Callable[[int, int], Any],
    n: int,
    pool: ThreadPool,
    nchunks: Optional[int] = None,
) -> list[Any]:
    """Run ``fn(lo, hi)`` over static chunks of ``range(n)``."""
    chunks = static_chunks(n, nchunks if nchunks is not None else pool.nthreads)
    return pool.map(fn, [(lo, hi) for lo, hi in chunks])


def parallel_reduce(
    fn: Callable[[int, int], Any],
    n: int,
    pool: ThreadPool,
    combine: Callable[[Any, Any], Any],
    initial: Any,
    nchunks: Optional[int] = None,
) -> Any:
    """Chunk-local partials combined serially — the thread-private
    reduction pattern of every model except Cilk's reducers."""
    acc = initial
    for part in parallel_for(fn, n, pool, nchunks):
        acc = combine(acc, part)
    return acc
