"""Thread-parallel Rodinia algorithms over the native pool.

Each function computes *exactly* the same result as its counterpart in
:mod:`repro.rodinia.reference`, decomposed the way the paper's OpenMP
versions decompose it (row chunks per phase, level-synchronous BFS
sweeps, per-step trailing-update chunks for LUD).  Workers execute
numpy block operations, so the GIL releases during the heavy parts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.native.pool import ThreadPool, parallel_for
from repro.rodinia import reference as ref

__all__ = [
    "bfs_parallel",
    "hotspot_parallel",
    "lud_parallel",
    "srad_parallel",
]


def bfs_parallel(
    adjacency: Sequence[np.ndarray], pool: ThreadPool, source: int = 0
) -> np.ndarray:
    """Level-synchronous BFS with the frontier expanded in node chunks."""
    n = len(adjacency)
    if not 0 <= source < n:
        raise ValueError("source out of range")
    depth = np.full(n, -1, dtype=np.int64)
    depth[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        chunks_out: list[list[int]] = []

        def expand(lo: int, hi: int) -> list[int]:
            found: list[int] = []
            for u in frontier[lo:hi]:
                for v in adjacency[int(u)]:
                    if depth[v] < 0:
                        found.append(int(v))
            return found

        chunks_out = parallel_for(expand, frontier.size, pool)
        # commit phase: serialized, de-duplicated (threads may discover
        # the same node; the commit resolves races deterministically)
        discovered = sorted({v for chunk in chunks_out for v in chunk if depth[v] < 0})
        for v in discovered:
            depth[v] = level
        frontier = np.array(discovered, dtype=np.int64)
    return depth


def hotspot_parallel(
    temp: np.ndarray, power: np.ndarray, pool: ThreadPool, steps: int = 1
) -> np.ndarray:
    """Row-chunked HotSpot: each step reads the old grid, writes a new one."""
    temp = np.array(temp, dtype=np.float64)
    power = np.asarray(power, dtype=np.float64)
    if temp.shape != power.shape or temp.ndim != 2:
        raise ValueError("temp and power must be equal-shape 2-D grids")
    rows = temp.shape[0]
    for _ in range(steps):
        src = temp
        dst = np.empty_like(src)
        padded = np.pad(src, 1, mode="edge")

        def body(lo: int, hi: int) -> None:
            t = src[lo:hi]
            north = padded[lo : hi, 1:-1]
            south = padded[lo + 2 : hi + 2, 1:-1]
            west = padded[lo + 1 : hi + 1, :-2]
            east = padded[lo + 1 : hi + 1, 2:]
            dst[lo:hi] = t + (ref._HS_DT / ref._HS_CAP) * (
                power[lo:hi]
                + (north + south - 2.0 * t) / ref._HS_RY
                + (east + west - 2.0 * t) / ref._HS_RX
                + (ref._HS_AMB - t) / ref._HS_RZ
            )

        parallel_for(body, rows, pool)
        temp = dst
    return temp


def lud_parallel(
    matrix: np.ndarray, pool: ThreadPool, block: int = 16
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked LU with the perimeter and trailing updates row-chunked.

    Same operation order as the reference within each phase, so results
    are bit-identical.
    """
    a = np.array(matrix, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    n = a.shape[0]
    if block <= 0:
        raise ValueError("block must be positive")
    for k0 in range(0, n, block):
        k1 = min(k0 + block, n)
        for k in range(k0, k1):  # serial diagonal factorization
            if a[k, k] == 0.0:
                raise ZeroDivisionError(f"zero pivot at {k} (matrix needs pivoting)")
            a[k + 1 : k1, k] /= a[k, k]
            a[k + 1 : k1, k + 1 : k1] -= np.outer(a[k + 1 : k1, k], a[k, k + 1 : k1])
        for k in range(k0, k1):  # perimeter panels
            a[k, k1:] -= a[k, k0:k] @ a[k0:k, k1:]
            a[k1:, k] = (a[k1:, k] - a[k1:, k0:k] @ a[k0:k, k]) / a[k, k]
        if k1 < n:  # parallel trailing update over row chunks
            rem = n - k1
            panel_l = a[k1:, k0:k1]
            panel_u = a[k0:k1, k1:]

            def body(lo: int, hi: int) -> None:
                a[k1 + lo : k1 + hi, k1:] -= panel_l[lo:hi] @ panel_u

            parallel_for(body, rem, pool)
    lower = np.tril(a, -1) + np.eye(n)
    upper = np.triu(a)
    return lower, upper


def srad_parallel(
    image: np.ndarray, pool: ThreadPool, iters: int = 1, lam: float = 0.5
) -> np.ndarray:
    """Two row-chunked passes per SRAD iteration (coefficient, update)."""
    img = np.array(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("image must be 2-D")
    if (img <= 0).any():
        raise ValueError("SRAD operates on positive intensities")
    rows = img.shape[0]
    for _ in range(iters):
        mean = img.mean()
        var = img.var()
        q0_sq = var / (mean * mean)
        padded = np.pad(img, 1, mode="edge")
        dn = np.empty_like(img)
        ds = np.empty_like(img)
        dw = np.empty_like(img)
        de = np.empty_like(img)
        c = np.empty_like(img)

        def coeff(lo: int, hi: int) -> None:
            t = img[lo:hi]
            dn[lo:hi] = padded[lo : hi, 1:-1] - t
            ds[lo:hi] = padded[lo + 2 : hi + 2, 1:-1] - t
            dw[lo:hi] = padded[lo + 1 : hi + 1, :-2] - t
            de[lo:hi] = padded[lo + 1 : hi + 1, 2:] - t
            g2 = (dn[lo:hi] ** 2 + ds[lo:hi] ** 2 + dw[lo:hi] ** 2 + de[lo:hi] ** 2) / (
                t * t
            )
            l_ = (dn[lo:hi] + ds[lo:hi] + dw[lo:hi] + de[lo:hi]) / t
            num = 0.5 * g2 - (1.0 / 16.0) * l_ * l_
            den = (1.0 + 0.25 * l_) ** 2
            q_sq = num / den
            cc = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq)))
            c[lo:hi] = np.clip(cc, 0.0, 1.0)

        parallel_for(coeff, rows, pool)

        cp = np.pad(c, 1, mode="edge")
        out = np.empty_like(img)

        def update(lo: int, hi: int) -> None:
            c_s = cp[lo + 2 : hi + 2, 1:-1]
            c_e = cp[lo + 1 : hi + 1, 2:]
            div = c_s * ds[lo:hi] + c[lo:hi] * dn[lo:hi] + c_e * de[lo:hi] + c[lo:hi] * dw[lo:hi]
            out[lo:hi] = img[lo:hi] + 0.25 * lam * div

        parallel_for(update, rows, pool)
        img = out
    return img
