"""Real-thread execution backend.

The quantitative reproduction runs on the simulator (CPython's GIL
serializes compute threads, so real shared-memory threading comparisons
are impossible in pure Python — the reason this repo simulates; see
DESIGN.md).  This package provides the *functional* counterpart: a real
thread pool whose workers execute numpy block operations (numpy releases
the GIL inside array ops), used to validate that the chunked
decompositions the models describe compute correct results — and to
demonstrate on real hardware that chunked data parallelism scales when
the GIL is out of the way.
"""

from repro.native.pool import ThreadPool, parallel_for, parallel_reduce
from repro.native.kernels import (
    axpy_parallel,
    matmul_parallel,
    matvec_parallel,
    sum_parallel,
)

__all__ = [
    "ThreadPool",
    "axpy_parallel",
    "matmul_parallel",
    "matvec_parallel",
    "parallel_for",
    "parallel_reduce",
    "sum_parallel",
]
