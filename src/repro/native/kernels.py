"""Chunked numpy implementations of the paper's kernels.

Each function computes the same result as the kernel's serial
reference, but split into contiguous chunks executed by a
:class:`~repro.native.pool.ThreadPool` — the exact decomposition the
paper's C++11 (and OpenMP-static) versions use.  numpy releases the GIL
inside the block operations, so these scale on real cores.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.native.pool import ThreadPool, parallel_for, parallel_reduce

__all__ = ["axpy_parallel", "sum_parallel", "matvec_parallel", "matmul_parallel"]


def _check_pool(pool: ThreadPool) -> None:
    if not isinstance(pool, ThreadPool):
        raise TypeError("pool must be a repro.native.ThreadPool")


def axpy_parallel(
    a: float, x: np.ndarray, y: np.ndarray, pool: ThreadPool, nchunks: Optional[int] = None
) -> np.ndarray:
    """In-place ``y += a * x`` by contiguous chunks; returns ``y``."""
    _check_pool(pool)
    x = np.asarray(x)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")

    def body(lo: int, hi: int) -> None:
        # in-place fused block op; numpy drops the GIL here
        y[lo:hi] += a * x[lo:hi]

    parallel_for(body, x.shape[0], pool, nchunks)
    return y


def sum_parallel(
    a: float, x: np.ndarray, pool: ThreadPool, nchunks: Optional[int] = None
) -> float:
    """``sum(a * x)`` with chunk-local partials (reduction pattern)."""
    _check_pool(pool)
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError("x must be 1-D")

    def body(lo: int, hi: int) -> float:
        return float(x[lo:hi].sum())

    total = parallel_reduce(body, x.shape[0], pool, lambda s, t: s + t, 0.0, nchunks)
    return a * total


def matvec_parallel(
    matrix: np.ndarray, x: np.ndarray, pool: ThreadPool, nchunks: Optional[int] = None
) -> np.ndarray:
    """Row-chunked matrix-vector product."""
    _check_pool(pool)
    matrix = np.asarray(matrix)
    x = np.asarray(x)
    if matrix.ndim != 2 or matrix.shape[1] != x.shape[0]:
        raise ValueError("shape mismatch")
    out = np.empty(matrix.shape[0], dtype=np.result_type(matrix, x))

    def body(lo: int, hi: int) -> None:
        out[lo:hi] = matrix[lo:hi] @ x

    parallel_for(body, matrix.shape[0], pool, nchunks)
    return out


def matmul_parallel(
    a: np.ndarray, b: np.ndarray, pool: ThreadPool, nchunks: Optional[int] = None
) -> np.ndarray:
    """Row-chunked matrix-matrix product."""
    _check_pool(pool)
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("shape mismatch")
    out = np.empty((a.shape[0], b.shape[1]), dtype=np.result_type(a, b))

    def body(lo: int, hi: int) -> None:
        out[lo:hi] = a[lo:hi] @ b

    parallel_for(body, a.shape[0], pool, nchunks)
    return out
