"""Append-only JSONL run ledger.

Every sweep, benchmark and CLI invocation appends one self-contained
JSON record to ``benchmarks/out/ledger/ledger.jsonl``: host wall/CPU
time, the recorder's span/counter detail, and an environment
fingerprint.  The ledger is the raw material for the regression
tracker (:mod:`repro.perf.regress`) and for ``repro perf ledger`` /
``repro perf report``.

Concurrency: records are appended with a single ``os.write`` on a file
descriptor opened ``O_APPEND``, so concurrent writers — forked sweep
drivers, parallel pytest workers — interleave whole lines rather than
bytes (POSIX append semantics; each record is one ``\\n``-terminated
line).  Readers skip lines that fail to parse, so a torn write (which
would take a record far beyond the atomic-append window) can at worst
lose itself, never the ledger.

The directory is created lazily on first append and lives under the
gitignored ``benchmarks/out/``; ``REPRO_LEDGER_DIR`` overrides the
location (tests and CI point it at scratch space).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Iterator, Mapping, Optional, Union

from repro.perf.env import environment_fingerprint
from repro.perf.spans import PerfRecorder

__all__ = ["DEFAULT_LEDGER_DIR", "LEDGER_DIR_ENV", "Ledger", "make_record"]

#: Where CLI commands and the benchmark harness append their records.
DEFAULT_LEDGER_DIR = pathlib.Path("benchmarks") / "out" / "ledger"

#: Environment override for the ledger directory.
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

#: Record layout version.
RECORD_SCHEMA = 1


def ledger_dir() -> pathlib.Path:
    """The active ledger directory (env override, else the default)."""
    override = os.environ.get(LEDGER_DIR_ENV)
    return pathlib.Path(override) if override else DEFAULT_LEDGER_DIR


def make_record(
    kind: str,
    name: str,
    recorder: Union[None, PerfRecorder, Mapping[str, Any]] = None,
    *,
    extra: Optional[dict[str, Any]] = None,
    env: bool = True,
) -> dict[str, Any]:
    """Build one ledger record (not yet timestamped — append stamps it).

    ``kind`` classifies the invocation (``sweep``, ``bench``,
    ``faults``, ``validate``, ``record``); ``name`` identifies the
    workload-level subject (e.g. ``sweep:axpy``) and keys the
    regression trajectory.  ``recorder`` contributes the measured
    wall/CPU totals and span/counter detail — either a live
    :class:`~repro.perf.spans.PerfRecorder` or an already-taken
    snapshot dict (``SweepResult.perf``); ``extra`` carries
    call-specific context (jobs, fidelity, cell counts, cache state).
    """
    snap: Optional[Mapping[str, Any]]
    if isinstance(recorder, PerfRecorder):
        snap = recorder.snapshot()
    else:
        snap = recorder
    record: dict[str, Any] = {
        "schema": RECORD_SCHEMA,
        "kind": str(kind),
        "name": str(name),
        "wall_seconds": float(snap.get("wall_seconds", 0.0)) if snap else 0.0,
        "cpu_seconds": float(snap.get("cpu_seconds", 0.0)) if snap else 0.0,
    }
    if snap is not None:
        record["spans"] = dict(snap.get("spans") or {})
        record["counters"] = dict(snap.get("counters") or {})
        record["observations"] = dict(snap.get("observations") or {})
    if env:
        record["env"] = environment_fingerprint()
    if extra:
        record["extra"] = dict(extra)
    return record


class Ledger:
    """One append-only ``ledger.jsonl`` file in a (lazily created) directory."""

    def __init__(self, root: Union[None, str, os.PathLike] = None) -> None:
        self.root = pathlib.Path(root) if root is not None else ledger_dir()

    @property
    def path(self) -> pathlib.Path:
        return self.root / "ledger.jsonl"

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, record: dict[str, Any]) -> dict[str, Any]:
        """Append one record (timestamping it) and return it.

        The encoded line is written with a single ``os.write`` on an
        ``O_APPEND`` descriptor, so concurrent appenders never
        interleave within a line.
        """
        record = dict(record)
        record.setdefault("schema", RECORD_SCHEMA)
        record["ts"] = time.time()
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        self.root.mkdir(parents=True, exist_ok=True)
        fd = os.open(str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)
        return record

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[dict[str, Any]]:
        """Yield records oldest-first; unparsable lines are skipped."""
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                continue
            if isinstance(doc, dict):
                yield doc

    def records(
        self, *, kind: Optional[str] = None, name: Optional[str] = None
    ) -> list[dict[str, Any]]:
        """All (optionally filtered) records, oldest-first."""
        out = []
        for rec in self:
            if kind is not None and rec.get("kind") != kind:
                continue
            if name is not None and rec.get("name") != name:
                continue
            out.append(rec)
        return out

    def tail(
        self, n: int = 10, *, kind: Optional[str] = None, name: Optional[str] = None
    ) -> list[dict[str, Any]]:
        """The last ``n`` matching records, oldest-first."""
        recs = self.records(kind=kind, name=name)
        return recs[-n:] if n >= 0 else recs

    def last(
        self, *, kind: Optional[str] = None, name: Optional[str] = None
    ) -> Optional[dict[str, Any]]:
        """The most recent matching record, or ``None``."""
        recs = self.tail(1, kind=kind, name=name)
        return recs[0] if recs else None

    def __len__(self) -> int:
        return len(self.records())
