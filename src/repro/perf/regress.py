"""Performance-regression tracking over the run ledger.

Two artifacts:

- **Trajectories** — ``BENCH_<name>.json`` files (next to the ledger)
  accumulating one entry per ledger record for that subject: timestamp,
  wall/CPU seconds and a thin environment digest.  They answer "how
  has this benchmark's host cost moved over time" without re-parsing
  the whole ledger.
- **Baselines** — committed reference costs under
  ``benchmarks/baselines/``: deterministic JSON (sorted keys, rounded
  values, *no timestamps*) written by ``repro perf record --update-baseline``
  and compared against by :func:`compare` / ``repro perf compare``.

:func:`compare` is deliberately one-sided: a run is a regression when a
metric exceeds ``baseline * (1 + tolerance)``; being faster than the
baseline is never an error.  Near-zero baselines (zero-time cells,
sub-resolution spans) are compared against the absolute floor instead
of a ratio, so a 0.0 baseline neither divides by zero nor fails on
clock noise.
"""

from __future__ import annotations

import json
import math
import pathlib
import re
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Union

__all__ = [
    "BASELINE_DIR",
    "MissingBaselineError",
    "RegressionCheck",
    "RegressionReport",
    "baseline_path",
    "compare",
    "load_baseline",
    "slugify",
    "trajectory_path",
    "update_trajectory",
    "write_baseline",
]

#: Committed reference costs live here (tracked in git).
BASELINE_DIR = pathlib.Path("benchmarks") / "baselines"

#: Baseline / trajectory layout version.
BASELINE_SCHEMA = 1

#: Below this many seconds a metric is "zero": host-clock noise, not signal.
ZERO_FLOOR = 1e-6

#: Default headroom: fail only beyond 50% over the baseline.
DEFAULT_TOLERANCE = 0.5

#: Metrics compared by default (top-level ledger-record keys).
DEFAULT_METRICS = ("wall_seconds", "cpu_seconds")

#: Trajectory length cap (oldest entries are dropped beyond it).
TRAJECTORY_KEEP = 500


class MissingBaselineError(FileNotFoundError):
    """No committed baseline exists for the requested subject."""


def slugify(name: str) -> str:
    """Filesystem-safe form of a record name (``sweep:axpy`` -> ``sweep_axpy``)."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", name).strip("_") or "run"


# ---------------------------------------------------------------------------
# trajectories
# ---------------------------------------------------------------------------
def trajectory_path(name: str, root: Union[str, pathlib.Path]) -> pathlib.Path:
    return pathlib.Path(root) / f"BENCH_{slugify(name)}.json"


def update_trajectory(
    record: Mapping[str, Any],
    root: Union[str, pathlib.Path],
    *,
    keep: int = TRAJECTORY_KEEP,
) -> pathlib.Path:
    """Fold one ledger record into its subject's trajectory file.

    Creates the file (and directory) lazily; drops the oldest entries
    beyond ``keep``.  The file is deterministic given its entries
    (sorted keys), but entries themselves carry timestamps — it lives
    with the ledger, not with the committed baselines.
    """
    name = str(record.get("name", "run"))
    path = trajectory_path(name, root)
    doc: dict[str, Any] = {"schema": BASELINE_SCHEMA, "name": name, "entries": []}
    try:
        existing = json.loads(path.read_text())
        if isinstance(existing, dict) and isinstance(existing.get("entries"), list):
            doc["entries"] = existing["entries"]
    except (OSError, ValueError):
        pass
    env = record.get("env") or {}
    entry = {
        "ts": float(record.get("ts", 0.0)),
        "wall_seconds": float(record.get("wall_seconds", 0.0)),
        "cpu_seconds": float(record.get("cpu_seconds", 0.0)),
        "kind": record.get("kind", ""),
        "env": {
            "python": env.get("python"),
            "git_sha": env.get("git_sha"),
            "machine": env.get("machine"),
        },
    }
    extra = record.get("extra")
    if isinstance(extra, Mapping) and extra:
        entry["extra"] = {str(k): extra[k] for k in sorted(extra)}
    doc["entries"].append(entry)
    doc["entries"] = doc["entries"][-keep:]
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
    return path


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------
def baseline_path(
    name: str, root: Union[str, pathlib.Path] = BASELINE_DIR
) -> pathlib.Path:
    return pathlib.Path(root) / f"{slugify(name)}.json"


def write_baseline(
    name: str,
    metrics: Mapping[str, float],
    *,
    root: Union[str, pathlib.Path] = BASELINE_DIR,
    meta: Optional[Mapping[str, Any]] = None,
) -> pathlib.Path:
    """Write a committed-quality baseline: sorted keys, rounded, no timestamps.

    Values are rounded to microseconds so regenerating a baseline on
    the same machine produces a stable diff; anything that would make
    the file nondeterministic (timestamps, raw env dumps) is excluded
    by construction.
    """
    doc: dict[str, Any] = {
        "schema": BASELINE_SCHEMA,
        "name": str(name),
        "metrics": {
            str(k): round(float(v), 6) for k, v in sorted(metrics.items())
        },
    }
    if meta:
        doc["meta"] = {str(k): meta[k] for k in sorted(meta)}
    path = baseline_path(name, root)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, sort_keys=True, indent=1) + "\n")
    return path


def load_baseline(
    name_or_path: Union[str, pathlib.Path],
    root: Union[str, pathlib.Path] = BASELINE_DIR,
) -> dict[str, Any]:
    """Load a baseline by subject name or explicit path.

    Raises :class:`MissingBaselineError` when absent and ``ValueError``
    when present but not a valid baseline document.
    """
    path = pathlib.Path(name_or_path)
    if path.suffix != ".json" or not path.exists():
        candidate = baseline_path(str(name_or_path), root)
        if candidate.exists():
            path = candidate
    try:
        doc = json.loads(path.read_text())
    except FileNotFoundError:
        raise MissingBaselineError(
            f"no baseline for {name_or_path!r} (looked at {path})"
        ) from None
    except ValueError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or not isinstance(doc.get("metrics"), dict):
        raise ValueError(f"baseline {path} has no 'metrics' mapping")
    return doc


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RegressionCheck:
    """One metric's verdict."""

    metric: str
    baseline: float
    current: float
    ratio: float  # current / baseline (inf when baseline ~ 0 and current isn't)
    limit: float  # baseline * (1 + tolerance)
    ok: bool

    def __str__(self) -> str:
        ratio = "inf" if math.isinf(self.ratio) else f"{self.ratio:.2f}x"
        verdict = "ok" if self.ok else "REGRESSION"
        return (
            f"{self.metric:<16} baseline={self.baseline:.6f}s "
            f"current={self.current:.6f}s ({ratio}, limit {self.limit:.6f}s) "
            f"{verdict}"
        )


@dataclass
class RegressionReport:
    """All metric verdicts of one baseline comparison."""

    name: str
    tolerance: float
    checks: list[RegressionCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def regressions(self) -> list[RegressionCheck]:
        return [c for c in self.checks if not c.ok]

    def check(self, metric: str) -> Optional[RegressionCheck]:
        for c in self.checks:
            if c.metric == metric:
                return c
        return None

    def describe(self) -> str:
        head = (
            f"perf compare — {self.name or 'run'} "
            f"(tolerance {self.tolerance:+.0%})"
        )
        lines = [head]
        for c in self.checks:
            lines.append(f"  {c}")
        bad = self.regressions
        if bad:
            worst = max(
                bad, key=lambda c: c.ratio if not math.isinf(c.ratio) else 1e18
            )
            lines.append(
                f"  => {len(bad)} regression(s); worst: {worst.metric} at "
                + ("inf" if math.isinf(worst.ratio) else f"{worst.ratio:.2f}x")
            )
        else:
            lines.append("  => within tolerance")
        return "\n".join(lines)


def compare(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
    *,
    metrics: Optional[Sequence[str]] = None,
) -> RegressionReport:
    """Compare a run record against a baseline document.

    ``baseline`` is a baseline document (``{"metrics": {...}}``) or a
    bare metric mapping; ``current`` is a ledger record (or any mapping
    with the metric keys at top level).  A metric regresses when
    ``current > baseline * (1 + tolerance)``; the boundary itself is
    within tolerance.  Near-zero baselines (< :data:`ZERO_FLOOR`)
    compare ``current`` against the floor instead — a zero-cost cell
    that stays zero passes, one that suddenly costs real time fails.
    Metrics missing from ``current`` are treated as 0.0 (never a
    regression); metrics are taken from the baseline, so a baseline
    tracks exactly the quantities it commits to.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    base_metrics: Mapping[str, Any] = baseline.get("metrics", baseline)  # type: ignore[assignment]
    names = list(metrics) if metrics is not None else sorted(base_metrics)
    report = RegressionReport(
        name=str(current.get("name", baseline.get("name", ""))),
        tolerance=float(tolerance),
    )
    for metric in names:
        base = float(base_metrics.get(metric, 0.0))
        cur = float(current.get(metric, 0.0))
        if base < ZERO_FLOOR:
            limit = ZERO_FLOOR * (1.0 + tolerance)
            ratio = 1.0 if cur < ZERO_FLOOR else math.inf
            ok = cur <= limit
        else:
            limit = base * (1.0 + tolerance)
            ratio = cur / base
            ok = cur <= limit
        report.checks.append(
            RegressionCheck(
                metric=metric, baseline=base, current=cur,
                ratio=ratio, limit=limit, ok=ok,
            )
        )
    return report
