"""Host-side span/counter instrumentation (``perf_counter``/``process_time``).

This is the *real-time* twin of :mod:`repro.obs`: where the tracer
explains where **simulated** seconds go, this module explains where the
**host's** wall and CPU seconds go — the sweep executor's fan-out, the
content-addressed cache's probes, the JSON codec, the engine drain.
Nothing here ever touches simulation state, so instrumented and
uninstrumented runs are bit-identical by construction (pinned by
``tests/test_perf_integration.py``, mirroring the obs zero-overhead
test).

Design:

- A per-thread stack of active :class:`PerfRecorder` objects (thread
  local, so concurrent executors in one process — a pattern the sweep
  tests exercise — record independently).  The instrumentation points
  (:func:`span`, :func:`counter`, :func:`observe`) look up the
  innermost recorder and are no-ops — one attribute lookup and a
  shared null object, no clock reads — when the stack is empty.
- :func:`recording` pushes a fresh recorder for a ``with`` block and
  times the whole block; on exit a nested recorder folds its spans
  into its parent, so an outer recording (the CLI, the benchmark
  conftest) sees every inner sweep's detail.
- ``REPRO_PERF_OFF=1`` in the environment disables :func:`recording`
  entirely (it yields ``None``); :class:`Stopwatch` stays available as
  the always-on primitive for code that must report a wall time either
  way.

Every recorded quantity is host time; simulated seconds never enter
this module.
"""

from __future__ import annotations

import math
import os
import threading
from time import perf_counter, process_time
from typing import Any, Iterator, Optional

from contextlib import contextmanager

__all__ = [
    "PerfRecorder",
    "SpanStat",
    "Stopwatch",
    "counter",
    "current",
    "observe",
    "perf_enabled",
    "recording",
    "span",
]

#: Environment opt-out: set to ``1`` to disable all recording.
PERF_OFF_ENV = "REPRO_PERF_OFF"


def perf_enabled() -> bool:
    """False when ``REPRO_PERF_OFF=1`` disables host telemetry."""
    return os.environ.get(PERF_OFF_ENV, "") != "1"


class SpanStat:
    """Aggregated wall/CPU cost of one named code region."""

    __slots__ = ("name", "count", "wall", "cpu", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.min = math.inf
        self.max = 0.0

    def add(self, wall: float, cpu: float, n: int = 1) -> None:
        self.count += n
        self.wall += wall
        self.cpu += cpu
        if wall < self.min:
            self.min = wall
        if wall > self.max:
            self.max = wall

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "wall": self.wall,
            "cpu": self.cpu,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


class _Obs:
    """Streaming summary of one observed value series (latencies)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def add(self, v: float, n: int = 1, vmin: Optional[float] = None,
            vmax: Optional[float] = None) -> None:
        self.count += n
        self.total += v
        lo = v if vmin is None else vmin
        hi = v if vmax is None else vmax
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "mean": self.total / self.count if self.count else 0.0,
        }


class PerfRecorder:
    """Collects spans, counters and observations for one recording.

    ``wall`` / ``cpu`` are the whole recording's duration, stamped by
    :func:`recording` when the ``with`` block exits (0.0 while open).
    """

    __slots__ = ("label", "spans", "counters", "observations", "wall", "cpu")

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.spans: dict[str, SpanStat] = {}
        self.counters: dict[str, int] = {}
        self.observations: dict[str, _Obs] = {}
        self.wall = 0.0
        self.cpu = 0.0

    # -- primitive sinks (called by the instrumentation points) -------
    def add_span(self, name: str, wall: float, cpu: float, n: int = 1) -> None:
        s = self.spans.get(name)
        if s is None:
            s = self.spans[name] = SpanStat(name)
        s.add(wall, cpu, n)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        o = self.observations.get(name)
        if o is None:
            o = self.observations[name] = _Obs()
        o.add(value)

    # -- aggregation ---------------------------------------------------
    def span_wall(self, *names: str) -> float:
        """Total wall seconds across the named spans (absent = 0)."""
        return sum(s.wall for n, s in self.spans.items() if n in names)

    def merge(self, other: "PerfRecorder") -> "PerfRecorder":
        """Fold a nested recording's detail into this recorder."""
        for name, s in other.spans.items():
            mine = self.spans.get(name)
            if mine is None:
                mine = self.spans[name] = SpanStat(name)
            mine.count += s.count
            mine.wall += s.wall
            mine.cpu += s.cpu
            mine.min = min(mine.min, s.min)
            mine.max = max(mine.max, s.max)
        for name, n in other.counters.items():
            self.count(name, n)
        for name, o in other.observations.items():
            mine_o = self.observations.get(name)
            if mine_o is None:
                mine_o = self.observations[name] = _Obs()
            mine_o.add(o.total, n=o.count, vmin=o.min, vmax=o.max)
        return self

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready summary (sorted keys, floats only)."""
        return {
            "label": self.label,
            "wall_seconds": self.wall,
            "cpu_seconds": self.cpu,
            "spans": {n: s.to_dict() for n, s in sorted(self.spans.items())},
            "counters": {n: v for n, v in sorted(self.counters.items())},
            "observations": {
                n: o.to_dict() for n, o in sorted(self.observations.items())
            },
        }


# ---------------------------------------------------------------------------
# the active-recorder stack and the zero-overhead instrumentation points
# ---------------------------------------------------------------------------
class _PerfLocal(threading.local):
    """Per-thread recorder stack (initialized lazily per thread)."""

    def __init__(self) -> None:
        self.stack: list[PerfRecorder] = []


_LOCAL = _PerfLocal()


def current() -> Optional[PerfRecorder]:
    """The innermost active recorder on this thread, or ``None``."""
    stack = _LOCAL.stack
    return stack[-1] if stack else None


class _NullSpan:
    """Shared do-nothing span: the disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_rec", "_name", "_t0", "_c0")

    def __init__(self, rec: PerfRecorder, name: str) -> None:
        self._rec = rec
        self._name = name

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter()
        self._c0 = process_time()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._rec.add_span(
            self._name, perf_counter() - self._t0, process_time() - self._c0
        )
        return False


def span(name: str):
    """Context manager timing one code region into the active recorder.

    With no recorder active this returns a shared null object — no
    clocks are read and nothing is allocated, so instrumented hot paths
    cost one function call when telemetry is off.
    """
    stack = _LOCAL.stack
    if not stack:
        return _NULL_SPAN
    return _Span(stack[-1], name)


def counter(name: str, n: int = 1) -> None:
    """Increment a counter on the active recorder (no-op when off)."""
    stack = _LOCAL.stack
    if stack:
        stack[-1].count(name, n)


def observe(name: str, value: float) -> None:
    """Record one observation (e.g. a probe latency) when recording."""
    stack = _LOCAL.stack
    if stack:
        stack[-1].observe(name, value)


class Stopwatch:
    """Always-on wall/CPU timer — the primitive under :func:`recording`.

    Unlike :func:`span` it works with telemetry disabled, so CLI code
    can report a run's wall time without falling back to ad-hoc
    ``time.monotonic()`` bookkeeping.
    """

    __slots__ = ("wall", "cpu", "_t0", "_c0")

    def __init__(self) -> None:
        self.wall = 0.0
        self.cpu = 0.0

    def __enter__(self) -> "Stopwatch":
        self._t0 = perf_counter()
        self._c0 = process_time()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.wall = perf_counter() - self._t0
        self.cpu = process_time() - self._c0
        return False


@contextmanager
def recording(label: str = "run") -> Iterator[Optional[PerfRecorder]]:
    """Activate a fresh recorder for the ``with`` block.

    Yields the recorder — or ``None`` when ``REPRO_PERF_OFF=1``
    disables telemetry, in which case nothing is pushed and every
    instrumentation point inside the block stays a no-op.  On exit the
    block's wall/CPU duration is stamped onto the recorder and, when
    the recording was nested inside another, its detail is folded into
    the parent (plus one ``label`` span for the block itself).
    """
    if not perf_enabled():
        yield None
        return
    rec = PerfRecorder(label)
    stack = _LOCAL.stack
    stack.append(rec)
    t0 = perf_counter()
    c0 = process_time()
    try:
        yield rec
    finally:
        rec.wall = perf_counter() - t0
        rec.cpu = process_time() - c0
        popped = stack.pop()
        assert popped is rec, "unbalanced perf recording stack"
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.merge(rec)
            parent.add_span(rec.label or "recording", rec.wall, rec.cpu)
