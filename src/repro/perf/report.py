"""Ranked host-cost attribution — the obs bottleneck report's real-time twin.

:func:`attribute_host` decomposes a recording's total host wall time
into the same kind of ranked, narrated table that
:func:`repro.obs.report.attribute_result` produces for simulated time:

- **simulate** — running the discrete-event simulator (tier 1/2 cells);
- **estimate** — tier-0 closed-form estimation;
- **cache** — content-addressed cache probes, stores and eviction;
- **codec** — JSON encode/decode of results and traces;
- **fanout** — process-pool setup, submission and result waiting;
- **other** — everything unattributed (driver loop, imports, GC).

The category map is explicit so nested detail spans (``engine.drain``
inside a ``cell.simulate``, ``tier0.estimate`` inside
``cell.estimate``) are reported as detail without being double-counted
in the top-level split.  ``coverage`` is the attributed (non-other)
share — the executor's instrumentation keeps it >= 95% for a sweep
(asserted by ``tests/test_perf_report.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.perf.spans import PerfRecorder

__all__ = ["HostAttributionEntry", "HostAttributionReport", "attribute_host"]

#: Top-level category -> the executor spans that compose it.  Spans not
#: named here (engine.drain, validate.*, ...) are nested detail.
CATEGORY_SPANS: dict[str, tuple[str, ...]] = {
    "simulate": ("cell.simulate",),
    "estimate": ("cell.estimate",),
    "cache": ("cache.key", "cache.probe", "cache.store", "cache.prune"),
    "codec": ("codec.encode", "codec.decode"),
    "fanout": ("fanout.pool", "fanout.submit", "fanout.wait"),
}

#: Category -> why that host time exists.
_NARRATIVE = {
    "simulate": "running the discrete-event simulator",
    "estimate": "tier-0 closed-form estimation",
    "cache": "content-addressed cache: keying, probes, stores, eviction",
    "codec": "JSON encode/decode of results and traces",
    "fanout": "process-pool setup, submission and result waiting",
    "other": "unattributed driver time: loop bookkeeping, imports, GC",
}

_DETAIL_SPANS = frozenset(
    name for names in CATEGORY_SPANS.values() for name in names
)


@dataclass(frozen=True)
class HostAttributionEntry:
    """One ranked row of the host-cost split."""

    category: str
    seconds: float
    share: float

    def __str__(self) -> str:
        return (
            f"{self.category:<9} {self.seconds * 1e3:10.3f}ms  {self.share:6.1%}  "
            f"{_NARRATIVE.get(self.category, '')}"
        )


@dataclass
class HostAttributionReport:
    """Where one recording's host wall seconds went, ranked."""

    name: str
    wall: float
    cpu: float
    entries: list[HostAttributionEntry] = field(default_factory=list)
    detail: list[tuple[str, float, int]] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)

    def share(self, category: str) -> float:
        for e in self.entries:
            if e.category == category:
                return e.share
        return 0.0

    def seconds(self, category: str) -> float:
        for e in self.entries:
            if e.category == category:
                return e.seconds
        return 0.0

    @property
    def top(self) -> str:
        return self.entries[0].category if self.entries else "other"

    @property
    def coverage(self) -> float:
        """Attributed (non-``other``) fraction of the total wall time."""
        return 1.0 - self.share("other")

    def describe(self) -> str:
        head = (
            f"host-cost attribution — {self.name or 'run'}: "
            f"wall={self.wall * 1e3:.3f}ms cpu={self.cpu * 1e3:.3f}ms "
            f"({self.coverage:.1%} attributed)"
        )
        lines = [head]
        for e in self.entries:
            lines.append(f"  {e}")
        top = self.entries[0] if self.entries else None
        if top is not None:
            lines.append(
                f"  => dominated by {top.category} ({top.share:.1%}): "
                f"{_NARRATIVE.get(top.category, '')}"
            )
        if self.detail:
            lines.append("  detail spans:")
            for name, wall, count in self.detail:
                lines.append(f"    {name:<20} {wall * 1e3:10.3f}ms  n={count}")
        return "\n".join(lines)


def _span_walls(source: Mapping[str, Any]) -> dict[str, tuple[float, int]]:
    """``{span name: (wall seconds, count)}`` from a record's span table."""
    out: dict[str, tuple[float, int]] = {}
    for name, stat in source.items():
        if isinstance(stat, Mapping):
            out[str(name)] = (float(stat.get("wall", 0.0)), int(stat.get("count", 0)))
    return out


def attribute_host(
    source: Any, *, name: Optional[str] = None
) -> HostAttributionReport:
    """Attribute a recording's host wall time across named categories.

    ``source`` is a :class:`~repro.perf.spans.PerfRecorder`, a ledger
    record, or any mapping with ``wall_seconds``/``cpu_seconds`` and a
    ``spans`` table (e.g. ``SweepResult.perf``).  The residual between
    the total and the attributed spans is reported as ``other`` — by
    construction the categories plus ``other`` always cover 100% of the
    wall time.
    """
    if isinstance(source, PerfRecorder):
        record: Mapping[str, Any] = source.snapshot()
        label = name or source.label
    else:
        record = source
        label = name or str(record.get("name", record.get("label", "")))
    wall = float(record.get("wall_seconds", 0.0))
    cpu = float(record.get("cpu_seconds", 0.0))
    spans = _span_walls(record.get("spans") or {})

    shares: dict[str, float] = {}
    for category, members in CATEGORY_SPANS.items():
        secs = sum(spans[m][0] for m in members if m in spans)
        if secs > 0.0:
            shares[category] = secs
    attributed = sum(shares.values())
    total = wall if wall > 0.0 else attributed
    shares["other"] = max(0.0, total - attributed)

    entries = [
        HostAttributionEntry(cat, secs, secs / total if total > 0 else 0.0)
        for cat, secs in sorted(shares.items(), key=lambda kv: -kv[1])
    ]
    detail = sorted(
        (
            (spanname, swall, count)
            for spanname, (swall, count) in spans.items()
            if spanname not in _DETAIL_SPANS
        ),
        key=lambda row: -row[1],
    )
    counters = {
        str(k): int(v) for k, v in (record.get("counters") or {}).items()
    }
    return HostAttributionReport(
        name=label, wall=total, cpu=cpu, entries=entries,
        detail=detail, counters=counters,
    )
