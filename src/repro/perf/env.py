"""Environment fingerprint for ledger records.

Two host runs are only comparable when they ran on comparable stacks:
the fingerprint captures the interpreter, the platform, the package
version and the git revision, so the regression tracker (and a human
reading the ledger) can tell a real slowdown from a python upgrade or
a different machine.  Everything is best-effort and dependency-free —
a missing git binary or a tarball checkout simply yields ``null``.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from typing import Any, Optional

__all__ = ["environment_fingerprint", "git_sha"]


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Short git revision of the working tree, or ``None``.

    Never raises: no git binary, not a repository, or a hung subprocess
    (2 s timeout) all degrade to ``None`` — the fingerprint is metadata,
    not a dependency.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=2,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None


def environment_fingerprint(*, git: bool = True) -> dict[str, Any]:
    """JSON-ready description of the host this process runs on."""
    from repro import __version__

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "package": __version__,
        "git_sha": git_sha() if git else None,
    }
