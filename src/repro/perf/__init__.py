"""repro.perf — host-side telemetry, run ledger, and regression tracking.

Where :mod:`repro.obs` explains simulated time, this package explains
*real* time: lightweight span/counter instrumentation threaded through
the sweep executor, cache, codec and engine
(:mod:`repro.perf.spans`), an append-only JSONL run ledger with
environment fingerprints (:mod:`repro.perf.ledger`), per-benchmark
cost trajectories plus committed-baseline regression detection
(:mod:`repro.perf.regress`), and a ranked host-cost attribution report
in the same vocabulary as the obs bottleneck report
(:mod:`repro.perf.report`).  Driven by the ``repro perf`` CLI; set
``REPRO_PERF_OFF=1`` to disable all recording (the disabled path is
zero-overhead and bit-identical).
"""

from repro.perf.env import environment_fingerprint, git_sha
from repro.perf.ledger import DEFAULT_LEDGER_DIR, Ledger, ledger_dir, make_record
from repro.perf.regress import (
    BASELINE_DIR,
    MissingBaselineError,
    RegressionCheck,
    RegressionReport,
    baseline_path,
    compare,
    load_baseline,
    slugify,
    trajectory_path,
    update_trajectory,
    write_baseline,
)
from repro.perf.report import (
    HostAttributionEntry,
    HostAttributionReport,
    attribute_host,
)
from repro.perf.spans import (
    PerfRecorder,
    Stopwatch,
    counter,
    current,
    observe,
    perf_enabled,
    recording,
    span,
)

__all__ = [
    "BASELINE_DIR",
    "DEFAULT_LEDGER_DIR",
    "HostAttributionEntry",
    "HostAttributionReport",
    "Ledger",
    "MissingBaselineError",
    "PerfRecorder",
    "RegressionCheck",
    "RegressionReport",
    "Stopwatch",
    "attribute_host",
    "baseline_path",
    "compare",
    "counter",
    "current",
    "environment_fingerprint",
    "git_sha",
    "ledger_dir",
    "load_baseline",
    "make_record",
    "observe",
    "perf_enabled",
    "recording",
    "slugify",
    "span",
    "trajectory_path",
    "update_trajectory",
    "write_baseline",
]
