"""Generated workloads: Task Bench-style task graphs and the seeded
application synthesizer.

The paper evaluates fixed kernels, so every conclusion is conditioned
on a handful of workload shapes.  This package widens the scenario
space in two deterministic ways:

- :mod:`repro.workloads.taskgraph` — a parameterized dependency-graph
  workload (stencil / tree / fft / random patterns with tunable width,
  depth and per-task grain, after Task Bench) registered as the
  ``taskbench`` workload, plus a minimum-effective-task-granularity
  sweep helper;
- :mod:`repro.workloads.synth` — a seeded synthesizer that composes
  applications from the loop-kernel pool with randomized parallel
  fraction, kernel coverage and grain distributions, producing
  first-class :class:`~repro.core.registry.WorkloadSpec` objects whose
  names hash the seed + config (so sweep cache keys are reproducible).

Everything here is a pure function of its seed and parameters: the
same inputs always yield bit-identical graphs, specs and cache keys,
which the generator test battery (``tests/test_taskgraph.py``,
``tests/test_workload_synth.py``) enforces.
"""

from repro.workloads.synth import (
    DEFAULT_CONFIG,
    SynthConfig,
    SynthWorkloadSpec,
    generate,
    registered,
    synthesize,
)
from repro.workloads.taskgraph import (
    PATTERNS,
    TASKBENCH_VERSIONS,
    GrainPoint,
    met_sweep,
    minimum_effective_grain,
    program,
    taskbench_graph,
    tree_levels,
)

__all__ = [
    "DEFAULT_CONFIG",
    "GrainPoint",
    "PATTERNS",
    "SynthConfig",
    "SynthWorkloadSpec",
    "TASKBENCH_VERSIONS",
    "generate",
    "met_sweep",
    "minimum_effective_grain",
    "program",
    "registered",
    "synthesize",
    "taskbench_graph",
    "tree_levels",
]
