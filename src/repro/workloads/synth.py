"""Seeded workload synthesizer: randomized apps from the kernel pool.

Following the lumos ``model/workload.py`` pattern (SNIPPETS.md), an
application is composed from the existing data-parallel kernel pool by
a seeded RNG: each kernel *occurs* with probability ``coverage``
(Bernoulli), the app's parallel fraction ``f`` is drawn from a range,
and every phase draws a kernel, a problem size and grain parameters
(schedule, chunks per thread, Cilk grainsize).  The result is a
**recipe** — a plain JSON-able document — and a
:class:`SynthWorkloadSpec`, a first-class frozen
:class:`~repro.core.registry.WorkloadSpec` whose :meth:`build` turns
the recipe into a :class:`~repro.sim.task.Program` for any of the six
versions.

Determinism is the load-bearing property: the spec's **name is the
hash of seed + config** (``synth-<sha256 prefix>``), so registering a
synthesized app and sweeping it produces cache keys that reproduce
across processes and sessions.  Same seed, same config: bit-identical
recipe, name, program and simulation; distinct seeds: distinct names,
hence distinct sweep cache keys.  ``tests/test_workload_synth.py``
pins all of this.

Serial regions are interleaved before every parallel phase so the
app's parallel fraction matches the drawn ``f``: each phase's serial
share is ``parallel_work * (1 - f) / f`` of that phase's loop work
(computed at build time from the machine's cost model, so the recipe
itself stays machine-independent).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional, Sequence

from repro.core.registry import WORKLOADS, WorkloadSpec
from repro.models import VERSIONS
from repro.sim.machine import Machine
from repro.sim.task import Program, SerialRegion

__all__ = [
    "BASE_SIZES",
    "DEFAULT_CONFIG",
    "KERNEL_POOL",
    "SynthConfig",
    "SynthWorkloadSpec",
    "generate",
    "register",
    "registered",
    "synthesize",
]

#: Loop kernels the synthesizer composes from (fib is task-only and has
#: no iteration space to re-grain, so it stays out of the pool).
KERNEL_POOL = ("axpy", "sum", "matvec", "matmul")

#: Per-kernel base problem sizes — validation scale, so a synthesized
#: app stays cheap enough for tier-2 differential checking.
BASE_SIZES: Mapping[str, int] = {
    "axpy": 120_000,
    "sum": 120_000,
    "matvec": 1_500,
    "matmul": 96,
}


@dataclass(frozen=True)
class SynthConfig:
    """Distribution parameters of the synthesizer (all seed-independent).

    ``coverage`` is the per-kernel Bernoulli occurrence probability;
    ``parallel_fraction`` and ``size_scale`` are uniform ranges;
    ``grainsizes`` uses ``0`` for "runtime default".
    """

    kernels: tuple[str, ...] = KERNEL_POOL
    sizes: Mapping[str, int] = field(default_factory=lambda: dict(BASE_SIZES))
    min_phases: int = 2
    max_phases: int = 5
    coverage: float = 0.75
    parallel_fraction: tuple[float, float] = (0.70, 0.98)
    size_scale: tuple[float, float] = (0.25, 1.0)
    schedules: tuple[str, ...] = ("static", "dynamic", "guided")
    chunks_per_thread: tuple[int, ...] = (1, 2, 4, 8)
    grainsizes: tuple[int, ...] = (0, 64, 256, 1024)

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form (hashed into every spec name)."""
        return {
            "kernels": list(self.kernels),
            "sizes": {k: int(self.sizes[k]) for k in sorted(self.sizes)},
            "min_phases": self.min_phases,
            "max_phases": self.max_phases,
            "coverage": self.coverage,
            "parallel_fraction": list(self.parallel_fraction),
            "size_scale": list(self.size_scale),
            "schedules": list(self.schedules),
            "chunks_per_thread": list(self.chunks_per_thread),
            "grainsizes": list(self.grainsizes),
        }


DEFAULT_CONFIG = SynthConfig()


def _digest(doc: Any) -> str:
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SynthWorkloadSpec(WorkloadSpec):
    """A synthesized application as a first-class registry spec.

    Extra fields carry the generator provenance; :meth:`build` replays
    the recipe instead of dispatching on ``kind``.
    """

    seed: int = 0
    fraction: float = 1.0
    recipe: tuple = ()

    def build(self, version: str, machine: Machine, **overrides: Any) -> Program:
        from repro.kernels.common import dispatch_loop, kernel_module

        if version not in self.versions:
            raise ValueError(
                f"{self.name} has no {version!r} version; available: {self.versions}"
            )
        if overrides:
            raise ValueError(
                f"synthesized workload {self.name} takes no parameter overrides "
                f"(got {sorted(overrides)}); regenerate with a different config"
            )
        prog = Program(
            self.name,
            meta={"version": version, "kernel": "synth", "seed": self.seed},
        )
        serial_ratio = (1.0 - self.fraction) / self.fraction
        for i, phase in enumerate(self.recipe):
            space = kernel_module(phase["kernel"]).space(machine, phase["n"])
            prog.add(
                SerialRegion(space.total_work * serial_ratio, name=f"serial[{i}]")
            )
            prog.add(
                dispatch_loop(
                    version,
                    space,
                    reduction=phase["kernel"] == "sum",
                    schedule=phase["schedule"],
                    chunks_per_thread=phase["chunks_per_thread"],
                    grainsize=phase["grainsize"] or None,
                )
            )
        return prog

    def document(self) -> dict[str, Any]:
        """Canonical JSON-able form of the whole spec — the unit of the
        bit-identity contract (CLI output, property tests)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "fraction": self.fraction,
            "recipe": [dict(p) for p in self.recipe],
            "versions": list(self.versions),
        }

    def digest(self) -> str:
        return _digest(self.document())


def synthesize(seed: int, config: SynthConfig = DEFAULT_CONFIG) -> SynthWorkloadSpec:
    """Deterministically synthesize one application from ``seed``.

    The spec's name hashes ``(seed, config)``, so equal inputs yield
    the identical spec (and sweep cache keys), and distinct seeds get
    distinct names.
    """
    name = f"synth-{_digest({'schema': 1, 'seed': seed, 'config': config.to_dict()})[:12]}"
    rng = random.Random(seed)
    occurring = [k for k in config.kernels if rng.random() < config.coverage]
    if not occurring:
        occurring = [rng.choice(config.kernels)]
    fraction = rng.uniform(*config.parallel_fraction)
    nphases = rng.randint(config.min_phases, config.max_phases)
    recipe = []
    for _ in range(nphases):
        kernel = rng.choice(occurring)
        scale = rng.uniform(*config.size_scale)
        recipe.append(
            {
                "kernel": kernel,
                "n": max(16, int(config.sizes[kernel] * scale)),
                "schedule": rng.choice(config.schedules),
                "chunks_per_thread": rng.choice(config.chunks_per_thread),
                "grainsize": rng.choice(config.grainsizes),
            }
        )
    return SynthWorkloadSpec(
        name=name,
        kind="synth",
        figure="Fig. S (synth)",
        versions=VERSIONS,
        paper_params={},
        default_params={},
        description=(
            f"synthesized app (seed {seed}): {nphases} phases over "
            f"{'/'.join(sorted(set(p['kernel'] for p in recipe)))}, "
            f"parallel fraction {fraction:.2f}"
        ),
        seed=seed,
        fraction=fraction,
        recipe=tuple(recipe),
    )


def generate(
    seed: int, count: int, config: SynthConfig = DEFAULT_CONFIG
) -> list[SynthWorkloadSpec]:
    """Synthesize ``count`` applications from one master ``seed``.

    Per-app seeds derive from the master seed's RNG stream, so the
    whole batch is a pure function of ``(seed, count, config)``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = random.Random(seed)
    return [synthesize(rng.getrandbits(48), config) for _ in range(count)]


def register(specs: Sequence[SynthWorkloadSpec]) -> None:
    """Register synthesized specs for this process (sweep workers fork,
    so dynamically registered names resolve in them too)."""
    for spec in specs:
        WORKLOADS[spec.name] = spec


@contextlib.contextmanager
def registered(
    specs: Sequence[SynthWorkloadSpec],
) -> Iterator[Sequence[SynthWorkloadSpec]]:
    """Temporarily register specs; restores the registry on exit (so
    tests and audits never leak synthesized names)."""
    saved: dict[str, Optional[WorkloadSpec]] = {
        s.name: WORKLOADS.get(s.name) for s in specs
    }
    register(specs)
    try:
        yield specs
    finally:
        for name, old in saved.items():
            if old is None:
                WORKLOADS.pop(name, None)
            else:
                WORKLOADS[name] = old
