"""Task Bench-style parameterized dependency-graph workload.

Task Bench (Slaughter et al.; see also "Quantifying Overheads in
Charm++ and HPX using Task Bench", PAPERS.md) measures runtime-system
overhead with one configurable benchmark: a grid of tasks, ``width``
per step by ``steps`` deep, whose inter-step dependencies follow a
named pattern and whose per-task compute grain is a free parameter.
Sweeping the grain downward exposes each runtime's **minimum effective
task granularity** (MET): the smallest per-task work at which the
runtime still achieves a target efficiency.

This module reproduces that methodology inside the simulator.  Four
dependency patterns are supported:

- ``stencil`` — task ``(s, i)`` depends on ``(s-1, i-1..i+1)``
  (clamped at the edges): nearest-neighbour halo exchange;
- ``tree`` — a fork/join diamond: width doubles from 1 up to ``width``
  then halves back down over ``steps`` levels;
- ``fft`` — butterfly: ``(s, i)`` depends on ``(s-1, i)`` and its
  XOR-partner ``(s-1, i ^ 2^((s-1) mod log2(width)))``;
- ``random`` — ``(s, i)`` depends on ``(s-1, i)`` plus up to
  ``fan - 1`` seeded-random tasks of the previous step.

Graphs are pure functions of their parameters (the ``random`` pattern
derives from ``seed`` alone), so the registered ``taskbench`` workload
is deterministic end to end: same cell, same cache key, same result.
Every task-capable runtime in the zoo executes it — OpenMP tasks and
Cilk spawns on the work-stealing runtimes, C++11 ``std::thread`` /
``std::async`` on the thread-per-task pools.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.models import charm, cilk, cxx11, hpx, mpi, openmp
from repro.sim.machine import Machine
from repro.sim.task import Program, TaskGraph, TaskRegion

__all__ = [
    "PATTERNS",
    "TASKBENCH_VERSIONS",
    "GrainPoint",
    "met_sweep",
    "minimum_effective_grain",
    "program",
    "taskbench_graph",
    "tree_levels",
]

PATTERNS = ("stencil", "tree", "fft", "random")

#: The task-capable runtimes: data-parallel loop versions have no
#: natural rendering of an arbitrary DAG (the paper's fib argument).
#: The AMT family (charm/hpx/mpi) renders DAGs natively — messages,
#: dataflow futures and rank-partitioned sends respectively.
TASKBENCH_VERSIONS = ("omp_task", "cilk_spawn", "cxx_thread", "cxx_async", "charm", "hpx", "mpi")


def tree_levels(width: int, steps: int) -> list[int]:
    """Per-step task counts of the ``tree`` pattern's fork/join diamond.

    Width doubles from 1 (capped at ``width``) over the first half of
    the levels, then mirrors back down to 1 — a fork phase feeding a
    reduction phase, both with tunable depth.
    """
    if width < 1 or steps < 1:
        raise ValueError("width and steps must be positive")
    half = (steps + 1) // 2
    up = [min(width, 1 << s) for s in range(half)]
    down = [min(width, 1 << (steps - 1 - s)) for s in range(half, steps)]
    return up + down


def _level_deps(i: int, prev_width: int, cur_width: int) -> range:
    """Parents of child ``i`` between levels of widths ``prev -> cur``.

    A single interval formula covers fan-out (each child gets the one
    parent its index maps onto), fan-in (children partition the parent
    level), and 1:1 levels.
    """
    lo = i * prev_width // cur_width
    hi = max(lo + 1, (i + 1) * prev_width // cur_width)
    return range(min(lo, prev_width - 1), min(hi, prev_width))


def taskbench_graph(
    pattern: str = "stencil",
    width: int = 32,
    steps: int = 8,
    grain: float = 5e-6,
    *,
    membytes: float = 0.0,
    locality: float = 1.0,
    fan: int = 3,
    seed: int = 0,
) -> TaskGraph:
    """Build one Task Bench graph: ``width`` tasks per step, ``steps``
    deep, ``grain`` seconds of compute per task.

    ``fan`` bounds the dependency count per task (stencil radius + 1;
    extra random parents for ``random``); ``membytes`` / ``locality``
    give every task memory traffic for roofline-bound variants.
    """
    if pattern not in PATTERNS:
        raise ValueError(f"unknown pattern {pattern!r}; expected one of {PATTERNS}")
    if width < 1 or steps < 1:
        raise ValueError("width and steps must be positive")
    if grain < 0:
        raise ValueError("grain must be non-negative")
    if fan < 1:
        raise ValueError("fan must be positive")
    g = TaskGraph(f"taskbench-{pattern}({width}x{steps})")
    rng = random.Random(seed)

    def add(deps: Iterable[int]) -> int:
        return g.add(grain, membytes, locality, deps=tuple(deps), tag=pattern)

    if pattern == "tree":
        levels = tree_levels(width, steps)
        prev: list[int] = []
        for s, w in enumerate(levels):
            cur = []
            for i in range(w):
                deps = () if s == 0 else [prev[j] for j in _level_deps(i, len(prev), w)]
                cur.append(add(deps))
            prev = cur
        return g

    radius = fan // 2
    nbits = max(1, (width - 1).bit_length())
    prev = []
    for s in range(steps):
        cur = []
        for i in range(width):
            if s == 0:
                deps: Sequence[int] = ()
            elif pattern == "stencil":
                lo = max(0, i - radius)
                hi = min(width - 1, i + radius)
                deps = [prev[j] for j in range(lo, hi + 1)]
            elif pattern == "fft":
                partner = i ^ (1 << ((s - 1) % nbits))
                deps = [prev[i]] + ([prev[partner]] if partner < width else [])
            else:  # random
                extra = {rng.randrange(width) for _ in range(rng.randrange(fan))}
                extra.discard(i)
                deps = [prev[i]] + [prev[j] for j in sorted(extra)]
            cur.append(add(deps))
        prev = cur
    return g


def program(
    version: str,
    *,
    machine: Machine,
    pattern: str = "stencil",
    width: int = 32,
    steps: int = 8,
    grain: float = 5e-6,
    membytes: float = 0.0,
    locality: float = 1.0,
    fan: int = 3,
    seed: int = 0,
) -> Program:
    """The Task Bench workload in one of the task-capable versions.

    The loop versions (``omp_for``, ``cilk_for``) raise ``ValueError``:
    an arbitrary DAG has no data-parallel rendering (same argument as
    fib).  ``machine`` is accepted for registry-builder uniformity;
    grain is already in seconds.
    """
    del machine  # grain is machine-independent seconds of compute
    graph = taskbench_graph(
        pattern, width, steps, grain,
        membytes=membytes, locality=locality, fan=fan, seed=seed,
    )
    label = f"{pattern}({width}x{steps})"
    if version == "omp_task":
        region: TaskRegion = openmp.task_graph(graph, name=f"omp-tb-{label}")
    elif version == "cilk_spawn":
        region = cilk.spawn_graph(graph, name=f"cilk-tb-{label}")
    elif version == "cxx_async":
        region = cxx11.async_graph(graph, name=f"cxx-async-tb-{label}")
    elif version == "cxx_thread":
        region = cxx11.thread_graph(graph, name=f"cxx-thread-tb-{label}")
    elif version == "charm":
        region = charm.chare_graph(graph, name=f"charm-tb-{label}")
    elif version == "hpx":
        region = hpx.future_graph(graph, name=f"hpx-tb-{label}")
    elif version == "mpi":
        region = mpi.rank_graph(graph, name=f"mpi-tb-{label}")
    else:
        raise ValueError(
            f"taskbench has no {version!r} version; task-capable versions: "
            f"{TASKBENCH_VERSIONS}"
        )
    prog = Program(
        f"taskbench-{label}",
        meta={
            "version": version,
            "kernel": "taskbench",
            "pattern": pattern,
            "width": width,
            "steps": steps,
            "grain": grain,
        },
    )
    return prog.add(region)


def build_taskgraph_program(
    name: str, version: str, machine: Machine, **params
) -> Program:
    """Registry dispatch target for ``kind == "taskgraph"`` specs."""
    if name != "taskbench":
        raise KeyError(f"unknown task-graph workload {name!r}")
    return program(version, machine=machine, **params)


# ---------------------------------------------------------------------------
# Minimum effective task granularity (MET) sweep
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GrainPoint:
    """One point of an overhead-vs-grain curve.

    ``ideal`` is the greedy-scheduling lower bound ``max(T1/p, T_inf)``
    on the fault-free graph; ``efficiency`` is ``ideal / time`` and
    ``overhead`` the Task Bench metric ``time / ideal - 1``.
    """

    grain: float
    time: float
    ideal: float

    @property
    def efficiency(self) -> float:
        return self.ideal / self.time if self.time > 0 else 1.0

    @property
    def overhead(self) -> float:
        return self.time / self.ideal - 1.0 if self.ideal > 0 else 0.0


#: Default grain sweep: 0.5 us up to 100 us per task, log-spaced.
DEFAULT_GRAINS = (5e-7, 1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4)


def met_sweep(
    versions: Sequence[str] = TASKBENCH_VERSIONS,
    grains: Sequence[float] = DEFAULT_GRAINS,
    *,
    pattern: str = "stencil",
    width: int = 32,
    steps: int = 8,
    nthreads: int = 8,
    ctx=None,
    fidelity: int = 2,
    extra: Optional[Mapping] = None,
) -> dict[str, list[GrainPoint]]:
    """Overhead-vs-grain curve per runtime: the Task Bench methodology.

    Runs the same graph shape at every ``grain`` for every version and
    returns per-version :class:`GrainPoint` lists (ascending grain).
    ``fidelity`` selects the simulation tier (0 = analytic estimate,
    1/2 = event-driven).
    """
    from repro.runtime.base import ExecContext
    from repro.runtime.run import run_program
    from repro.sim.tiers import estimate_program

    if ctx is None:
        ctx = ExecContext()
    if fidelity in (1, 2):
        ctx = ctx.with_fidelity(fidelity)
    params = dict(extra or {})
    curves: dict[str, list[GrainPoint]] = {v: [] for v in versions}
    for grain in sorted(grains):
        shape = taskbench_graph(pattern, width, steps, grain, **params)
        ideal = max(shape.total_work() / nthreads, shape.critical_path())
        for version in versions:
            prog = program(
                version, machine=ctx.machine, pattern=pattern,
                width=width, steps=steps, grain=grain, **params,
            )
            if fidelity == 0:
                res = estimate_program(prog, nthreads, ctx, version)
            else:
                res = run_program(prog, nthreads, ctx, version)
            curves[version].append(GrainPoint(grain, res.time, ideal))
    return curves


def minimum_effective_grain(
    points: Sequence[GrainPoint], threshold: float = 0.5
) -> Optional[float]:
    """Smallest grain whose efficiency meets ``threshold`` (Task Bench's
    METG); ``None`` when no swept grain reaches it."""
    for pt in sorted(points, key=lambda p: p.grain):
        if pt.efficiency >= threshold:
            return pt.grain
    return None
