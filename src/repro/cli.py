"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's artifacts:

- ``tables``       — render Tables I-III;
- ``workloads``    — list the registered benchmarks and their figures;
- ``figure NAME``  — rerun one figure's sweep and print the report;
- ``claims``       — check every encoded finding of the paper;
- ``compare M...`` — side-by-side feature comparison of named models;
- ``microbench``   — EPCC-style runtime-overhead table;
- ``offload``      — the host-vs-accelerator extension study;
- ``machine``      — describe the simulated testbed;
- ``report``       — regenerate every table/figure/claim into a directory;
- ``validate``     — audit the simulator itself (trace invariants,
  differential runtime oracle, random-program property suite);
- ``trace``        — run one workload/version with the observability
  layer on: bottleneck attribution on stdout, Chrome ``trace_event``
  JSON (Perfetto-loadable) and per-run metrics JSON on request;
- ``sweep``        — run one workload's full sweep through the parallel
  executor with content-addressed result caching (``--jobs N``
  fans cells out across processes; a second invocation replays
  cached cells without simulating; ``--server URL`` or
  ``REPRO_SWEEP_SERVER`` routes the sweep through a running sweep
  service instead of executing locally);
- ``serve``        — long-running sweep service (:mod:`repro.serve`):
  an asyncio HTTP front end over the sharded result store that
  accepts experiment-matrix queries, single-flight-dedupes identical
  in-flight cells across concurrent requests, fans misses onto a
  process pool, and streams per-cell results back as NDJSON;
- ``synth``        — seeded workload synthesizer: generate N apps from
  the kernel pool (stable names hash the seed + config), print their
  canonical spec digests and sweep cache keys (stdout is deterministic:
  two invocations with the same seed are bit-identical), optionally
  sweep (``--run``) and audit (``--validate``) them;
- ``faults``       — inject deterministic faults into one run and
  report the model's Table III error-handling semantics: useful vs
  wasted work, cancellation, retries (``--list-demos`` enumerates the
  per-model demos);
- ``perf``         — host-side telemetry (:mod:`repro.perf`):
  ``perf report`` ranks where a run's *real* wall time went
  (simulate / cache / codec / fan-out / other), ``perf ledger``
  tails/queries the append-only run ledger, ``perf compare`` checks a
  run against a committed baseline (exit 1 on regression), and
  ``perf record`` measures a workload sweep into the ledger (and
  optionally a new baseline).

``sweep``, ``faults`` and ``validate`` append one record per
invocation to the run ledger (``benchmarks/out/ledger/``, override
with ``REPRO_LEDGER_DIR``); ``REPRO_PERF_OFF=1`` disables all host
telemetry.

Exit codes: 0 success, 1 failed checks (claims/validate), a region
failing past its recovery policy (``faults --strict``), or a perf
regression (``perf compare``), 2 bad input (unknown workload, model,
fault spec, or missing baseline/ledger record).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.faults.policy import RegionFailedError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Comparison of Threading Programming Models' (IPPS 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="render Tables I-III")
    sub.add_parser("workloads", help="list benchmarks")
    sub.add_parser("machine", help="describe the simulated machine")
    sub.add_parser("claims", help="check the paper's findings")

    fig = sub.add_parser("figure", help="rerun one figure's sweep")
    fig.add_argument("workload", help="workload name (axpy, sum, ..., srad)")
    fig.add_argument("--threads", type=int, nargs="+", default=None)
    fig.add_argument("--full", action="store_true", help="paper-scale parameters")
    fig.add_argument("--chart", action="store_true", help="include the ASCII chart")
    fig.add_argument("--out", default=None,
                     help="also write the report to this file (directories created)")

    tr = sub.add_parser(
        "trace", help="trace one run: attribution report + Chrome trace JSON"
    )
    tr.add_argument("workload", help="workload name (axpy, sum, ..., srad)")
    tr.add_argument("--model", "-m", required=True,
                    help="version name or prefix (omp_task, cilk, cxx_thread, ...)")
    tr.add_argument("--threads", "-p", type=int, default=16)
    tr.add_argument("--out", default=None,
                    help="Chrome trace_event JSON path (open in ui.perfetto.dev)")
    tr.add_argument("--metrics-out", default=None,
                    help="per-run metrics/attribution JSON path")
    tr.add_argument("--gantt", action="store_true", help="print the ASCII timeline")
    tr.add_argument("--full", action="store_true", help="paper-scale parameters")
    tr.add_argument("--fidelity", type=int, choices=(1, 2), default=2,
                    help="simulation tier: 2 reference, 1 bit-identical "
                         "vectorized fast paths (tier 0 has no events to trace)")

    swp = sub.add_parser(
        "sweep", help="parallel cached sweep of one workload's full matrix"
    )
    swp.add_argument("workload", help="workload name (axpy, sum, ..., srad)")
    swp.add_argument("--threads", type=int, nargs="+", default=None)
    swp.add_argument("--jobs", "-j", type=int, default=1,
                     help="worker processes (1 = in-process serial execution)")
    swp.add_argument("--cache-dir", default=None,
                     help="result cache directory (default benchmarks/out/cache)")
    swp.add_argument("--no-cache", action="store_true",
                     help="disable the result cache entirely")
    swp.add_argument("--refresh", action="store_true",
                     help="ignore cached entries: re-simulate and overwrite")
    swp.add_argument("--cache-max-entries", type=int, default=None,
                     help="evict least-recently-written entries beyond this bound")
    swp.add_argument("--full", action="store_true", help="paper-scale parameters")
    swp.add_argument("--chart", action="store_true", help="include the ASCII chart")
    swp.add_argument("--metrics-out", default=None,
                     help="write sweep accounting JSON (counters, wall time)")
    swp.add_argument("--quiet", "-q", action="store_true",
                     help="suppress per-cell progress on stderr")
    swp.add_argument("--fidelity", choices=("auto", "0", "1", "2"), default="2",
                     help="simulation tier: 2 reference DES, 1 bit-identical "
                          "vectorized fast paths, 0 closed-form analytic "
                          "estimates with calibrated error bounds, auto = "
                          "cheapest tier the sweep's options allow")
    swp.add_argument("--server", default=None, metavar="URL",
                     help="route the sweep through a running sweep service "
                          "(repro serve) instead of executing locally; "
                          "defaults to $REPRO_SWEEP_SERVER when set")

    srv = sub.add_parser(
        "serve", help="long-running sweep service over the sharded result store"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8765,
                     help="TCP port (0 picks a free one, printed on stderr)")
    srv.add_argument("--jobs", "-j", type=int, default=2,
                     help="worker processes for cache-miss simulation")
    srv.add_argument("--cache-dir", default=None,
                     help="result store directory (default benchmarks/out/cache)")
    srv.add_argument("--cache-max-entries", type=int, default=None,
                     help="evict least-recently-used entries beyond this bound")
    srv.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                     help="expire entries unused for longer than this window")
    srv.add_argument("--quiet", "-q", action="store_true",
                     help="suppress startup/shutdown lines on stderr")

    syn = sub.add_parser(
        "synth", help="seeded workload synthesizer: generate, sweep, validate"
    )
    syn.add_argument("--seed", type=int, default=0,
                     help="master seed (per-app seeds derive from it)")
    syn.add_argument("--count", type=int, default=5,
                     help="number of applications to synthesize")
    syn.add_argument("--threads", type=int, nargs="+", default=None,
                     help="thread counts for cache keys and --run sweeps")
    syn.add_argument("--fidelity", choices=("0", "1", "2"), default="0",
                     help="simulation tier for --run sweeps (and the "
                          "printed cache keys)")
    syn.add_argument("--run", action="store_true",
                     help="run an uncached sweep over every generated app "
                          "(simulated results on stdout, host wall time on "
                          "stderr)")
    syn.add_argument("--validate", action="store_true",
                     help="run the synthesized-program audit battery "
                          "(spec stability, determinism, invariants, "
                          "speedup ordering); violations exit 1")
    syn.add_argument("--json", dest="json_out", default=None,
                     help="write the specs, digests and cache keys as JSON")

    flt = sub.add_parser(
        "faults", help="fault-injected run: error-handling semantics in action"
    )
    flt.add_argument("workload", nargs="?", default=None,
                     help="workload name (axpy, sum, ..., srad)")
    flt.add_argument("--model", "-m", default=None,
                     help="version name or prefix (omp_task, cilk, cxx_thread, ...)")
    flt.add_argument("--threads", "-p", type=int, default=4)
    flt.add_argument("--inject", default="fail:task=1",
                     help="fault spec, e.g. 'fail:task=5' or 'stall:worker=0,"
                          "duration=2e-4;bandwidth:factor=0.5,duration=1'")
    flt.add_argument("--retries", type=int, default=0,
                     help="retry budget per region (with --backoff delay)")
    flt.add_argument("--backoff", type=float, default=0.0,
                     help="base backoff before the first retry (seconds, simulated)")
    flt.add_argument("--timeout", type=float, default=None,
                     help="per-region timeout (seconds, simulated)")
    flt.add_argument("--strict", action="store_true",
                     help="exit 1 when a region fails past its retry budget "
                          "(default: continue and report the degradation)")
    flt.add_argument("--gantt", action="store_true", help="print the ASCII timeline")
    flt.add_argument("--metrics-out", default=None,
                     help="write fault summary + per-run metrics JSON")
    flt.add_argument("--full", action="store_true", help="paper-scale parameters")
    flt.add_argument("--list-demos", action="store_true",
                     help="list the Table III error-handling demos and exit")

    perf = sub.add_parser(
        "perf", help="host telemetry: cost attribution, run ledger, regressions"
    )
    psub = perf.add_subparsers(dest="perf_command", required=True)

    prep = psub.add_parser(
        "report", help="ranked host-cost attribution of a ledger record"
    )
    prep.add_argument("--name", default=None,
                      help="record name filter (e.g. sweep:axpy); default latest")
    prep.add_argument("--kind", default=None,
                      help="record kind filter (sweep, bench, faults, ...)")
    prep.add_argument("--ledger-dir", default=None,
                      help="ledger directory (default benchmarks/out/ledger)")
    prep.add_argument("--input", default=None,
                      help="read the record from this JSON file instead of the ledger")

    pled = psub.add_parser("ledger", help="tail/query the run ledger")
    pled.add_argument("--tail", type=int, default=10,
                      help="show the last N matching records")
    pled.add_argument("--name", default=None, help="record name filter")
    pled.add_argument("--kind", default=None, help="record kind filter")
    pled.add_argument("--ledger-dir", default=None)
    pled.add_argument("--json", action="store_true",
                      help="print raw records as JSON lines")

    pcmp = psub.add_parser(
        "compare", help="compare a run against a committed baseline (exit 1 on regression)"
    )
    pcmp.add_argument("--baseline", required=True,
                      help="baseline name (benchmarks/baselines/<name>.json) or path")
    pcmp.add_argument("--tolerance", type=float, default=0.5,
                      help="allowed slowdown fraction (0.5 = up to 1.5x the baseline)")
    pcmp.add_argument("--name", default=None,
                      help="ledger record to compare (default: the baseline's subject)")
    pcmp.add_argument("--kind", default=None, help="record kind filter")
    pcmp.add_argument("--ledger-dir", default=None)
    pcmp.add_argument("--input", default=None,
                      help="compare this record JSON file instead of the ledger tail")
    pcmp.add_argument("--warn-only", action="store_true",
                      help="report regressions but exit 0 (noisy CI runners)")

    prec = psub.add_parser(
        "record", help="measure one workload sweep into the ledger (uncached)"
    )
    prec.add_argument("workload", help="workload name (axpy, sum, ..., srad)")
    prec.add_argument("--threads", type=int, nargs="+", default=None)
    prec.add_argument("--jobs", "-j", type=int, default=1)
    prec.add_argument("--fidelity", choices=("auto", "0", "1", "2"), default="2")
    prec.add_argument("--repeat", type=int, default=1,
                      help="measure N times (baseline takes the best)")
    prec.add_argument("--full", action="store_true", help="paper-scale parameters")
    prec.add_argument("--ledger-dir", default=None)
    prec.add_argument("--update-baseline", action="store_true",
                      help="write benchmarks/baselines/<name>.json from the best repeat")
    prec.add_argument("--baseline-dir", default=None,
                      help="baseline directory (default benchmarks/baselines)")

    cmp_p = sub.add_parser("compare", help="feature comparison of models")
    cmp_p.add_argument("models", nargs="+", help="model names (e.g. openmp cilk tbb)")

    micro = sub.add_parser("microbench", help="runtime overhead table")
    micro.add_argument("--threads", type=int, nargs="+", default=[1, 2, 4, 8, 16, 36])

    off = sub.add_parser("offload", help="host vs accelerator study")
    off.add_argument("--n", type=int, default=8_000_000)
    off.add_argument("--iterations", type=int, default=10)

    val = sub.add_parser("validate", help="audit the simulator's own traces")
    val.add_argument(
        "--deep", action="store_true",
        help="wider thread sweeps (into SMT/oversubscription) and 5x the "
             "random programs",
    )
    val.add_argument("--seed", type=int, default=0,
                     help="seed for the random-program property suite")
    val.add_argument("--programs", type=int, default=None,
                     help="number of random programs (default 20, or 100 with --deep)")
    val.add_argument("--inject", default=None,
                     help="additionally audit every workload under this fault "
                          "spec (e.g. 'fail:task=1'); bad specs exit 2")
    val.add_argument("--model", action="append", dest="models", default=None,
                     metavar="NAME",
                     help="restrict the per-version audits to this model "
                          "family or version (repeatable; e.g. openmp, "
                          "charm++, hpx, mpi, omp_task); unknown names exit 2")

    rep = sub.add_parser("report", help="regenerate every table/figure/claim")
    rep.add_argument("--out", default="report_out")
    rep.add_argument("--full", action="store_true", help="paper-scale parameters")
    rep.add_argument("--threads", type=int, nargs="+", default=None)
    rep.add_argument("--workloads", nargs="+", default=None)
    rep.add_argument("--no-claims", action="store_true", help="skip the claim battery")
    return parser


def _cmd_tables() -> int:
    from repro.features import render_table1, render_table2, render_table3

    print(render_table1())
    print()
    print(render_table2())
    print()
    print(render_table3())
    return 0


def _cmd_workloads() -> int:
    from repro.core.registry import WORKLOADS

    for name, spec in sorted(WORKLOADS.items(), key=lambda kv: kv[1].figure):
        print(
            f"{spec.figure:<9} {name:<8} versions={len(spec.versions)} "
            f"paper={dict(spec.paper_params)} — {spec.description}"
        )
    return 0


def _cmd_machine() -> int:
    from repro.sim.machine import PAPER_MACHINE as m

    print(f"{m.name}: {m.sockets} sockets x {m.cores_per_socket} cores x {m.smt} SMT "
          f"@ {m.ghz} GHz")
    print(f"  {m.physical_cores} physical cores, {m.hw_threads} hardware threads")
    print(f"  {m.socket_bandwidth / 1e9:.0f} GB/s per socket "
          f"({m.total_bandwidth / 1e9:.0f} GB/s total), "
          f"{m.core_bandwidth / 1e9:.0f} GB/s per-core cap")
    print(f"  NUMA: remote fraction {m.numa_remote_fraction}, penalty {m.numa_penalty}x")
    return 0


def _cmd_claims() -> int:
    from repro.core.claims import run_all_claims

    results = run_all_claims()
    for r in results:
        print(r)
    failed = [r for r in results if not r.passed]
    print(f"\n{len(results) - len(failed)}/{len(results)} findings reproduce")
    return 1 if failed else 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.core.experiment import run_experiment
    from repro.core.registry import get_workload
    from repro.core.report import render_sweep

    spec = get_workload(args.workload)
    params = dict(spec.paper_params if args.full else spec.default_params)
    kwargs = {}
    if args.threads:
        kwargs["threads"] = tuple(args.threads)
    sweep = run_experiment(args.workload, **kwargs, **params)
    text = render_sweep(sweep, chart=args.chart)
    print(text)
    if args.out:
        import pathlib

        out = pathlib.Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"wrote {out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.registry import get_workload
    from repro.obs.export import render_timeline, write_chrome_trace, write_metrics
    from repro.obs.report import attribute_result
    from repro.runtime.base import ExecContext, ThreadExplosionError
    from repro.runtime.run import run_program

    spec = get_workload(args.workload)
    version = spec.resolve_version(args.model)
    params = dict(spec.paper_params if args.full else spec.default_params)
    ctx = ExecContext().with_fidelity(args.fidelity)
    try:
        program = spec.build(version, ctx.machine, **params)
        res = run_program(program, args.threads, ctx, version, trace=True)
    except ThreadExplosionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    tracer = res.trace
    print(res.describe())
    print(tracer.describe())
    print()
    print(attribute_result(res, ctx=ctx, program=args.workload, version=version).describe())
    if args.gantt:
        print()
        print(render_timeline(tracer, nworkers=max(res.nthreads, tracer.nworkers)))
    meta = {"program": args.workload, "version": version, "nthreads": args.threads}
    if args.out:
        out = write_chrome_trace(args.out, tracer, metadata=meta)
        print(f"wrote Chrome trace to {out} (open in https://ui.perfetto.dev)")
    if args.metrics_out:
        out = write_metrics(args.metrics_out, res, tracer=tracer)
        print(f"wrote metrics to {out}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.experiment import PAPER_THREADS
    from repro.core.registry import get_workload
    from repro.core.report import render_sweep
    from repro.obs.export import write_sweep_metrics
    from repro.perf.spans import Stopwatch
    from repro.sweep import DEFAULT_CACHE_DIR, ResultCache, run_sweep

    spec = get_workload(args.workload)
    params = dict(spec.paper_params if args.full else spec.default_params)
    import os as _os

    server = args.server or _os.environ.get("REPRO_SWEEP_SERVER") or None
    cache = None
    if not args.no_cache and not server:
        # in server mode the service owns the store; no local cache
        cache = ResultCache(
            args.cache_dir or DEFAULT_CACHE_DIR, max_entries=args.cache_max_entries
        )

    def progress(done: int, total: int, cell, status: str) -> None:
        if args.quiet:
            return
        print(
            f"\r[{done}/{total}] {cell.describe():<32} {status:<6}",
            end="" if done < total else "\n",
            file=sys.stderr,
            flush=True,
        )

    fidelity = args.fidelity if args.fidelity == "auto" else int(args.fidelity)
    # the executor records its own host telemetry (SweepResult.perf);
    # the Stopwatch is the REPRO_PERF_OFF fallback for the wall display
    with Stopwatch() as sw:
        sweep = run_sweep(
            args.workload,
            threads=tuple(args.threads) if args.threads else PAPER_THREADS,
            params=params,
            jobs=args.jobs,
            cache=cache,
            refresh=args.refresh,
            fidelity=fidelity,
            server=server,
            progress=progress,
        )
    wall = sweep.host_wall_seconds if sweep.perf else sw.wall
    print(render_sweep(sweep, chart=args.chart))
    hits, misses = sweep.counter("cache_hits"), sweep.counter("cache_misses")
    print(
        f"\nsweep: {len(sweep.versions) * len(sweep.threads)} cells in {wall:.3f}s "
        f"(jobs={args.jobs}, fidelity={fidelity}, "
        f"simulated={sweep.counter('simulations')}, "
        f"estimated={sweep.counter('estimates')}, "
        f"cache hits={hits} misses={misses} "
        f"evictions={sweep.counter('cache_evictions')})"
    )
    if server:
        print(f"server: {server} (dedup joins={sweep.counter('dedup_hits')})")
    elif cache is not None:
        print(f"cache: {cache.root}")
    if args.metrics_out:
        out = write_sweep_metrics(
            args.metrics_out, sweep, wall_seconds=wall, jobs=args.jobs
        )
        print(f"wrote sweep metrics to {out}")
    _ledger_append(
        "sweep",
        f"sweep:{args.workload}",
        sweep.perf,
        extra={
            "workload": args.workload,
            "jobs": int(args.jobs),
            "fidelity": str(fidelity),
            "cells": len(sweep.versions) * len(sweep.threads),
            "cache": ("server" if server else
                      "off" if cache is None else
                      ("refresh" if args.refresh else "on")),
            "server": server or "",
            "cache_hits": hits,
            "cache_misses": misses,
            "simulations": sweep.counter("simulations"),
            "estimates": sweep.counter("estimates"),
        },
    )
    return 0


def _ledger_append(kind: str, name: str, snapshot, *, extra=None) -> None:
    """Append one run record to the ledger (no-op when telemetry is off).

    Ledger IO must never fail the measured command — an unwritable
    ledger directory degrades to a warning on stderr.
    """
    if snapshot is None:
        return
    from repro.perf import Ledger, make_record, update_trajectory

    try:
        ledger = Ledger()
        record = ledger.append(make_record(kind, name, snapshot, extra=extra))
        update_trajectory(record, ledger.root)
    except OSError as exc:  # pragma: no cover - depends on host FS state
        print(f"warning: could not append to run ledger: {exc}", file=sys.stderr)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.server import main as serve_main

    return serve_main(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        max_entries=args.cache_max_entries,
        ttl_seconds=args.ttl,
        quiet=args.quiet,
    )


def _cmd_synth(args: argparse.Namespace) -> int:
    import hashlib
    import json

    from repro.core.experiment import PAPER_THREADS
    from repro.perf.spans import recording
    from repro.runtime.base import ExecContext
    from repro.sweep.cache import cache_key
    from repro.sweep.cells import SweepCell
    import contextlib

    from repro.workloads.synth import generate, registered

    threads = tuple(args.threads) if args.threads else PAPER_THREADS
    fidelity = int(args.fidelity)
    ctx = ExecContext()
    failed = False
    # scoped registration: in-process callers (tests, libraries driving
    # main()) must not find synthesized names in the registry afterwards
    with contextlib.ExitStack() as stack, recording("synth") as host:
        specs = stack.enter_context(registered(generate(args.seed, args.count)))
        docs = []
        print(f"synth: seed={args.seed} count={args.count} "
              f"threads={list(threads)} fidelity={fidelity}")
        for spec in specs:
            keys = {
                f"{version}/p{p}": cache_key(
                    SweepCell(spec.name, version, p, {}, fidelity=fidelity), ctx
                )
                for version in spec.versions
                for p in threads
            }
            cells_digest = hashlib.sha256(
                "".join(keys[k] for k in sorted(keys)).encode()
            ).hexdigest()
            kernels = "/".join(sorted({ph["kernel"] for ph in spec.recipe}))
            print(f"{spec.name}  seed={spec.seed}  phases={len(spec.recipe)}  "
                  f"kernels={kernels}  f={spec.fraction:.3f}")
            print(f"  spec-digest  {spec.digest()}")
            print(f"  cache-keys   {cells_digest}  ({len(keys)} cells)")
            docs.append({"spec": spec.document(), "spec_digest": spec.digest(),
                         "cache_keys": keys, "cache_keys_digest": cells_digest})
        batch = hashlib.sha256(
            "".join(d["spec_digest"] + d["cache_keys_digest"] for d in docs).encode()
        ).hexdigest()
        print(f"batch-digest   {batch}")
        if args.run:
            from repro.sweep import run_sweep

            for spec in specs:
                sweep = run_sweep(
                    spec.name, threads=threads, cache=None, fidelity=fidelity
                )
                wall = sweep.host_wall_seconds if sweep.perf else 0.0
                # simulated results are deterministic -> stdout; the
                # host wall time is not -> stderr
                for version in sweep.versions:
                    times = " ".join(
                        f"p{p}={sweep.results[(version, p)].time:.6g}"
                        for p in sweep.threads
                    )
                    print(f"  {spec.name} {version:11s} {times}")
                print(
                    f"  {spec.name}: {len(sweep.versions) * len(sweep.threads)} "
                    f"cells in {wall:.3f}s "
                    f"(simulated={sweep.counter('simulations')}, "
                    f"estimated={sweep.counter('estimates')})",
                    file=sys.stderr,
                )
        if args.validate:
            from repro.validate import run_synth_audit

            report = run_synth_audit(seed=args.seed, count=args.count, ctx=ctx)
            print(report.describe())
            failed = not report.ok
    if args.json_out:
        import pathlib

        out = pathlib.Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "seed": args.seed,
            "count": args.count,
            "threads": list(threads),
            "fidelity": fidelity,
            "batch_digest": batch,
            "workloads": docs,
        }
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote synth manifest to {out}", file=sys.stderr)
    _ledger_append(
        "synth",
        f"synth:{args.seed}x{args.count}",
        host.snapshot() if host is not None else None,
        extra={
            "seed": int(args.seed),
            "count": int(args.count),
            "fidelity": str(fidelity),
            "ran": bool(args.run),
            "validated": bool(args.validate),
        },
    )
    return 1 if failed else 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan, Policy, fault_summary
    from repro.faults.semantics import error_mode
    from repro.core.registry import get_workload
    from repro.obs.export import render_timeline
    from repro.obs.metrics import result_metrics
    from repro.runtime.base import ExecContext, ThreadExplosionError
    from repro.runtime.run import run_program

    if args.list_demos:
        from repro.faults.demos import FAULT_DEMOS

        for name, demo in sorted(FAULT_DEMOS.items()):
            print(f"{name:<10} mode={demo.mode:<12} runtime={demo.runtime:<12} "
                  f"inject={demo.spec:<14} — {demo.construct}")
        return 0
    if args.workload is None or args.model is None:
        print("error: faults requires a workload and --model "
              "(or --list-demos)", file=sys.stderr)
        return 2

    plan = FaultPlan.parse(args.inject)  # ValueError -> exit 2 in main()
    policy = Policy(
        max_retries=args.retries,
        backoff=args.backoff,
        timeout=args.timeout,
        on_failure="raise" if args.strict else "continue",
    )
    spec = get_workload(args.workload)
    version = spec.resolve_version(args.model)
    params = dict(spec.paper_params if args.full else spec.default_params)
    ctx = ExecContext()
    from repro.perf.spans import recording

    try:
        with recording("faults") as host:
            program = spec.build(version, ctx.machine, **params)
            res = run_program(
                program, args.threads, ctx, version,
                trace=True, faults=plan, policy=policy,
            )
    except (ThreadExplosionError, RegionFailedError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    _ledger_append(
        "faults",
        f"faults:{args.workload}:{version}",
        host.snapshot() if host is not None else None,
        extra={
            "workload": args.workload,
            "version": version,
            "nthreads": int(args.threads),
            "inject": args.inject,
        },
    )

    print(res.describe())
    print(f"error mode: {error_mode(version)} (Table III: {version})")
    summary = fault_summary(res)
    print("fault summary:")
    for key, value in summary.items():
        val = f"{value:.6g}" if isinstance(value, float) else str(value)
        print(f"  {key:<20} {val}")
    for i, region in enumerate(res.regions):
        fault = (region.meta or {}).get("fault")
        if not fault:
            continue
        flags = ", ".join(
            s for s in (
                "failed" if fault.get("failed") else "",
                "cancelled" if fault.get("cancelled") else "",
                f"attempt {fault.get('attempt', 0)}",
            ) if s
        )
        print(f"  region[{i}]: "
              f"kind={fault.get('kind') or '-'} {flags} "
              f"useful={fault.get('useful', 0.0):.3g}s "
              f"wasted={fault.get('wasted', 0.0):.3g}s "
              f"skipped={fault.get('skipped', 0)}")
    if args.gantt and res.trace is not None:
        print()
        print(render_timeline(res.trace, nworkers=max(res.nthreads, res.trace.nworkers)))
    if args.metrics_out:
        import json
        import pathlib

        out = pathlib.Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "program": args.workload,
            "version": version,
            "nthreads": args.threads,
            "inject": args.inject,
            "policy": policy.to_dict(),
            "summary": summary,
            "metrics": result_metrics(res).to_dict(),
        }
        out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote fault metrics to {out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.features import compare

    print(compare(args.models))
    return 0


def _cmd_microbench(args: argparse.Namespace) -> int:
    from repro.microbench import render_report, run_suite

    print(render_report(run_suite(tuple(args.threads))))
    return 0


def _cmd_offload(args: argparse.Namespace) -> int:
    from repro.extensions.offload_study import axpy_offload_study, crossover_iterations
    from repro.runtime.base import ExecContext

    ctx = ExecContext()
    cmp = axpy_offload_study(ctx, n=args.n, iterations=args.iterations)
    print(cmp.describe())
    cross = crossover_iterations(ctx, n=args.n)
    if cross is None:
        print("resident device version never beats the host in range")
    else:
        print(f"resident device version wins from {cross} iterations on")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.perf.spans import recording
    from repro.validate import run_validation

    with recording("validate") as host:
        report = run_validation(
            deep=args.deep, seed=args.seed, programs=args.programs,
            inject=args.inject, models=args.models,
        )
    print(report.describe())
    _ledger_append(
        "validate",
        "validate:deep" if args.deep else "validate",
        host.snapshot() if host is not None else None,
        extra={
            "deep": bool(args.deep),
            "checks": report.checks,
            "violations": len(report.violations),
        },
    )
    return 0 if report.ok else 1


def _cmd_perf(args: argparse.Namespace) -> int:
    if args.perf_command == "report":
        return _cmd_perf_report(args)
    if args.perf_command == "ledger":
        return _cmd_perf_ledger(args)
    if args.perf_command == "compare":
        return _cmd_perf_compare(args)
    if args.perf_command == "record":
        return _cmd_perf_record(args)
    raise AssertionError(f"unhandled perf command {args.perf_command!r}")


def _load_perf_record(args: argparse.Namespace):
    """Resolve the subject record: ``--input`` file, else the ledger tail.

    Returns ``None`` when no matching record exists (the caller prints
    the usage error and exits 2).
    """
    import json

    from repro.perf import Ledger

    if getattr(args, "input", None):
        with open(args.input) as fh:
            doc = json.load(fh)
        # accept both a ledger record and a sweep --metrics-out document
        if "host" in doc and "wall_seconds" not in doc.get("spans", {}):
            host = doc["host"]
            return {
                "kind": "sweep",
                "name": f"sweep:{doc.get('workload', args.input)}",
                **host,
            }
        return doc
    ledger = Ledger(args.ledger_dir)
    return ledger.last(kind=args.kind, name=args.name)


def _cmd_perf_report(args: argparse.Namespace) -> int:
    from repro.perf import attribute_host

    record = _load_perf_record(args)
    if record is None:
        print(
            "error: no matching ledger record (run a sweep or "
            "`repro perf record` first, or pass --input)",
            file=sys.stderr,
        )
        return 2
    print(attribute_host(record).describe())
    return 0


def _cmd_perf_ledger(args: argparse.Namespace) -> int:
    import json

    from repro.perf import Ledger

    ledger = Ledger(args.ledger_dir)
    records = ledger.tail(args.tail, kind=args.kind, name=args.name)
    if not records:
        print(f"ledger is empty: {ledger.path}", file=sys.stderr)
        return 2
    if args.json:
        for rec in records:
            print(json.dumps(rec, sort_keys=True, separators=(",", ":")))
        return 0
    print(f"ledger: {ledger.path} ({len(records)} shown)")
    for rec in records:
        ts = rec.get("ts")
        when = _format_ts(ts) if ts else "-"
        extra = rec.get("extra") or {}
        detail = " ".join(
            f"{k}={extra[k]}" for k in sorted(extra) if isinstance(extra[k], (int, str))
        )
        print(
            f"  {when}  {rec.get('kind', '?'):<9} {rec.get('name', '?'):<28} "
            f"wall={rec.get('wall_seconds', 0.0):8.3f}s "
            f"cpu={rec.get('cpu_seconds', 0.0):8.3f}s  {detail}"
        )
    return 0


def _format_ts(ts: float) -> str:
    import datetime

    return datetime.datetime.fromtimestamp(ts).strftime("%Y-%m-%d %H:%M:%S")


def _cmd_perf_compare(args: argparse.Namespace) -> int:
    from repro.perf import MissingBaselineError, compare, load_baseline

    try:
        baseline = load_baseline(args.baseline)
    except MissingBaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.name is None and not getattr(args, "input", None):
        meta = baseline.get("meta") or {}
        args.name = meta.get("subject") or baseline.get("name") or None
    record = _load_perf_record(args)
    if record is None:
        print(
            f"error: no ledger record matching name={args.name!r} "
            f"kind={args.kind!r} to compare against {args.baseline!r}",
            file=sys.stderr,
        )
        return 2
    report = compare(baseline, record, tolerance=args.tolerance)
    print(report.describe())
    if report.ok:
        return 0
    return 0 if args.warn_only else 1


def _cmd_perf_record(args: argparse.Namespace) -> int:
    from repro.core.experiment import PAPER_THREADS
    from repro.core.registry import get_workload
    from repro.perf import (
        Ledger,
        baseline_path,
        make_record,
        perf_enabled,
        update_trajectory,
        write_baseline,
    )
    from repro.sweep import run_sweep

    if not perf_enabled():
        print(
            "error: REPRO_PERF_OFF=1 — cannot measure with telemetry disabled",
            file=sys.stderr,
        )
        return 2
    spec = get_workload(args.workload)
    params = dict(spec.paper_params if args.full else spec.default_params)
    threads = tuple(args.threads) if args.threads else PAPER_THREADS
    fidelity = args.fidelity if args.fidelity == "auto" else int(args.fidelity)
    name = f"sweep:{args.workload}"
    ledger = Ledger(args.ledger_dir)
    best: Optional[dict] = None
    for i in range(max(1, args.repeat)):
        # uncached on purpose: a measurement run must pay the full cost
        sweep = run_sweep(
            args.workload,
            threads=threads,
            params=params,
            jobs=args.jobs,
            cache=None,
            fidelity=fidelity,
        )
        record = make_record(
            "record",
            name,
            sweep.perf,
            extra={
                "workload": args.workload,
                "jobs": int(args.jobs),
                "fidelity": str(fidelity),
                "cells": len(sweep.versions) * len(sweep.threads),
                "repeat": i,
            },
        )
        record = ledger.append(record)
        update_trajectory(record, ledger.root)
        print(
            f"repeat {i}: wall={record['wall_seconds']:.3f}s "
            f"cpu={record['cpu_seconds']:.3f}s"
        )
        if best is None or record["wall_seconds"] < best["wall_seconds"]:
            best = record
    assert best is not None
    print(f"ledger: {ledger.path}")
    if args.update_baseline:
        kwargs = {"root": args.baseline_dir} if args.baseline_dir else {}
        out = write_baseline(
            name,
            {
                "wall_seconds": best["wall_seconds"],
                "cpu_seconds": best["cpu_seconds"],
            },
            meta={
                "subject": name,
                "jobs": int(args.jobs),
                "fidelity": str(fidelity),
                "threads": list(threads),
                "repeats": max(1, args.repeat),
            },
            **kwargs,
        )
        print(f"baseline: {out}")
    elif args.baseline_dir is None:
        target = baseline_path(name)
        if not target.exists():
            print(f"hint: --update-baseline would write {target}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:  # e.g. `python -m repro tables | head`
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except (KeyError, ValueError) as exc:
        # unknown workload / model / version names arrive here
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "tables":
        return _cmd_tables()
    if args.command == "workloads":
        return _cmd_workloads()
    if args.command == "machine":
        return _cmd_machine()
    if args.command == "claims":
        return _cmd_claims()
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "synth":
        return _cmd_synth(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "microbench":
        return _cmd_microbench(args)
    if args.command == "offload":
        return _cmd_offload(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "report":
        return _cmd_report(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.experiment import PAPER_THREADS
    from repro.core.paperdoc import generate_report

    out = generate_report(
        args.out,
        threads=tuple(args.threads) if args.threads else PAPER_THREADS,
        paper_scale=args.full,
        workloads=args.workloads,
        include_claims=not args.no_claims,
    )
    print(f"wrote artifacts to {out}/ (see INDEX.md)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
