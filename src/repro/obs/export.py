"""Trace and metrics exporters.

Three output formats:

- :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON object format (loadable in Perfetto or
  ``chrome://tracing``): one ``pid`` for the simulated machine, one
  ``tid`` per worker, complete ("X") events for spans, instant ("i")
  events, and extra tracks for every :class:`~repro.sim.engine.SimLock`
  showing grant windows and queue waits;
- :func:`render_timeline` — a textual Gantt chart
  (:func:`repro.sim.trace.render_gantt` over the trace's spans) for
  terminals and docs;
- :func:`metrics_payload` / :func:`write_metrics` — a per-run JSON
  metrics dump: the :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot plus the ranked bottleneck attribution.

All writers create missing parent directories.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Optional, Union

from repro.obs.metrics import result_metrics
from repro.obs.report import attribute_result
from repro.obs.tracer import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "render_timeline",
    "metrics_payload",
    "sweep_metrics_payload",
    "write_metrics",
    "write_sweep_metrics",
]

#: tid offset for per-lock tracks so they sort after worker rows.
_LOCK_TID_BASE = 1_000_000

_SECONDS_TO_US = 1e6


def chrome_trace(
    tracer: Tracer,
    *,
    process_name: str = "repro-sim",
    metadata: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Render a tracer into a Chrome ``trace_event`` JSON object.

    Timestamps are microseconds of simulated time.  Span kinds become
    categories (``cat``), so Perfetto can filter e.g. only steals.
    """
    events: list[dict[str, Any]] = []
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    )
    for w in range(tracer.nworkers):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": w,
                "args": {"name": f"worker {w}"},
            }
        )
    for s in tracer.spans:
        events.append(
            {
                "name": s.name or s.kind,
                "cat": s.kind,
                "ph": "X",
                "pid": 0,
                "tid": s.worker,
                "ts": s.start * _SECONDS_TO_US,
                "dur": (s.end - s.start) * _SECONDS_TO_US,
                "args": {"region": s.region},
            }
        )
    for i in tracer.instants:
        events.append(
            {
                "name": i.name,
                "cat": "instant",
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": i.worker,
                "ts": i.time * _SECONDS_TO_US,
                "args": {"region": i.region},
            }
        )
    for idx, (lock_name, grants) in enumerate(sorted(tracer.lock_events.items())):
        tid = _LOCK_TID_BASE + idx
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"lock {lock_name}"},
            }
        )
        for request, grant, hold in grants:
            if grant > request:
                events.append(
                    {
                        "name": "wait",
                        "cat": "lock_wait",
                        "ph": "X",
                        "pid": 0,
                        "tid": tid,
                        "ts": request * _SECONDS_TO_US,
                        "dur": (grant - request) * _SECONDS_TO_US,
                    }
                )
            events.append(
                {
                    "name": "hold",
                    "cat": "lock_hold",
                    "ph": "X",
                    "pid": 0,
                    "tid": tid,
                    "ts": grant * _SECONDS_TO_US,
                    "dur": hold * _SECONDS_TO_US,
                }
            )
    doc: dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "regions": list(tracer.region_names),
            "workers": tracer.nworkers,
            "horizon_us": tracer.horizon * _SECONDS_TO_US,
        },
    }
    if metadata:
        doc["otherData"].update(metadata)
    return doc


def write_chrome_trace(
    path: Union[str, pathlib.Path],
    tracer: Tracer,
    *,
    metadata: Optional[dict[str, Any]] = None,
) -> pathlib.Path:
    """Write the Chrome trace JSON, creating missing directories."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(tracer, metadata=metadata)) + "\n")
    return out


def render_timeline(
    tracer: Tracer,
    *,
    nworkers: Optional[int] = None,
    width: int = 78,
    kinds: Optional[frozenset] = None,
) -> str:
    """Textual Gantt chart of the trace's execution spans.

    Busy time is drawn with the first letter of each span's name/kind,
    idle with ``.`` — the same renderer the scheduler examples use.
    """
    from repro.sim.trace import render_gantt

    intervals = tracer.intervals(kinds)
    n = nworkers if nworkers is not None else max(tracer.nworkers, 1)
    return render_gantt(intervals, n, width=width, end=tracer.horizon)


def metrics_payload(
    result: Any,
    *,
    tracer: Optional[Tracer] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """JSON-ready metrics + attribution summary of one program run."""
    attribution = attribute_result(result)
    payload: dict[str, Any] = {
        "program": getattr(result, "program", ""),
        "version": getattr(result, "version", ""),
        "nthreads": result.nthreads,
        "time_seconds": result.time,
        "metrics": result_metrics(result).to_dict(),
        "attribution": [
            {"category": e.category, "seconds": e.seconds, "share": e.share}
            for e in attribution.entries
        ],
    }
    if tracer is not None:
        payload["trace"] = {
            "spans": len(tracer.spans),
            "workers": tracer.nworkers,
            "engine_events": len(tracer.engine_events),
            "lock_grants": sum(len(v) for v in tracer.lock_events.values()),
        }
    if extra:
        payload.update(extra)
    return payload


def write_metrics(
    path: Union[str, pathlib.Path],
    result: Any,
    *,
    tracer: Optional[Tracer] = None,
    extra: Optional[dict[str, Any]] = None,
) -> pathlib.Path:
    """Write the per-run metrics JSON, creating missing directories."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(metrics_payload(result, tracer=tracer, extra=extra), indent=1) + "\n")
    return out


def sweep_metrics_payload(
    sweep: Any,
    *,
    wall_seconds: Optional[float] = None,
    jobs: Optional[int] = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """JSON-ready accounting of one sweep execution.

    Combines the sweep's identity (workload, versions, thread counts)
    with the executor's :class:`~repro.obs.metrics.MetricsRegistry`
    snapshot — cache hit/miss/store/eviction and simulation counters
    plus the merged per-run metrics — and, when given, the wall-clock
    duration and worker count.  The CI cache-effectiveness smoke job
    consumes exactly this document.
    """
    payload: dict[str, Any] = {
        "workload": sweep.workload,
        "figure": sweep.figure,
        "versions": list(sweep.versions),
        "threads": list(sweep.threads),
        "cells": len(sweep.versions) * len(sweep.threads),
        "errors": len(sweep.errors),
        "metrics": sweep.metrics.to_dict() if sweep.metrics is not None else {},
    }
    host = getattr(sweep, "perf", None)
    if host:
        # host telemetry (repro.perf): wall/CPU totals + span detail of
        # the executing sweep — `repro perf report` consumes this shape
        payload["host"] = host
        if wall_seconds is None:
            wall_seconds = host.get("wall_seconds")
    if wall_seconds is not None:
        payload["wall_seconds"] = float(wall_seconds)
    if jobs is not None:
        payload["jobs"] = int(jobs)
    if extra:
        payload.update(extra)
    return payload


def write_sweep_metrics(
    path: Union[str, pathlib.Path],
    sweep: Any,
    *,
    wall_seconds: Optional[float] = None,
    jobs: Optional[int] = None,
    extra: Optional[dict[str, Any]] = None,
) -> pathlib.Path:
    """Write the sweep accounting JSON, creating missing directories."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    doc = sweep_metrics_payload(sweep, wall_seconds=wall_seconds, jobs=jobs, extra=extra)
    out.write_text(json.dumps(doc, indent=1) + "\n")
    return out
