"""Simulator observability: structured tracing, metrics, attribution.

Three layers, all optional and zero-cost when unused:

- :mod:`repro.obs.tracer` — the single instrumentation API every
  runtime component (engine, locks, deques, executors) emits into:
  per-worker span timelines, engine event log, lock grant log;
- :mod:`repro.obs.metrics` — a counters/gauges/histograms registry
  derivable from any :class:`~repro.sim.trace.RegionResult` /
  :class:`~repro.sim.trace.SimResult`;
- :mod:`repro.obs.export` + :mod:`repro.obs.report` — Chrome
  ``trace_event`` JSON (Perfetto / ``chrome://tracing``), textual Gantt
  timelines, per-run metrics dumps, and the ranked bottleneck
  attribution report in the paper's vocabulary.

Entry points: ``run_program(..., trace=Tracer())`` or the CLI
``python -m repro trace <workload> --model <m> --threads <p>``.
"""

from repro.obs.export import (
    chrome_trace,
    metrics_payload,
    render_timeline,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    region_metrics,
    result_metrics,
)
from repro.obs.report import AttributionEntry, AttributionReport, attribute_result
from repro.obs.tracer import EXEC_KINDS, OVERHEAD_KINDS, InstantEvent, SpanEvent, Tracer

__all__ = [
    "AttributionEntry",
    "AttributionReport",
    "Counter",
    "EXEC_KINDS",
    "Gauge",
    "Histogram",
    "InstantEvent",
    "MetricsRegistry",
    "OVERHEAD_KINDS",
    "SpanEvent",
    "Tracer",
    "attribute_result",
    "chrome_trace",
    "metrics_payload",
    "region_metrics",
    "render_timeline",
    "result_metrics",
    "write_chrome_trace",
    "write_metrics",
]
