"""Bottleneck attribution: rank where a run's worker-seconds went.

The paper explains every cross-runtime gap causally — worksharing wins
data parallelism because chunk dispatch is cheap, ``cilk_for`` loses it
because chunk distribution happens through steals, ``omp task`` loses
Fibonacci because every deque operation takes the lock.  This module
states the same causal story for *any* simulated result by decomposing
the run's total worker-seconds (``time x nthreads``) into:

- **compute** — useful work at full core speed;
- **memory** — roofline memory-bandwidth stalls (busy time beyond the
  pure-compute seconds);
- **steal** — work-stealing overhead: victim probing and chunk/task
  distribution through steals;
- **lock** — lock contention: deque or loop-counter serialization
  (wait time on :class:`~repro.sim.engine.SimLock` queues);
- **runtime** — other scheduler overhead: spawns, dispatch, fork/join,
  thread creation;
- **idle** — imbalance: workers waiting at barriers or during ramp-up.

The split is exact where the runtimes record the quantity directly
(steal/lock/overhead/idle) and a documented roofline estimate for the
compute/memory split (pure-compute seconds = the region's
``expected_work``, which executors record for the validators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["AttributionEntry", "AttributionReport", "attribute_result"]

#: Category -> the paper's vocabulary for why that time exists.
_NARRATIVE = {
    "compute": "useful work on the cores",
    "memory": "memory-bandwidth stalls (bytes over sustainable bandwidth)",
    "steal": "work-stealing overhead: victim probing and chunk distribution through steals",
    "lock": "lock contention: deque / loop-counter serialization",
    "runtime": "other runtime overhead: spawns, dispatch, fork/join, thread creation",
    "idle": "imbalance: waiting at barriers or during ramp-up serialization",
}


@dataclass(frozen=True)
class AttributionEntry:
    """One ranked row of the attribution."""

    category: str
    seconds: float
    share: float  # fraction of total worker-seconds

    def __str__(self) -> str:
        return (
            f"{self.category:<8} {self.seconds * 1e3:10.4f}ms  {self.share:6.1%}  "
            f"{_NARRATIVE.get(self.category, '')}"
        )


@dataclass
class AttributionReport:
    """Where the worker-seconds of one run went, ranked."""

    program: str
    version: str
    nthreads: int
    time: float
    total: float  # worker-seconds = time * nthreads
    entries: list[AttributionEntry] = field(default_factory=list)

    def share(self, category: str) -> float:
        for e in self.entries:
            if e.category == category:
                return e.share
        return 0.0

    def seconds(self, category: str) -> float:
        for e in self.entries:
            if e.category == category:
                return e.seconds
        return 0.0

    @property
    def top(self) -> str:
        return self.entries[0].category if self.entries else "compute"

    def rank(self) -> list[str]:
        return [e.category for e in self.entries]

    def describe(self) -> str:
        head = (
            f"bottleneck attribution — {self.program}/{self.version} "
            f"p={self.nthreads}: t={self.time * 1e3:.3f}ms, "
            f"{self.total * 1e3:.3f}ms worker-seconds"
        )
        lines = [head]
        for e in self.entries:
            lines.append(f"  {e}")
        top = self.entries[0] if self.entries else None
        if top is not None:
            lines.append(
                f"  => dominated by {top.category} ({top.share:.1%}): "
                f"{_NARRATIVE.get(top.category, '')}"
            )
        return "\n".join(lines)


def _region_compute_seconds(region: Any) -> float:
    """Pure-compute seconds of one region (roofline lower edge).

    Executors record ``expected_work`` — the region's work in seconds at
    full core speed — for the work-conservation invariant; busy time at
    or above it is memory stall / SMT sharing.  Without the annotation
    the whole busy time is attributed to compute.
    """
    busy = sum(w.busy for w in region.workers)
    expected = region.meta.get("expected_work") if region.meta else None
    if expected is None:
        return busy
    return min(busy, float(expected))


def attribute_result(
    result: Any,
    ctx: Optional[Any] = None,
    *,
    program: str = "",
    version: str = "",
) -> AttributionReport:
    """Decompose a :class:`~repro.sim.trace.SimResult` (or a single
    region result) into ranked bottleneck categories.

    ``ctx`` is accepted for signature stability (future splits may use
    the machine model); the current decomposition needs only what the
    runtimes already record.
    """
    regions = getattr(result, "regions", None)
    if regions is None:
        regions = [result]
    p = max(1, result.nthreads)
    time = result.time
    total = time * p

    busy = 0.0
    compute = 0.0
    overhead = 0.0
    steal = 0.0
    lock = 0.0
    for region in regions:
        busy += sum(w.busy for w in region.workers)
        compute += _region_compute_seconds(region)
        overhead += sum(w.overhead for w in region.workers)
        meta = region.meta or {}
        steal += float(meta.get("steal_time", 0.0))
        lock += float(meta.get("lock_wait", 0.0))
    memory = max(0.0, busy - compute)
    # steal/lock seconds are accounted inside worker overhead where the
    # event-driven scheduler recorded them; keep the categories disjoint.
    other = max(0.0, overhead - steal - lock)
    idle = max(0.0, total - busy - overhead)

    shares = {
        "compute": compute,
        "memory": memory,
        "steal": steal,
        "lock": lock,
        "runtime": other,
        "idle": idle,
    }
    entries = [
        AttributionEntry(cat, secs, secs / total if total > 0 else 0.0)
        for cat, secs in sorted(shares.items(), key=lambda kv: -kv[1])
    ]
    return AttributionReport(
        program=program or getattr(result, "program", ""),
        version=version or getattr(result, "version", ""),
        nthreads=result.nthreads,
        time=time,
        total=total,
        entries=entries,
    )
