"""Metrics registry: counters, gauges and histograms over simulation runs.

The registry is deliberately tiny and dependency-free — the point is a
*uniform* namespace ("steals", "lock_wait_seconds", "load_imbalance")
that every result exposes the same way, so benchmark tooling and the
bottleneck attribution report can consume any run without knowing which
runtime produced it.

:func:`region_metrics` derives a registry from one
:class:`~repro.sim.trace.RegionResult` (worker stats + executor meta);
:func:`result_metrics` folds a whole :class:`~repro.sim.trace.SimResult`.
Both are pure arithmetic over already-recorded statistics: they cost
nothing at simulation time and can be applied retroactively to any
result, traced or not.
"""

from __future__ import annotations

import math
from typing import Any, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "region_metrics",
    "result_metrics",
]


class Counter:
    """A monotonically increasing count (steals, tasks, grants)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only increase")
        self.value += n


class Gauge:
    """A point-in-time scalar (utilization, imbalance, overhead ratio)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = float(v)

    def add(self, v: float) -> None:
        self.value += float(v)


class Histogram:
    """Streaming distribution summary: count/total/min/max/mean."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        v = float(v)
        self.count += 1
        self.total += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms with get-or-create semantics."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` in: counters add, gauges accumulate, histograms
        pool their moments."""
        for name, c in other.counters.items():
            self.counter(name).inc(c.value)
        for name, g in other.gauges.items():
            self.gauge(name).add(g.value)
        for name, h in other.histograms.items():
            mine = self.histogram(name)
            mine.count += h.count
            mine.total += h.total
            mine.min = min(mine.min, h.min)
            mine.max = max(mine.max, h.max)
        return self

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {n: h.to_dict() for n, h in sorted(self.histograms.items())},
        }

    def describe(self) -> str:
        lines = ["metrics:"]
        for n, c in sorted(self.counters.items()):
            lines.append(f"  {n:<28} {c.value}")
        for n, g in sorted(self.gauges.items()):
            lines.append(f"  {n:<28} {g.value:.6g}")
        for n, h in sorted(self.histograms.items()):
            d = h.to_dict()
            lines.append(
                f"  {n:<28} n={d['count']} mean={d['mean']:.3g} "
                f"min={d['min']:.3g} max={d['max']:.3g}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Derivation from simulation results (duck-typed: anything with .workers,
# .time, .nthreads, .meta works — avoids an import cycle with sim.trace)
# ---------------------------------------------------------------------------
def _imbalance(busies: list[float]) -> float:
    """Load imbalance: max worker busy over mean worker busy (1.0 = flat)."""
    active = [b for b in busies if b > 0]
    if not active:
        return 1.0
    mean = sum(active) / len(active)
    return max(active) / mean if mean > 0 else 1.0


def region_metrics(region: Any, registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Derive the standard metrics of one region execution."""
    m = registry if registry is not None else MetricsRegistry()
    meta = region.meta or {}
    busies = [w.busy for w in region.workers]
    busy = sum(busies)
    overhead = sum(w.overhead for w in region.workers)

    m.counter("tasks").inc(sum(w.tasks for w in region.workers))
    m.counter("steals").inc(sum(w.steals for w in region.workers))
    m.counter("failed_steals").inc(sum(w.failed_steals for w in region.workers))
    m.counter("regions").inc()
    m.counter("engine_events").inc(int(meta.get("events", 0)))

    m.gauge("busy_seconds").add(busy)
    m.gauge("overhead_seconds").add(overhead)
    m.gauge("lock_wait_seconds").add(float(meta.get("lock_wait", 0.0)))
    m.gauge("steal_seconds").add(float(meta.get("steal_time", 0.0)))

    fault = meta.get("fault")
    if fault:
        # graceful-degradation accounting (repro.faults): useful vs.
        # wasted vs. recovery work, per region attempt
        m.counter("faults_injected").inc(len(fault.get("triggered", ())))
        if fault.get("failed"):
            m.counter("region_failures").inc()
        if fault.get("cancelled"):
            m.counter("regions_cancelled").inc()
        if fault.get("recovery", 0.0) > 0.0:
            m.counter("retries").inc()
        m.counter("skipped_items").inc(int(fault.get("skipped", 0)))
        m.gauge("useful_work_seconds").add(float(fault.get("useful", 0.0)))
        m.gauge("wasted_work_seconds").add(float(fault.get("wasted", 0.0)))
        m.gauge("recovery_seconds").add(float(fault.get("recovery", 0.0)))
    else:
        m.gauge("useful_work_seconds").add(busy)

    p = max(1, region.nthreads)
    denom = region.time * p
    if denom > 0:
        m.histogram("region_utilization").observe(busy / denom)
    m.histogram("load_imbalance").observe(_imbalance(busies))
    depth = meta.get("max_deque_depth")
    if depth is not None:
        m.histogram("deque_depth_max").observe(float(depth))
    for w in region.workers:
        if w.busy or w.tasks:
            m.histogram("worker_busy_seconds").observe(w.busy)
    return m


def result_metrics(result: Any) -> MetricsRegistry:
    """Derive the standard metrics of a whole program run.

    Region registries are merged, then program-level gauges (overhead
    ratio, utilization, imbalance across the run) are recomputed from
    the totals so they are true ratios rather than sums of ratios.
    """
    m = MetricsRegistry()
    for region in result.regions:
        region_metrics(region, m)
    busy = m.gauge("busy_seconds").value
    overhead = m.gauge("overhead_seconds").value
    p = max(1, result.nthreads)
    denom = result.time * p
    m.gauge("sim_time_seconds").set(result.time)
    m.gauge("utilization").set(busy / denom if denom > 0 else 0.0)
    m.gauge("overhead_ratio").set(overhead / busy if busy > 0 else 0.0)
    m.gauge("idle_seconds").set(max(0.0, denom - busy - overhead))
    return m
