"""Structured event tracer for the simulated runtimes.

One :class:`Tracer` instance collects everything a run emits:

- **spans** — timed intervals on a worker's timeline: task/chunk
  execution, steal attempts (successful and failed probes), lock waits,
  barrier waiting, host<->device transfers;
- **instants** — point events (worker wake-ups, joins);
- **engine events** — every ``(time, seq)`` pair the discrete-event
  engine processed, for monotonicity/tie-order audits;
- **lock events** — every :class:`~repro.sim.engine.SimLock` grant as a
  ``(request, grant, hold)`` triple keyed by lock name.

The tracer is the single instrumentation API: :class:`~repro.sim.engine.Engine`,
:class:`~repro.sim.engine.SimLock`, both deque models and all four
executors emit into it, and the validation subsystem
(:func:`repro.validate.invariants.check_trace`) consumes it.  It
subsumes the scattered ``enable_audit`` lists of the first validation
PR, which remain as deprecated shims.

Cost discipline: executors hold ``tracer=None`` by default and guard
every emission with one ``if tracer is not None`` branch, so the
disabled path does no allocation and produces bit-identical simulations
(tested).  Times are simulated seconds; a tracer spans a whole program
run, so :meth:`Tracer.begin_region` shifts subsequent emissions by the
program time already elapsed (executors keep emitting region-local
times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SpanEvent", "InstantEvent", "Tracer", "EXEC_KINDS", "OVERHEAD_KINDS"]

#: Span kinds that represent useful execution on a worker timeline.
#: These are the kinds the validators hold to the no-overlap invariant
#: (one worker cannot execute two things at once).
EXEC_KINDS = frozenset({"task", "chunk", "serial", "kernel", "transfer"})

#: Span kinds that represent scheduler overhead or waiting.  "stall" is
#: an injected worker stall (:mod:`repro.faults`) — lost time that is
#: neither execution nor useful scheduling.
OVERHEAD_KINDS = frozenset(
    {"steal", "steal_fail", "lock_wait", "barrier", "dispatch", "stall"}
)


@dataclass(frozen=True)
class SpanEvent:
    """One timed interval on a worker's timeline."""

    worker: int
    start: float
    end: float
    kind: str   # "task", "chunk", "steal", "steal_fail", "lock_wait", "barrier", ...
    name: str
    region: int  # index of the enclosing program region (-1 outside any)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class InstantEvent:
    """One point event on a worker's timeline."""

    worker: int
    time: float
    name: str
    region: int


class Tracer:
    """Collects structured events from one simulated program run.

    All times recorded are *program-absolute*: region-local times from
    executors are shifted by :attr:`offset`, which
    :func:`repro.runtime.run.run_program` advances as regions complete
    (and executors bump by their own entry cost).
    """

    __slots__ = (
        "spans",
        "instants",
        "engine_events",
        "lock_events",
        "region_names",
        "region",
        "offset",
    )

    def __init__(self) -> None:
        self.spans: list[SpanEvent] = []
        self.instants: list[InstantEvent] = []
        self.engine_events: list[tuple[float, int]] = []
        self.lock_events: dict[str, list[tuple[float, float, float]]] = {}
        self.region_names: list[str] = []
        self.region: int = -1
        self.offset: float = 0.0

    # ------------------------------------------------------------------
    # Region bookkeeping (driven by run_program)
    # ------------------------------------------------------------------
    def begin_region(self, name: str, offset: float = 0.0) -> int:
        """Start a new region: later emissions carry its index and are
        shifted by ``offset`` (program time already elapsed)."""
        self.region += 1
        self.region_names.append(name)
        self.offset = offset
        return self.region

    # ------------------------------------------------------------------
    # Emission API (executors / engine / locks)
    # ------------------------------------------------------------------
    def span(self, worker: int, start: float, end: float, kind: str, name: str = "") -> None:
        """Record a span with region-local ``start``/``end`` times."""
        off = self.offset
        self.spans.append(SpanEvent(worker, start + off, end + off, kind, name, self.region))

    def instant(self, worker: int, time: float, name: str) -> None:
        self.instants.append(InstantEvent(worker, time + self.offset, name, self.region))

    def engine_event(self, time: float, seq: int) -> None:
        """Record one processed discrete-event entry (monotonicity audit)."""
        self.engine_events.append((time + self.offset, seq))

    def lock_event(self, name: str, request: float, grant: float, hold: float) -> None:
        """Record one :class:`SimLock` acquisition (exclusivity audit)."""
        off = self.offset
        self.lock_events.setdefault(name, []).append((request + off, grant + off, hold))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.engine_events)

    @property
    def nworkers(self) -> int:
        """Number of distinct worker rows (max worker id + 1)."""
        top = -1
        for s in self.spans:
            if s.worker > top:
                top = s.worker
        for i in self.instants:
            if i.worker > top:
                top = i.worker
        return top + 1

    @property
    def horizon(self) -> float:
        """Latest span end / instant time in the trace."""
        end = 0.0
        for s in self.spans:
            if s.end > end:
                end = s.end
        for i in self.instants:
            if i.time > end:
                end = i.time
        return end

    def exec_spans(self) -> list[SpanEvent]:
        """Spans representing execution (the no-overlap timeline)."""
        return [s for s in self.spans if s.kind in EXEC_KINDS]

    def spans_by_kind(self, kind: str) -> list[SpanEvent]:
        return [s for s in self.spans if s.kind == kind]

    def intervals(self, kinds: Optional[frozenset] = None) -> list[tuple[int, float, float, str]]:
        """Spans as ``(worker, start, end, tag)`` tuples — the format of
        the legacy ``record=True`` interval lists and of
        :func:`repro.sim.trace.render_gantt`."""
        use = EXEC_KINDS if kinds is None else kinds
        return [
            (s.worker, s.start, s.end, s.name or s.kind)
            for s in self.spans
            if s.kind in use
        ]

    def time_by_kind(self) -> dict[str, float]:
        """Total span seconds per kind (attribution raw material)."""
        acc: dict[str, float] = {}
        for s in self.spans:
            acc[s.kind] = acc.get(s.kind, 0.0) + (s.end - s.start)
        return acc

    def describe(self) -> str:
        by_kind = self.time_by_kind()
        kinds = ", ".join(
            f"{k}={v * 1e6:.1f}us" for k, v in sorted(by_kind.items())
        )
        return (
            f"trace: {len(self.spans)} spans / {len(self.instants)} instants / "
            f"{len(self.engine_events)} engine events / "
            f"{sum(len(v) for v in self.lock_events.values())} lock grants "
            f"over {self.nworkers} workers, horizon {self.horizon * 1e3:.3f}ms"
            + (f" [{kinds}]" if kinds else "")
        )
