"""The paper's findings, encoded as checkable claims.

Every qualitative statement in section IV ("cilk_for has the worst
performance", "around five times better", "scales well up to 8 cores",
"the system hangs") becomes a predicate over sweep results.  These are
the reproduction's acceptance tests: absolute times differ from the
paper's testbed, but the *shape* — who wins, by roughly what factor,
where scaling stops — must hold.

Claims run at reduced problem scale (registry default params) so the
whole battery completes in seconds; EXPERIMENTS.md records the
paper-scale numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.experiment import SweepResult, run_experiment
from repro.core.metrics import best_version, gap, speedup, version_ratio
from repro.runtime.base import ExecContext, ThreadExplosionError
from repro.runtime.run import run_program
from repro.core.registry import get_workload

__all__ = ["Claim", "ClaimResult", "ALL_CLAIMS", "check_claim", "run_all_claims", "SweepCache"]

_THREADS = (1, 2, 4, 8, 16, 36)


@dataclass
class ClaimResult:
    claim_id: str
    figure: str
    paper_says: str
    passed: bool
    details: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.claim_id} ({self.figure}): {self.details}"


@dataclass(frozen=True)
class Claim:
    claim_id: str
    figure: str
    paper_says: str
    check: Callable[["SweepCache"], tuple[bool, str]]


class SweepCache:
    """Runs and memoizes sweeps so claims over one figure share work.

    ``jobs`` fans each sweep's cells out over worker processes through
    the :mod:`repro.sweep` executor (results are bit-identical to
    serial runs, so claim verdicts cannot depend on it).
    """

    def __init__(self, ctx: Optional[ExecContext] = None, jobs: int = 1) -> None:
        self.ctx = ctx or ExecContext()
        self.jobs = jobs
        self._cache: dict[str, SweepResult] = {}

    def sweep(self, workload: str, **params) -> SweepResult:
        key = workload + repr(sorted(params.items()))
        if key not in self._cache:
            self._cache[key] = run_experiment(
                workload, threads=_THREADS, ctx=self.ctx, jobs=self.jobs, **params
            )
        return self._cache[key]


# ---------------------------------------------------------------------------
# claim predicates
# ---------------------------------------------------------------------------
def _axpy(cache: SweepCache) -> tuple[bool, str]:
    s = cache.sweep("axpy")
    worst_ok = all(max(s.versions, key=lambda v: s.time(v, p)) == "cilk_for" for p in (2, 4, 8))
    r2, r4 = (version_ratio(s, "cilk_for", best_version(s, p), p) for p in (2, 4))
    big_gap = r2 >= 1.4 and r4 >= 1.4
    others = [v for v in s.versions if v != "cilk_for"]
    spread8 = max(s.time(v, 8) for v in others) / min(s.time(v, 8) for v in others)
    close = spread8 <= 1.3
    detail = (
        f"cilk_for worst at p=2,4,8: {worst_ok}; gap p2={r2:.2f}x p4={r4:.2f}x;"
        f" others spread at p=8: {spread8:.2f}x"
    )
    return worst_ok and big_gap and close, detail


def _sum(cache: SweepCache) -> tuple[bool, str]:
    s = cache.sweep("sum")
    r = version_ratio(s, "cilk_for", "omp_task", 4)
    big = r >= 3.0
    task_near_best = all(gap(s, "omp_task", p) <= 1.15 for p in (2, 4, 8, 16))
    worst_ok = all(max(s.versions, key=lambda v: s.time(v, p)) == "cilk_for" for p in (2, 4, 8))
    detail = (
        f"cilk_for/omp_task at p=4: {r:.1f}x (paper ~5x); omp_task near-best: "
        f"{task_near_best}; cilk_for worst: {worst_ok}"
    )
    return big and task_near_best and worst_ok, detail


def _matvec(cache: SweepCache) -> tuple[bool, str]:
    s = cache.sweep("matvec")
    g36 = gap(s, "cilk_for", 36)
    g16 = gap(s, "cilk_for", 16)
    # Cross-socket runs show the paper's ~25% gap; within one socket the
    # huge (multi-hundred-KB) row chunks stream fine, so near-parity at
    # p=16 is the model's (documented) deviation.
    moderate = 1.12 <= g36 <= 1.5 and g16 >= 0.99
    detail = f"cilk_for gap at p=16,36: {g16:.2f}x, {g36:.2f}x (paper ~1.25x)"
    return moderate, detail


def _matmul(cache: SweepCache) -> tuple[bool, str]:
    s = cache.sweep("matmul")
    gaps = [gap(s, "cilk_for", p) for p in (8, 16, 36)]
    small = all(1.0 <= g <= 1.35 for g in gaps) and any(g >= 1.03 for g in gaps)
    detail = "cilk_for gaps p=8,16,36: " + ", ".join(f"{g:.3f}x" for g in gaps) + " (paper ~1.1x)"
    return small, detail


def _fib_gap(cache: SweepCache) -> tuple[bool, str]:
    s = cache.sweep("fib")
    ratios = {p: version_ratio(s, "omp_task", "cilk_spawn", p) for p in (2, 4, 8, 16, 36)}
    in_band = all(1.08 <= r <= 1.5 for r in ratios.values())
    r1 = version_ratio(s, "omp_task", "cilk_spawn", 1)
    one_core_smaller = r1 < min(ratios.values())
    detail = (
        "omp_task/cilk_spawn: p1="
        + f"{r1:.2f}x, others "
        + ", ".join(f"p{p}={r:.2f}x" for p, r in ratios.items())
        + " (paper ~1.2x except 1 core)"
    )
    return in_band and one_core_smaller, detail


def _fib_hang(cache: SweepCache) -> tuple[bool, str]:
    spec = get_workload("fib")
    ctx = cache.ctx
    try:
        prog = spec.build("cxx_async", ctx.machine, n=20)
        run_program(prog, 8, ctx, "cxx_async")
        return False, "fib(20) with std::async ran to completion (expected hang)"
    except ThreadExplosionError as exc:
        pass
    # and fib(19) must still run
    prog = spec.build("cxx_async", ctx.machine, n=19)
    res = run_program(prog, 8, ctx, "cxx_async")
    return True, f"fib(20) hangs (thread explosion), fib(19) runs in {res.time:.3f}s"


def _bfs(cache: SweepCache) -> tuple[bool, str]:
    s = cache.sweep("bfs")
    sp = dict(zip(s.threads, speedup(s, "omp_for")))
    scales_to_8 = sp[8] >= 3.0
    flat_after = sp[36] <= 1.9 * sp[8]
    worst = all(max(s.versions, key=lambda v: s.time(v, p)) == "cilk_for" for p in (2, 4))
    detail = (
        f"omp_for speedup p8={sp[8]:.1f} p36={sp[36]:.1f}; cilk_for worst at p=2,4: {worst}"
    )
    return scales_to_8 and flat_after and worst, detail


def _hotspot(cache: SweepCache) -> tuple[bool, str]:
    s = cache.sweep("hotspot")
    task_best36 = min(s.time(v, 36) for v in ("omp_task", "cilk_spawn"))
    static36 = min(s.time(v, 36) for v in ("omp_for", "cxx_thread"))
    gains = task_best36 < static36 * 0.92
    close_low = version_ratio(s, "omp_task", "omp_for", 1) <= 1.05
    detail = (
        f"at p=36 tasking {static36 / task_best36:.2f}x faster than static data-parallel;"
        f" p=1 omp_task/omp_for={version_ratio(s, 'omp_task', 'omp_for', 1):.3f}"
    )
    return gains and close_low, detail


def _lud(cache: SweepCache) -> tuple[bool, str]:
    s = cache.sweep("lud")
    effs = {v: speedup(s, v)[-1] / s.threads[-1] for v in s.versions}
    # shrinking dependent phases cap scaling for every version, and the
    # per-phase task creation/steal ramp makes the task versions trail
    # worksharing at scale
    limited = all(e <= 0.6 for e in effs.values())
    ws_leads = gap(s, "omp_for", 36) <= 1.1 and version_ratio(s, "omp_task", "omp_for", 36) >= 1.1
    detail = (
        "efficiency at p=36: "
        + ", ".join(f"{v}={e:.2f}" for v, e in effs.items())
        + f"; omp_task/omp_for at p=36: {version_ratio(s, 'omp_task', 'omp_for', 36):.2f}x"
    )
    return limited and ws_leads, detail


def _uniform_close(cache: SweepCache) -> tuple[bool, str]:
    details = []
    ok = True
    for app in ("lavamd", "srad"):
        s = cache.sweep(app)
        worst = max(
            gap(s, v, p) for v in s.versions for p in s.threads
        )
        details.append(f"{app} worst gap {worst:.2f}x")
        # "close" relative to the 1.4x-1.9x divergences of HotSpot/Axpy
        ok = ok and worst <= 1.30
    return ok, "; ".join(details) + " (paper: versions perform closely)"


def _worksharing_data_tasking_tasks(cache: SweepCache) -> tuple[bool, str]:
    ok = True
    details = []
    for k in ("axpy", "matvec", "matmul"):
        s = cache.sweep(k)
        g = max(gap(s, "omp_for", p) for p in (2, 4, 8, 16, 36))
        details.append(f"{k} omp_for gap<= {g:.2f}x")
        ok = ok and g <= 1.1
    s = cache.sweep("fib")
    fib_best = all(best_version(s, p) == "cilk_spawn" for p in (2, 4, 8, 16, 36))
    details.append(f"fib cilk_spawn best: {fib_best}")
    return ok and fib_best, "; ".join(details)


ALL_CLAIMS: tuple[Claim, ...] = (
    Claim(
        "axpy_cilkfor_worst",
        "Fig. 1",
        "cilk_for implementation has the worst performance, while other versions almost "
        "show the similar performance that are around two times better than cilk_for",
        _axpy,
    ),
    Claim(
        "sum_omp_task_best",
        "Fig. 2",
        "cilk_for performs the worst while omp_task has the best performance and performs "
        "around five times better than cilk_for",
        _sum,
    ),
    Claim(
        "matvec_moderate_gap",
        "Fig. 3",
        "cilk_for performs around 25% worse than the other versions",
        _matvec,
    ),
    Claim(
        "matmul_small_gap",
        "Fig. 4",
        "cilk_for has the worst performance for this kernel as well, and other versions "
        "perform around 10% better than cilk_for",
        _matmul,
    ),
    Claim(
        "fib_cilk_spawn_better",
        "Fig. 5",
        "cilk_spawn performs around 20% better than omp_task except for 1 core",
        _fib_gap,
    ),
    Claim(
        "fib_cxx_hangs",
        "Fig. 5",
        "for recursive implementation in C++, when problem size increases to 20 or above, "
        "the system hangs because huge number of threads is created",
        _fib_hang,
    ),
    Claim(
        "bfs_scales_to_8",
        "Fig. 6",
        "this algorithm scales well up to 8 cores ... cilk_for has the worst performance "
        "while others perform closely",
        _bfs,
    ),
    Claim(
        "hotspot_tasking_gains",
        "Fig. 7",
        "as more threads are added, the task parallel implementations are gaining more "
        "than the worksharing parallel implementations",
        _hotspot,
    ),
    Claim(
        "lud_limited_scaling",
        "Fig. 8",
        "two parallel loops with dependency to an outer loop (shrinking phases limit "
        "scaling; bare threads pay per-region creation)",
        _lud,
    ),
    Claim(
        "lavamd_srad_close",
        "Fig. 9",
        "applications ... perform more closely such as LavaMD and SRAD",
        _uniform_close,
    ),
    Claim(
        "worksharing_vs_workstealing",
        "Sec. IV.A",
        "worksharing mostly shows better performance for data parallelism and "
        "workstealing has better performance for task parallelism",
        _worksharing_data_tasking_tasks,
    ),
)

_CLAIMS_BY_ID = {c.claim_id: c for c in ALL_CLAIMS}


def check_claim(claim_id: str, cache: Optional[SweepCache] = None) -> ClaimResult:
    """Check one claim by id."""
    try:
        claim = _CLAIMS_BY_ID[claim_id]
    except KeyError:
        raise KeyError(f"unknown claim {claim_id!r}; known: {sorted(_CLAIMS_BY_ID)}") from None
    cache = cache or SweepCache()
    passed, details = claim.check(cache)
    return ClaimResult(claim.claim_id, claim.figure, claim.paper_says, passed, details)


def run_all_claims(
    ctx: Optional[ExecContext] = None, jobs: int = 1
) -> list[ClaimResult]:
    """Check every claim, sharing sweeps through one cache."""
    cache = SweepCache(ctx, jobs=jobs)
    return [check_claim(c.claim_id, cache) for c in ALL_CLAIMS]
