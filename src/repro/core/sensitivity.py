"""Sensitivity analysis: how robust are the conclusions to calibration?

The cost constants in :class:`~repro.sim.costs.CostModel` are
order-of-magnitude figures, not measurements of the authors' exact
software stack.  A reproduction that only holds for one magic constant
would be worthless, so this module varies one constant (or machine
parameter) across a factor range and re-evaluates a finding's metric —
e.g. "the cilk_for/omp_for Axpy gap at p=4" as ``the_steal`` moves from
a quarter to four times its default.

``bench_ablation_sensitivity`` uses this to show the headline findings
are stable across at least a 4x band of every constant they depend on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from repro.runtime.base import ExecContext

__all__ = ["SensitivityResult", "cost_sensitivity", "machine_sensitivity", "render_sensitivity"]

DEFAULT_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass
class SensitivityResult:
    """Metric values across parameter scalings."""

    parameter: str
    base_value: float
    factors: tuple[float, ...]
    metric_values: tuple[float, ...]
    metric_name: str

    def spread(self) -> float:
        """max/min of the metric across the factor range."""
        lo, hi = min(self.metric_values), max(self.metric_values)
        return hi / lo if lo > 0 else float("inf")

    def stable_within(self, band: float) -> bool:
        """True if the metric stays within a multiplicative band."""
        return self.spread() <= band


def cost_sensitivity(
    param: str,
    metric: Callable[[ExecContext], float],
    *,
    metric_name: str = "metric",
    factors: Sequence[float] = DEFAULT_FACTORS,
    ctx: Optional[ExecContext] = None,
) -> SensitivityResult:
    """Scale one cost constant and re-evaluate ``metric(ctx)``.

    ``metric`` receives a context with the scaled constant and returns
    a scalar (e.g. a version-ratio from a small sweep).
    """
    ctx = ctx or ExecContext()
    base = getattr(ctx.costs, param)  # raises AttributeError for typos
    values = []
    for f in factors:
        scaled = ctx.with_costs(**{param: base * f})
        values.append(float(metric(scaled)))
    return SensitivityResult(
        parameter=f"costs.{param}",
        base_value=base,
        factors=tuple(factors),
        metric_values=tuple(values),
        metric_name=metric_name,
    )


def machine_sensitivity(
    param: str,
    metric: Callable[[ExecContext], float],
    *,
    metric_name: str = "metric",
    factors: Sequence[float] = DEFAULT_FACTORS,
    ctx: Optional[ExecContext] = None,
) -> SensitivityResult:
    """Scale one machine parameter and re-evaluate ``metric(ctx)``."""
    ctx = ctx or ExecContext()
    base = getattr(ctx.machine, param)
    if not isinstance(base, (int, float)):
        raise TypeError(f"machine.{param} is not numeric")
    values = []
    for f in factors:
        machine = replace(ctx.machine, **{param: type(base)(base * f)})
        values.append(float(metric(ctx.with_machine(machine))))
    return SensitivityResult(
        parameter=f"machine.{param}",
        base_value=float(base),
        factors=tuple(factors),
        metric_values=tuple(values),
        metric_name=metric_name,
    )


def render_sensitivity(results: Sequence[SensitivityResult]) -> str:
    """Table: one row per parameter, metric value per scaling factor."""
    if not results:
        return "(no sensitivity results)"
    factors = results[0].factors
    width = max(len(r.parameter) for r in results) + 2
    lines = [
        f"sensitivity of {results[0].metric_name}",
        f"{'parameter':<{width}}" + "".join(f"{'x' + str(f):>9}" for f in factors)
        + f"{'spread':>9}",
    ]
    for r in results:
        if r.factors != factors:
            raise ValueError("all results must share the factor grid")
        cells = "".join(f"{v:9.3f}" for v in r.metric_values)
        lines.append(f"{r.parameter:<{width}}{cells}{r.spread():9.2f}")
    return "\n".join(lines)
