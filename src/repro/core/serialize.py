"""JSON (de)serialization of sweep results.

Sweeps are deterministic, but regenerating a full paper-scale figure
takes minutes; serializing lets tooling (plotters, CI trend checks)
consume results without rerunning the simulator, and lets two builds
be diffed for regressions.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.experiment import ExperimentConfig, SweepResult
from repro.sim.trace import SimResult

__all__ = ["sweep_to_dict", "sweep_from_dict", "dump_sweep", "load_sweep"]

_FORMAT_VERSION = 1


def sweep_to_dict(sweep: SweepResult) -> dict[str, Any]:
    """Lossy-but-sufficient dict form: config, figure, times, errors,
    and per-run summary statistics (not full per-worker traces)."""
    runs = {}
    for (version, p), res in sweep.results.items():
        runs[f"{version}@{p}"] = {
            "time": res.time,
            "busy": res.total_busy,
            "overhead": res.total_overhead,
            "tasks": res.total_tasks,
            "steals": res.total_steals,
        }
    return {
        "format": _FORMAT_VERSION,
        "workload": sweep.workload,
        "figure": sweep.figure,
        "versions": list(sweep.versions),
        "threads": list(sweep.threads),
        "params": dict(sweep.config.params),
        "series": {v: sweep.series[v] for v in sweep.versions},
        "errors": {f"{v}@{p}": msg for (v, p), msg in sweep.errors.items()},
        "runs": runs,
    }


def sweep_from_dict(data: dict[str, Any]) -> SweepResult:
    """Rebuild a :class:`SweepResult` (summary statistics only)."""
    if data.get("format") != _FORMAT_VERSION:
        raise ValueError(f"unsupported sweep format {data.get('format')!r}")
    config = ExperimentConfig(
        workload=data["workload"],
        versions=tuple(data["versions"]),
        threads=tuple(data["threads"]),
        params=dict(data["params"]),
    )
    sweep = SweepResult(config=config, figure=data["figure"])
    sweep.series = {v: list(times) for v, times in data["series"].items()}
    for key, msg in data["errors"].items():
        version, p = key.rsplit("@", 1)
        sweep.errors[(version, int(p))] = msg
    for key, run in data["runs"].items():
        version, p = key.rsplit("@", 1)
        sweep.results[(version, int(p))] = SimResult(
            program=data["workload"],
            version=version,
            nthreads=int(p),
            time=run["time"],
            regions=[],
        )
    return sweep


def dump_sweep(sweep: SweepResult, path: str) -> None:
    """Write a sweep to a JSON file."""
    with open(path, "w") as fh:
        json.dump(sweep_to_dict(sweep), fh, indent=1)


def load_sweep(path: str) -> SweepResult:
    """Read a sweep from a JSON file."""
    with open(path) as fh:
        return sweep_from_dict(json.load(fh))
