"""JSON (de)serialization of sweep results.

Sweeps are deterministic, but regenerating a full paper-scale figure
takes minutes; serializing lets tooling (plotters, CI trend checks)
consume results without rerunning the simulator, and lets two builds
be diffed for regressions.

Two fidelities share one reader:

- **format 1** (default) — lossy-but-sufficient: config, figure, time
  series, errors, and per-run summary statistics;
- **format 2** (``full=True``) — every run encoded through the
  :mod:`repro.sweep.codec`, so per-region worker stats, executor meta
  and (when present) full traces survive the round trip bit-exactly —
  the same payloads the sweep executor's result cache stores.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.experiment import ExperimentConfig, SweepResult
from repro.sim.trace import SimResult

__all__ = ["sweep_to_dict", "sweep_from_dict", "dump_sweep", "load_sweep"]

_FORMAT_VERSION = 1
_FULL_FORMAT_VERSION = 2


def sweep_to_dict(sweep: SweepResult, *, full: bool = False) -> dict[str, Any]:
    """Dict form of a sweep: summary statistics by default, full
    codec-encoded runs (including traces) with ``full=True``."""
    runs = {}
    for (version, p), res in sweep.results.items():
        if full:
            from repro.sweep.codec import result_to_dict

            runs[f"{version}@{p}"] = result_to_dict(res)
        else:
            runs[f"{version}@{p}"] = {
                "time": res.time,
                "busy": res.total_busy,
                "overhead": res.total_overhead,
                "tasks": res.total_tasks,
                "steals": res.total_steals,
            }
    return {
        "format": _FULL_FORMAT_VERSION if full else _FORMAT_VERSION,
        "workload": sweep.workload,
        "figure": sweep.figure,
        "versions": list(sweep.versions),
        "threads": list(sweep.threads),
        "params": dict(sweep.config.params),
        "series": {v: sweep.series[v] for v in sweep.versions},
        "errors": {f"{v}@{p}": msg for (v, p), msg in sweep.errors.items()},
        "runs": runs,
    }


def sweep_from_dict(data: dict[str, Any]) -> SweepResult:
    """Rebuild a :class:`SweepResult` from either format (summary
    statistics for format 1, full results for format 2)."""
    fmt = data.get("format")
    if fmt not in (_FORMAT_VERSION, _FULL_FORMAT_VERSION):
        raise ValueError(f"unsupported sweep format {fmt!r}")
    config = ExperimentConfig(
        workload=data["workload"],
        versions=tuple(data["versions"]),
        threads=tuple(data["threads"]),
        params=dict(data["params"]),
    )
    sweep = SweepResult(config=config, figure=data["figure"])
    sweep.series = {v: list(times) for v, times in data["series"].items()}
    for key, msg in data["errors"].items():
        version, p = key.rsplit("@", 1)
        sweep.errors[(version, int(p))] = msg
    for key, run in data["runs"].items():
        version, p = key.rsplit("@", 1)
        if fmt == _FULL_FORMAT_VERSION:
            from repro.sweep.codec import result_from_dict

            sweep.results[(version, int(p))] = result_from_dict(run)
        else:
            sweep.results[(version, int(p))] = SimResult(
                program=data["workload"],
                version=version,
                nthreads=int(p),
                time=run["time"],
                regions=[],
            )
    return sweep


def dump_sweep(sweep: SweepResult, path: str, *, full: bool = False) -> None:
    """Write a sweep to a JSON file."""
    with open(path, "w") as fh:
        json.dump(sweep_to_dict(sweep, full=full), fh, indent=1)


def load_sweep(path: str) -> SweepResult:
    """Read a sweep from a JSON file (either format)."""
    with open(path) as fh:
        return sweep_from_dict(json.load(fh))
