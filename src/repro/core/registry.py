"""Workload registry: every benchmark of the paper's evaluation.

Each :class:`WorkloadSpec` ties together a workload builder, the
versions it supports, the paper's problem size, a smaller default used
for quick sweeps (the simulator is cycle-accurate in *structure*, so
ratios are preserved; see DESIGN.md), and the figure it reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.kernels.common import build_kernel_program
from repro.models import AMT_VERSIONS, TASK_ONLY_VERSIONS, VERSIONS
from repro.rodinia.common import build_rodinia_program
from repro.sim.machine import Machine
from repro.sim.task import Program

__all__ = ["WorkloadSpec", "WORKLOADS", "get_workload"]


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark: builder, versions, parameters, provenance."""

    name: str
    kind: str  # "kernel" or "rodinia"
    figure: str
    versions: tuple[str, ...]
    paper_params: Mapping[str, Any]
    default_params: Mapping[str, Any]
    description: str
    validation_params: Mapping[str, Any] = field(default_factory=dict)
    """Tiny structure-preserving problem size used by ``repro validate``
    to invariant-check every workload x version in seconds, not minutes.
    Empty means: validate at ``default_params``."""

    def resolve_version(self, model: str) -> str:
        """Resolve a version name, accepting prefixes of the canonical names.

        ``cilk`` resolves to ``cilk_spawn`` for fib (task-only versions)
        and to ``cilk_for`` for the loop workloads — the first prefix
        match in canonical figure order wins.  Unknown names raise
        ``ValueError`` (exit code 2 at the CLI).
        """
        if model in self.versions:
            return model
        matches = [v for v in self.versions if v.startswith(model)]
        if matches:
            return matches[0]
        raise ValueError(
            f"{self.name} has no version matching {model!r}; "
            f"available: {list(self.versions)}"
        )

    def build(self, version: str, machine: Machine, **overrides: Any) -> Program:
        """Build this workload's program for ``version``.

        ``overrides`` replace the default (quick-sweep) parameters;
        pass ``**spec.paper_params`` for full paper scale.
        """
        if version not in self.versions:
            raise ValueError(
                f"{self.name} has no {version!r} version; available: {self.versions}"
            )
        params = dict(self.default_params)
        params.update(overrides)
        if self.kind == "kernel":
            return build_kernel_program(self.name, version, machine, **params)
        if self.kind == "taskgraph":
            # imported lazily: repro.workloads pulls the synthesizer in,
            # which imports this module back (cycle at import time only)
            from repro.workloads.taskgraph import build_taskgraph_program

            return build_taskgraph_program(self.name, version, machine, **params)
        if self.kind == "rodinia":
            return build_rodinia_program(self.name, version, machine, **params)
        raise ValueError(f"{self.name} has unknown workload kind {self.kind!r}")


WORKLOADS: dict[str, WorkloadSpec] = {}


def _add(spec: WorkloadSpec) -> None:
    WORKLOADS[spec.name] = spec


_add(
    WorkloadSpec(
        name="axpy",
        kind="kernel",
        figure="Fig. 1",
        versions=VERSIONS + AMT_VERSIONS,
        paper_params={"n": 100_000_000},
        default_params={"n": 8_000_000},
        validation_params={"n": 120_000},
        description="y = a*x + y over N doubles; bandwidth bound",
    )
)
_add(
    WorkloadSpec(
        name="sum",
        kind="kernel",
        figure="Fig. 2",
        versions=VERSIONS + AMT_VERSIONS,
        paper_params={"n": 100_000_000},
        default_params={"n": 8_000_000},
        validation_params={"n": 120_000},
        description="s = sum(a*X[i]); worksharing + reduction",
    )
)
_add(
    WorkloadSpec(
        name="matvec",
        kind="kernel",
        figure="Fig. 3",
        versions=VERSIONS + AMT_VERSIONS,
        paper_params={"n": 40_000},
        default_params={"n": 40_000},
        validation_params={"n": 1_500},
        description="dense matrix-vector product over rows",
    )
)
_add(
    WorkloadSpec(
        name="matmul",
        kind="kernel",
        figure="Fig. 4",
        versions=VERSIONS + AMT_VERSIONS,
        paper_params={"n": 2048},
        default_params={"n": 2048},
        validation_params={"n": 96},
        description="dense matrix-matrix product over rows; compute bound",
    )
)
_add(
    WorkloadSpec(
        name="fib",
        kind="kernel",
        figure="Fig. 5",
        versions=TASK_ONLY_VERSIONS + AMT_VERSIONS,
        paper_params={"n": 40},
        default_params={"n": 22},
        validation_params={"n": 12},
        description="recursive task-parallel Fibonacci (spawn tree)",
    )
)
_add(
    WorkloadSpec(
        name="bfs",
        kind="rodinia",
        figure="Fig. 6",
        versions=VERSIONS + AMT_VERSIONS,
        paper_params={"n_nodes": 16_000_000},
        default_params={"n_nodes": 2_000_000},
        validation_params={"n_nodes": 30_000},
        description="level-synchronous BFS over a 16M-node random graph",
    )
)
_add(
    WorkloadSpec(
        name="hotspot",
        kind="rodinia",
        figure="Fig. 7",
        versions=VERSIONS + AMT_VERSIONS,
        paper_params={"grid": 8192, "steps": 6},
        default_params={"grid": 2048, "steps": 4},
        validation_params={"grid": 192, "steps": 2},
        description="thermal stencil with dependent phases and skewed rows",
    )
)
_add(
    WorkloadSpec(
        name="lud",
        kind="rodinia",
        figure="Fig. 8",
        versions=VERSIONS + AMT_VERSIONS,
        paper_params={"n": 2048, "block": 32},
        default_params={"n": 1024, "block": 32},
        validation_params={"n": 128, "block": 32},
        description="blocked LU decomposition with shrinking parallel phases",
    )
)
_add(
    WorkloadSpec(
        name="lavamd",
        kind="rodinia",
        figure="Fig. 9a",
        versions=VERSIONS + AMT_VERSIONS,
        paper_params={"boxes1d": 10},
        default_params={"boxes1d": 8},
        validation_params={"boxes1d": 3},
        description="uniform heavy per-box n-body compute",
    )
)
_add(
    WorkloadSpec(
        name="srad",
        kind="rodinia",
        figure="Fig. 9b",
        versions=VERSIONS + AMT_VERSIONS,
        paper_params={"grid": 2048, "iters": 100},
        default_params={"grid": 2048, "iters": 10},
        validation_params={"grid": 192, "iters": 2},
        description="speckle-reducing anisotropic diffusion stencil",
    )
)
_add(
    WorkloadSpec(
        name="taskbench",
        kind="taskgraph",
        figure="Fig. T1 (ext)",
        versions=("omp_task", "cilk_spawn", "cxx_thread", "cxx_async") + AMT_VERSIONS,
        paper_params={"pattern": "stencil", "width": 256, "steps": 32, "grain": 1e-5},
        default_params={"pattern": "stencil", "width": 32, "steps": 8, "grain": 5e-6},
        validation_params={"pattern": "stencil", "width": 8, "steps": 4, "grain": 2e-6},
        description="Task Bench dependency grid (stencil/tree/fft/random patterns)",
    )
)


def get_workload(name: str) -> WorkloadSpec:
    """Look up a workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") from None
