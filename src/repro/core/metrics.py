"""Metrics over sweep results: speedup, efficiency, gaps, crossovers."""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.experiment import SweepResult

__all__ = [
    "speedup",
    "efficiency",
    "best_version",
    "version_ratio",
    "gap",
    "scaling_plateau",
    "crossover_threads",
]


def _clean(series: Sequence[Optional[float]]) -> list[float]:
    out = []
    for t in series:
        if t is None:
            raise ValueError("series contains failed runs")
        out.append(t)
    return out


def speedup(sweep: SweepResult, version: str) -> list[float]:
    """Speedup over the same version's one-thread time."""
    times = _clean(sweep.times(version))
    base = times[0]
    if sweep.threads[0] != 1:
        raise ValueError("speedup needs a 1-thread baseline in the sweep")
    return [base / t for t in times]


def efficiency(sweep: SweepResult, version: str) -> list[float]:
    """Parallel efficiency: speedup / threads."""
    return [s / p for s, p in zip(speedup(sweep, version), sweep.threads)]


def best_version(sweep: SweepResult, nthreads: int) -> str:
    """The fastest version at one thread count (errors excluded)."""
    best, best_t = None, math.inf
    for v in sweep.versions:
        key = (v, nthreads)
        if key in sweep.errors:
            continue
        t = sweep.results[key].time
        if t < best_t:
            best, best_t = v, t
    if best is None:
        raise ValueError(f"no successful runs at p={nthreads}")
    return best


def version_ratio(sweep: SweepResult, slow: str, fast: str, nthreads: int) -> float:
    """time(slow) / time(fast) at one thread count."""
    return sweep.time(slow, nthreads) / sweep.time(fast, nthreads)


def gap(sweep: SweepResult, version: str, nthreads: int) -> float:
    """How much slower ``version`` is than the best at ``nthreads``
    (1.0 = it is the best)."""
    return sweep.time(version, nthreads) / sweep.time(best_version(sweep, nthreads), nthreads)


def scaling_plateau(
    sweep: SweepResult, version: str, threshold: float = 1.15
) -> int:
    """The thread count past which adding threads stops paying.

    Returns the largest ``p`` in the sweep such that going from the
    previous thread count to ``p`` still improved time by at least
    ``threshold``x per doubling-equivalent; i.e. where the curve goes
    flat.  The paper uses this informally ("scales well up to 8
    cores").
    """
    times = _clean(sweep.times(version))
    threads = sweep.threads
    plateau = threads[0]
    for i in range(1, len(threads)):
        factor = times[i - 1] / times[i]
        step = threads[i] / threads[i - 1]
        # required improvement scaled to the step size
        needed = threshold ** math.log2(step)
        if factor >= needed:
            plateau = threads[i]
        else:
            break
    return plateau


def crossover_threads(
    sweep: SweepResult, a: str, b: str
) -> Optional[int]:
    """First thread count where version ``a`` becomes faster than ``b``
    after having been slower (None if no crossover)."""
    was_slower = False
    for p in sweep.threads:
        ta, tb = sweep.time(a, p), sweep.time(b, p)
        if ta > tb:
            was_slower = True
        elif was_slower and ta < tb:
            return p
    return None
