"""Report rendering: paper-style figure tables and ASCII charts."""

from __future__ import annotations

import math
from typing import Optional

from repro.core.experiment import SweepResult
from repro.core.metrics import best_version, gap

__all__ = ["figure_table", "render_sweep", "summary_line", "ascii_chart"]


def _fmt_time(t: Optional[float]) -> str:
    if t is None:
        return "   HANG "
    if t >= 1.0:
        return f"{t:7.3f}s"
    if t >= 1e-3:
        return f"{t * 1e3:6.2f}ms"
    return f"{t * 1e6:6.1f}us"


def figure_table(sweep: SweepResult, title: str = "") -> str:
    """Execution-time table: one row per version, one column per p."""
    lines = []
    head = title or f"{sweep.figure}: {sweep.workload} " + str(dict(sweep.config.params))
    lines.append(head)
    lines.append(
        f"{'version':<12}" + "".join(f"{'p=' + str(p):>10}" for p in sweep.threads)
    )
    for v in sweep.versions:
        cells = "".join(f"{_fmt_time(t):>10}" for t in sweep.times(v))
        lines.append(f"{v:<12}{cells}")
    return "\n".join(lines)


def ascii_chart(sweep: SweepResult, width: int = 50) -> str:
    """Log-scale horizontal bars of time at each thread count."""
    rows = []
    finite = [
        t for v in sweep.versions for t in sweep.times(v) if t is not None and t > 0
    ]
    if not finite:
        return "(no successful runs)"
    lo, hi = min(finite), max(finite)
    span = math.log10(hi / lo) if hi > lo else 1.0
    for p in sweep.threads:
        rows.append(f"p={p}")
        for v in sweep.versions:
            t = sweep.times(v)[sweep.threads.index(p)]
            if t is None:
                rows.append(f"  {v:<12} HANG")
                continue
            frac = math.log10(t / lo) / span if span > 0 else 0.0
            bar = "#" * max(1, int(round(frac * width)))
            rows.append(f"  {v:<12} {bar} {_fmt_time(t).strip()}")
    return "\n".join(rows)


def summary_line(sweep: SweepResult, nthreads: Optional[int] = None) -> str:
    """One sentence in the paper's style: who wins, who loses, by how much."""
    p = nthreads if nthreads is not None else sweep.threads[-1]
    ok_versions = [v for v in sweep.versions if (v, p) not in sweep.errors]
    if not ok_versions:
        return f"{sweep.workload} at p={p}: every version failed"
    best = best_version(sweep, p)
    worst = max(ok_versions, key=lambda v: sweep.time(v, p))
    ratio = sweep.time(worst, p) / sweep.time(best, p)
    hang = [v for v in sweep.versions if (v, p) in sweep.errors]
    msg = (
        f"{sweep.workload} at p={p}: {best} fastest"
        f" ({_fmt_time(sweep.time(best, p)).strip()}), {worst} slowest"
        f" ({ratio:.2f}x slower)"
    )
    if hang:
        msg += f"; hung: {', '.join(hang)}"
    return msg


def render_sweep(sweep: SweepResult, chart: bool = False) -> str:
    """Full textual report for one figure."""
    parts = [figure_table(sweep)]
    worst_gaps = []
    for p in sweep.threads:
        ok = [v for v in sweep.versions if (v, p) not in sweep.errors]
        if not ok:
            continue
        worst = max(ok, key=lambda v: gap(sweep, v, p))
        worst_gaps.append(f"p={p}: worst={worst} ({gap(sweep, worst, p):.2f}x)")
    parts.append("  ".join(worst_gaps))
    parts.append(summary_line(sweep))
    if chart:
        parts.append(ascii_chart(sweep))
    return "\n".join(parts)
