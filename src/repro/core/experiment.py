"""Experiment driver: thread-count sweeps across versions.

One :func:`run_experiment` call regenerates the data behind one paper
figure: for every version of a workload and every thread count, build
the program, run it through its runtime, and collect the simulated
times into a :class:`SweepResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.runtime.base import ExecContext
from repro.sim.trace import SimResult

__all__ = ["PAPER_THREADS", "ExperimentConfig", "SweepResult", "run_experiment"]

#: Thread counts shown in the paper's figures.
PAPER_THREADS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 36)


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one sweep."""

    workload: str
    versions: tuple[str, ...]
    threads: tuple[int, ...] = PAPER_THREADS
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class SweepResult:
    """Times for every (version, thread count) of one workload.

    ``metrics`` holds the :class:`~repro.obs.metrics.MetricsRegistry`
    the sweep executor accounted into (cache hits/misses, simulation
    counts, and the merged per-run metrics); it is ``None`` only for
    results rebuilt from the lossy serialized form.

    ``perf`` is the host-telemetry snapshot of the executing sweep
    (:meth:`repro.perf.PerfRecorder.snapshot`): host wall/CPU seconds
    plus the executor's span/counter detail.  It is ``None`` when
    telemetry is disabled (``REPRO_PERF_OFF=1``) or for rebuilt
    results — host cost is a property of one execution, so it is never
    serialized into the result cache.
    """

    config: ExperimentConfig
    figure: str
    series: dict[str, list[Optional[float]]] = field(default_factory=dict)
    results: dict[tuple[str, int], SimResult] = field(default_factory=dict)
    errors: dict[tuple[str, int], str] = field(default_factory=dict)
    metrics: Optional[Any] = None
    perf: Optional[dict[str, Any]] = None

    @property
    def workload(self) -> str:
        return self.config.workload

    @property
    def threads(self) -> tuple[int, ...]:
        return self.config.threads

    @property
    def versions(self) -> tuple[str, ...]:
        return self.config.versions

    def time(self, version: str, nthreads: int) -> float:
        """Simulated seconds for one cell; raises if that run errored."""
        key = (version, nthreads)
        if key in self.errors:
            raise RuntimeError(f"{key} failed: {self.errors[key]}")
        return self.results[key].time

    def times(self, version: str) -> list[Optional[float]]:
        """Time series across threads (None where the run errored)."""
        return self.series[version]

    def counter(self, name: str) -> int:
        """Value of one executor accounting counter (0 when unmetered)."""
        if self.metrics is None:
            return 0
        c = self.metrics.counters.get(name)
        return c.value if c is not None else 0

    @property
    def host_wall_seconds(self) -> float:
        """Host wall-clock cost of executing this sweep (0.0 unmetered)."""
        if not self.perf:
            return 0.0
        return float(self.perf.get("wall_seconds", 0.0))

    @property
    def host_cpu_seconds(self) -> float:
        """Host CPU cost of executing this sweep (0.0 unmetered)."""
        if not self.perf:
            return 0.0
        return float(self.perf.get("cpu_seconds", 0.0))


def run_experiment(
    workload: str,
    versions: Optional[Sequence[str]] = None,
    threads: Sequence[int] = PAPER_THREADS,
    ctx: Optional[ExecContext] = None,
    jobs: int = 1,
    cache: Any = None,
    refresh: bool = False,
    trace: bool = False,
    validate: bool = False,
    fidelity: Any = None,
    **params: Any,
) -> SweepResult:
    """Run one figure's sweep and return all series.

    Every sweep routes through the :mod:`repro.sweep` executor:

    - ``jobs``   — worker processes (1 = in-process serial execution);
    - ``cache``  — ``True`` / a directory / a
      :class:`~repro.sweep.cache.ResultCache` memoizes completed cells
      on disk, so re-running a figure only simulates changed cells;
    - ``refresh`` — ignore (and overwrite) existing cache entries;
    - ``trace``  — attach the observability tracer to every run;
    - ``validate`` — run the invariant audit on every simulated run;
    - ``fidelity`` — simulation tier (:mod:`repro.sim.tiers`):
      ``None`` inherits the context's tier, ``2`` reference, ``1``
      bit-identical fast paths, ``0`` closed-form estimates, ``"auto"``
      the cheapest tier the sweep's options allow.

    Serial, parallel and cached executions are bit-identical.  A
    :class:`~repro.runtime.base.ThreadExplosionError` (the C++11 fib
    hang) is recorded in ``errors`` instead of propagating, so the
    sweep can report it the way the paper does.
    """
    # imported lazily: repro.sweep builds on this module's dataclasses
    from repro.sweep.executor import run_sweep

    return run_sweep(
        workload,
        versions,
        threads,
        ctx,
        params=params,
        jobs=jobs,
        cache=cache,
        refresh=refresh,
        trace=trace,
        validate=validate,
        fidelity=fidelity,
    )
