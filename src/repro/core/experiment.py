"""Experiment driver: thread-count sweeps across versions.

One :func:`run_experiment` call regenerates the data behind one paper
figure: for every version of a workload and every thread count, build
the program, run it through its runtime, and collect the simulated
times into a :class:`SweepResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.core.registry import get_workload
from repro.runtime.base import ExecContext, ThreadExplosionError
from repro.runtime.run import run_program
from repro.sim.trace import SimResult

__all__ = ["PAPER_THREADS", "ExperimentConfig", "SweepResult", "run_experiment"]

#: Thread counts shown in the paper's figures.
PAPER_THREADS: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 36)


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters of one sweep."""

    workload: str
    versions: tuple[str, ...]
    threads: tuple[int, ...] = PAPER_THREADS
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class SweepResult:
    """Times for every (version, thread count) of one workload."""

    config: ExperimentConfig
    figure: str
    series: dict[str, list[Optional[float]]] = field(default_factory=dict)
    results: dict[tuple[str, int], SimResult] = field(default_factory=dict)
    errors: dict[tuple[str, int], str] = field(default_factory=dict)

    @property
    def workload(self) -> str:
        return self.config.workload

    @property
    def threads(self) -> tuple[int, ...]:
        return self.config.threads

    @property
    def versions(self) -> tuple[str, ...]:
        return self.config.versions

    def time(self, version: str, nthreads: int) -> float:
        """Simulated seconds for one cell; raises if that run errored."""
        key = (version, nthreads)
        if key in self.errors:
            raise RuntimeError(f"{key} failed: {self.errors[key]}")
        return self.results[key].time

    def times(self, version: str) -> list[Optional[float]]:
        """Time series across threads (None where the run errored)."""
        return self.series[version]


def run_experiment(
    workload: str,
    versions: Optional[Sequence[str]] = None,
    threads: Sequence[int] = PAPER_THREADS,
    ctx: Optional[ExecContext] = None,
    **params: Any,
) -> SweepResult:
    """Run one figure's sweep and return all series.

    A :class:`ThreadExplosionError` (the C++11 fib hang) is recorded in
    ``errors`` instead of propagating, so the sweep can report it the
    way the paper does.
    """
    spec = get_workload(workload)
    if versions is None:
        versions = spec.versions
    else:
        versions = tuple(versions)
        for v in versions:
            if v not in spec.versions:
                raise ValueError(f"{workload} has no version {v!r}")
    ctx = ctx or ExecContext()
    config = ExperimentConfig(workload, tuple(versions), tuple(threads), dict(params))
    sweep = SweepResult(config=config, figure=spec.figure)
    for version in versions:
        row: list[Optional[float]] = []
        for p in config.threads:
            try:
                prog = spec.build(version, ctx.machine, **params)
                res = run_program(prog, p, ctx, version)
            except ThreadExplosionError as exc:
                sweep.errors[(version, p)] = str(exc)
                row.append(None)
                continue
            sweep.results[(version, p)] = res
            row.append(res.time)
        sweep.series[version] = row
    return sweep
