"""The comparison framework — the paper's methodology as a library.

- :mod:`repro.core.registry` — every workload (5 kernels + 5 Rodinia
  apps) with its six versions, paper parameters and figure number;
- :mod:`repro.core.experiment` — thread-count sweeps producing the
  time-vs-threads series behind each figure;
- :mod:`repro.core.metrics` — speedup/efficiency/gap/crossover metrics;
- :mod:`repro.core.report` — paper-style figure tables and ASCII charts;
- :mod:`repro.core.claims` — the paper's findings as checkable
  predicates (who wins, by what factor, where scaling stops).
"""

from repro.core.claims import ALL_CLAIMS, ClaimResult, check_claim, run_all_claims
from repro.core.experiment import ExperimentConfig, SweepResult, run_experiment
from repro.core.metrics import (
    best_version,
    efficiency,
    gap,
    scaling_plateau,
    speedup,
    version_ratio,
)
from repro.core.registry import WORKLOADS, WorkloadSpec, get_workload
from repro.core.report import figure_table, render_sweep, summary_line

__all__ = [
    "ALL_CLAIMS",
    "ClaimResult",
    "ExperimentConfig",
    "SweepResult",
    "WORKLOADS",
    "WorkloadSpec",
    "best_version",
    "check_claim",
    "efficiency",
    "figure_table",
    "gap",
    "get_workload",
    "render_sweep",
    "run_all_claims",
    "run_experiment",
    "scaling_plateau",
    "speedup",
    "summary_line",
    "version_ratio",
]
