"""One-shot regeneration of every paper artifact.

:func:`generate_report` renders Tables I-III, reruns every figure's
sweep, checks every claim, and writes one text file per artifact plus
an ``INDEX.md`` — the programmatic equivalent of EXPERIMENTS.md.
Exposed as ``python -m repro report``.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Sequence

from repro.core.claims import run_all_claims
from repro.core.experiment import PAPER_THREADS, run_experiment
from repro.core.registry import WORKLOADS
from repro.core.report import render_sweep, summary_line
from repro.features import render_table1, render_table2, render_table3
from repro.runtime.base import ExecContext

__all__ = ["generate_report"]


def generate_report(
    outdir: str,
    *,
    ctx: Optional[ExecContext] = None,
    threads: Sequence[int] = PAPER_THREADS,
    paper_scale: bool = False,
    workloads: Optional[Sequence[str]] = None,
    include_claims: bool = True,
) -> pathlib.Path:
    """Write all tables, figures and claim checks under ``outdir``.

    Returns the output directory path.  ``paper_scale`` switches every
    workload to the paper's problem sizes (slow); the default uses the
    registry's reduced sizes.
    """
    ctx = ctx or ExecContext()
    out = pathlib.Path(outdir)
    out.mkdir(parents=True, exist_ok=True)
    index = ["# Regenerated paper artifacts", ""]

    for num, render in (("1", render_table1), ("2", render_table2), ("3", render_table3)):
        path = out / f"table{num}.txt"
        path.write_text(render() + "\n")
        index.append(f"- [Table {num}]({path.name})")

    names = list(workloads) if workloads is not None else sorted(
        WORKLOADS, key=lambda n: WORKLOADS[n].figure
    )
    for name in names:
        spec = WORKLOADS[name]
        params = dict(spec.paper_params if paper_scale else spec.default_params)
        sweep = run_experiment(name, threads=tuple(threads), ctx=ctx, **params)
        path = out / f"{spec.figure.replace('. ', '').replace(' ', '').lower()}_{name}.txt"
        path.write_text(render_sweep(sweep, chart=True) + "\n")
        index.append(f"- [{spec.figure} — {name}]({path.name}): {summary_line(sweep)}")

    if include_claims:
        results = run_all_claims(ctx)
        claims_text = "\n".join(f"{r}\n    paper: {r.paper_says}" for r in results)
        passed = sum(r.passed for r in results)
        (out / "claims.txt").write_text(claims_text + "\n")
        index.append(
            f"- [claims](claims.txt): {passed}/{len(results)} findings reproduce"
        )

    (out / "INDEX.md").write_text("\n".join(index) + "\n")
    return out
