"""Content-addressed on-disk cache for completed sweep cells.

Every completed cell of an experiment sweep is memoized under a key
that is a SHA-256 over *everything that determines the simulation's
output*:

- the workload name, version, thread count and workload parameters;
- the full machine configuration (topology, clocks, bandwidths, NUMA
  and SMT factors, placement);
- every cost-model constant;
- the execution context's seed, thread cap and event budget;
- whether the run was traced (traced and untraced entries differ in
  payload, so they address different entries);
- the fault-injection plan and recovery policy, when the sweep injects
  faults (fault-free cells hash exactly as before);
- the fidelity tier, when below the tier-2 reference (tier-2 cells hash
  exactly as before tiers existed; tier-0 estimates and tier-1 fast-path
  runs address their own entries);
- the code-relevant package version and the cache format version.

Because the simulator is deterministic, two runs with equal keys are
bit-identical — so replaying an entry is indistinguishable from
re-simulating it, and any change to any input (a cost constant, a
machine parameter, a package upgrade) silently invalidates exactly the
affected cells and nothing else.

Concurrency: entries are written atomically (write to a unique
temporary file in the cache directory, then ``os.replace``), so any
number of executors — threads or processes — may share one cache
directory; readers only ever observe absent or complete entries, and
concurrent writers of the same key converge on identical content.
Unreadable or truncated entries are treated as misses and overwritten.

Host telemetry: when a :mod:`repro.perf` recording is active, every
probe and store reports its latency (``cache.probe_seconds`` /
``cache.store_seconds`` observations) and outcome (``cache.hit`` /
``cache.miss`` / ``cache.store`` / ``cache.evict`` counters); with no
recorder active the instrumentation is a single predicate per call.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pathlib
import threading
from dataclasses import asdict
from time import perf_counter
from typing import TYPE_CHECKING, Any, Optional, Union

from repro.perf.spans import current as _perf_current
from repro.runtime.base import ExecContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.sweep.cells import SweepCell

__all__ = ["DEFAULT_CACHE_DIR", "KEY_FORMAT", "ResultCache", "cache_key"]

#: Where `repro sweep` and the benchmark harness keep their entries.
DEFAULT_CACHE_DIR = pathlib.Path("benchmarks") / "out" / "cache"

#: Bump to invalidate every existing entry (cache payload layout change).
KEY_FORMAT = 1

_tmp_counter = itertools.count()


def _key_document(cell: "SweepCell", ctx: ExecContext, trace: bool) -> dict[str, Any]:
    """The canonical key inputs, as a JSON-able document."""
    from repro import __version__

    doc: dict[str, Any] = {
        "format": KEY_FORMAT,
        "package": __version__,
        "workload": cell.workload,
        "version": cell.version,
        "nthreads": int(cell.nthreads),
        "params": {str(k): cell.params[k] for k in sorted(cell.params)},
        "machine": asdict(ctx.machine),
        "costs": asdict(ctx.costs),
        "seed": ctx.seed,
        "max_events": ctx.max_events,
        "thread_cap": ctx.thread_cap,
        "trace": bool(trace),
    }
    # fault plan / recovery policy change the simulation output, so they
    # are key inputs — but only when present, so every pre-existing
    # fault-free entry keeps its address (no KEY_FORMAT bump needed).
    if getattr(cell, "faults", None):
        doc["faults"] = cell.faults
    if getattr(cell, "policy", None):
        doc["policy"] = cell.policy
    # the fidelity tier addresses separate entries (a tier-0 estimate
    # must never be served for a tier-2 request), but the reference tier
    # is omitted so every pre-tiers entry keeps its address.
    fidelity = getattr(cell, "fidelity", 2)
    if fidelity != 2:
        doc["fidelity"] = int(fidelity)
    return doc


def cache_key(cell: "SweepCell", ctx: ExecContext, *, trace: bool = False) -> str:
    """Stable content address of one sweep cell under one context.

    The key is a SHA-256 hex digest of the canonical (sorted-keys,
    no-whitespace) JSON encoding of :func:`_key_document`, so it is
    independent of dict insertion order, of ``PYTHONHASHSEED``, and of
    the process that computes it.
    """
    blob = json.dumps(
        _key_document(cell, ctx, trace), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of content-addressed cell payloads (one JSON file each).

    ``max_entries`` bounds the cache size; :meth:`prune` (called by the
    executor after every sweep when a bound is set) evicts the
    least-recently-modified entries beyond the bound and reports how
    many it removed.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike] = DEFAULT_CACHE_DIR,
        max_entries: Optional[int] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = pathlib.Path(root)
        self.max_entries = max_entries

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # entry IO
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict[str, Any]]:
        """Return the payload stored under ``key``, or ``None``.

        Missing, truncated, or otherwise unreadable entries are all
        misses: a crashed writer can at worst leave a stale ``*.tmp``
        file behind, never a half-visible entry.
        """
        rec = _perf_current()
        if rec is None:
            try:
                return json.loads(self.path_for(key).read_text())
            except (OSError, ValueError):
                return None
        t0 = perf_counter()
        try:
            payload = json.loads(self.path_for(key).read_text())
        except (OSError, ValueError):
            payload = None
        rec.observe("cache.probe_seconds", perf_counter() - t0)
        rec.count("cache.hit" if payload is not None else "cache.miss")
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> pathlib.Path:
        """Atomically store ``payload`` under ``key`` (write-then-rename).

        The temporary name is unique per (process, thread, call), so
        concurrent writers never collide on the staging file, and
        ``os.replace`` makes publication atomic on POSIX and Windows.
        """
        rec = _perf_current()
        t0 = perf_counter() if rec is not None else 0.0
        self.root.mkdir(parents=True, exist_ok=True)
        final = self.path_for(key)
        tmp = final.with_name(
            f".{key}.{os.getpid()}.{threading.get_ident()}.{next(_tmp_counter)}.tmp"
        )
        try:
            tmp.write_text(json.dumps(payload, separators=(",", ":")) + "\n")
            os.replace(tmp, final)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        if rec is not None:
            rec.observe("cache.store_seconds", perf_counter() - t0)
            rec.count("cache.store")
        return final

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Keys of all complete entries currently on disk."""
        try:
            names = list(self.root.iterdir())
        except OSError:
            return []
        return sorted(
            p.stem for p in names if p.suffix == ".json" and not p.name.startswith(".")
        )

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    def prune(self, max_entries: Optional[int] = None) -> int:
        """Evict least-recently-modified entries beyond the bound.

        Returns the number of entries removed (0 when unbounded or
        already within bounds).  Entries that vanish mid-prune (another
        executor pruning the same directory) are counted by whoever
        actually unlinked them.
        """
        bound = max_entries if max_entries is not None else self.max_entries
        if bound is None:
            return 0
        entries = []
        for key in self.keys():
            path = self.path_for(key)
            try:
                entries.append((path.stat().st_mtime_ns, str(path)))
            except OSError:
                continue
        entries.sort(reverse=True)  # newest first
        evicted = 0
        for _mtime, path in entries[bound:]:
            try:
                os.unlink(path)
                evicted += 1
            except OSError:
                continue
        if evicted:
            rec = _perf_current()
            if rec is not None:
                rec.count("cache.evict", evicted)
        return evicted

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for key in self.keys():
            try:
                os.unlink(self.path_for(key))
                removed += 1
            except OSError:
                continue
        return removed
