"""Content-addressed on-disk cache for completed sweep cells.

Every completed cell of an experiment sweep is memoized under a key
that is a SHA-256 over *everything that determines the simulation's
output*:

- the workload name, version, thread count and workload parameters;
- the full machine configuration (topology, clocks, bandwidths, NUMA
  and SMT factors, placement);
- every cost-model constant;
- the execution context's seed, thread cap and event budget;
- whether the run was traced (traced and untraced entries differ in
  payload, so they address different entries);
- the fault-injection plan and recovery policy, when the sweep injects
  faults (fault-free cells hash exactly as before);
- the fidelity tier, when below the tier-2 reference (tier-2 cells hash
  exactly as before tiers existed; tier-0 estimates and tier-1 fast-path
  runs address their own entries);
- the code-relevant package version and the cache format version.

Because the simulator is deterministic, two runs with equal keys are
bit-identical — so replaying an entry is indistinguishable from
re-simulating it, and any change to any input (a cost constant, a
machine parameter, a package upgrade) silently invalidates exactly the
affected cells and nothing else.

Layout: entries are **sharded** by key prefix — entry ``<key>`` lives
at ``root/<key[:2]>/<key>.json`` — so a store holding millions of
cells (the sweep service's regime, :mod:`repro.serve`) never puts more
than ~1/256th of them in one directory, keeping every directory scan
and entry create O(small).  Stores written before sharding existed
kept every entry flat at ``root/<key>.json``; those entries stay fully
readable and are *adopted* (renamed into their shard) the first time
they are read, so a flat store migrates transparently under read
traffic without a migration step.  An append-only NDJSON index
(``root/index.ndjson``) records every publication and eviction; it is
advisory — the directory scan stays the source of truth — but lets an
operator reconstruct store history without stat-ing a million files.

Eviction is **true LRU**: :meth:`ResultCache.get` refreshes an entry's
mtime on every hit (best-effort ``os.utime``), so "least recently
modified" genuinely means "least recently used" and a hot entry
survives any number of prunes.  An optional ``ttl_seconds`` expires
entries that have not been used within the window regardless of the
entry bound.

Concurrency: entries are written atomically (write to a unique
temporary file in the entry's shard directory, then ``os.replace``),
so any number of executors — threads or processes — may share one
cache directory; readers only ever observe absent or complete entries,
and concurrent writers of the same key converge on identical content.
Unreadable or truncated entries are treated as misses and overwritten.
A *crashed* writer can leave its ``.<key>.*.tmp`` staging file behind;
:meth:`prune` and :meth:`clear` garbage-collect staging files older
than ``tmp_grace_seconds`` (young ones may belong to a live in-flight
writer and are left alone).

Host telemetry: when a :mod:`repro.perf` recording is active, every
probe and store reports its latency (``cache.probe_seconds`` /
``cache.store_seconds`` observations) and outcome (``cache.hit`` /
``cache.miss`` / ``cache.store`` / ``cache.evict`` / ``cache.adopt`` /
``cache.tmp_gc`` counters); with no recorder active the
instrumentation is a single predicate per call.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pathlib
import threading
import time
from dataclasses import asdict
from time import perf_counter
from typing import TYPE_CHECKING, Any, Iterator, Optional, Union

from repro.perf.spans import current as _perf_current
from repro.runtime.base import ExecContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.sweep.cells import SweepCell

__all__ = [
    "DEFAULT_CACHE_DIR",
    "INDEX_NAME",
    "KEY_FORMAT",
    "ResultCache",
    "SHARD_WIDTH",
    "TMP_GRACE_SECONDS",
    "cache_key",
]

#: Where `repro sweep` and the benchmark harness keep their entries.
DEFAULT_CACHE_DIR = pathlib.Path("benchmarks") / "out" / "cache"

#: Bump to invalidate every existing entry (cache payload layout change).
KEY_FORMAT = 1

#: Hex chars of the key that name an entry's shard directory.
SHARD_WIDTH = 2

#: Append-only store journal (one JSON line per publication/eviction).
INDEX_NAME = "index.ndjson"

#: Staging files older than this are presumed orphaned by a crashed
#: writer and are garbage-collected by prune()/clear().
TMP_GRACE_SECONDS = 3600.0

_tmp_counter = itertools.count()


def _key_document(cell: "SweepCell", ctx: ExecContext, trace: bool) -> dict[str, Any]:
    """The canonical key inputs, as a JSON-able document."""
    from repro import __version__

    doc: dict[str, Any] = {
        "format": KEY_FORMAT,
        "package": __version__,
        "workload": cell.workload,
        "version": cell.version,
        "nthreads": int(cell.nthreads),
        "params": {str(k): cell.params[k] for k in sorted(cell.params)},
        "machine": asdict(ctx.machine),
        "costs": asdict(ctx.costs),
        "seed": ctx.seed,
        "max_events": ctx.max_events,
        "thread_cap": ctx.thread_cap,
        "trace": bool(trace),
    }
    # fault plan / recovery policy change the simulation output, so they
    # are key inputs — but only when present, so every pre-existing
    # fault-free entry keeps its address (no KEY_FORMAT bump needed).
    if getattr(cell, "faults", None):
        doc["faults"] = cell.faults
    if getattr(cell, "policy", None):
        doc["policy"] = cell.policy
    # the fidelity tier addresses separate entries (a tier-0 estimate
    # must never be served for a tier-2 request), but the reference tier
    # is omitted so every pre-tiers entry keeps its address.
    fidelity = getattr(cell, "fidelity", 2)
    if fidelity != 2:
        doc["fidelity"] = int(fidelity)
    return doc


def cache_key(cell: "SweepCell", ctx: ExecContext, *, trace: bool = False) -> str:
    """Stable content address of one sweep cell under one context.

    The key is a SHA-256 hex digest of the canonical (sorted-keys,
    no-whitespace) JSON encoding of :func:`_key_document`, so it is
    independent of dict insertion order, of ``PYTHONHASHSEED``, and of
    the process that computes it.
    """
    blob = json.dumps(
        _key_document(cell, ctx, trace), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _is_shard_name(name: str) -> bool:
    if len(name) != SHARD_WIDTH:
        return False
    try:
        int(name, 16)
    except ValueError:
        return False
    return True


class ResultCache:
    """A sharded directory of content-addressed cell payloads.

    ``max_entries`` bounds the cache size; :meth:`prune` (called by the
    executor after every sweep when a bound is set, and by the sweep
    server periodically) evicts the least-recently-*used* entries
    beyond the bound — :meth:`get` refreshes an entry's mtime on every
    hit, so recency of use, not of insertion, decides survival.
    ``ttl_seconds`` additionally expires entries unused for longer than
    the window.  ``tmp_grace_seconds`` controls when an orphaned
    staging file from a crashed writer becomes garbage.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike] = DEFAULT_CACHE_DIR,
        max_entries: Optional[int] = None,
        *,
        ttl_seconds: Optional[float] = None,
        tmp_grace_seconds: float = TMP_GRACE_SECONDS,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be > 0")
        self.root = pathlib.Path(root)
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.tmp_grace_seconds = float(tmp_grace_seconds)

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> pathlib.Path:
        """Canonical (sharded) location of ``key``'s entry file."""
        return self.root / key[:SHARD_WIDTH] / f"{key}.json"

    def flat_path_for(self, key: str) -> pathlib.Path:
        """Pre-sharding location — readable, adopted into shards on use."""
        return self.root / f"{key}.json"

    def _locate(self, key: str) -> pathlib.Path:
        """The file a probe for ``key`` should read (sharded wins)."""
        sharded = self.path_for(key)
        if sharded.exists():
            return sharded
        flat = self.flat_path_for(key)
        if flat.exists():
            return flat
        return sharded

    @property
    def index_path(self) -> pathlib.Path:
        return self.root / INDEX_NAME

    def _index_append(self, op: str, key: str) -> None:
        """Best-effort append to the store journal (one atomic write).

        ``O_APPEND`` keeps concurrent writers' lines intact; an
        unwritable index never fails the entry operation it records.
        """
        line = json.dumps({"op": op, "key": key}, separators=(",", ":")) + "\n"
        try:
            fd = os.open(
                self.index_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                os.write(fd, line.encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            pass

    def index_events(self) -> Iterator[dict[str, Any]]:
        """Replay the append-only journal (corrupt lines are skipped)."""
        try:
            with open(self.index_path, encoding="utf-8") as fh:
                for line in fh:
                    try:
                        doc = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(doc, dict):
                        yield doc
        except OSError:
            return

    # ------------------------------------------------------------------
    # entry IO
    # ------------------------------------------------------------------
    @staticmethod
    def _read(path: pathlib.Path) -> Optional[dict[str, Any]]:
        """Decode one entry file; missing/truncated/corrupt → ``None``."""
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def _adopt(self, key: str, flat: pathlib.Path) -> pathlib.Path:
        """Move a pre-sharding flat entry into its shard (best-effort).

        ``os.replace`` keeps the move atomic; losing the race to a
        concurrent adopter (or a read-only store) simply leaves the
        flat file for the next reader.
        """
        sharded = self.path_for(key)
        try:
            sharded.parent.mkdir(parents=True, exist_ok=True)
            os.replace(flat, sharded)
        except OSError:
            return flat
        rec = _perf_current()
        if rec is not None:
            rec.count("cache.adopt")
        return sharded

    def get(self, key: str) -> Optional[dict[str, Any]]:
        """Return the payload stored under ``key``, or ``None``.

        Missing, truncated, or otherwise unreadable entries are all
        misses: a crashed writer can at worst leave a stale ``*.tmp``
        file behind, never a half-visible entry.  A hit refreshes the
        entry's mtime (best-effort ``os.utime``), which is what makes
        :meth:`prune`'s least-recently-modified ordering true LRU
        rather than insertion-order FIFO; a flat pre-sharding entry is
        adopted into its shard on the way.
        """
        rec = _perf_current()
        t0 = perf_counter() if rec is not None else 0.0
        path = self.path_for(key)
        payload = self._read(path)
        if payload is None:
            flat = self.flat_path_for(key)
            payload = self._read(flat)
            if payload is not None:
                path = self._adopt(key, flat)
        if payload is not None:
            try:
                os.utime(path)  # touch-on-hit: LRU recency, not FIFO age
            except OSError:
                pass
        if rec is not None:
            rec.observe("cache.probe_seconds", perf_counter() - t0)
            rec.count("cache.hit" if payload is not None else "cache.miss")
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> pathlib.Path:
        """Atomically store ``payload`` under ``key`` (write-then-rename).

        The temporary name is unique per (process, thread, call), so
        concurrent writers never collide on the staging file, and
        ``os.replace`` makes publication atomic on POSIX and Windows
        (same-directory rename: the staging file lives in the entry's
        shard).
        """
        rec = _perf_current()
        t0 = perf_counter() if rec is not None else 0.0
        final = self.path_for(key)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = final.with_name(
            f".{key}.{os.getpid()}.{threading.get_ident()}.{next(_tmp_counter)}.tmp"
        )
        try:
            tmp.write_text(json.dumps(payload, separators=(",", ":")) + "\n")
            os.replace(tmp, final)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self._index_append("put", key)
        if rec is not None:
            rec.observe("cache.store_seconds", perf_counter() - t0)
            rec.count("cache.store")
        return final

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _entry_paths(self) -> Iterator[tuple[str, pathlib.Path]]:
        """Yield ``(key, path)`` for every entry, sharded and flat.

        A key present in both layouts (a racing adopter) yields its
        sharded path only.
        """
        try:
            children = list(self.root.iterdir())
        except OSError:
            return
        seen: set[str] = set()
        for child in children:
            if child.name.startswith("."):
                continue
            if child.is_dir() and _is_shard_name(child.name):
                try:
                    grand = list(child.iterdir())
                except OSError:
                    continue
                for p in grand:
                    if p.suffix == ".json" and not p.name.startswith("."):
                        seen.add(p.stem)
                        yield p.stem, p
        for child in children:
            if (
                child.suffix == ".json"
                and not child.name.startswith(".")
                and not child.is_dir()
                and child.stem not in seen
            ):
                yield child.stem, child

    def keys(self) -> list[str]:
        """Keys of all complete entries currently on disk."""
        return sorted(key for key, _path in self._entry_paths())

    def __contains__(self, key: str) -> bool:
        """True iff ``key``'s entry exists *and* decodes.

        Aligned with :meth:`get`'s miss semantics: a truncated or
        corrupt entry that ``get`` would treat as a miss also reports
        absent here, so ``key in cache`` never promises a payload that
        ``get`` then refuses to return.  Unlike ``get``, a containment
        probe records no telemetry and does not refresh recency — it is
        a question, not a use.
        """
        return self._read(self._locate(key)) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def _tmp_paths(self) -> Iterator[pathlib.Path]:
        """Every staging file in the store (root and shard directories)."""
        try:
            children = list(self.root.iterdir())
        except OSError:
            return
        for child in children:
            if child.name.startswith(".") and child.name.endswith(".tmp"):
                yield child
            elif child.is_dir() and _is_shard_name(child.name):
                try:
                    grand = list(child.iterdir())
                except OSError:
                    continue
                for p in grand:
                    if p.name.startswith(".") and p.name.endswith(".tmp"):
                        yield p

    def gc_stale_tmp(self, grace_seconds: Optional[float] = None) -> int:
        """Unlink staging files older than the grace age; returns count.

        A crashed writer's ``.<key>.*.tmp`` never becomes an entry and
        — being dot-prefixed — is invisible to :meth:`keys`, so without
        this pass it would leak forever.  Files younger than the grace
        age are left alone: they may belong to a writer that is still
        alive between ``write_text`` and ``os.replace``.
        """
        grace = self.tmp_grace_seconds if grace_seconds is None else grace_seconds
        cutoff = time.time() - grace
        removed = 0
        for path in self._tmp_paths():
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        if removed:
            rec = _perf_current()
            if rec is not None:
                rec.count("cache.tmp_gc", removed)
        return removed

    def prune(
        self,
        max_entries: Optional[int] = None,
        *,
        ttl_seconds: Optional[float] = None,
    ) -> int:
        """Evict least-recently-used entries beyond the bound or TTL.

        Returns the number of *entries* removed (0 when unbounded, no
        TTL, or already within bounds); stale staging files are
        garbage-collected on every call but not counted.  Because
        :meth:`get` touches entries on hit, mtime ordering here is true
        LRU: the entries evicted first are the ones nothing has asked
        for longest, across all shards.  Entries that vanish mid-prune
        (another executor pruning the same directory) are counted by
        whoever actually unlinked them.
        """
        self.gc_stale_tmp()
        bound = max_entries if max_entries is not None else self.max_entries
        ttl = ttl_seconds if ttl_seconds is not None else self.ttl_seconds
        if bound is None and ttl is None:
            return 0
        entries = []
        for key, path in self._entry_paths():
            try:
                entries.append((path.stat().st_mtime_ns, str(path), key))
            except OSError:
                continue
        entries.sort(reverse=True)  # most recently used first
        victims: list[tuple[int, str, str]] = []
        if ttl is not None:
            cutoff_ns = int((time.time() - ttl) * 1e9)
            keep = [e for e in entries if e[0] > cutoff_ns]
            victims.extend(e for e in entries if e[0] <= cutoff_ns)
            entries = keep
        if bound is not None:
            victims.extend(entries[bound:])
        evicted = 0
        for _mtime, path, key in victims:
            try:
                os.unlink(path)
            except OSError:
                continue
            self._index_append("evict", key)
            evicted += 1
        if evicted:
            rec = _perf_current()
            if rec is not None:
                rec.count("cache.evict", evicted)
        return evicted

    def clear(self) -> int:
        """Remove every entry; returns how many were removed.

        Stale staging files are garbage-collected too (in-flight ones
        within the grace age are spared — their writer is about to
        publish into the now-empty store), and the journal is reset.
        """
        removed = 0
        for _key, path in self._entry_paths():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        self.gc_stale_tmp()
        try:
            self.index_path.unlink()
        except OSError:
            pass
        return removed
