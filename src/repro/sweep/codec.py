"""Full-fidelity JSON codec for simulation results and traces.

The sweep cache and the process-pool executor both move finished
:class:`~repro.sim.trace.SimResult` objects across a JSON boundary
(to disk, or from a worker process back to the parent).  Unlike the
lossy summary format of :mod:`repro.core.serialize`, this codec
round-trips *everything* the simulator recorded — per-region worker
stats, executor meta, and the complete observability trace (spans,
instants, engine events, lock grants) — so that a decoded result is
indistinguishable from a freshly simulated one.

Bit-exactness: Python's ``json`` serializes floats via ``repr``, which
round-trips every finite ``float`` exactly, so simulated times and
event timestamps survive encode/decode unchanged.  The golden-trace
regression suite (``tests/test_golden_traces.py``) holds the whole
pipeline to this guarantee.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.tracer import InstantEvent, SpanEvent, Tracer
from repro.sim.trace import RegionResult, SimResult, WorkerStats

__all__ = [
    "result_from_dict",
    "result_to_dict",
    "tracer_from_dict",
    "tracer_to_dict",
]


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
def tracer_to_dict(tracer: Tracer) -> dict[str, Any]:
    """Canonical JSON-ready form of a tracer's full event streams."""
    return {
        "spans": [
            [s.worker, s.start, s.end, s.kind, s.name, s.region] for s in tracer.spans
        ],
        "instants": [[i.worker, i.time, i.name, i.region] for i in tracer.instants],
        "engine_events": [[t, seq] for t, seq in tracer.engine_events],
        "lock_events": {
            name: [[r, g, h] for r, g, h in grants]
            for name, grants in sorted(tracer.lock_events.items())
        },
        "region_names": list(tracer.region_names),
    }


def tracer_from_dict(data: dict[str, Any]) -> Tracer:
    """Rebuild a :class:`Tracer` whose event streams compare equal to
    the original's (times are already program-absolute, so the decoded
    tracer's offset is zero)."""
    t = Tracer()
    t.spans = [
        SpanEvent(int(w), float(s), float(e), kind, name, int(region))
        for w, s, e, kind, name, region in data["spans"]
    ]
    t.instants = [
        InstantEvent(int(w), float(ts), name, int(region))
        for w, ts, name, region in data["instants"]
    ]
    t.engine_events = [(float(ts), int(seq)) for ts, seq in data["engine_events"]]
    t.lock_events = {
        name: [(float(r), float(g), float(h)) for r, g, h in grants]
        for name, grants in data["lock_events"].items()
    }
    t.region_names = list(data["region_names"])
    t.region = len(t.region_names) - 1
    return t


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
def _worker_to_list(w: WorkerStats) -> list:
    return [w.busy, w.overhead, w.tasks, w.steals, w.failed_steals]


def _worker_from_list(data: list) -> WorkerStats:
    busy, overhead, tasks, steals, failed = data
    return WorkerStats(
        busy=float(busy),
        overhead=float(overhead),
        tasks=int(tasks),
        steals=int(steals),
        failed_steals=int(failed),
    )


def _region_to_dict(r: RegionResult) -> dict[str, Any]:
    return {
        "time": r.time,
        "nthreads": r.nthreads,
        "workers": [_worker_to_list(w) for w in r.workers],
        "meta": dict(r.meta),
    }


def _region_from_dict(data: dict[str, Any]) -> RegionResult:
    return RegionResult(
        time=float(data["time"]),
        nthreads=int(data["nthreads"]),
        workers=[_worker_from_list(w) for w in data["workers"]],
        meta=dict(data["meta"]),
    )


def result_to_dict(res: SimResult, with_trace: bool = True) -> dict[str, Any]:
    """Encode a full :class:`SimResult` (regions, worker stats, meta,
    and — when present and requested — its trace).  A tier-0
    :class:`~repro.sim.tiers.Tier0Result` additionally carries its
    calibrated ``error_bound``, which marks the payload as analytic."""
    doc: dict[str, Any] = {
        "program": res.program,
        "version": res.version,
        "nthreads": res.nthreads,
        "time": res.time,
        "regions": [_region_to_dict(r) for r in res.regions],
    }
    bound = getattr(res, "error_bound", None)
    if bound is not None:
        doc["error_bound"] = bound
    if with_trace and res.trace is not None:
        doc["trace"] = tracer_to_dict(res.trace)
    return doc


def result_from_dict(data: dict[str, Any]) -> SimResult:
    """Decode a :class:`SimResult`; times, stats, meta and trace events
    compare equal to the encoded original.  Payloads carrying an
    ``error_bound`` decode as :class:`~repro.sim.tiers.Tier0Result`."""
    trace: Optional[Tracer] = None
    if "trace" in data:
        trace = tracer_from_dict(data["trace"])
    kwargs: dict[str, Any] = dict(
        program=data["program"],
        version=data["version"],
        nthreads=int(data["nthreads"]),
        time=float(data["time"]),
        regions=[_region_from_dict(r) for r in data["regions"]],
        trace=trace,
    )
    if "error_bound" in data:
        from repro.sim.tiers import Tier0Result

        return Tier0Result(error_bound=float(data["error_bound"]), **kwargs)
    return SimResult(**kwargs)
