"""Sweep cells: the unit of work of a parallel experiment sweep.

An experiment matrix (workload x version x thread count x params)
expands into independent :class:`SweepCell` instances.  Cells are
self-contained and order-free: each one names everything needed to
simulate it, so the executor can fan them out across OS processes,
replay them from the content-addressed cache, or run them serially —
in any order — and still assemble the exact :class:`SweepResult` the
old serial loop produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports sweep lazily)
    from repro.core.experiment import ExperimentConfig

__all__ = ["SweepCell", "expand_cells"]


@dataclass(frozen=True)
class SweepCell:
    """One (workload, version, thread count, params) point of a sweep.

    ``faults`` / ``policy`` carry a fault-injection plan and recovery
    policy in canonical dict form (:meth:`repro.faults.FaultPlan.to_dict`
    / :meth:`repro.faults.Policy.to_dict`) so cells stay picklable and
    content-addressable; ``None`` (the default) is a fault-free cell and
    hashes exactly as it did before fault injection existed.
    """

    workload: str
    version: str
    nthreads: int
    params: Mapping[str, Any] = field(default_factory=dict)
    faults: Optional[Mapping[str, Any]] = None
    policy: Optional[Mapping[str, Any]] = None
    fidelity: int = 2
    """Simulation fidelity tier (:mod:`repro.sim.tiers`): ``2`` reference
    scalar DES, ``1`` vectorized fast paths (bit-identical results, but a
    distinct cache address), ``0`` closed-form analytic estimate.  The
    default keeps tier-2 cells hashing exactly as before tiers existed."""

    @property
    def key(self) -> tuple[str, int]:
        """The cell's slot in ``SweepResult.results`` / ``.errors``."""
        return (self.version, self.nthreads)

    def describe(self) -> str:
        return f"{self.workload}/{self.version} p={self.nthreads}"


def expand_cells(
    config: "ExperimentConfig",
    faults: Optional[Mapping[str, Any]] = None,
    policy: Optional[Mapping[str, Any]] = None,
    fidelity: int = 2,
) -> list[SweepCell]:
    """Expand a sweep config into its independent cells.

    The order (versions outer, thread counts inner) matches the legacy
    serial loop of ``run_experiment``; the executor may *complete* cells
    in any order but reports progress in this canonical one.  A fault
    plan / recovery policy (already in canonical dict form) and the
    fidelity tier apply to every cell of the sweep.
    """
    params = dict(config.params)
    return [
        SweepCell(config.workload, version, p, dict(params), faults, policy, fidelity)
        for version in config.versions
        for p in config.threads
    ]
