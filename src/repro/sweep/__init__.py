"""Sweep execution: parallel fan-out plus content-addressed caching.

The paper's artifact is a large cross-product of simulated runs —
every workload x model version x thread count.  This subsystem makes
that matrix fast to (re)produce without weakening determinism:

- :mod:`repro.sweep.cells` — matrix expansion into independent cells;
- :mod:`repro.sweep.codec` — full-fidelity JSON round-trip of results
  and traces (bit-exact floats);
- :mod:`repro.sweep.cache` — content-addressed on-disk memoization of
  completed cells with atomic write-then-rename publication;
- :mod:`repro.sweep.executor` — :func:`run_sweep`, fanning cells out
  across OS processes with cache write-through and metrics counters.

The determinism contract: for any sweep, serial execution, ``jobs=N``
parallel execution and cache-hit replay produce bit-identical times,
worker statistics and trace event streams.  ``tests/test_golden_traces.py``
pins that contract to committed golden traces.
"""

from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from repro.sweep.cells import SweepCell, expand_cells
from repro.sweep.executor import run_sweep

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "SweepCell",
    "cache_key",
    "expand_cells",
    "run_sweep",
]
