"""Parallel sweep executor with write-through result caching.

:func:`run_sweep` is the engine behind :func:`repro.core.experiment.run_experiment`
and the ``repro sweep`` CLI.  It expands an experiment matrix into
independent :class:`~repro.sweep.cells.SweepCell` instances and drives
each one through exactly one of three paths:

- **cache hit** — the cell's content address (:func:`~repro.sweep.cache.cache_key`)
  resolves to a stored payload, which is decoded without simulating;
- **parallel simulation** — with ``jobs > 1`` on a platform that can
  ``fork``, cells fan out across OS processes via
  :class:`concurrent.futures.ProcessPoolExecutor`;
- **serial simulation** — with ``jobs <= 1``, or when the platform
  lacks ``fork``, cells run in-process through the same
  :func:`~repro.runtime.run.run_program` the legacy loop used.

The ``fidelity`` tier (:mod:`repro.sim.tiers`) selects *what* runs at
each cell: the reference scalar simulation (2), the bit-identical
vectorized fast paths (1), or the closed-form tier-0 estimator (0,
always in-process — an estimate costs microseconds).  The tier is part
of the cell's cache address and is stamped into the stored payload, so
an estimate can never be replayed as a simulation.

All three paths are bit-identical: the simulator is deterministic, and
the JSON codec round-trips floats exactly, so a parallel or replayed
sweep produces the same times, worker statistics and trace events as a
serial one (enforced by ``tests/test_golden_traces.py`` and
``tests/test_sweep_executor.py``).

Completed cells are written through to the cache *as they finish*, so
an interrupted sweep resumes deterministically: re-running it replays
the finished cells and simulates only the missing ones.  Failures that
the sweep semantics expect (:class:`~repro.runtime.base.ThreadExplosionError`,
the paper's C++11 fib hang) are recorded — and cached — as cell errors
without poisoning the worker pool; any other worker exception is
re-raised in the parent.

Progress and accounting go through one
:class:`~repro.obs.metrics.MetricsRegistry`: ``sweep_cells``,
``cache_hits`` / ``cache_misses`` / ``cache_stores`` /
``cache_evictions``, ``simulations`` and ``sweep_errors`` counters,
plus the merged per-run metrics of every successful cell.

Host telemetry (:mod:`repro.perf`) is threaded through every phase:
the whole sweep runs under one perf recording whose snapshot is
attached as ``SweepResult.perf``, with named spans for cache keying
and probes (``cache.*``), payload encode/decode (``codec.*``),
in-process simulation/estimation (``cell.*``) and process-pool fan-out
(``fanout.*``) — the vocabulary ``repro perf report`` attributes host
wall time in.  With ``REPRO_PERF_OFF=1`` (or outside any recording)
all of it is inert and results are bit-identical.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
from dataclasses import asdict
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from repro.core.experiment import PAPER_THREADS, ExperimentConfig, SweepResult
from repro.core.registry import get_workload
from repro.faults.policy import RegionFailedError
from repro.obs.metrics import MetricsRegistry, result_metrics
from repro.perf.spans import counter as perf_count
from repro.perf.spans import recording as perf_recording
from repro.perf.spans import span as perf_span
from repro.runtime.base import ExecContext, ThreadExplosionError
from repro.runtime.run import run_program
from repro.sim.trace import SimResult
from repro.sweep import codec
from repro.sweep.cache import ResultCache, cache_key
from repro.sweep.cells import SweepCell, expand_cells

__all__ = ["PAYLOAD_FORMAT", "run_sweep"]

#: Version stamp of the cached cell payload layout.
PAYLOAD_FORMAT = 1

#: ``progress`` callback signature: (done, total, cell, status) with
#: status one of "hit", "run", "error".
ProgressFn = Callable[[int, int, SweepCell, str], None]


# ---------------------------------------------------------------------------
# cell execution
# ---------------------------------------------------------------------------
def _cell_payload(
    cell: SweepCell, ctx: ExecContext, trace: bool, validate: bool
) -> dict[str, Any]:
    """Self-contained, picklable description of one cell execution."""
    return {
        "workload": cell.workload,
        "version": cell.version,
        "nthreads": cell.nthreads,
        "params": dict(cell.params),
        "machine": asdict(ctx.machine),
        "costs": asdict(ctx.costs),
        "seed": ctx.seed,
        "max_events": ctx.max_events,
        "thread_cap": ctx.thread_cap,
        "trace": bool(trace),
        "validate": bool(validate),
        "faults": dict(cell.faults) if cell.faults else None,
        "policy": dict(cell.policy) if cell.policy else None,
        "fidelity": cell.fidelity,
    }


def _exec_cell(payload: dict[str, Any]) -> dict[str, Any]:
    """Simulate one cell from its payload (worker-process entry point).

    Returns ``{"result": ...}`` (codec dict) on success, ``{"error": msg}``
    for an expected :class:`ThreadExplosionError`, and ``{"crash": ...}``
    for anything else so the parent can re-raise with context instead of
    losing the pool.
    """
    from repro.sim.costs import CostModel
    from repro.sim.machine import Machine

    ctx = ExecContext(
        machine=Machine(**payload["machine"]),
        costs=CostModel(**payload["costs"]),
        seed=payload["seed"],
        max_events=payload["max_events"],
        thread_cap=payload["thread_cap"],
        fidelity=payload.get("fidelity", 2),
    )
    spec = get_workload(payload["workload"])
    try:
        program = spec.build(payload["version"], ctx.machine, **payload["params"])
        res = run_program(
            program,
            payload["nthreads"],
            ctx,
            payload["version"],
            validate=payload["validate"],
            trace=payload["trace"],
            faults=payload.get("faults"),
            policy=payload.get("policy"),
        )
    except (ThreadExplosionError, RegionFailedError) as exc:
        return {"error": str(exc)}
    except Exception as exc:
        import traceback

        return {
            "crash": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
        }
    return {"result": codec.result_to_dict(res, with_trace=payload["trace"])}


def _run_cell_local(
    cell: SweepCell,
    ctx: ExecContext,
    trace: bool,
    validate: bool,
    metrics: Optional[MetricsRegistry],
) -> tuple[Optional[SimResult], Optional[str]]:
    """Simulate one cell in-process (the serial path).

    Resolves ``run_program`` through this module's namespace so test
    harnesses can interpose on every simulated cell by patching
    ``repro.sweep.executor.run_program``.
    """
    spec = get_workload(cell.workload)
    try:
        program = spec.build(cell.version, ctx.machine, **cell.params)
        res = run_program(
            program,
            cell.nthreads,
            ctx,
            cell.version,
            validate=validate,
            trace=trace,
            metrics=metrics,
            faults=cell.faults,
            policy=cell.policy,
        )
    except (ThreadExplosionError, RegionFailedError) as exc:
        return None, str(exc)
    return res, None


def _estimate_cell_local(
    cell: SweepCell, ctx: ExecContext
) -> tuple[Optional[SimResult], Optional[str]]:
    """Tier-0 path: closed-form estimate instead of simulation.

    Returns a :class:`~repro.sim.tiers.Tier0Result` (a ``SimResult``
    subclass carrying the calibrated error bound).  Thread-per-task
    versions past the cap raise :class:`ThreadExplosionError` exactly as
    a tier-2 run would — the check rides along with the delegated
    regions — so the sweep records the same cell errors.
    """
    from repro.sim.tiers import estimate_program

    spec = get_workload(cell.workload)
    try:
        program = spec.build(cell.version, ctx.machine, **cell.params)
        res = estimate_program(program, cell.nthreads, ctx, cell.version)
    except (ThreadExplosionError, RegionFailedError) as exc:
        return None, str(exc)
    return res, None


# ---------------------------------------------------------------------------
# cache payloads
# ---------------------------------------------------------------------------
def _encode_entry(
    cell: SweepCell, res: Optional[SimResult], err: Optional[str], trace: bool
) -> dict[str, Any]:
    doc: dict[str, Any] = {
        "format": PAYLOAD_FORMAT,
        "workload": cell.workload,
        "version": cell.version,
        "nthreads": cell.nthreads,
        "params": dict(cell.params),
    }
    if cell.fidelity != 2:
        doc["fidelity"] = cell.fidelity
    if err is not None:
        doc["error"] = err
    else:
        assert res is not None
        doc["result"] = codec.result_to_dict(res, with_trace=trace)
    return doc


def _decode_entry(
    payload: dict[str, Any], fidelity: int = 2
) -> Optional[tuple[Optional[SimResult], Optional[str]]]:
    """Decode a cached payload; ``None`` means unusable (treat as miss).

    ``fidelity`` is the tier of the *requesting* cell: a payload stamped
    with a different tier is rejected even though tiers already address
    distinct cache keys — a belt-and-braces guard so a tier-0 estimate
    can never be served for a tier-2 request (copied cache files, key
    collisions, hand-edited entries).
    """
    if payload.get("format") != PAYLOAD_FORMAT:
        return None
    if int(payload.get("fidelity", 2)) != int(fidelity):
        return None
    if "error" in payload:
        return None, str(payload["error"])
    if "result" not in payload:
        return None
    return codec.result_from_dict(payload["result"]), None


def _coerce_cache(
    cache: Union[None, bool, str, os.PathLike, ResultCache]
) -> Optional[ResultCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, (str, os.PathLike)):
        return ResultCache(cache)
    return cache


def _pool_context():
    """The fork multiprocessing context, or ``None`` when unavailable.

    Fork is required so worker processes inherit the already-imported
    package (and any test-time state) without re-importing through
    ``spawn``; platforms without it fall back to serial execution.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------
def run_sweep(
    workload: str,
    versions: Optional[Sequence[str]] = None,
    threads: Sequence[int] = PAPER_THREADS,
    ctx: Optional[ExecContext] = None,
    *,
    params: Optional[Mapping[str, Any]] = None,
    jobs: int = 1,
    cache: Union[None, bool, str, os.PathLike, ResultCache] = None,
    refresh: bool = False,
    trace: bool = False,
    validate: bool = False,
    faults=None,
    policy=None,
    fidelity: Union[None, int, str] = None,
    server: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Run one workload's full sweep, parallel and/or cached.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs in-process —
        exactly the legacy serial loop; ``> 1`` fans cells out over a
        fork-based :class:`~concurrent.futures.ProcessPoolExecutor`
        (falling back to serial when the platform lacks fork).
    cache:
        ``None``/``False`` disables caching; ``True`` uses
        :data:`~repro.sweep.cache.DEFAULT_CACHE_DIR`; a path or
        :class:`~repro.sweep.cache.ResultCache` selects a directory.
        Completed cells (including expected errors) are written through
        as they finish, which is also the resume mechanism.
    refresh:
        Ignore existing entries (every cell re-simulates and overwrites
        its entry) — the ``--refresh`` escape hatch.
    trace:
        Simulate every cell with the observability tracer attached (and
        cache the full event streams with the results).
    validate:
        Run the PR 1 invariant audit on every simulated cell.
    faults, policy:
        A fault-injection plan (:class:`~repro.faults.FaultPlan`, spec
        string, or dict) and recovery policy
        (:class:`~repro.faults.Policy` or dict) applied to every cell.
        Both enter the cell's content address, so fault-injected and
        fault-free sweeps never share cache entries; a region failing
        past its retry budget under ``on_failure="raise"`` is recorded
        (and cached) as a cell error, like the modelled C++11 hang.
    fidelity:
        Simulation fidelity tier (:mod:`repro.sim.tiers`).  ``None``
        (the default) inherits ``ctx.fidelity`` (tier 2 for a default
        context); ``2`` is the reference scalar simulation, ``1`` the
        bit-identical vectorized fast paths, ``0`` the closed-form
        analytic estimator (cells return
        :class:`~repro.sim.tiers.Tier0Result` with calibrated error
        bounds, always in-process — estimates are far cheaper than
        process fan-out).  ``"auto"`` picks tier 0 for plain timing
        sweeps and tier 1 whenever exact event semantics are required
        (tracing, validation, or fault injection).  Requesting tier 0
        *explicitly* together with those options is a ``ValueError`` —
        an estimate has no events to trace, audit or fault.  The tier
        enters the cell's content address (tier 2 keeps its pre-tiers
        address), so tiers never share cache entries.
    server:
        Route the whole sweep through a running sweep service
        (:mod:`repro.serve`) at this URL instead of executing locally;
        ``None`` falls back to the ``REPRO_SWEEP_SERVER`` environment
        variable, and empty/unset means local execution.  The service
        owns the store and the worker pool, so ``jobs`` and ``cache``
        are ignored in server mode; results are byte-identical to the
        local path (same codec, same cache-entry documents).
        Validation and fault injection are not part of protocol v1 and
        raise ``ValueError`` when combined with a server.
    metrics:
        Registry to account into (one is created when omitted); it is
        attached to the returned sweep as ``SweepResult.metrics``.
    progress:
        Callback ``(done, total, cell, status)`` invoked as each cell
        settles, with status ``"hit"``, ``"run"`` or ``"error"``.
    """
    spec = get_workload(workload)
    if versions is None:
        versions = spec.versions
    else:
        versions = tuple(versions)
        for v in versions:
            if v not in spec.versions:
                raise ValueError(f"{workload} has no version {v!r}")
    ctx = ctx or ExecContext()
    config = ExperimentConfig(
        workload, tuple(versions), tuple(threads), dict(params or {})
    )
    fault_doc = policy_doc = None
    if faults is not None or policy is not None:
        # canonicalize up front: unknown kinds/keys fail here, before
        # any simulation, and the dict forms feed the cache key
        from repro.faults.plan import FaultPlan
        from repro.faults.policy import Policy

        plan = FaultPlan.coerce(faults)
        pol = Policy.coerce(policy)
        fault_doc = plan.to_dict() if plan else None
        policy_doc = pol.to_dict() if pol is not None else None
    needs_events = bool(trace) or bool(validate) or fault_doc is not None or policy_doc is not None
    if fidelity is None:
        fid = ctx.fidelity
    elif fidelity == "auto":
        fid = 1 if needs_events else 0
    elif fidelity in (0, 1, 2):
        fid = int(fidelity)
    else:
        raise ValueError(f"fidelity must be 'auto', 0, 1 or 2, got {fidelity!r}")
    if fid == 0 and needs_events:
        raise ValueError(
            "fidelity=0 is an analytic estimate with no event stream; "
            "tracing, validation and fault injection need fidelity 1 or 2 "
            "(or fidelity='auto' to pick for you)"
        )
    if server is None:
        server = os.environ.get("REPRO_SWEEP_SERVER") or None
    if server:
        if validate or fault_doc is not None or policy_doc is not None:
            raise ValueError(
                "server mode (repro.serve protocol v1) does not carry "
                "validation or fault injection; run those sweeps locally"
            )
        from repro.serve.client import run_sweep_remote

        return run_sweep_remote(
            workload,
            versions,
            threads,
            ctx,
            params=params,
            fidelity=fid,
            trace=trace,
            refresh=refresh,
            server=server,
            metrics=metrics,
            progress=progress,
        )
    ctx = ctx.with_fidelity(fid)
    reg = metrics if metrics is not None else MetricsRegistry()
    store = _coerce_cache(cache)

    # Pre-register the accounting counters so exported snapshots always
    # carry the full schema (a fully-cached sweep still reports
    # ``simulations: 0`` rather than omitting the counter).
    for name in ("sweep_cells", "cache_hits", "cache_misses", "cache_stores",
                 "cache_evictions", "simulations", "estimates", "sweep_errors"):
        reg.counter(name)

    # Host telemetry (repro.perf): the whole sweep runs inside one
    # recording whose snapshot lands on ``SweepResult.perf``.  With
    # ``REPRO_PERF_OFF=1`` the recorder is None and every perf_span /
    # perf_count below is a no-op — the simulation itself never sees
    # any of this, so instrumented and uninstrumented sweeps are
    # bit-identical.
    with perf_recording("sweep") as host:
        sweep = _run_sweep_cells(
            spec, config, ctx, fid, reg, store, jobs=jobs, refresh=refresh,
            trace=trace, validate=validate, fault_doc=fault_doc,
            policy_doc=policy_doc, progress=progress,
        )
    if host is not None:
        sweep.perf = host.snapshot()
    return sweep


def _run_sweep_cells(
    spec,
    config: ExperimentConfig,
    ctx: ExecContext,
    fid: int,
    reg: MetricsRegistry,
    store: Optional[ResultCache],
    *,
    jobs: int,
    refresh: bool,
    trace: bool,
    validate: bool,
    fault_doc,
    policy_doc,
    progress: Optional[ProgressFn],
) -> SweepResult:
    """Drive every cell through probe / simulate / assemble (see run_sweep)."""
    cells = expand_cells(config, fault_doc, policy_doc, fid)
    reg.counter("sweep_cells").inc(len(cells))
    with perf_span("cache.key"):
        keys = [cache_key(c, ctx, trace=trace) for c in cells] if store is not None else []

    #: per-cell outcome: (SimResult | None, error message | None)
    outcomes: list[Optional[tuple[Optional[SimResult], Optional[str]]]]
    outcomes = [None] * len(cells)
    total = len(cells)
    done = 0

    def settle(i: int, res: Optional[SimResult], err: Optional[str], status: str,
               merge: bool = True) -> None:
        nonlocal done
        outcomes[i] = (res, err)
        done += 1
        if err is not None:
            reg.counter("sweep_errors").inc()
            status = "error"
        elif merge and res is not None:
            reg.merge(result_metrics(res))
        if progress is not None:
            progress(done, total, cells[i], status)

    # -- phase 1: cache probe ------------------------------------------
    pending: list[int] = []
    for i in range(len(cells)):
        if store is not None and not refresh:
            with perf_span("cache.probe"):
                payload = store.get(keys[i])
            if payload is not None:
                with perf_span("codec.decode"):
                    decoded = _decode_entry(payload, fid)
            else:
                decoded = None
            if decoded is not None:
                reg.counter("cache_hits").inc()
                settle(i, decoded[0], decoded[1], "hit")
                continue
            if payload is not None:
                # a stored entry the decoder refused: stale format or
                # wrong tier stamp — re-simulated and overwritten below
                perf_count("cache.corrupt")
        if store is not None:
            reg.counter("cache_misses").inc()
        pending.append(i)

    def finish_simulated(i: int, res: Optional[SimResult], err: Optional[str],
                         merge: bool = True, counter: str = "simulations") -> None:
        reg.counter(counter).inc()
        if store is not None:
            with perf_span("codec.encode"):
                doc = _encode_entry(cells[i], res, err, trace)
            with perf_span("cache.store"):
                store.put(keys[i], doc)
            reg.counter("cache_stores").inc()
        settle(i, res, err, "run", merge=merge)

    # -- phase 2: simulate (or estimate) the misses --------------------
    if fid == 0:
        # tier 0: closed-form estimates, microseconds per cell — always
        # in-process, a worker pool would cost more than the work.
        for i in pending:
            with perf_span("cell.estimate"):
                res, err = _estimate_cell_local(cells[i], ctx)
            finish_simulated(i, res, err, counter="estimates")
        pool_ctx = None
        pending = []
    else:
        pool_ctx = _pool_context() if jobs > 1 and len(pending) > 1 else None
    if pool_ctx is None:
        for i in pending:
            # serial path: run_program folds this run's metrics directly
            # into the sweep registry, so don't merge a second time.
            with perf_span("cell.simulate"):
                res, err = _run_cell_local(cells[i], ctx, trace, validate, reg)
            finish_simulated(i, res, err, merge=False)
    else:
        workers = min(jobs, len(pending))
        with perf_span("fanout.pool"):
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=pool_ctx
            )
        try:
            with perf_span("fanout.submit"):
                futures = {
                    pool.submit(_exec_cell, _cell_payload(cells[i], ctx, trace, validate)): i
                    for i in pending
                }
            completed = concurrent.futures.as_completed(futures)
            while True:
                with perf_span("fanout.wait"):
                    fut = next(completed, None)
                if fut is None:
                    break
                i = futures[fut]
                out = fut.result()
                if "crash" in out:
                    raise RuntimeError(
                        f"sweep cell {cells[i].describe()} failed in worker: "
                        f"{out['crash']}\n{out.get('traceback', '')}"
                    )
                if "result" in out:
                    with perf_span("codec.decode"):
                        res = codec.result_from_dict(out["result"])
                else:
                    res = None
                finish_simulated(i, res, out.get("error"))
        finally:
            with perf_span("fanout.pool"):
                pool.shutdown()

    # -- phase 3: assemble + housekeeping ------------------------------
    sweep = SweepResult(config=config, figure=spec.figure, metrics=reg)
    for i, cell in enumerate(cells):
        res, err = outcomes[i]
        if err is not None:
            sweep.errors[cell.key] = err
        elif res is not None:
            sweep.results[cell.key] = res
    for v in config.versions:
        sweep.series[v] = [
            sweep.results[(v, p)].time if (v, p) in sweep.results else None
            for p in config.threads
        ]
    if store is not None and store.max_entries is not None:
        with perf_span("cache.prune"):
            evicted = store.prune()
        reg.counter("cache_evictions").inc(evicted)
    return sweep
