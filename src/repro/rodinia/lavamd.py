"""Rodinia LavaMD: particle potential/relocation in a 3-D box grid (Fig. 9).

LavaMD computes particle interactions inside ``boxes1d^3`` boxes; each
box interacts with its 26 neighbors plus itself over ~100 particles per
box — a large, *uniform* amount of compute per box with modest,
cache-resident memory traffic.  With coarse uniform tasks and high
arithmetic intensity, scheduling strategy barely matters: the paper
groups LavaMD with SRAD as the applications where all six versions
"perform more closely".
"""

from __future__ import annotations

import sys

import numpy as np

from repro.rodinia import common
from repro.sim.machine import Machine
from repro.sim.task import Program

__all__ = ["PAPER_BOXES1D", "PARTICLES_PER_BOX", "program"]

PAPER_BOXES1D = 10
PARTICLES_PER_BOX = 100

NEIGHBORS = 27
OPS_PER_PAIR = 30  # distance, cutoff test, force accumulation
BYTES_PER_BOX = 4 * PARTICLES_PER_BOX * 8 * NEIGHBORS  # positions + charges streamed
WORK_CV = 0.05  # near-uniform per-box work
LOCALITY = 0.9


def program(
    version: str,
    *,
    machine: Machine,
    boxes1d: int = PAPER_BOXES1D,
    particles: int = PARTICLES_PER_BOX,
    seed: int = 13,
    grainsize=None,
) -> Program:
    """The LavaMD benchmark in one of the six versions."""
    if boxes1d <= 0 or particles <= 0:
        raise ValueError("boxes1d and particles must be positive")
    nboxes = boxes1d**3
    rng = np.random.default_rng(seed)
    pair_ops = OPS_PER_PAIR * particles * particles * NEIGHBORS
    box_work = common.op_seconds(machine, pair_ops, ipc=8.0)
    space = common.skewed_profile(
        nboxes,
        box_work,
        cv=WORK_CV,
        rng=rng,
        bytes_per_iter=BYTES_PER_BOX,
        locality=LOCALITY,
        nblocks=min(512, nboxes),
        name="lavamd-boxes",
    )
    prog = Program(
        f"lavamd(boxes1d={boxes1d})",
        meta={"version": version, "app": "lavamd", "boxes1d": boxes1d, "nboxes": nboxes},
    )
    prog.add(common.dispatch_loop(version, space, chunks_per_thread=4, grainsize=grainsize))
    return prog


common._register("lavamd", sys.modules[__name__])
