"""Synthetic BFS graph model.

The paper's BFS input is "a graph consisting of 16 million
inter-connected nodes" (the Rodinia graph generator: uniform random
edges, fixed average degree).  The simulator only needs the *level
structure* of the breadth-first traversal — how many nodes are
discovered at each depth — which a branching-process model reproduces
without materializing 16M nodes.

In a random graph with mean degree ``d``, a frontier of ``f`` nodes
discovers about ``remaining * (1 - exp(-f * d / n))`` new nodes, the
classic Galton-Watson / Erdos-Renyi BFS recurrence: exponential growth
for a few levels, a peak touching most of the graph, then a short tail.
That matches Rodinia traversals (diameter ~ 10 for 16M nodes, d = 6).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["bfs_levels"]


def bfs_levels(
    n_nodes: int,
    avg_degree: float = 6.0,
    *,
    seed: int = 42,
    source_fanout: int = 1,
) -> list[int]:
    """Frontier sizes per BFS level for a random graph.

    Deterministic given ``seed`` (binomial jitter around the
    branching-process expectation).  The sum over levels is at most
    the reachable component size (close to ``n_nodes`` for d >= 2).
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    rng = np.random.default_rng(seed)
    levels = [source_fanout]
    visited = source_fanout
    frontier = source_fanout
    while frontier > 0 and visited < n_nodes:
        remaining = n_nodes - visited
        p_hit = -math.expm1(-frontier * avg_degree / n_nodes)
        expected = remaining * p_hit
        if expected < 1.0:
            new = int(rng.random() < expected)
        elif expected < 1e6:
            new = int(rng.binomial(remaining, min(1.0, p_hit)))
        else:
            # binomial is well approximated by a normal at this size
            std = math.sqrt(expected * (1 - min(1.0, p_hit)))
            new = int(max(0.0, rng.normal(expected, std)))
        new = min(new, remaining)
        if new == 0:
            break
        levels.append(new)
        visited += new
        frontier = new
    return levels
