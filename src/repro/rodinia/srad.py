"""Rodinia SRAD: speckle-reducing anisotropic diffusion (Fig. 9).

SRAD denoises an ultrasound image by iterating two dependent parallel
loops over the pixel grid: loop 1 computes directional derivatives and
the diffusion coefficient; loop 2 applies the divergence update.  Both
loops stream rows with a regular 4-neighbor stencil, the per-row work
is uniform, and arithmetic intensity is moderate — so, like LavaMD,
"the comparative execution time of different implementations ...
perform more closely".
"""

from __future__ import annotations

import sys

import numpy as np

from repro.rodinia import common
from repro.sim.machine import Machine
from repro.sim.task import Program

__all__ = ["PAPER_GRID", "DEFAULT_ITERS", "program"]

PAPER_GRID = 2048
DEFAULT_ITERS = 10

COEFF_OPS_PER_CELL = 28   # derivatives, normalized gradients, coefficient
UPDATE_OPS_PER_CELL = 14  # divergence + pixel update
# The 2048^2 float image (16 MB) is L3-resident on the paper's 45 MB
# Haswell parts, so DRAM traffic is near-compulsory only.
COEFF_BYTES_PER_CELL = 3
UPDATE_BYTES_PER_CELL = 3
LOCALITY = 0.95
ROW_CV = 0.05


def program(
    version: str,
    *,
    machine: Machine,
    grid: int = PAPER_GRID,
    iters: int = DEFAULT_ITERS,
    seed: int = 17,
    grainsize=None,
) -> Program:
    """The SRAD benchmark in one of the six versions."""
    if grid <= 0 or iters <= 0:
        raise ValueError("grid and iters must be positive")
    rng = np.random.default_rng(seed)
    coeff_work = common.op_seconds(machine, COEFF_OPS_PER_CELL, ipc=6.0)
    update_work = common.op_seconds(machine, UPDATE_OPS_PER_CELL, ipc=6.0)
    persistent = version.startswith("cxx")
    prog = Program(
        f"srad(grid={grid},iters={iters})",
        meta={"version": version, "app": "srad", "grid": grid, "iters": iters},
    )
    if persistent:
        prog.meta["pool_setup"] = True
    for _i in range(iters):
        coeff = common.skewed_profile(
            grid,
            coeff_work * grid,
            cv=ROW_CV,
            rng=rng,
            bytes_per_iter=COEFF_BYTES_PER_CELL * grid,
            locality=LOCALITY,
            name="srad-coeff",
        )
        update = common.skewed_profile(
            grid,
            update_work * grid,
            cv=ROW_CV,
            rng=rng,
            bytes_per_iter=UPDATE_BYTES_PER_CELL * grid,
            locality=LOCALITY,
            name="srad-update",
        )
        prog.add(
            common.dispatch_loop(
                version, coeff, chunks_per_thread=1, grainsize=grainsize,
                persistent_pool=persistent,
            )
        )
        prog.add(
            common.dispatch_loop(
                version, update, chunks_per_thread=1, grainsize=grainsize,
                persistent_pool=persistent,
            )
        )
    return prog


common._register("srad", sys.modules[__name__])
