"""Rodinia HotSpot: thermal simulation stencil (Fig. 7).

HotSpot "estimates processor temperature based on an architectural
floorplan and simulated power measurements using a series of
differential equations" — per simulation step, a 5-point stencil over
the temperature grid driven by the power grid, then a grid swap.  The
paper's configuration is an 8192 x 8192 grid; "it includes two parallel
loops with dependency" per step, so every step pays two fork/barrier
pairs and no fusion is possible.

Why the paper sees what it sees, and how it is modelled:

- "Each thread receives the same number of tasks with possible
  different workload" — per-row work varies (floorplan-dependent power
  terms, boundary handling): rows get a lognormal work profile, so the
  static schedules (omp_for static, C++ manual chunking) eat the
  imbalance as idle tail time;
- "The memory access is not sequential ... more cache miss rates" —
  reduced locality on the stencil traffic;
- task versions balance the skewed rows across threads (several chunks
  per thread stolen dynamically), so "as more threads are added, the
  task parallel implementations are gaining more than the worksharing
  parallel implementations", while at small thread counts their task
  overhead makes them "weak".
"""

from __future__ import annotations

import sys

import numpy as np

from repro.rodinia import common
from repro.sim.machine import Machine
from repro.sim.task import Program

__all__ = ["PAPER_GRID", "DEFAULT_STEPS", "program"]

PAPER_GRID = 8192
DEFAULT_STEPS = 6

STENCIL_OPS_PER_CELL = 24   # 5-point stencil, power term, divisions, clamp
STENCIL_IPC = 1.5           # division-heavy, branchy: far from peak FLOPs
COPY_OPS_PER_CELL = 2
STENCIL_BYTES_PER_CELL = 16  # neighbor rows are cache-resident; stream in+out
COPY_BYTES_PER_CELL = 16
STENCIL_LOCALITY = 0.85     # row-strided but prefetchable
ROW_WORK_CV = 0.55          # floorplan-driven per-row variability


def program(
    version: str,
    *,
    machine: Machine,
    grid: int = PAPER_GRID,
    steps: int = DEFAULT_STEPS,
    seed: int = 7,
    grainsize=None,
) -> Program:
    """The HotSpot benchmark in one of the six versions.

    ``grid`` is the square grid edge (paper: 8192); each of ``steps``
    simulation steps contributes a stencil loop and a copy/commit loop
    over rows.
    """
    if grid <= 0 or steps <= 0:
        raise ValueError("grid and steps must be positive")
    rng = np.random.default_rng(seed)
    cell_work = common.op_seconds(machine, STENCIL_OPS_PER_CELL, ipc=STENCIL_IPC)
    copy_work = common.op_seconds(machine, COPY_OPS_PER_CELL, ipc=8.0)
    persistent = version.startswith("cxx")
    prog = Program(
        f"hotspot(grid={grid},steps={steps})",
        meta={"version": version, "app": "hotspot", "grid": grid, "steps": steps},
    )
    if persistent:
        prog.meta["pool_setup"] = True
    for _step in range(steps):
        stencil = common.skewed_profile(
            grid,
            cell_work * grid,
            cv=ROW_WORK_CV,
            rng=rng,
            bytes_per_iter=STENCIL_BYTES_PER_CELL * grid,
            locality=STENCIL_LOCALITY,
            corr=128,  # floorplan hot regions span contiguous row bands
            name="hotspot-stencil",
        )
        commit = common.skewed_profile(
            grid,
            copy_work * grid,
            cv=0.1,
            rng=rng,
            bytes_per_iter=COPY_BYTES_PER_CELL * grid,
            locality=1.0,
            name="hotspot-commit",
        )
        prog.add(
            common.dispatch_loop(
                version,
                stencil,
                chunks_per_thread=8,
                grainsize=grainsize,
                persistent_pool=persistent,
            )
        )
        prog.add(
            common.dispatch_loop(
                version,
                commit,
                chunks_per_thread=4,
                grainsize=grainsize,
                persistent_pool=persistent,
            )
        )
    return prog


common._register("hotspot", sys.modules[__name__])
