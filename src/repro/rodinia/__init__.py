"""Rodinia-style application workloads (section IV.B of the paper).

Each module builds the phase/task structure of one Rodinia 3.1
application as a :class:`~repro.sim.task.Program`, preserving the
properties the paper's analysis hinges on:

==========  =============================  ================================
app         structure                      paper finding
==========  =============================  ================================
BFS         level-synchronous full-array    scales to ~8 cores (random
            sweeps, 16M-node graph          access); cilk_for worst
HotSpot     iterated dependent stencil      data-parallel versions poor;
            phases, 8192 grid, skewed rows  tasking gains with threads
LUD         outer-sequential shrinking      barrier/fork overhead dominates
            triangular phases               the small late phases
LavaMD      uniform heavy per-box compute   all six versions close
SRAD        two streaming stencil loops     all six versions close
            per iteration
==========  =============================  ================================

Problem sizes follow the paper where stated (BFS 16M nodes, HotSpot
8192); each builder takes a size parameter so tests run small.
"""

from repro.rodinia import bfs, hotspot, lavamd, lud, srad
from repro.rodinia.common import RODINIA, build_rodinia_program

__all__ = ["bfs", "hotspot", "lavamd", "lud", "srad", "RODINIA", "build_rodinia_program"]
