"""Shared machinery for Rodinia workload builders."""

from __future__ import annotations


import numpy as np

from repro.kernels.common import dispatch_loop, op_seconds
from repro.sim.machine import Machine
from repro.sim.task import IterSpace, Program

__all__ = [
    "RODINIA",
    "build_rodinia_program",
    "skewed_profile",
    "dispatch_loop",
    "op_seconds",
]

RODINIA: dict = {}


def _register(name: str, module) -> None:
    RODINIA[name] = module


def rodinia_module(name: str):
    """Return the Rodinia app module registered under ``name``."""
    try:
        return RODINIA[name]
    except KeyError:
        raise KeyError(f"unknown Rodinia app {name!r}; known: {sorted(RODINIA)}") from None


def build_rodinia_program(name: str, version: str, machine: Machine, **params) -> Program:
    """Build app ``name`` in ``version`` (registry convenience)."""
    return rodinia_module(name).program(version, machine=machine, **params)


def skewed_profile(
    niter: int,
    mean_work: float,
    *,
    cv: float,
    rng: np.random.Generator,
    bytes_per_iter: float = 0.0,
    locality: float = 1.0,
    nblocks: int = 1024,
    corr: int = 1,
    name: str = "loop",
) -> IterSpace:
    """An iteration space with lognormal per-block work variation.

    ``cv`` is the coefficient of variation of per-block work — the
    "possible different workload" the paper attributes to HotSpot/LUD
    rows.  ``corr`` is a spatial correlation window in blocks: real
    skew (a floorplan hot spot, a dense matrix region) is contiguous,
    so a static contiguous partition absorbs whole hot regions into one
    thread instead of averaging the noise away.  Bytes stay uniform
    (array sweeps read everything).
    """
    if cv < 0:
        raise ValueError("cv must be non-negative")
    if corr < 1:
        raise ValueError("corr must be >= 1")
    nblocks = max(1, min(nblocks, niter))
    iters_per_block = niter / nblocks
    if cv == 0:
        block_work = np.full(nblocks, mean_work * iters_per_block)
    else:
        noise = rng.standard_normal(nblocks)
        if corr > 1:
            window = min(corr, nblocks)
            kernel = np.ones(window) / window
            # wrap-around smoothing keeps every block's variance equal
            noise = np.real(
                np.fft.ifft(np.fft.fft(noise) * np.fft.fft(kernel, nblocks))
            )
            std = noise.std()
            if std > 0:
                noise /= std
        sigma = np.sqrt(np.log1p(cv * cv))
        factors = np.exp(sigma * noise - 0.5 * sigma * sigma)
        factors *= 1.0 / factors.mean()  # exact unit mean, total preserved
        block_work = mean_work * iters_per_block * factors
    block_bytes = np.full(nblocks, bytes_per_iter * iters_per_block)
    return IterSpace(niter, block_work, block_bytes, locality, name)
