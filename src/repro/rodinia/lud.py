"""Rodinia LUD: blocked LU decomposition (Fig. 8).

"LU Decomposition accelerates solving linear equations by using upper
and lower triangular products of a matrix.  Each sub-equation is
handled in separate parallel region, so the algorithm has two parallel
loops with dependency to an outer loop."

The Rodinia OpenMP implementation is blocked: for every diagonal step
``k`` it factors the diagonal block serially, then updates the
perimeter row/column blocks in one parallel loop and the trailing
interior blocks in a second parallel loop.  The loops *shrink* as ``k``
advances — the last steps have fewer blocks than threads — so the
per-region fork/barrier overhead and the idle threads dominate late in
the run.  "In each parallel loop, thread receives the same number of
tasks with possible different amount of workload."
"""

from __future__ import annotations

import sys

import numpy as np

from repro.rodinia import common
from repro.sim.machine import Machine
from repro.sim.task import Program, SerialRegion

__all__ = ["PAPER_N", "BLOCK", "program"]

PAPER_N = 2048
BLOCK = 32

PERIMETER_CV = 0.25
INTERIOR_CV = 0.10
LOCALITY = 0.8  # blocked access, mostly cache-friendly


def program(
    version: str,
    *,
    machine: Machine,
    n: int = PAPER_N,
    block: int = BLOCK,
    seed: int = 11,
    grainsize=None,
) -> Program:
    """The LUD benchmark in one of the six versions.

    ``n`` is the matrix dimension, ``block`` the tile edge.  Per
    diagonal step: serial diagonal factorization, a parallel perimeter
    loop over ``2 * (nb - k - 1)`` blocks, and a parallel interior loop
    over ``(nb - k - 1)^2`` blocks; each block update is
    ``~2 * block^3`` FLOPs against ``3 * block^2`` doubles of traffic.
    """
    if n % block != 0:
        raise ValueError("n must be a multiple of block")
    nb = n // block
    rng = np.random.default_rng(seed)
    diag_work = common.op_seconds(machine, (2.0 / 3.0) * block**3, ipc=2.0)
    block_flops = 2.0 * block**3
    block_work = common.op_seconds(machine, block_flops, ipc=8.0)
    block_bytes = 3 * 8 * block * block
    persistent = version.startswith("cxx")
    prog = Program(
        f"lud(n={n},block={block})",
        meta={"version": version, "app": "lud", "n": n, "block": block, "nb": nb},
    )
    if persistent:
        prog.meta["pool_setup"] = True
    for k in range(nb - 1):
        rem = nb - k - 1
        prog.add(SerialRegion(diag_work, membytes=8 * block * block, name="lud-diag"))
        perim = common.skewed_profile(
            2 * rem,
            block_work,
            cv=PERIMETER_CV,
            rng=rng,
            bytes_per_iter=block_bytes,
            locality=LOCALITY,
            name="lud-perimeter",
        )
        inner = common.skewed_profile(
            rem * rem,
            block_work,
            cv=INTERIOR_CV,
            rng=rng,
            bytes_per_iter=block_bytes,
            locality=LOCALITY,
            name="lud-interior",
        )
        prog.add(
            common.dispatch_loop(
                version, perim, chunks_per_thread=2, grainsize=grainsize,
                persistent_pool=persistent,
            )
        )
        prog.add(
            common.dispatch_loop(
                version, inner, chunks_per_thread=4, grainsize=grainsize,
                persistent_pool=persistent,
            )
        )
    prog.add(SerialRegion(diag_work, membytes=8 * block * block, name="lud-diag"))
    return prog


common._register("lud", sys.modules[__name__])
