"""Functional reference implementations of the Rodinia applications.

The simulator times the *shape* of each application; these are the
algorithms themselves, usable (and tested) as plain numpy code:

- :func:`bfs_reference` — level-synchronous breadth-first search;
- :func:`hotspot_reference` — the Rodinia thermal stencil (Huang et
  al.'s compact thermal model on a grid);
- :func:`lud_reference` — blocked right-looking LU decomposition
  (no pivoting, as in Rodinia);
- :func:`srad_reference` — speckle-reducing anisotropic diffusion
  (Yu & Acton) as in Rodinia's srad_v2;
- :func:`lavamd_reference` — per-box particle potentials over
  neighbouring boxes.

:mod:`repro.native.rodinia` provides thread-parallel versions of the
same algorithms whose results must (and in tests do) match these
exactly.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "random_adjacency",
    "bfs_reference",
    "hotspot_reference",
    "lud_reference",
    "srad_reference",
    "lavamd_reference",
]


# ---------------------------------------------------------------------------
# BFS
# ---------------------------------------------------------------------------
def random_adjacency(
    n_nodes: int, avg_degree: float = 6.0, seed: int = 42
) -> list[np.ndarray]:
    """A Rodinia-style random graph as an adjacency list.

    Each node gets ``Poisson(avg_degree)`` undirected edges to uniform
    random targets (multi-edges collapsed), deterministic per seed.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    rng = np.random.default_rng(seed)
    out: list[set[int]] = [set() for _ in range(n_nodes)]
    counts = rng.poisson(avg_degree / 2.0, size=n_nodes)
    for u in range(n_nodes):
        for v in rng.integers(0, n_nodes, size=int(counts[u])):
            v = int(v)
            if v != u:
                out[u].add(v)
                out[v].add(u)
    return [np.array(sorted(s), dtype=np.int64) for s in out]


def bfs_reference(adjacency: Sequence[np.ndarray], source: int = 0) -> np.ndarray:
    """Level-synchronous BFS; returns per-node depth (-1 = unreachable).

    Mirrors the Rodinia kernel's two phases per level: expand the
    current frontier, then commit the newly discovered nodes.
    """
    n = len(adjacency)
    if not 0 <= source < n:
        raise ValueError("source out of range")
    depth = np.full(n, -1, dtype=np.int64)
    depth[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        discovered: list[int] = []
        for u in frontier:  # phase 1: visit
            for v in adjacency[int(u)]:
                if depth[v] < 0:
                    depth[v] = level  # tentative
                    discovered.append(int(v))
        frontier = np.array(sorted(set(discovered)), dtype=np.int64)  # phase 2: commit
    return depth


# ---------------------------------------------------------------------------
# HotSpot
# ---------------------------------------------------------------------------
#: Rodinia hotspot constants (chip parameters)
_HS_CAP = 0.5
_HS_RX = 1.0
_HS_RY = 1.0
_HS_RZ = 1.0
_HS_AMB = 80.0
_HS_DT = 0.001


def hotspot_reference(
    temp: np.ndarray, power: np.ndarray, steps: int = 1
) -> np.ndarray:
    """The Rodinia thermal stencil: iterate the temperature grid.

    ``t' = t + dt/cap * (power + (N+S-2t)/Ry + (E+W-2t)/Rx + (amb-t)/Rz)``
    with clamped (replicated) borders.  Returns a new grid.
    """
    temp = np.array(temp, dtype=np.float64)
    power = np.asarray(power, dtype=np.float64)
    if temp.ndim != 2 or temp.shape != power.shape:
        raise ValueError("temp and power must be equal-shape 2-D grids")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    for _ in range(steps):
        padded = np.pad(temp, 1, mode="edge")
        north, south = padded[:-2, 1:-1], padded[2:, 1:-1]
        west, east = padded[1:-1, :-2], padded[1:-1, 2:]
        delta = (_HS_DT / _HS_CAP) * (
            power
            + (north + south - 2.0 * temp) / _HS_RY
            + (east + west - 2.0 * temp) / _HS_RX
            + (_HS_AMB - temp) / _HS_RZ
        )
        temp = temp + delta
    return temp


# ---------------------------------------------------------------------------
# LUD
# ---------------------------------------------------------------------------
def lud_reference(matrix: np.ndarray, block: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Blocked right-looking LU decomposition without pivoting.

    Returns ``(L, U)`` with unit-diagonal ``L`` such that ``L @ U``
    reconstructs the input (for matrices where pivot-free elimination
    is stable, e.g. diagonally dominant ones — Rodinia's inputs are
    constructed that way).  Structure matches the simulated workload:
    diagonal factorization, perimeter updates, interior updates.
    """
    a = np.array(matrix, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    n = a.shape[0]
    if block <= 0:
        raise ValueError("block must be positive")
    for k0 in range(0, n, block):
        k1 = min(k0 + block, n)
        # diagonal block: unblocked LU
        for k in range(k0, k1):
            if a[k, k] == 0.0:
                raise ZeroDivisionError(f"zero pivot at {k} (matrix needs pivoting)")
            a[k + 1 : k1, k] /= a[k, k]
            a[k + 1 : k1, k + 1 : k1] -= np.outer(a[k + 1 : k1, k], a[k, k + 1 : k1])
        # perimeter: row panel U, column panel L
        for k in range(k0, k1):
            a[k, k1:] -= a[k, k0:k] @ a[k0:k, k1:]
            a[k1:, k] = (a[k1:, k] - a[k1:, k0:k] @ a[k0:k, k]) / a[k, k]
        # interior trailing update
        if k1 < n:
            a[k1:, k1:] -= a[k1:, k0:k1] @ a[k0:k1, k1:]
    lower = np.tril(a, -1) + np.eye(n)
    upper = np.triu(a)
    return lower, upper


# ---------------------------------------------------------------------------
# SRAD
# ---------------------------------------------------------------------------
def srad_reference(
    image: np.ndarray, iters: int = 1, lam: float = 0.5
) -> np.ndarray:
    """Speckle-reducing anisotropic diffusion (Yu & Acton, srad_v2).

    Two passes per iteration, matching the simulated phase structure:
    pass 1 computes the diffusion coefficient from local statistics,
    pass 2 applies the divergence update.  Borders are clamped.
    """
    img = np.array(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("image must be 2-D")
    if (img <= 0).any():
        raise ValueError("SRAD operates on positive intensities")
    if iters < 0:
        raise ValueError("iters must be non-negative")
    for _ in range(iters):
        # speckle statistics over the whole image
        mean = img.mean()
        var = img.var()
        q0_sq = var / (mean * mean)

        padded = np.pad(img, 1, mode="edge")
        dn = padded[:-2, 1:-1] - img
        ds = padded[2:, 1:-1] - img
        dw = padded[1:-1, :-2] - img
        de = padded[1:-1, 2:] - img

        g2 = (dn**2 + ds**2 + dw**2 + de**2) / (img * img)
        l_ = (dn + ds + dw + de) / img
        num = 0.5 * g2 - (1.0 / 16.0) * l_ * l_
        den = (1.0 + 0.25 * l_) ** 2
        q_sq = num / den
        c = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq)))
        c = np.clip(c, 0.0, 1.0)

        # pass 2: divergence with the coefficient at the far cell for
        # south/east (Rodinia uses c[i+1,j], c[i,j+1])
        cp = np.pad(c, 1, mode="edge")
        c_s = cp[2:, 1:-1]
        c_e = cp[1:-1, 2:]
        div = c_s * ds + c * dn + c_e * de + c * dw
        img = img + 0.25 * lam * div
    return img


# ---------------------------------------------------------------------------
# LavaMD
# ---------------------------------------------------------------------------
def lavamd_reference(
    positions: np.ndarray,
    charges: np.ndarray,
    boxes1d: int,
    alpha: float = 0.5,
) -> np.ndarray:
    """Per-particle potential over the 27 neighbouring boxes (LavaMD).

    ``positions`` is ``(nboxes, ppb, 3)`` with ``nboxes = boxes1d**3``,
    ``charges`` is ``(nboxes, ppb)``.  For every particle, accumulate
    ``q_j * exp(-alpha * |r_i - r_j|^2)`` over particles in the home box
    and its face/edge/corner neighbours (open boundaries).
    """
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    nboxes = boxes1d**3
    if positions.ndim != 3 or positions.shape[0] != nboxes or positions.shape[2] != 3:
        raise ValueError("positions must be (boxes1d**3, ppb, 3)")
    if charges.shape != positions.shape[:2]:
        raise ValueError("charges must be (boxes1d**3, ppb)")
    ppb = positions.shape[1]
    potential = np.zeros((nboxes, ppb))

    def box_id(x: int, y: int, z: int) -> int:
        return (x * boxes1d + y) * boxes1d + z

    for bx in range(boxes1d):
        for by in range(boxes1d):
            for bz in range(boxes1d):
                home = box_id(bx, by, bz)
                acc = np.zeros(ppb)
                for dx in (-1, 0, 1):
                    for dy in (-1, 0, 1):
                        for dz in (-1, 0, 1):
                            nx, ny, nz = bx + dx, by + dy, bz + dz
                            if not (
                                0 <= nx < boxes1d
                                and 0 <= ny < boxes1d
                                and 0 <= nz < boxes1d
                            ):
                                continue
                            nb = box_id(nx, ny, nz)
                            diff = (
                                positions[home][:, None, :] - positions[nb][None, :, :]
                            )
                            r2 = np.einsum("ijk,ijk->ij", diff, diff)
                            acc += (charges[nb][None, :] * np.exp(-alpha * r2)).sum(
                                axis=1
                            )
                potential[home] = acc
    return potential
