"""Rodinia BFS: level-synchronous breadth-first search (Fig. 6).

Rodinia's OpenMP BFS runs two parallel phases per level, each sweeping
the *entire* node array ("Each phase must enumerate all the nodes in
the array, determine if the particular node is of interest for the
phase and then process the node"):

1. visit phase — frontier nodes expand their edges (random-access
   neighbor reads) and tentatively discover new nodes;
2. mark phase — newly discovered nodes are committed for the next level.

Per iteration there is a tiny flag check; frontier/discovered nodes do
real work.  "This algorithm does not have contiguous memory access, and
it might have high cache miss rates" — modelled as low effective
locality, which makes the aggregate random-access bandwidth saturate
early: the paper's "scales well up to 8 cores".

The paper's dataset is 16M nodes; ``program`` takes ``n_nodes`` so
tests and benches can scale down (level structure and per-node costs
are preserved by the branching-process graph model).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.rodinia import common
from repro.rodinia.graphs import bfs_levels
from repro.sim.machine import Machine
from repro.sim.task import IterSpace, Program

__all__ = ["PAPER_N_NODES", "AVG_DEGREE", "level_space", "program"]

PAPER_N_NODES = 16_000_000
AVG_DEGREE = 6.0

# operation counts per node role
CHECK_OPS = 3          # read flag, branch
EXPAND_OPS_PER_EDGE = 8  # neighbor load, visited test, cost update
MARK_OPS = 5           # commit discovered node
CHECK_BYTES = 1        # flag byte, streaming scan
EDGE_BYTES = 12        # neighbor id + visited flag + cost, random access
MARK_BYTES = 9         # flag writes + cost

RANDOM_LOCALITY = 0.05
STREAM_LOCALITY = 1.0


def _phase_space(
    machine: Machine,
    n_nodes: int,
    active: int,
    per_active_ops: float,
    per_active_bytes: float,
    rng: np.random.Generator,
    name: str,
    nblocks: int = 1024,
) -> IterSpace:
    """One full-array sweep where ``active`` scattered nodes do real work.

    Active nodes land in blocks binomially (they are scattered across
    the node array), giving the mild per-chunk imbalance the paper
    describes ("the amount of work that they handle might be
    different").  Effective locality is the bytes-weighted blend of the
    streaming flag scan and the random edge traffic.
    """
    nblocks = max(1, min(nblocks, n_nodes))
    iters_per_block = n_nodes // nblocks
    check_work = common.op_seconds(machine, CHECK_OPS, ipc=2.0)
    active_work = common.op_seconds(machine, per_active_ops, ipc=1.0)

    p_active = min(1.0, active / n_nodes)
    active_per_block = rng.binomial(max(1, iters_per_block), p_active, size=nblocks).astype(
        np.float64
    )
    # keep the exact total
    total = active_per_block.sum()
    if total > 0:
        active_per_block *= active / total
    block_work = iters_per_block * check_work + active_per_block * active_work
    block_bytes = (
        iters_per_block * float(CHECK_BYTES) + active_per_block * per_active_bytes
    )
    stream_b = n_nodes * CHECK_BYTES
    random_b = active * per_active_bytes
    denom = stream_b + random_b
    locality = (
        (stream_b * STREAM_LOCALITY + random_b * RANDOM_LOCALITY) / denom
        if denom > 0
        else STREAM_LOCALITY
    )
    return IterSpace(n_nodes, block_work, block_bytes, locality, name)


def level_space(
    machine: Machine,
    n_nodes: int,
    frontier: int,
    phase: int,
    rng: np.random.Generator,
    avg_degree: float = AVG_DEGREE,
) -> IterSpace:
    """Iteration space for one phase of one BFS level."""
    if phase == 1:
        return _phase_space(
            machine,
            n_nodes,
            frontier,
            EXPAND_OPS_PER_EDGE * avg_degree,
            EDGE_BYTES * avg_degree,
            rng,
            "bfs-visit",
        )
    if phase == 2:
        return _phase_space(machine, n_nodes, frontier, MARK_OPS, MARK_BYTES, rng, "bfs-mark")
    raise ValueError("phase must be 1 or 2")


def program(
    version: str,
    *,
    machine: Machine,
    n_nodes: int = PAPER_N_NODES,
    avg_degree: float = AVG_DEGREE,
    seed: int = 42,
    grainsize=None,
) -> Program:
    """The BFS benchmark in one of the six versions."""
    rng = np.random.default_rng(seed)
    levels = bfs_levels(n_nodes, avg_degree, seed=seed)
    persistent = version.startswith("cxx")
    prog = Program(
        f"bfs(n={n_nodes})",
        meta={"version": version, "app": "bfs", "n_nodes": n_nodes, "levels": len(levels)},
    )
    if persistent:
        prog.meta["pool_setup"] = True
    for frontier in levels:
        for phase in (1, 2):
            space = level_space(machine, n_nodes, frontier, phase, rng, avg_degree)
            prog.add(
                common.dispatch_loop(
                    version,
                    space,
                    chunks_per_thread=4,
                    grainsize=grainsize,
                    persistent_pool=persistent,
                )
            )
    return prog


common._register("bfs", sys.modules[__name__])
