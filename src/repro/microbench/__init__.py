"""EPCC-style runtime-overhead microbenchmarks.

The paper's runtime discussion (section III.B) is about *overheads*:
what a fork costs, what a barrier costs, what creating a task costs on
a lock-based vs. THE-protocol deque, how dynamic chunk dispatch
serializes.  This package measures those quantities from the simulated
runtimes the same way the EPCC OpenMP microbenchmark suite measures
them from real ones: run the construct around a known amount of work
and subtract the ideal time.

The measured numbers should (and do — see ``tests/test_microbench.py``)
reconcile with the :class:`~repro.sim.costs.CostModel` constants they
are derived from; the point of measuring through the executors is that
contention and serialization effects are included, exactly as on real
hardware.
"""

from repro.microbench.overheads import (
    OverheadReport,
    barrier_overhead,
    for_overhead,
    parallel_overhead,
    render_report,
    run_suite,
    schedule_overhead,
    task_overhead,
)

__all__ = [
    "OverheadReport",
    "barrier_overhead",
    "for_overhead",
    "parallel_overhead",
    "render_report",
    "run_suite",
    "schedule_overhead",
    "task_overhead",
]
