"""Overhead measurements over the simulated runtimes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.runtime.base import ExecContext
from repro.runtime.worksharing import run_worksharing_loop
from repro.runtime.workstealing import StealingScheduler
from repro.sim.task import IterSpace, TaskGraph

__all__ = [
    "parallel_overhead",
    "for_overhead",
    "barrier_overhead",
    "schedule_overhead",
    "task_overhead",
    "OverheadReport",
    "run_suite",
    "render_report",
]

#: reference per-iteration work for the measured loops (big enough to
#: dominate rounding, small enough that overheads are visible)
_ITER_WORK = 100e-9


def _balanced_space(nthreads: int, iters_per_thread: int = 64) -> IterSpace:
    return IterSpace.uniform(nthreads * iters_per_thread, _ITER_WORK)


def parallel_overhead(nthreads: int, ctx: Optional[ExecContext] = None) -> float:
    """Cost of entering+exiting one parallel region (EPCC ``parallel``).

    Measured as the region time minus the perfectly-balanced loop body.
    """
    ctx = ctx or ExecContext()
    space = _balanced_space(nthreads)
    res = run_worksharing_loop(space, nthreads, ctx)
    ideal = space.total_work / nthreads
    return max(0.0, res.time - ideal)


def barrier_overhead(nthreads: int, ctx: Optional[ExecContext] = None) -> float:
    """Cost of the end-of-loop barrier alone (EPCC ``barrier``)."""
    ctx = ctx or ExecContext()
    space = _balanced_space(nthreads)
    with_barrier = run_worksharing_loop(space, nthreads, ctx, fork=False, barrier=True)
    without = run_worksharing_loop(space, nthreads, ctx, fork=False, barrier=False)
    return max(0.0, with_barrier.time - without.time)


def for_overhead(
    nthreads: int, ctx: Optional[ExecContext] = None, schedule: str = "static"
) -> float:
    """Cost of worksharing a loop (EPCC ``for``): region time minus the
    ideal body time, without the fork/barrier terms."""
    ctx = ctx or ExecContext()
    space = _balanced_space(nthreads)
    chunk = None if schedule == "static" else max(1, space.niter // (8 * nthreads))
    res = run_worksharing_loop(
        space, nthreads, ctx, schedule=schedule, chunk=chunk, fork=False, barrier=False
    )
    ideal = space.total_work / nthreads
    return max(0.0, res.time - ideal)


def schedule_overhead(
    nthreads: int, ctx: Optional[ExecContext] = None
) -> dict[str, float]:
    """``for`` overhead per schedule kind (EPCC ``schedbench``)."""
    return {
        sched: for_overhead(nthreads, ctx, schedule=sched)
        for sched in ("static", "dynamic", "guided")
    }


def task_overhead(
    nthreads: int,
    ctx: Optional[ExecContext] = None,
    *,
    deque: str = "locked",
    ntasks_per_thread: int = 64,
    task_work: float = 1e-6,
) -> float:
    """Per-task scheduling overhead (EPCC ``taskbench``).

    Spawns ``p x ntasks_per_thread`` independent tasks of known work and
    charges everything beyond the ideal makespan to per-task overhead.
    ``deque="locked"`` measures the OpenMP runtime, ``"the"`` Cilk Plus.
    """
    ctx = ctx or ExecContext()
    n = nthreads * ntasks_per_thread
    g = TaskGraph("taskbench")
    for _ in range(n):
        g.add(task_work)
    res = StealingScheduler(g, nthreads, ctx, deque=deque).run()
    ideal = g.total_work() / nthreads
    return max(0.0, (res.time - ideal) * nthreads / n)


@dataclass
class OverheadReport:
    """Overheads (seconds) across a thread sweep."""

    threads: tuple[int, ...]
    rows: dict[str, list[float]] = field(default_factory=dict)

    def add(self, name: str, values: Sequence[float]) -> None:
        if len(values) != len(self.threads):
            raise ValueError("values must align with the thread sweep")
        self.rows[name] = list(values)


def run_suite(
    threads: Sequence[int] = (1, 2, 4, 8, 16, 32, 36),
    ctx: Optional[ExecContext] = None,
) -> OverheadReport:
    """The full overhead suite across a thread sweep."""
    ctx = ctx or ExecContext()
    threads = tuple(threads)
    report = OverheadReport(threads)
    report.add("parallel (fork+barrier)", [parallel_overhead(p, ctx) for p in threads])
    report.add("barrier", [barrier_overhead(p, ctx) for p in threads])
    report.add("for static", [for_overhead(p, ctx, "static") for p in threads])
    report.add("for dynamic", [for_overhead(p, ctx, "dynamic") for p in threads])
    report.add("for guided", [for_overhead(p, ctx, "guided") for p in threads])
    report.add(
        "task / omp (locked deque)",
        [task_overhead(p, ctx, deque="locked") for p in threads],
    )
    report.add(
        "task / cilk (THE deque)",
        [task_overhead(p, ctx, deque="the") for p in threads],
    )
    return report


def render_report(report: OverheadReport) -> str:
    """EPCC-style table: microseconds of overhead per construct."""
    name_w = max(len(n) for n in report.rows) + 2
    lines = [
        "Runtime overheads (us), EPCC-style measurement over the simulator",
        f"{'construct':<{name_w}}" + "".join(f"{'p=' + str(p):>9}" for p in report.threads),
    ]
    for name, values in report.rows.items():
        cells = "".join(f"{v * 1e6:9.3f}" for v in values)
        lines.append(f"{name:<{name_w}}{cells}")
    return "\n".join(lines)
