"""Benchmark kernels from section IV.A of the paper.

Five kernels, each buildable in the six versions (data- and
task-parallel for OpenMP, Cilk Plus, C++11):

==========  ==================  =====================================
kernel      paper problem size  figure
==========  ==================  =====================================
Axpy        N = 100M            Fig. 1 — cilk_for ~2x worse
Sum         N = 100M            Fig. 2 — omp_task best, ~5x over cilk_for
Matvec      40k x 40k           Fig. 3 — cilk_for ~25% worse
Matmul      2k x 2k             Fig. 4 — cilk_for ~10% worse
Fibonacci   n = 40 (task only)  Fig. 5 — cilk_spawn ~20% better
==========  ==================  =====================================

Each module exposes ``program(version, ...) -> Program`` for the
simulator and a numpy reference implementation for functional checks.
"""

from repro.kernels import axpy, fib, matmul, matvec, sumreduce
from repro.kernels.common import KERNELS, build_kernel_program, kernel_module

__all__ = [
    "axpy",
    "fib",
    "matmul",
    "matvec",
    "sumreduce",
    "KERNELS",
    "build_kernel_program",
    "kernel_module",
]
