"""Matmul kernel: dense matrix multiply, 2k x 2k (Fig. 4).

The parallel loop runs over rows of C; each iteration computes one
output row: ``2 n^2`` FLOPs against modest memory traffic (the B
operand is reused out of cache with blocking, modelled by a reuse
factor).  The kernel is compute bound, so scheduling and placement
differences shrink — the paper reports cilk_for only ~10% worse and
notes "as the computation intensity increases ... we see less impact of
runtime scheduling to the performance".
"""

from __future__ import annotations

import sys

import numpy as np

from repro.kernels import common
from repro.sim.machine import Machine
from repro.sim.task import IterSpace, Program

__all__ = ["PAPER_N", "CACHE_REUSE", "space", "program", "reference"]

PAPER_N = 2048

CACHE_REUSE = 64
"""Average reuse of B-operand cache lines under register/L2 blocking;
divides the naive n^2-per-row B traffic."""


def space(machine: Machine, n: int = PAPER_N) -> IterSpace:
    """Iteration space over output rows."""
    flops_per_row = 2 * n * n
    bytes_per_row = 8 * (2 * n + n * n / CACHE_REUSE)  # A row + C row + shared B
    work = common.op_seconds(machine, flops_per_row, ipc=8.0)
    return IterSpace.uniform(n, work, bytes_per_row, locality=1.0, name="matmul")


def program(version: str, *, machine: Machine, n: int = PAPER_N) -> Program:
    """The Matmul benchmark in one of the six versions."""
    region = common.dispatch_loop(version, space(machine, n))
    prog = Program(
        f"matmul(n={n})", meta={"version": version, "kernel": "matmul", "n": n}
    )
    return prog.add(region)


def reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Functional reference: ``a @ b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError("shape mismatch for matrix product")
    return a @ b


common._register("matmul", sys.modules[__name__])
