"""Axpy kernel: ``y = a * x + y`` (Fig. 1).

Paper size N = 100M doubles.  Per iteration: one FMA (2 FLOPs) and
24 bytes of traffic (load x, load y, store y), perfectly streaming —
the kernel is memory-bandwidth bound almost from one core, which is why
all versions plateau and why the cilk_for placement penalty shows up as
a ~2x gap.

The paper's C++11 versions have recursive and iterative variants with a
cut-off ``BASE = N / nthreads``; the builders here use that cut-off
(one chunk per thread).
"""

from __future__ import annotations

import sys

import numpy as np

from repro.kernels import common
from repro.sim.machine import Machine
from repro.sim.task import IterSpace, Program

__all__ = ["PAPER_N", "space", "program", "reference"]

PAPER_N = 100_000_000

FLOPS_PER_ITER = 2
BYTES_PER_ITER = 24  # read x, read y, write y (doubles)


def space(machine: Machine, n: int = PAPER_N) -> IterSpace:
    """Iteration space of the Axpy loop."""
    work = common.op_seconds(machine, FLOPS_PER_ITER, ipc=8.0)
    return IterSpace.uniform(n, work, BYTES_PER_ITER, locality=1.0, name="axpy")


def program(version: str, *, machine: Machine, n: int = PAPER_N) -> Program:
    """The Axpy benchmark in one of the six versions."""
    region = common.dispatch_loop(version, space(machine, n))
    prog = Program(f"axpy(n={n})", meta={"version": version, "kernel": "axpy", "n": n})
    return prog.add(region)


def reference(a: float, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Functional reference: returns ``a * x + y`` without mutating inputs."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    return a * x + y


common._register("axpy", sys.modules[__name__])
