"""Matvec kernel: dense matrix-vector multiply, 40k x 40k (Fig. 3).

The parallel loop runs over rows; each iteration is a 40k-element dot
product: 80k FLOPs and 320 KB of streaming matrix traffic (the x vector
stays cache-resident).  Chunks are therefore *large* in bytes, so the
cilk_for placement penalty is mostly the NUMA term — the paper reports
cilk_for "around 25% worse", much less than Axpy's 2x.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.kernels import common
from repro.sim.machine import Machine
from repro.sim.task import IterSpace, Program

__all__ = ["PAPER_N", "space", "program", "reference"]

PAPER_N = 40_000


def space(machine: Machine, n: int = PAPER_N) -> IterSpace:
    """Iteration space over matrix rows."""
    flops_per_row = 2 * n
    bytes_per_row = 8 * n  # one matrix row; x is cache resident
    work = common.op_seconds(machine, flops_per_row, ipc=8.0)
    return IterSpace.uniform(n, work, bytes_per_row, locality=1.0, name="matvec")


def program(version: str, *, machine: Machine, n: int = PAPER_N) -> Program:
    """The Matvec benchmark in one of the six versions."""
    region = common.dispatch_loop(version, space(machine, n))
    prog = Program(
        f"matvec(n={n})", meta={"version": version, "kernel": "matvec", "n": n}
    )
    return prog.add(region)


def reference(matrix: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Functional reference: ``matrix @ x``."""
    matrix = np.asarray(matrix, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != x.shape[0]:
        raise ValueError("shape mismatch for matrix-vector product")
    return matrix @ x


common._register("matvec", sys.modules[__name__])
