"""Shared helpers for kernel workload builders.

Workloads express cost as operation counts and byte counts;
:func:`op_seconds` converts operations to seconds using the machine
clock and an effective instructions-per-cycle figure (vectorized
streaming FP code on Haswell retires on the order of 8 double-precision
FLOPs per cycle; scalar pointer-chasing code closer to 1).

:func:`dispatch_loop` maps the paper's six version names onto the model
front-ends for a simple data-parallel loop — the pattern shared by
Axpy, Sum, Matvec, Matmul and most Rodinia phases.
"""

from __future__ import annotations

from typing import Optional

from repro.models import AMT_VERSIONS, VERSIONS, charm, cilk, cxx11, hpx, mpi, openmp
from repro.sim.machine import Machine
from repro.sim.task import IterSpace, LoopRegion, Program

__all__ = [
    "op_seconds",
    "dispatch_loop",
    "KERNELS",
    "kernel_module",
    "build_kernel_program",
]


def op_seconds(machine: Machine, ops: float, ipc: float = 8.0) -> float:
    """Seconds to retire ``ops`` operations at ``ipc`` per cycle."""
    if ops < 0:
        raise ValueError("ops must be non-negative")
    if ipc <= 0:
        raise ValueError("ipc must be positive")
    return ops / (machine.ghz * 1e9 * ipc)


def dispatch_loop(
    version: str,
    space: IterSpace,
    *,
    reduction: bool = False,
    schedule: str = "static",
    nchunks: Optional[int] = None,
    chunks_per_thread: int = 1,
    grainsize: Optional[int] = None,
    fork: bool = True,
    barrier: bool = True,
    persistent_pool: bool = False,
) -> LoopRegion:
    """Build one data-parallel loop region in the named version.

    The six names follow the paper's evaluation: ``omp_for``,
    ``omp_task``, ``cilk_for``, ``cilk_spawn``, ``cxx_thread``,
    ``cxx_async``.  ``chunks_per_thread`` only affects the task
    versions, which chunk at task-creation time.
    """
    if version == "omp_for":
        return openmp.parallel_for(
            space, schedule=schedule, reduction=reduction, fork=fork, barrier=barrier
        )
    if version == "omp_task":
        return openmp.task_loop(
            space, nchunks=nchunks, chunks_per_thread=chunks_per_thread, reduction=reduction
        )
    if version == "cilk_for":
        return cilk.cilk_for(space, grainsize=grainsize, reducer=reduction)
    if version == "cilk_spawn":
        return cilk.spawn_loop(
            space, nchunks=nchunks, chunks_per_thread=chunks_per_thread, reducer=False
        )
    if version == "cxx_thread":
        return cxx11.thread_for(
            space, nchunks=nchunks, reduction=reduction, persistent=persistent_pool
        )
    if version == "cxx_async":
        return cxx11.async_for(
            space, nchunks=nchunks, reduction=reduction, persistent=persistent_pool
        )
    if version == "charm":
        return charm.chare_for(space, nchares=nchunks, reduction=reduction)
    if version == "hpx":
        return hpx.async_for(space, nchunks=nchunks, reduction=reduction)
    if version == "mpi":
        return mpi.rank_for(space, nchunks=nchunks, reduction=reduction)
    raise ValueError(
        f"unknown version {version!r}; expected one of {VERSIONS + AMT_VERSIONS}"
    )


def kernel_module(name: str):
    """Return the kernel module registered under ``name``."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; known: {sorted(KERNELS)}") from None


def build_kernel_program(name: str, version: str, machine: Machine, **params) -> Program:
    """Build ``name``'s program in ``version`` (registry convenience)."""
    return kernel_module(name).program(version, machine=machine, **params)


# Populated at the bottom of repro.kernels.__init__ import time; kept
# here so core.registry has a single lookup point.
KERNELS: dict = {}


def _register(name: str, module) -> None:
    KERNELS[name] = module
