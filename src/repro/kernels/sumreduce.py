"""Sum kernel: ``s = sum(a * X[i])`` — a worksharing + reduction (Fig. 2).

Paper size N = 100M.  Per iteration: one FMA and 8 bytes read.  The
reduction is the interesting part:

- ``omp_for``: ``reduction(+:s)`` clause — thread-private partials
  combined at the barrier;
- ``omp_task``: task-private partials, one atomic accumulate per task
  at task end, ``taskwait`` instead of a full barrier — the paper's
  winner;
- ``cilk_for``: a reducer hyperobject, paying a hypermap access on
  every ``+=`` in the loop body plus view creation per steal and view
  merges at the sync — "around five times" slower than ``omp task``;
- ``cilk_spawn`` / C++11: manual chunk-local partials, cheap combine.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.kernels import common
from repro.sim.machine import Machine
from repro.sim.task import IterSpace, Program

__all__ = ["PAPER_N", "space", "program", "reference"]

PAPER_N = 100_000_000

FLOPS_PER_ITER = 2
BYTES_PER_ITER = 8  # read X[i]


def space(machine: Machine, n: int = PAPER_N) -> IterSpace:
    """Iteration space of the Sum loop."""
    work = common.op_seconds(machine, FLOPS_PER_ITER, ipc=8.0)
    return IterSpace.uniform(n, work, BYTES_PER_ITER, locality=1.0, name="sum")


def program(version: str, *, machine: Machine, n: int = PAPER_N) -> Program:
    """The Sum benchmark in one of the six versions."""
    region = common.dispatch_loop(version, space(machine, n), reduction=True)
    prog = Program(f"sum(n={n})", meta={"version": version, "kernel": "sum", "n": n})
    return prog.add(region)


def reference(a: float, x: np.ndarray) -> float:
    """Functional reference: ``sum(a * x)``."""
    return float(a * np.asarray(x, dtype=np.float64).sum())


common._register("sum", sys.modules[__name__])
