"""Fibonacci kernel: recursive task parallelism (Fig. 5).

``fib(n)`` spawns ``fib(n-1)`` and ``fib(n-2)`` and adds the results —
the canonical unbalanced spawn tree.  Data-parallel versions "are not
practical" (paper), so only ``omp_task``, ``cilk_spawn`` and the
recursive C++11 version exist.

Each tree node elaborates into a *spawn* task (the part of the frame
that creates the children) and a *continuation* task (the part after
the sync that adds the children's results); leaves are single tasks.
Task count is ``3 * fib(n+1) - 2``, so the paper's n = 40 would be
~300M tasks — benchmarks simulate a smaller n (default 22, ~87k tasks)
and note the scale, which preserves the per-node overhead ratios the
figure is about.

The recursive C++11 version creates one thread per node; at n = 20 the
tree (32836 tasks) exceeds the default thread cap and the execution
raises :class:`~repro.runtime.base.ThreadExplosionError` — the paper's
"when problem size increases to 20 or above, the system hangs".
"""

from __future__ import annotations

import sys
from typing import Callable

from repro.models import charm, cilk, cxx11, hpx, mpi, openmp
from repro.sim.machine import Machine
from repro.sim.task import Program, TaskGraph, TaskRegion

__all__ = [
    "PAPER_N",
    "DEFAULT_SIM_N",
    "task_count",
    "graph",
    "program",
    "reference",
]

PAPER_N = 40
DEFAULT_SIM_N = 22

#: Per-task work split (seconds): the spawning part of a frame, the
#: post-sync continuation, and a base-case leaf.  These fold in the
#: per-frame runtime glue both models pay (stack frame, task descriptor
#: cache misses, result plumbing), calibrated so the per-task total
#: (~0.8 us) yields the paper's ~20% cilk/omp gap once each model's
#: spawn + deque costs are added on top.
SPAWN_WORK = 0.85e-6
CONT_WORK = 0.75e-6
LEAF_WORK = 0.75e-6


def reference(n: int) -> int:
    """The nth Fibonacci number (fib(0)=0, fib(1)=1), fast-doubling."""
    if n < 0:
        raise ValueError("n must be non-negative")

    def _fd(k: int) -> tuple[int, int]:
        if k == 0:
            return (0, 1)
        a, b = _fd(k >> 1)
        c = a * (2 * b - a)
        d = a * a + b * b
        if k & 1:
            return (d, c + d)
        return (c, d)

    return _fd(n)[0]


def task_count(n: int) -> int:
    """Number of tasks the spawn/continuation elaboration produces."""
    if n < 2:
        return 1
    return 3 * reference(n + 1) - 2


def graph(n: int) -> TaskGraph:
    """Build the spawn/continuation DAG for ``fib(n)``."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if task_count(n) > 5_000_000:
        raise ValueError(
            f"fib({n}) elaborates to {task_count(n)} tasks; "
            "simulate a smaller n and scale (see module docstring)"
        )
    g = TaskGraph(f"fib({n})")
    limit = sys.getrecursionlimit()
    if n + 10 > limit:
        sys.setrecursionlimit(n + 50)

    def rec(k: int, dep: tuple[int, ...]) -> int:
        if k < 2:
            return g.add(LEAF_WORK, deps=dep, tag="leaf")
        s = g.add(SPAWN_WORK, deps=dep, tag="spawn")
        c1 = rec(k - 1, (s,))
        c2 = rec(k - 2, (s,))
        return g.add(CONT_WORK, deps=(c1, c2), tag="cont")

    rec(n, ())
    return g


def program(version: str, *, machine: Machine, n: int = DEFAULT_SIM_N) -> Program:
    """The Fibonacci benchmark in a task-parallel version.

    ``omp_for`` / ``cilk_for`` / ``cxx_thread`` raise ``ValueError`` —
    the paper deems data-parallel fib "not practical".
    """
    builder: Callable[[int], TaskGraph] = lambda _p: graph(n)
    if version == "omp_task":
        region: TaskRegion = openmp.task_graph(builder, name=f"omp-fib({n})")
    elif version == "cilk_spawn":
        region = cilk.spawn_graph(builder, name=f"cilk-fib({n})")
    elif version == "cxx_async":
        region = cxx11.async_graph(builder, name=f"cxx-fib({n})")
    elif version == "cxx_thread":
        region = cxx11.thread_graph(builder, name=f"cxx-fib({n})")
    elif version == "charm":
        region = charm.chare_graph(builder, name=f"charm-fib({n})")
    elif version == "hpx":
        region = hpx.future_graph(builder, name=f"hpx-fib({n})")
    elif version == "mpi":
        region = mpi.rank_graph(builder, name=f"mpi-fib({n})")
    else:
        raise ValueError(
            f"fib has no {version!r} version (data parallelism is not practical here)"
        )
    prog = Program(f"fib({n})", meta={"version": version, "kernel": "fib", "n": n})
    return prog.add(region)


from repro.kernels import common  # placed late to avoid import cycle

common._register("fib", sys.modules[__name__])
