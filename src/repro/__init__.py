"""repro — reproduction of *Comparison of Threading Programming Models*
(Salehian, Liu, Yan; IPPS 2017).

The paper compares the language features and runtime systems of eight
threading models and benchmarks OpenMP, Cilk Plus and C++11 on five
kernels and five Rodinia applications.  This package rebuilds that
study as a library:

- :mod:`repro.sim` — discrete-event machine/runtime simulator (replaces
  the paper's dual-socket Xeon testbed; see DESIGN.md);
- :mod:`repro.runtime` — worksharing, work-stealing and bare-thread
  schedulers;
- :mod:`repro.models` — OpenMP / Cilk Plus / C++11 front-end APIs;
- :mod:`repro.features` — Tables I-III as a queryable database;
- :mod:`repro.kernels`, :mod:`repro.rodinia` — the ten workloads;
- :mod:`repro.core` — sweeps, metrics, reports, and the paper's
  findings as checkable claims;
- :mod:`repro.native` — real-thread functional backend (GIL-aware).

Quick start::

    from repro import run_experiment, figure_table
    sweep = run_experiment("axpy")      # Fig. 1
    print(figure_table(sweep))
"""

from repro.core import (
    ALL_CLAIMS,
    WORKLOADS,
    check_claim,
    figure_table,
    get_workload,
    render_sweep,
    run_all_claims,
    run_experiment,
    summary_line,
)
from repro.features import render_table1, render_table2, render_table3
from repro.runtime import ExecContext, ThreadExplosionError, run_program
from repro.sim import CostModel, Machine
from repro.sim.machine import PAPER_MACHINE
from repro.sweep import ResultCache, run_sweep

__version__ = "1.0.0"

__all__ = [
    "ALL_CLAIMS",
    "CostModel",
    "ExecContext",
    "Machine",
    "PAPER_MACHINE",
    "ResultCache",
    "ThreadExplosionError",
    "WORKLOADS",
    "check_claim",
    "figure_table",
    "get_workload",
    "render_sweep",
    "render_table1",
    "render_table2",
    "render_table3",
    "run_all_claims",
    "run_experiment",
    "run_program",
    "run_sweep",
    "summary_line",
    "__version__",
]
