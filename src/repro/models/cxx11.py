"""C++11 front-end: ``std::thread`` and ``std::async`` with manual chunking.

The paper's C++11 versions "use a for loop and manual chunking to
distribute loop iterations among threads and tasks", with a recursive
variant guarded by a cut-off ``BASE = N / nthreads`` "to control task
creation and to avoid oversubscription of tasks over hardware threads".
C++11's runtime does no load balancing: "in thread level parallelism
programmers should take care of load balancing".

Recursive graphs run every task on its own thread; without a cut-off
the thread count explodes and execution is declared hung
(:class:`~repro.runtime.base.ThreadExplosionError`), reproducing the
paper's fib(n >= 20) observation.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.sim.task import IterSpace, LoopRegion, TaskGraph, TaskRegion

__all__ = ["thread_for", "async_for", "thread_graph", "async_graph", "base_cutoff"]


def base_cutoff(niter: int, nthreads: int) -> int:
    """The paper's cut-off: ``BASE = N / nthreads`` iterations per task."""
    if nthreads <= 0:
        raise ValueError("nthreads must be positive")
    return max(1, niter // nthreads)


def thread_for(
    space: IterSpace,
    *,
    nchunks: Optional[int] = None,
    reduction: bool = False,
    work_scale: float = 1.0,
    persistent: bool = False,
    name: Optional[str] = None,
) -> LoopRegion:
    """Manual chunking over ``std::thread`` workers.

    One chunk per thread by default — static distribution, like the
    OpenMP static schedule, but paying thread creation per region
    (``persistent=False``) or reusing a hand-rolled pool with manual
    barriers (``persistent=True``, the idiom for iterative apps; pool
    creation is charged once at program level).
    """
    params = {
        "mode": "thread",
        "nchunks": nchunks,
        "reduction": reduction,
        "work_scale": work_scale,
        "persistent": persistent,
    }
    return LoopRegion(space, "threadpool", params, name or f"cxx_thread[{space.name}]")


def async_for(
    space: IterSpace,
    *,
    nchunks: Optional[int] = None,
    reduction: bool = False,
    work_scale: float = 1.0,
    persistent: bool = False,
    name: Optional[str] = None,
) -> LoopRegion:
    """Manual chunking over ``std::async`` tasks joined by ``future::get``.

    ``persistent=True`` reuses a deferred-task pool across phases (see
    :func:`thread_for`).
    """
    params = {
        "mode": "async",
        "nchunks": nchunks,
        "reduction": reduction,
        "work_scale": work_scale,
        "persistent": persistent,
    }
    return LoopRegion(space, "threadpool", params, name or f"cxx_async[{space.name}]")


def thread_graph(
    graph: Union[TaskGraph, Callable[[int], TaskGraph]],
    *,
    name: str = "cxx-thread-graph",
) -> TaskRegion:
    """A recursive computation where every node is a ``std::thread``."""
    return TaskRegion(graph, "threadpool_graph", {"mode": "thread"}, name)


def async_graph(
    graph: Union[TaskGraph, Callable[[int], TaskGraph]],
    *,
    name: str = "cxx-async-graph",
) -> TaskRegion:
    """A recursive computation where every node is a ``std::async`` task."""
    return TaskRegion(graph, "threadpool_graph", {"mode": "async"}, name)
