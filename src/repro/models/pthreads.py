"""PThreads front-end: bare kernel threads, barriers, SPMD loops.

Table I: PThreads offers only ``pthread_create/join`` — no data
parallelism constructs, no data-flow; Table II: ``pthread_barrier``
and ``pthread_join``; Table III: ``pthread_mutex``/``pthread_cond``,
a C library, ``pthread_cancel``.  "PThreads and C++11 are baseline
APIs that provide core functionalities" with "minimum scheduling in
the runtime" — the programmer chunks and balances by hand.

Two idioms are modelled:

- :func:`create_join_loop` — create workers, run one chunk each, join
  (what a one-shot kernel looks like);
- :func:`spmd_program` — the SPMD pattern for iterative codes: one
  create at start, a ``pthread_barrier_wait`` between phases, one join
  at the end.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.task import IterSpace, LoopRegion, Program

__all__ = ["create_join_loop", "spmd_loop", "spmd_program"]


def create_join_loop(
    space: IterSpace,
    *,
    nchunks: Optional[int] = None,
    reduction: bool = False,
    name: Optional[str] = None,
) -> LoopRegion:
    """``pthread_create`` x N, one contiguous chunk each, ``pthread_join``.

    Structurally identical to the C++11 ``std::thread`` version —
    std::thread is "simple mapping to PThread APIs" (paper, III.B).
    """
    params = {
        "mode": "thread",
        "nchunks": nchunks,
        "reduction": reduction,
        "persistent": False,
    }
    return LoopRegion(space, "threadpool", params, name or f"pthread[{space.name}]")


def spmd_loop(
    space: IterSpace,
    *,
    nchunks: Optional[int] = None,
    reduction: bool = False,
    name: Optional[str] = None,
) -> LoopRegion:
    """One phase of an SPMD program: static chunks between barriers."""
    params = {
        "mode": "thread",
        "nchunks": nchunks,
        "reduction": reduction,
        "persistent": True,  # threads live across phases; barrier per phase
    }
    return LoopRegion(space, "threadpool", params, name or f"pthread_spmd[{space.name}]")


def spmd_program(
    name: str,
    spaces: Sequence[IterSpace],
    *,
    reduction_last: bool = False,
) -> Program:
    """A whole SPMD application: create once, barrier-separated phases.

    The one-time ``pthread_create``/``join`` pair is charged at program
    level (the same mechanism as the C++11 persistent pool).
    """
    prog = Program(name, meta={"pool_setup": True, "model": "pthreads"})
    for i, space in enumerate(spaces):
        red = reduction_last and i == len(spaces) - 1
        prog.add(spmd_loop(space, reduction=red))
    return prog
