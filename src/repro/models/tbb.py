"""Intel TBB front-end: partitioned loops, reduce, task spawn, pipeline.

Table I lists TBB's ``parallel_for/while/do``, ``task::spawn/wait`` and
pipeline / ``flow::graph`` data-flow support; Table II its
``affinity_partitioner`` (the one data/computation-binding mechanism
among the host-only models) and ``parallel_reduce``.  Section III.B:
"The Cilk Plus and TBB use random work-stealing scheduler to
dynamically schedule tasks on all cores."

The partitioner is the interesting dial:

- ``simple``   — split down to ``grainsize`` (default 1): very fine
  chunks, full scatter penalty;
- ``auto``     — demand-driven splitting with the library's default
  grain (modelled like cilk_for's automatic grainsize);
- ``affinity`` — remembers which worker ran which subrange and replays
  the mapping: no placement penalty at all (Table II's binding cell).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

from repro.sim.task import IterSpace, LoopRegion, TaskGraph, TaskRegion

__all__ = ["parallel_for", "parallel_reduce", "task_spawn_graph", "pipeline_graph", "pipeline"]

_PARTITIONERS = ("auto", "simple", "affinity")


def parallel_for(
    space: IterSpace,
    *,
    partitioner: str = "auto",
    grainsize: Optional[int] = None,
    work_scale: float = 1.0,
    name: Optional[str] = None,
) -> LoopRegion:
    """``tbb::parallel_for(range, body, partitioner)``.

    ``grainsize`` only applies to the simple partitioner (TBB semantics);
    the auto partitioner targets a few chunks per worker.
    """
    if partitioner not in _PARTITIONERS:
        raise ValueError(f"unknown partitioner {partitioner!r}; expected {_PARTITIONERS}")
    params = {
        "style": "cilk_for",  # binary range splitting on work stealing
        "deque": "the",
        "entry": "none",
        "exit": "sync",
        "work_scale": work_scale,
    }
    if partitioner == "simple":
        params["grainsize"] = grainsize if grainsize is not None else 1
    elif partitioner == "auto":
        # ~2 chunks per worker, refined on steal; modelled as a coarse
        # grainsize resolved per thread count at run time (None -> auto
        # cilk-style), with the penalty damped by the coarse chunks.
        params["grainsize"] = grainsize
    else:  # affinity
        params["grainsize"] = grainsize
        params["apply_scatter_penalty"] = False
    return LoopRegion(
        space, "stealing_loop", params, name or f"tbb_for[{space.name}]({partitioner})"
    )


def parallel_reduce(
    space: IterSpace,
    *,
    partitioner: str = "auto",
    grainsize: Optional[int] = None,
    name: Optional[str] = None,
) -> LoopRegion:
    """``tbb::parallel_reduce``: subrange bodies + pairwise joins.

    Unlike a Cilk reducer there is no per-access hyperobject cost —
    joins happen once per split — so Sum-style loops stay cheap.
    """
    region = parallel_for(
        space, partitioner=partitioner, grainsize=grainsize,
        name=name or f"tbb_reduce[{space.name}]",
    )
    params = dict(region.params)
    # one join per split, charged with the taskwait at region exit; the
    # splitter tasks already exist, so fold the join cost into per-task
    # overhead
    params["per_task_overhead"] = 120e-9
    return LoopRegion(region.space, region.executor, params, region.name)


def task_spawn_graph(
    graph: Union[TaskGraph, Callable[[int], TaskGraph]],
    *,
    name: str = "tbb-task-graph",
) -> TaskRegion:
    """``task::spawn`` / ``wait_for_all`` over an explicit DAG."""
    params = {
        "deque": "the",
        "spawn_cost": 110e-9,
        "entry": "none",
        "exit": "sync",
    }
    return TaskRegion(graph, "stealing", params, name)


def pipeline_graph(
    stage_works: Sequence[float],
    serial_stages: Sequence[bool],
    ntokens: int,
    token_cost: float = 90e-9,
) -> TaskGraph:
    """Build a ``tbb::pipeline`` DAG: ``ntokens`` items through stages.

    Item *i* at stage *s* depends on item *i* at stage *s-1*; a
    *serial* stage additionally depends on item *i-1* at the same stage
    (in-order token processing) — giving the classic result that the
    slowest serial stage bounds throughput.
    """
    if len(stage_works) != len(serial_stages):
        raise ValueError("stage_works and serial_stages must align")
    if not stage_works:
        raise ValueError("need at least one stage")
    if ntokens <= 0:
        raise ValueError("ntokens must be positive")
    g = TaskGraph(f"pipeline[{len(stage_works)}x{ntokens}]")
    prev_row: list[int] = []
    for s, (work, serial) in enumerate(zip(stage_works, serial_stages)):
        if work < 0:
            raise ValueError("stage work must be non-negative")
        row: list[int] = []
        for i in range(ntokens):
            deps = []
            if s > 0:
                deps.append(prev_row[i])
            if serial and i > 0:
                deps.append(row[i - 1])
            row.append(g.add(work + token_cost, deps=deps, tag=f"stage{s}"))
        prev_row = row
    return g


def pipeline(
    stage_works: Sequence[float],
    serial_stages: Sequence[bool],
    ntokens: int,
    *,
    name: Optional[str] = None,
) -> TaskRegion:
    """A ``tbb::pipeline`` region (Table I: data/event-driven)."""
    graph = pipeline_graph(stage_works, serial_stages, ntokens)
    return task_spawn_graph(graph, name=name or graph.name)
