"""OpenMP front-end: worksharing loops and explicit tasking.

Builders return regions annotated for the runtime layer:

- :func:`parallel_for` == ``#pragma omp parallel for [schedule(...)]
  [reduction(...)]`` — fork-join worksharing;
- :func:`task_loop` == ``parallel`` + ``single`` { ``task`` per chunk }
  + ``taskwait`` — the "task version" of a data-parallel kernel, using
  the Intel runtime's lock-based deques;
- :func:`task_graph` == an explicit task DAG with ``depend`` clauses /
  nested ``task`` + ``taskwait`` (used by recursive workloads);
- :func:`simd_hint` — the paper notes only OpenMP and Cilk Plus expose
  vectorization constructs; this models ``simd`` as a compute-work
  divisor on an iteration space.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.sim.task import IterSpace, LoopRegion, TaskGraph, TaskRegion

__all__ = ["parallel_for", "task_loop", "task_graph", "simd_hint", "target_parallel_for"]


def parallel_for(
    space: IterSpace,
    *,
    schedule: str = "static",
    chunk: Optional[int] = None,
    reduction: bool = False,
    fork: bool = True,
    barrier: bool = True,
    work_scale: float = 1.0,
    name: Optional[str] = None,
) -> LoopRegion:
    """``#pragma omp parallel for`` over ``space``.

    The paper applies "OpenMP static schedule ... to all the three
    models for data parallelism" as the fair baseline, so ``static`` is
    the default here too.
    """
    params = {
        "schedule": schedule,
        "chunk": chunk,
        "reduction": reduction,
        "fork": fork,
        "barrier": barrier,
        "work_scale": work_scale,
    }
    return LoopRegion(space, "worksharing", params, name or f"omp_for[{space.name}]")


def task_loop(
    space: IterSpace,
    *,
    nchunks: Optional[int] = None,
    chunks_per_thread: int = 1,
    reduction: bool = False,
    atomic_reduction_cost: Optional[float] = None,
    work_scale: float = 1.0,
    name: Optional[str] = None,
) -> LoopRegion:
    """``parallel single`` creating one ``task`` per chunk, then ``taskwait``.

    ``nchunks=None`` gives ``chunks_per_thread`` chunks per thread
    (default 1, the paper's ``BASE = N / nthreads`` cut-off; irregular
    workloads use more for load balancing).  With ``reduction`` each
    task ends in an atomic accumulate into the shared result.
    """
    params = {
        "style": "flat",
        "deque": "locked",
        "nchunks": nchunks,
        "chunks_per_thread": chunks_per_thread,
        "entry": "omp_parallel",
        "exit": "taskwait+barrier",
        "undeferred_single": True,
        "work_scale": work_scale,
    }
    if reduction:
        # per-task atomic accumulate; resolved against ctx.costs at run
        # time unless explicitly given.
        params["per_task_overhead"] = (
            atomic_reduction_cost if atomic_reduction_cost is not None else 22e-9
        )
    return LoopRegion(space, "stealing_loop", params, name or f"omp_task[{space.name}]")


def task_graph(
    graph: Union[TaskGraph, Callable[[int], TaskGraph]],
    *,
    per_task_overhead: float = 0.0,
    name: str = "omp-task-graph",
) -> TaskRegion:
    """An explicit OpenMP task DAG (``task``/``depend``/``taskwait``).

    Runs on lock-based deques; at one thread tasks execute undeferred,
    matching the Intel runtime's serialization fast path.
    """
    params = {
        "deque": "locked",
        "entry": "omp_parallel",
        "exit": "taskwait+barrier",
        "undeferred_single": True,
        "per_task_overhead": per_task_overhead,
    }
    return TaskRegion(graph, "stealing", params, name)


def target_parallel_for(
    space: IterSpace,
    *,
    device=None,
    map_to: float = 0.0,
    map_from: float = 0.0,
    resident: bool = False,
    nowait: bool = False,
    name: Optional[str] = None,
) -> "LoopRegion":
    """``#pragma omp target teams distribute parallel for map(...)``.

    OpenMP's offloading construct (Table I: "host and device (target)";
    Table II: ``map(to/from/tofrom/alloc)``).  ``map_to``/``map_from``
    are the mapped byte counts; ``resident`` models an enclosing
    ``target data`` region; ``nowait`` gives the asynchronous form.
    """
    params = {
        "device": device,
        "to_bytes": map_to,
        "from_bytes": map_from,
        "resident": resident,
        "async_overlap": nowait,
    }
    return LoopRegion(space, "offload", params, name or f"omp_target[{space.name}]")


def simd_hint(space: IterSpace, vector_width: float = 4.0) -> IterSpace:
    """Model ``#pragma omp simd``: divide per-iteration compute work.

    Memory traffic is unchanged — vectorization does not create
    bandwidth.  Returns a new iteration space.
    """
    if vector_width < 1.0:
        raise ValueError("vector_width must be >= 1")
    import numpy as np

    block_work = np.diff(space._cum_work) / vector_width
    block_bytes = np.diff(space._cum_bytes)
    return IterSpace(space.niter, block_work, block_bytes, space.locality, space.name)
