"""Programming-model front-end APIs.

Each module mirrors the surface of one of the three models the paper
benchmarks, expressed as region builders over the workload IR:

- :mod:`repro.models.openmp` — ``parallel for`` (worksharing with
  static/dynamic/guided schedules, reduction clause), ``task`` /
  ``taskwait`` (lock-based work-stealing deques, undeferred at one
  thread);
- :mod:`repro.models.cilk` — ``cilk_for`` (recursive splitter tree on
  THE-protocol work stealing), ``cilk_spawn``/``cilk_sync``, reducer
  hyperobjects;
- :mod:`repro.models.cxx11` — ``std::thread`` and ``std::async`` with
  manual chunking and the BASE cut-off.

The six-version scheme of the paper's evaluation (data- and
task-parallel versions per model) maps to:

======================  =====================================
version name             builder
======================  =====================================
``omp_for``              :func:`openmp.parallel_for`
``omp_task``             :func:`openmp.task_loop` / :func:`openmp.task_graph`
``cilk_for``             :func:`cilk.cilk_for`
``cilk_spawn``           :func:`cilk.spawn_loop` / :func:`cilk.spawn_graph`
``cxx_thread``           :func:`cxx11.thread_for` / :func:`cxx11.thread_graph`
``cxx_async``            :func:`cxx11.async_for` / :func:`cxx11.async_graph`
======================  =====================================
"""

from repro.models import cilk, cuda, cxx11, openacc, opencl, openmp, pthreads, tbb

VERSIONS = ("omp_for", "omp_task", "cilk_for", "cilk_spawn", "cxx_thread", "cxx_async")
"""Canonical order of the six versions, as used in figures."""

TASK_ONLY_VERSIONS = ("omp_task", "cilk_spawn", "cxx_async")
"""Versions meaningful for purely recursive task parallelism (Fig. 5)."""

EXTENDED_VERSIONS = VERSIONS + ("tbb_for", "tbb_task", "pthread")
"""The paper benchmarks six versions; the extension models (TBB,
PThreads) add comparable variants for workloads that support them."""

__all__ = [
    "cilk",
    "cuda",
    "cxx11",
    "openacc",
    "opencl",
    "openmp",
    "pthreads",
    "tbb",
    "VERSIONS",
    "TASK_ONLY_VERSIONS",
    "EXTENDED_VERSIONS",
]
