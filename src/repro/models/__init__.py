"""Programming-model front-end APIs.

Each module mirrors the surface of one of the three models the paper
benchmarks, expressed as region builders over the workload IR:

- :mod:`repro.models.openmp` — ``parallel for`` (worksharing with
  static/dynamic/guided schedules, reduction clause), ``task`` /
  ``taskwait`` (lock-based work-stealing deques, undeferred at one
  thread);
- :mod:`repro.models.cilk` — ``cilk_for`` (recursive splitter tree on
  THE-protocol work stealing), ``cilk_spawn``/``cilk_sync``, reducer
  hyperobjects;
- :mod:`repro.models.cxx11` — ``std::thread`` and ``std::async`` with
  manual chunking and the BASE cut-off.

The six-version scheme of the paper's evaluation (data- and
task-parallel versions per model) maps to:

======================  =====================================
version name             builder
======================  =====================================
``omp_for``              :func:`openmp.parallel_for`
``omp_task``             :func:`openmp.task_loop` / :func:`openmp.task_graph`
``cilk_for``             :func:`cilk.cilk_for`
``cilk_spawn``           :func:`cilk.spawn_loop` / :func:`cilk.spawn_graph`
``cxx_thread``           :func:`cxx11.thread_for` / :func:`cxx11.thread_graph`
``cxx_async``            :func:`cxx11.async_for` / :func:`cxx11.async_graph`
======================  =====================================
"""

from repro.models import charm, cilk, cuda, cxx11, hpx, mpi, openacc, opencl, openmp, pthreads, tbb

VERSIONS = ("omp_for", "omp_task", "cilk_for", "cilk_spawn", "cxx_thread", "cxx_async")
"""Canonical order of the six versions, as used in figures."""

TASK_ONLY_VERSIONS = ("omp_task", "cilk_spawn", "cxx_async")
"""Versions meaningful for purely recursive task parallelism (Fig. 5)."""

EXTENDED_VERSIONS = VERSIONS + ("tbb_for", "tbb_task", "pthread")
"""The paper benchmarks six versions; the extension models (TBB,
PThreads) add comparable variants for workloads that support them."""

AMT_VERSIONS = ("charm", "hpx", "mpi")
"""The asynchronous many-tasking / message-driven family (ROADMAP item
4): Charm++-style actors, HPX-style futures, MPI-style message passing.
One version name covers both the loop and the task-graph form of each
model."""

#: Model-family name -> the registry version names it covers.  Keys are
#: the user-facing spellings accepted by ``repro validate --model``;
#: individual version names (``omp_task``, ``charm``, ...) resolve too.
_MODEL_FAMILIES: dict[str, tuple[str, ...]] = {
    "openmp": ("omp_for", "omp_task"),
    "omp": ("omp_for", "omp_task"),
    "cilk": ("cilk_for", "cilk_spawn"),
    "cilk plus": ("cilk_for", "cilk_spawn"),
    "cilkplus": ("cilk_for", "cilk_spawn"),
    "cxx11": ("cxx_thread", "cxx_async"),
    "c++11": ("cxx_thread", "cxx_async"),
    "c++": ("cxx_thread", "cxx_async"),
    "tbb": ("tbb_for", "tbb_task"),
    "pthreads": ("pthread",),
    "pthread": ("pthread",),
    "charm": ("charm",),
    "charm++": ("charm",),
    "charmpp": ("charm",),
    "hpx": ("hpx",),
    "parallex": ("hpx",),
    "mpi": ("mpi",),
}


def resolve_models(names) -> tuple[str, ...]:
    """Map model-family or version names to registry version names.

    Accepts family spellings (``openmp``, ``charm++``, ``mpi``) and
    exact version names (``omp_task``, ``hpx``); raises ``ValueError``
    for anything else — the CLI turns that into a usage error (exit 2).
    Order is preserved, duplicates are dropped.
    """
    every = VERSIONS + EXTENDED_VERSIONS + AMT_VERSIONS
    out: list[str] = []
    for name in names:
        key = name.strip().lower()
        versions = _MODEL_FAMILIES.get(key)
        if versions is None:
            if key in every:
                versions = (key,)
            else:
                known = sorted(set(_MODEL_FAMILIES) | set(every))
                raise ValueError(
                    f"unknown model {name!r}; known models/versions: "
                    + ", ".join(known)
                )
        out.extend(v for v in versions if v not in out)
    return tuple(out)


__all__ = [
    "charm",
    "cilk",
    "cuda",
    "cxx11",
    "hpx",
    "mpi",
    "openacc",
    "opencl",
    "openmp",
    "pthreads",
    "tbb",
    "resolve_models",
    "VERSIONS",
    "TASK_ONLY_VERSIONS",
    "EXTENDED_VERSIONS",
    "AMT_VERSIONS",
]
