"""Charm++ front-end: chare arrays exchanging entry-method messages.

Charm++ overdecomposes the problem into *chares* — migratable objects
addressed location-transparently — and drives execution entirely by
message delivery: a chare runs when the scheduler dequeues a message
for one of its entry methods, and runs that entry method to completion.
Loops become chare arrays (4 chares per PE by default, the Charm++
overdecomposition idiom); task DAGs become one chare per task whose
dependencies arrive as messages (``transfer`` spans on the consumer's
PE in the trace).

Placement is static at creation time (round-robin over the PEs) — the
runtime balances load by overdecomposition and (not modelled here)
periodic migration, not by stealing.  Per-task overhead is the lowest
of the AMT family: one message send + dequeue + entry dispatch,
cf. Kulkarni & Lumsdaine's AMT comparison.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.sim.task import IterSpace, LoopRegion, TaskGraph, TaskRegion

__all__ = ["chare_for", "chare_graph"]


def chare_for(
    space: IterSpace,
    *,
    nchares: Optional[int] = None,
    reduction: bool = False,
    work_scale: float = 1.0,
    name: Optional[str] = None,
) -> LoopRegion:
    """A loop as a chare array driven by seed messages.

    ``nchares`` controls overdecomposition (default 4 per PE).
    ``reduction=True`` combines per-chare contributions up Charm++'s
    spanning-tree reduction before the completion message.
    """
    params = {
        "nchares": nchares,
        "reduction": reduction,
        "work_scale": work_scale,
    }
    return LoopRegion(space, "charm_loop", params, name or f"charm[{space.name}]")


def chare_graph(
    graph: Union[TaskGraph, Callable[[int], TaskGraph]],
    *,
    name: str = "charm-graph",
) -> TaskRegion:
    """A task DAG as chares: each dependency edge is one message."""
    return TaskRegion(graph, "charm_graph", {}, name)
