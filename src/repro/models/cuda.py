"""CUDA front-end: kernel launches, explicit memcpy, streams.

Table I: CUDA expresses data parallelism as ``<<<grid, block>>>``
kernel launches, task parallelism as "async kernel launching and
memcpy", and data/event-driven execution as ``stream``s; Table II:
explicit movement via ``cudaMemcpy``.  This front-end annotates loop
regions for the offload executor with exactly those knobs.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.device import Device
from repro.sim.task import IterSpace, LoopRegion

__all__ = ["kernel_launch", "memcpy_bytes"]


def memcpy_bytes(*arrays_bytes: float) -> float:
    """Total bytes of a set of cudaMemcpy'd buffers (convenience)."""
    total = 0.0
    for b in arrays_bytes:
        if b < 0:
            raise ValueError("buffer sizes must be non-negative")
        total += b
    return total


def kernel_launch(
    space: IterSpace,
    *,
    device: Optional[Device] = None,
    copy_in: float = 0.0,
    copy_out: float = 0.0,
    resident: bool = False,
    stream: bool = False,
    name: Optional[str] = None,
) -> LoopRegion:
    """``kernel<<<grid, block>>>`` over ``space``.

    ``copy_in``/``copy_out`` are the cudaMemcpy traffic around the
    launch; ``resident=True`` models device-resident buffers (no
    per-launch copies); ``stream=True`` launches asynchronously so
    copies overlap the kernel.
    """
    params = {
        "device": device,
        "to_bytes": copy_in,
        "from_bytes": copy_out,
        "resident": resident,
        "async_overlap": stream,
    }
    return LoopRegion(space, "offload", params, name or f"cuda_kernel[{space.name}]")
