"""OpenCL front-end: NDRange kernels on host or device.

OpenCL is the one model in Table I supporting "host and device":
the same kernel enqueues onto a GPU or onto the CPU runtime (which
executes work-groups over a thread pool).  Table II: work_group/item
hierarchy, explicit buffer writes, work-group barriers/reductions.

Modelled here:

- :func:`enqueue_kernel` — an NDRange kernel; ``device="gpu"`` routes
  through the offload executor (buffer writes = transfers), while
  ``device="cpu"`` executes work-groups as dynamic chunks over host
  threads, with the OpenCL runtime's heavier per-enqueue overhead;
- :func:`enqueue_task` — ``clEnqueueTask``: a single work-item kernel
  (serial on the target, Table I's task-parallelism cell);
- :func:`work_group_chunks` — the global/local size split.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.device import Device
from repro.sim.task import IterSpace, LoopRegion, SerialRegion

__all__ = ["CPU_ENQUEUE_OVERHEAD", "work_group_chunks", "enqueue_kernel", "enqueue_task"]

#: Per-enqueue overhead of the OpenCL CPU runtime (driver + JIT-cached
#: dispatch); an order of magnitude above an OpenMP fork.
CPU_ENQUEUE_OVERHEAD = 15e-6


def work_group_chunks(global_size: int, local_size: int) -> int:
    """Number of work-groups for an NDRange (ceil division)."""
    if global_size <= 0 or local_size <= 0:
        raise ValueError("global and local sizes must be positive")
    return -(-global_size // local_size)


def enqueue_kernel(
    space: IterSpace,
    *,
    device: str = "gpu",
    local_size: Optional[int] = None,
    accelerator: Optional[Device] = None,
    buffer_write: float = 0.0,
    buffer_read: float = 0.0,
    resident: bool = False,
    name: Optional[str] = None,
) -> LoopRegion:
    """``clEnqueueNDRangeKernel`` over ``space``.

    ``device="gpu"`` offloads (buffer writes/reads become transfers);
    ``device="cpu"`` runs work-groups of ``local_size`` items as
    dynamically dispatched chunks on the host threads.
    """
    if device == "gpu":
        params = {
            "device": accelerator,
            "to_bytes": buffer_write,
            "from_bytes": buffer_read,
            "resident": resident,
            "async_overlap": False,
        }
        return LoopRegion(space, "offload", params, name or f"cl_gpu[{space.name}]")
    if device == "cpu":
        ls = local_size if local_size is not None else max(1, space.niter // 256)
        params = {
            "schedule": "dynamic",
            "chunk": ls,
            "fork": True,
            "barrier": True,
        }
        return LoopRegion(space, "worksharing", params, name or f"cl_cpu[{space.name}]")
    raise ValueError(f"unknown OpenCL device {device!r} (expected 'gpu' or 'cpu')")


def enqueue_task(
    work: float,
    membytes: float = 0.0,
    *,
    device: str = "cpu",
    accelerator: Optional[Device] = None,
    name: str = "cl_task",
) -> SerialRegion:
    """``clEnqueueTask``: a single work-item kernel, serial on the target.

    On the GPU the task still pays the launch overhead and runs on one
    (slow) lane — the anti-pattern the API's deprecation reflected.
    """
    if work < 0 or membytes < 0:
        raise ValueError("work and membytes must be non-negative")
    if device == "cpu":
        return SerialRegion(work + CPU_ENQUEUE_OVERHEAD, membytes, name=name)
    if device == "gpu":
        from repro.sim.device import K40

        dev = accelerator if accelerator is not None else K40
        # one lane of the device: compute_ratio spread over the whole
        # device gives a single work-item a tiny fraction of it
        lane_speed = max(1e-3, dev.compute_ratio / dev.min_parallel_iters)
        return SerialRegion(dev.launch_overhead + work / lane_speed, membytes, name=name)
    raise ValueError(f"unknown OpenCL device {device!r} (expected 'gpu' or 'cpu')")
