"""OpenACC front-end: ``parallel``/``kernels`` regions and data clauses.

Table I: OpenACC offers ``kernel/parallel`` data parallelism,
``async/wait`` tasking, and device-only offloading; Table II: explicit
movement via ``data copy/copyin/copyout`` and a ``cache`` /
``gang/worker/vector`` hierarchy.  The distinguishing idiom modelled
here is the structured **data region**: buffers copied in once, reused
by many ``parallel`` regions, copied out once — the standard fix for
transfer-bound offloading.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.sim.device import Device
from repro.sim.task import IterSpace, LoopRegion, Program, SerialRegion

__all__ = ["parallel_region", "data_region"]


def parallel_region(
    space: IterSpace,
    *,
    device: Optional[Device] = None,
    copyin: float = 0.0,
    copyout: float = 0.0,
    resident: bool = False,
    async_: bool = False,
    name: Optional[str] = None,
) -> LoopRegion:
    """``#pragma acc parallel loop`` over ``space``.

    Outside a data region each launch pays its ``copyin``/``copyout``;
    inside one (``resident=True``) it does not.  ``async_`` models the
    ``async`` clause (a later ``wait`` is implicit at region end).
    """
    params = {
        "device": device,
        "to_bytes": copyin,
        "from_bytes": copyout,
        "resident": resident,
        "async_overlap": async_,
    }
    return LoopRegion(space, "offload", params, name or f"acc_parallel[{space.name}]")


def data_region(
    program: Program,
    spaces: Sequence[IterSpace],
    *,
    device: Optional[Device] = None,
    copyin: float = 0.0,
    copyout: float = 0.0,
) -> Program:
    """``#pragma acc data copyin(...) copyout(...)`` around a sequence
    of parallel loops.

    Adds the one-time transfers as explicit regions and marks every
    enclosed loop device-resident.  Returns ``program`` for chaining.
    """
    from repro.sim.device import K40

    dev = device if device is not None else K40
    if copyin > 0:
        program.add(
            SerialRegion(dev.transfer_time(copyin), name="acc-data-copyin")
        )
    for space in spaces:
        program.add(parallel_region(space, device=device, resident=True))
    if copyout > 0:
        program.add(
            SerialRegion(dev.transfer_time(copyout), name="acc-data-copyout")
        )
    return program
