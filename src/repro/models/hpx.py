"""HPX/ParalleX front-end: futures wired by dataflow continuations.

HPX expresses parallelism as ``hpx::async`` returning futures, composed
with ``future.then``/``when_all`` continuations; each future is backed
by a lightweight user-level thread, far cheaper than a kernel thread
(``std::async``) but dearer than a Cilk spawn.  Continuations run on
whichever worker becomes free first (continuation stealing), so load
balances even under static skew — the trade Kulkarni & Lumsdaine
measure against Charm++'s cheaper message-driven dispatch.

Loops become one future per chunk joined by a serial ``when_all`` fold;
task DAGs become dataflow: a node's continuation fires once all its
awaited futures are ready.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.sim.task import IterSpace, LoopRegion, TaskGraph, TaskRegion

__all__ = ["async_for", "future_graph"]


def async_for(
    space: IterSpace,
    *,
    nchunks: Optional[int] = None,
    reduction: bool = False,
    work_scale: float = 1.0,
    name: Optional[str] = None,
) -> LoopRegion:
    """A loop as ``hpx::async`` futures (4 chunks per worker by default)."""
    params = {
        "nchunks": nchunks,
        "reduction": reduction,
        "work_scale": work_scale,
    }
    return LoopRegion(space, "hpx_loop", params, name or f"hpx[{space.name}]")


def future_graph(
    graph: Union[TaskGraph, Callable[[int], TaskGraph]],
    *,
    name: str = "hpx-graph",
) -> TaskRegion:
    """A task DAG as a dataflow of futures and continuations."""
    return TaskRegion(graph, "hpx_graph", {}, name)
