"""Cilk Plus front-end: ``cilk_for``, ``cilk_spawn``/``cilk_sync``, reducers.

``cilk_for`` compiles to a recursive binary splitter tree executed by
the THE-protocol work-stealing runtime — chunk distribution happens by
thieves stealing subtree tasks, which is the mechanism the paper blames
for cilk_for's data-parallel overhead ("workstealing operations in Cilk
Plus serialize the distributions of loop chunks among threads").

Reductions use reducer hyperobjects: every loop-body accumulate pays a
hypermap access, every steal lazily creates a view, and views merge at
the sync — together these reproduce the ~5x Sum gap of Fig. 2.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.sim.task import IterSpace, LoopRegion, TaskGraph, TaskRegion

__all__ = ["cilk_for", "spawn_loop", "spawn_graph", "array_notation_hint"]


def cilk_for(
    space: IterSpace,
    *,
    grainsize: Optional[int] = None,
    reducer: bool = False,
    work_scale: float = 1.0,
    name: Optional[str] = None,
) -> LoopRegion:
    """``cilk_for`` over ``space``.

    ``grainsize=None`` uses the Cilk Plus automatic grainsize
    ``min(2048, N / 8p)``.  ``reducer=True`` models a reducer
    hyperobject accumulated in the loop body.
    """
    params = {
        "style": "cilk_for",
        "deque": "the",
        "grainsize": grainsize,
        "reducer": reducer,
        "entry": "cilk",
        "exit": "sync",
        "work_scale": work_scale,
    }
    return LoopRegion(space, "stealing_loop", params, name or f"cilk_for[{space.name}]")


def spawn_loop(
    space: IterSpace,
    *,
    nchunks: Optional[int] = None,
    chunks_per_thread: int = 1,
    reducer: bool = False,
    work_scale: float = 1.0,
    name: Optional[str] = None,
) -> LoopRegion:
    """The "task version" in Cilk: a loop of ``cilk_spawn`` chunk calls.

    The paper's task implementations spawn one chunk per thread
    (``nchunks=None``, ``chunks_per_thread=1`` keeps that default).
    Spawned chunks distribute via FIFO steals of whole contiguous
    chunks, so no placement penalty applies (unlike the scattered
    cilk_for subtrees).
    """
    params = {
        "style": "flat",
        "deque": "the",
        "nchunks": nchunks,
        "chunks_per_thread": chunks_per_thread,
        "reducer": reducer,
        "entry": "cilk",
        "exit": "sync",
        "work_scale": work_scale,
    }
    return LoopRegion(space, "stealing_loop", params, name or f"cilk_spawn[{space.name}]")


def spawn_graph(
    graph: Union[TaskGraph, Callable[[int], TaskGraph]],
    *,
    reducer: bool = False,
    name: str = "cilk-spawn-graph",
) -> TaskRegion:
    """A recursive ``cilk_spawn``/``cilk_sync`` computation.

    The DAG encodes spawn tasks and sync continuations (see
    :mod:`repro.kernels.fib`); the THE deque keeps owner push/pop
    lock-free.
    """
    params = {
        "deque": "the",
        "entry": "cilk",
        "exit": "sync",
        "reducer": reducer,
    }
    return TaskRegion(graph, "stealing", params, name)


def array_notation_hint(space: IterSpace, vector_width: float = 4.0) -> IterSpace:
    """Model Cilk Plus array notation / elemental functions (vectorize).

    Equivalent to :func:`repro.models.openmp.simd_hint`: compute work is
    divided by the vector width, memory traffic unchanged.
    """
    from repro.models.openmp import simd_hint

    return simd_hint(space, vector_width)
