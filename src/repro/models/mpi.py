"""MPI front-end: rank-partitioned SPMD with explicit messages.

The message-passing model partitions work over ranks at compile time:
every rank owns a contiguous block of the iteration space (or task
list), interior work pays no runtime overhead at all, and all sharing
is explicit — cross-rank dependencies cost a send/recv pair plus
transport latency, and phases end in log-tree collectives
(allreduce/barrier).  This is the hybrid-vs-threads comparison of
Hasta & Mutiara: lowest overhead when communication is sparse, rigid
when it is not.

Ranks here are simulated processes multiplexed onto the machine's
hardware threads (shared-memory transport, eager path).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.sim.task import IterSpace, LoopRegion, TaskGraph, TaskRegion

__all__ = ["rank_for", "rank_graph"]


def rank_for(
    space: IterSpace,
    *,
    nchunks: Optional[int] = None,
    reduction: bool = False,
    work_scale: float = 1.0,
    name: Optional[str] = None,
) -> LoopRegion:
    """A loop block-partitioned over the ranks (one chunk per rank).

    ``reduction=True`` ends the phase in an allreduce instead of a
    barrier.
    """
    params = {
        "nchunks": nchunks,
        "reduction": reduction,
        "work_scale": work_scale,
    }
    return LoopRegion(space, "mpi_loop", params, name or f"mpi[{space.name}]")


def rank_graph(
    graph: Union[TaskGraph, Callable[[int], TaskGraph]],
    *,
    name: str = "mpi-graph",
) -> TaskRegion:
    """A task DAG block-partitioned over ranks with explicit messages."""
    return TaskRegion(graph, "mpi_graph", {}, name)
