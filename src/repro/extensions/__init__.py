"""Extension studies beyond the paper's evaluation.

The paper's related-work section points at studies this repo can now
replicate on the same substrate, and its feature tables describe
mechanisms (task dependences, pipelines, offloading) its own benchmarks
never exercise.  This package fills those gaps:

- :mod:`repro.extensions.uts` — Unbalanced Tree Search (Olivier &
  Prins, cited as [17]): the canonical load-balancing stress test,
  where static partitioning collapses and work stealing shines;
- :mod:`repro.extensions.wavefront` — a blocked 2-D wavefront using
  OpenMP ``task depend`` (Table I's data/event-driven column) against
  the barrier-per-antidiagonal formulation;
- :mod:`repro.extensions.offload_study` — host (36-core worksharing)
  vs. accelerator (CUDA / OpenACC data regions / OpenMP target) on the
  same kernels, exposing the transfer-cost crossover the offloading
  feature rows imply;
- :mod:`repro.extensions.runtimes` — task-runtime *implementations*
  (Cilk, Intel OpenMP, GCC libgomp's central queue), replicating the
  cited Podobas et al. comparison;
- :mod:`repro.extensions.composability` — the paper's composability
  claim: nested OpenMP teams oversubscribe ("mandatory and static"
  parallelism) while Cilk's work stealing composes for free.
"""

from repro.extensions import composability, offload_study, runtimes, uts, wavefront

__all__ = ["composability", "offload_study", "runtimes", "uts", "wavefront"]
