"""Task-runtime implementation comparison (Podobas et al., ref [18]).

The paper's related work cites "a comparative performance study of
common and popular task-centric programming frameworks" across OpenMP
implementations (Intel, GCC/libgomp, ...) and Cilk runtimes.  This
study reruns that comparison's core finding on the simulated machine:

- **Cilk Plus** — THE-protocol per-worker deques, ~20 ns spawns;
- **Intel OpenMP** — lock-based per-worker deques (the paper's
  benchmarked runtime);
- **GCC libgomp** — one *central* task queue protected by one lock:
  every spawn and every dequeue contends, so task-parallel scaling
  collapses at high thread counts (the Podobas finding).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.kernels import fib
from repro.runtime.base import ExecContext
from repro.runtime.workstealing import StealingScheduler
from repro.sim.costs import GCC_COSTS

__all__ = ["RUNTIMES", "compare_task_runtimes", "render_comparison"]

RUNTIMES = ("cilk", "intel_omp", "gcc_libgomp")


def _run(runtime: str, graph, nthreads: int, ctx: ExecContext) -> float:
    if runtime == "cilk":
        sched = StealingScheduler(graph, nthreads, ctx, deque="the")
    elif runtime == "intel_omp":
        sched = StealingScheduler(
            graph, nthreads, ctx, deque="locked", undeferred_single=True
        )
    elif runtime == "gcc_libgomp":
        gcc_ctx = replace(ctx, costs=GCC_COSTS)
        sched = StealingScheduler(
            graph,
            nthreads,
            gcc_ctx,
            deque="locked",
            central_queue=True,
            undeferred_single=True,
        )
    else:
        raise ValueError(f"unknown runtime {runtime!r}; expected one of {RUNTIMES}")
    return sched.run().time


def compare_task_runtimes(
    ctx: Optional[ExecContext] = None,
    *,
    n: int = 20,
    threads: Sequence[int] = (1, 2, 4, 8, 16, 36),
    runtimes: Sequence[str] = RUNTIMES,
) -> dict[str, list[float]]:
    """fib(n) through each runtime implementation; times per thread count.

    Fresh graphs per run keep the schedulers independent.
    """
    ctx = ctx or ExecContext()
    out: dict[str, list[float]] = {}
    for runtime in runtimes:
        times = []
        for p in threads:
            times.append(_run(runtime, fib.graph(n), p, ctx))
        out[runtime] = times
    return out


def render_comparison(
    results: dict[str, list[float]], threads: Sequence[int], n: int
) -> str:
    lines = [f"fib({n}) across task-runtime implementations"]
    lines.append(f"{'runtime':<14}" + "".join(f"{'p=' + str(p):>11}" for p in threads))
    for runtime, times in results.items():
        cells = "".join(f"{t * 1e3:9.2f}ms" for t in times)
        lines.append(f"{runtime:<14}{cells}")
    return "\n".join(lines)
