"""Unbalanced Tree Search (UTS) — the load-balancing stress test.

The paper's related work cites Olivier & Prins's UTS comparison of
OpenMP/Cilk/TBB task runtimes ("only the Intel compiler illustrates
good load balancing on UTS").  UTS counts the nodes of an implicitly
defined random tree whose shape is *unknowable in advance*: a static
partition of the root's subtrees is grossly imbalanced, while a work
stealer rebalances as the tree unfolds.

The tree here is a geometric UTS variant: the root has ``b0``
children; every other node has ``m`` children with probability ``q``.
Like the real UTS workloads, the branching process is slightly
supercritical (``q * m`` just above 1) so the tree grows to the
``max_nodes`` cap with high subtree-size variance — the imbalance that
makes the benchmark interesting.  Generation is deterministic per seed.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.models import cilk, cxx11, openmp, tbb
from repro.sim.machine import Machine
from repro.sim.task import IterSpace, Program, TaskGraph

__all__ = ["UTSTree", "generate_tree", "program", "VERSIONS"]

VERSIONS = ("omp_task", "cilk_spawn", "tbb_task", "cxx_static")

NODE_WORK = 1.2e-6  # one SHA-1-ish hash evaluation per node (UTS spec)


@dataclass(frozen=True)
class UTSTree:
    """An unfolded UTS tree: parent index per node (root = -1)."""

    parents: tuple[int, ...]
    root_children: int

    @property
    def n_nodes(self) -> int:
        return len(self.parents)

    def subtree_sizes(self) -> np.ndarray:
        """Node count of the subtree rooted at every node."""
        sizes = np.ones(self.n_nodes, dtype=np.int64)
        # children are appended after parents, so reverse order accumulates
        for i in range(self.n_nodes - 1, 0, -1):
            sizes[self.parents[i]] += sizes[i]
        return sizes


def generate_tree(
    *,
    b0: int = 8,
    q: float = 0.53,
    m: int = 2,
    seed: int = 19,
    max_nodes: int = 200_000,
) -> UTSTree:
    """Unfold a geometric UTS tree breadth-first (deterministic)."""
    if b0 < 1 or m < 1:
        raise ValueError("b0 and m must be >= 1")
    if not 0.0 <= q < 1.0:
        raise ValueError("q must be in [0, 1)")
    if max_nodes < 1:
        raise ValueError("max_nodes must be >= 1")
    rng = random.Random(seed)
    parents = [-1]
    frontier: deque[int] = deque()
    for _ in range(b0):
        parents.append(0)
        frontier.append(len(parents) - 1)
    while frontier and len(parents) < max_nodes:
        node = frontier.popleft()
        if rng.random() < q:
            for _ in range(m):
                parents.append(node)
                frontier.append(len(parents) - 1)
    return UTSTree(tuple(parents), b0)


def _task_graph(tree: UTSTree) -> TaskGraph:
    g = TaskGraph(f"uts[{tree.n_nodes}]")
    for parent in tree.parents:
        g.add(NODE_WORK, deps=(parent,) if parent >= 0 else (), tag="node")
    return g


def _static_profile(tree: UTSTree) -> IterSpace:
    """The static-partition strawman: the root's ``b0`` subtrees are the
    only units a static scheduler can see, and their sizes are wildly
    unequal."""
    sizes = tree.subtree_sizes()
    top = [i for i, p in enumerate(tree.parents) if p == 0]
    works = np.array([sizes[i] * NODE_WORK for i in top])
    return IterSpace.from_profile(works, max_blocks=len(works), name="uts-subtrees")


def program(
    version: str,
    *,
    machine: Machine,
    b0: int = 8,
    q: float = 0.53,
    m: int = 2,
    seed: int = 19,
    max_nodes: int = 200_000,
) -> Program:
    """UTS in a task-parallel version or the static strawman.

    ``cxx_static`` distributes the root's subtrees as manual chunks over
    bare threads — the best a runtime without dynamic load balancing
    can do on an unpredictable tree.
    """
    tree = generate_tree(b0=b0, q=q, m=m, seed=seed, max_nodes=max_nodes)
    prog = Program(
        f"uts(n={tree.n_nodes})",
        meta={"version": version, "workload": "uts", "n_nodes": tree.n_nodes},
    )
    if version == "omp_task":
        prog.add(openmp.task_graph(_task_graph(tree), name="uts-omp"))
    elif version == "cilk_spawn":
        prog.add(cilk.spawn_graph(_task_graph(tree), name="uts-cilk"))
    elif version == "tbb_task":
        prog.add(tbb.task_spawn_graph(_task_graph(tree), name="uts-tbb"))
    elif version == "cxx_static":
        space = _static_profile(tree)
        prog.add(cxx11.thread_for(space, nchunks=space.niter))
    else:
        raise ValueError(f"unknown UTS version {version!r}; expected one of {VERSIONS}")
    return prog
