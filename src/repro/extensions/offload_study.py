"""Host vs. accelerator study for the offloading feature rows.

Tables I-II credit CUDA / OpenACC / OpenCL / OpenMP with offloading and
explicit data movement; section III.B notes that offloading support
"varies depending how much the offloading features should be integrated
with the parallelism support from CPU side".  This study quantifies the
trade on the simulated hardware pair (36-core host, K40-class device):

- a bandwidth-bound kernel (Axpy) with per-call transfers *loses* to
  the 36-core host — PCIe is ~10x slower than host memory;
- the same kernel inside a data region (OpenACC ``data`` / OpenMP
  ``target data`` / CUDA resident buffers) *wins* once it iterates
  enough times to amortize the one-time copies;
- a compute-bound kernel (Matmul-like) wins on the device even with
  transfers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.models import cuda, openacc, openmp
from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.sim.device import Device, K40
from repro.sim.task import Program

__all__ = ["OffloadComparison", "axpy_offload_study", "crossover_iterations"]


@dataclass
class OffloadComparison:
    """Times (seconds) for one kernel in each placement strategy."""

    host_time: float
    device_per_call: float
    device_resident: float
    iterations: int

    @property
    def per_call_wins(self) -> bool:
        return self.device_per_call < self.host_time

    @property
    def resident_wins(self) -> bool:
        return self.device_resident < self.host_time

    def describe(self) -> str:
        return (
            f"{self.iterations} iterations: host {self.host_time * 1e3:.3f} ms, "
            f"device per-call {self.device_per_call * 1e3:.3f} ms, "
            f"device resident {self.device_resident * 1e3:.3f} ms -> "
            + (
                "device (resident) wins"
                if self.resident_wins
                else "host wins"
            )
        )


def axpy_offload_study(
    ctx: ExecContext,
    *,
    n: int = 8_000_000,
    iterations: int = 10,
    host_threads: int = 36,
    device: Optional[Device] = None,
) -> OffloadComparison:
    """Iterated Axpy: host worksharing vs. device with/without residency.

    Each iteration reads x, y and writes y (24 bytes/element); per-call
    offloading moves 2n doubles in and n doubles out every time, the
    resident version moves them once around the whole loop.
    """
    from repro.kernels import axpy

    dev = device if device is not None else K40
    space = axpy.space(ctx.machine, n)
    in_bytes, out_bytes = 16.0 * n, 8.0 * n

    host = Program("axpy-host")
    percall = Program("axpy-device-percall")
    for _ in range(iterations):
        host.add(openmp.parallel_for(space))
        percall.add(
            cuda.kernel_launch(space, device=dev, copy_in=in_bytes, copy_out=out_bytes)
        )
    resident = Program("axpy-device-resident")
    openacc.data_region(
        resident, [space] * iterations, device=dev, copyin=in_bytes, copyout=out_bytes
    )

    return OffloadComparison(
        host_time=run_program(host, host_threads, ctx).time,
        device_per_call=run_program(percall, 1, ctx).time,
        device_resident=run_program(resident, 1, ctx).time,
        iterations=iterations,
    )


def crossover_iterations(
    ctx: ExecContext,
    *,
    n: int = 8_000_000,
    host_threads: int = 36,
    device: Optional[Device] = None,
    max_iterations: int = 64,
) -> Optional[int]:
    """Smallest iteration count at which the resident device version
    beats the host (None if it never does within the range)."""
    for iters in range(1, max_iterations + 1):
        cmp = axpy_offload_study(
            ctx, n=n, iterations=iters, host_threads=host_threads, device=device
        )
        if cmp.resident_wins:
            return iters
    return None
