"""Blocked 2-D wavefront: task dependences vs. barrier-synchronized.

Table I lists "data/event-driven" parallelism — OpenMP's ``depend``
clause, C++'s ``std::future`` — which the paper's own benchmarks never
exercise.  The canonical workload for it is the wavefront (dynamic
programming / stencils like Smith-Waterman or LU panels): block (i, j)
depends on (i-1, j) and (i, j-1).

Two formulations:

- **depend** — one task per block with real dependences; blocks from
  *different* anti-diagonals overlap freely, and no global barrier ever
  happens (OpenMP ``task depend(in/out)``, or futures);
- **barrier** — the classic loop-over-antidiagonals: a parallel loop
  per diagonal with a fork/barrier each, 2·nb−1 of them, no overlap
  across diagonals.

With small blocks the barrier version drowns in synchronization while
the depend version stays busy — the quantitative argument for the
feature the tables only tick.
"""

from __future__ import annotations


from repro.models import cilk, openmp
from repro.sim.machine import Machine
from repro.sim.task import IterSpace, Program, TaskGraph

__all__ = ["VERSIONS", "wavefront_graph", "program"]

VERSIONS = ("omp_depend", "cilk_spawn_diag", "omp_for_diag", "cxx_future")


def wavefront_graph(nb: int, block_work: float, block_bytes: float = 0.0) -> TaskGraph:
    """The dependence DAG of an ``nb x nb`` blocked wavefront."""
    if nb <= 0:
        raise ValueError("nb must be positive")
    if block_work < 0:
        raise ValueError("block_work must be non-negative")
    g = TaskGraph(f"wavefront[{nb}x{nb}]")
    ids: dict[tuple[int, int], int] = {}
    for i in range(nb):
        for j in range(nb):
            deps = []
            if i > 0:
                deps.append(ids[(i - 1, j)])
            if j > 0:
                deps.append(ids[(i, j - 1)])
            ids[(i, j)] = g.add(block_work, block_bytes, deps=deps, tag="block")
    return g


def program(
    version: str,
    *,
    machine: Machine,
    nb: int = 48,
    block_flops: float = 40_000.0,
    block_bytes: float = 16_384.0,
) -> Program:
    """The wavefront in one of four formulations.

    ``block_flops`` is per-block compute (small blocks make the
    synchronization style matter).
    """
    from repro.kernels.common import op_seconds

    block_work = op_seconds(machine, block_flops, ipc=4.0)
    prog = Program(
        f"wavefront(nb={nb})",
        meta={"version": version, "workload": "wavefront", "nb": nb},
    )
    if version == "omp_depend":
        # single parallel region, tasks with depend clauses
        prog.add(openmp.task_graph(wavefront_graph(nb, block_work, block_bytes),
                                   name="wavefront-depend"))
        return prog
    if version == "cxx_future":
        # std::async per block, futures as dependences; thread-backed
        from repro.models import cxx11

        prog.add(cxx11.async_graph(wavefront_graph(nb, block_work, block_bytes),
                                   name="wavefront-future"))
        return prog
    if version in ("omp_for_diag", "cilk_spawn_diag"):
        # one parallel loop per anti-diagonal: diagonal d holds
        # min(d+1, 2nb-1-d) independent blocks
        for d in range(2 * nb - 1):
            count = min(d + 1, nb, 2 * nb - 1 - d)
            space = IterSpace.uniform(
                count, block_work, block_bytes, name=f"diag{d}"
            )
            if version == "omp_for_diag":
                prog.add(openmp.parallel_for(space))
            else:
                prog.add(cilk.spawn_loop(space, nchunks=count))
        return prog
    raise ValueError(f"unknown wavefront version {version!r}; expected one of {VERSIONS}")
