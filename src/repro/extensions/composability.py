"""The composability problem (paper section III.B).

"Achieving load balancing across cores when there are more tasks than
the number of cores is known as composability problem.  In Cilk Plus,
the composition problem has been addressed through the workstealing
runtime.  In OpenMP, the parallelism of a parallel region is mandatory
and static, i.e., system must run parallel regions in parallel, so it
suffers from the composability problem when there is oversubscription."

The classic trigger: a parallel driver loop over ``p`` items, each item
calling a parallel library routine — with nested parallelism enabled,
``p`` concurrent teams of ``p`` threads each (``p^2`` software threads
on 36 cores).

Mechanisms modelled:

- throughput: the machine's oversubscription regime (time-slicing
  efficiency loss) — mild;
- **descheduled barriers** — the real killer: an OpenMP parallel region
  *must* end in a barrier among its team, and when the team's threads
  are time-sliced against ``p^2`` others, the last thread to arrive has
  to be scheduled back in, costing OS-quantum time rather than
  microseconds.  Charged per inner region once software threads exceed
  hardware contexts;
- Cilk's alternative: nested ``cilk_for`` spawns tasks into the *same*
  ``p`` workers — no extra threads, no mandatory barriers, "composition
  ... addressed through the workstealing runtime".

Strategies compared: ``omp_nested`` (OMP_NESTED=true), ``omp_serialized``
(nested disabled — inner parallelism discarded, the common mitigation)
and ``cilk`` (composed spawns).
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.base import ExecContext
from repro.runtime.worksharing import run_worksharing_loop
from repro.runtime.workstealing import run_stealing_loop
from repro.sim.task import IterSpace

__all__ = ["OS_QUANTUM", "nested_times", "composability_study", "render_composability"]

#: OS scheduling quantum charged to a barrier whose team is descheduled
#: (Linux CFS scheduling latency scale).
OS_QUANTUM = 2e-3


def nested_times(
    ctx: ExecContext,
    nthreads: int,
    *,
    outer: Optional[int] = None,
    inner_n: int = 200_000,
    work_per_iter: float = 5e-9,
) -> dict[str, float]:
    """Simulated time of ``outer`` concurrent inner parallel loops.

    ``outer`` defaults to ``nthreads`` (the driver-loop pattern).
    Returns {"omp_nested", "omp_serialized", "cilk"} -> seconds.
    """
    outer = outer if outer is not None else nthreads
    if outer <= 0:
        raise ValueError("outer must be positive")
    machine = ctx.machine
    costs = ctx.costs
    space = IterSpace.uniform(inner_n, work_per_iter, 0.0, name="inner-loop")

    # --- OpenMP, nested enabled ----------------------------------------
    concurrent = min(outer, nthreads)
    oversub = concurrent * nthreads
    slowdown = machine.compute_speed(nthreads) / machine.compute_speed(oversub)
    rounds = -(-outer // concurrent)
    inner = run_worksharing_loop(
        space, nthreads, ctx, work_scale=slowdown, fork=True, barrier=False
    )
    if oversub > machine.hw_threads:
        # the inner region's mandatory barrier waits for descheduled
        # teammates: OS-quantum scale, growing with the oversubscription
        barrier = OS_QUANTUM * (oversub / machine.hw_threads - 1.0)
    else:
        barrier = costs.barrier_cost(nthreads)
    omp_nested = costs.fork_cost(nthreads) + rounds * (inner.time + barrier)

    # --- OpenMP, nested disabled (inner loops serialize) ----------------
    rounds_ser = -(-outer // nthreads)
    omp_serialized = (
        costs.fork_cost(nthreads)
        + rounds_ser * space.total_work
        + costs.barrier_cost(nthreads)
    )

    # --- Cilk Plus: composed spawns, same worker pool -------------------
    composed = IterSpace.uniform(outer * inner_n, work_per_iter, 0.0, name="composed")
    cilk = run_stealing_loop(
        composed, nthreads, ctx, style="cilk_for", deque="the",
        exit_cost=costs.taskwait,
    )
    return {
        "omp_nested": omp_nested,
        "omp_serialized": omp_serialized,
        "cilk": cilk.time,
    }


def composability_study(
    ctx: Optional[ExecContext] = None,
    *,
    threads: tuple[int, ...] = (4, 8, 16, 36),
    inner_n: int = 200_000,
) -> dict[str, list[float]]:
    """Driver-loop nested parallelism across thread counts."""
    ctx = ctx or ExecContext()
    out: dict[str, list[float]] = {"omp_nested": [], "omp_serialized": [], "cilk": []}
    for p in threads:
        times = nested_times(ctx, p, inner_n=inner_n)
        for k, v in times.items():
            out[k].append(v)
    return out


def render_composability(
    results: dict[str, list[float]], threads: tuple[int, ...]
) -> str:
    lines = [
        "nested parallelism: p concurrent inner loops on p threads (p^2 software threads)"
    ]
    lines.append(f"{'strategy':<16}" + "".join(f"{'p=' + str(p):>11}" for p in threads))
    for name, times in results.items():
        cells = "".join(f"{t * 1e3:9.2f}ms" for t in times)
        lines.append(f"{name:<16}{cells}")
    return "\n".join(lines)
