"""Deterministic fault injection and per-model error-handling semantics.

The paper's Table III records each model's error handling as a static
cell ("C++ exception", "omp cancel", "pthread_cancel", "cancellation
and exception", or nothing at all).  This package makes those cells
*executable*: a :class:`FaultPlan` describes seed-independent,
simulated-time-deterministic faults (task failures, worker stalls,
lock-holder delays, transient bandwidth degradation), and every
runtime executor implements the error-handling discipline of the
models it simulates:

- ``cancel`` — OpenMP ``omp cancel``: chunks already dispatched drain,
  no new chunk issues past the cancellation point (worksharing);
- ``poison`` — Cilk/TBB exception propagation with implicit-sync
  abort: the spawn tree is poisoned, in-flight tasks (and steals)
  finish, nothing new is popped or made ready (work stealing);
- ``rethrow`` — C++11 futures: every chunk runs to completion, the
  master rethrows the stored exception at the join/get (thread pool);
- ``async_cancel`` — ``pthread_cancel``: running threads are
  terminated asynchronously at the failure time, not-yet-created
  threads never start (thread pool);
- ``none`` — models whose Table III entry is "No" (CUDA, OpenACC,
  Cilk data parallelism): the fault is undetected, the region runs to
  completion and every busy second is reported as wasted work.

Accounting is uniform: any region attempt hit by a failure reports
``useful = 0`` and ``wasted = total busy seconds`` in
``meta["fault"]``; the modes differ in *how much* busy time
accumulates after the failure and in whether the error propagates
(and can therefore be retried by a region-level
:class:`~repro.faults.policy.Policy`).
"""

from __future__ import annotations

from repro.faults.accounting import fault_summary
from repro.faults.plan import FAULT_KINDS, Fault, FaultPlan, RegionFaults
from repro.faults.policy import Policy, RegionFailedError
from repro.faults.semantics import ERROR_MODES, error_mode

__all__ = [
    "ERROR_MODES",
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "Policy",
    "RegionFailedError",
    "RegionFaults",
    "error_mode",
    "fault_summary",
]
