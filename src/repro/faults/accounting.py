"""Graceful-degradation accounting over fault-injected results.

Each region attempt executed under a fault plan carries a plain-JSON
``meta["fault"]`` document (written by the executors and by
:func:`repro.runtime.run.run_program`):

``kind``                fault kind that fired ("" when none did)
``error``               injected error message ("" when none)
``mode``                error-handling mode the region ran under
``time``                simulated time at which the failure fired
``failed``              True when the attempt counts as failed
``cancelled``           True when issuing stopped early (cancel/poison/
                        async_cancel)
``cancel_time``         simulated time issuing stopped
``useful``              busy seconds that count as useful work
``wasted``              busy seconds wasted by the failure
``recovery``            backoff seconds charged before the next retry
``issued_after_cancel`` work items issued after the cancellation point
                        (must be 0 — checked by the invariant layer)
``skipped``             work items never issued because of cancellation
``attempt``             0-based attempt index under a retry policy
``triggered``           list of ``[kind, time]`` pairs that fired

:func:`fault_summary` folds these into one program-level document used
by the CLI, the metrics layer, and CI smoke assertions.
"""

from __future__ import annotations

from typing import Any

__all__ = ["fault_summary"]


def fault_summary(result: Any) -> dict[str, Any]:
    """Aggregate useful/wasted/recovery accounting over a SimResult.

    Regions without a ``fault`` meta entry count their whole busy time
    as useful (nothing was injected there).
    """
    useful = wasted = recovery = 0.0
    faults_injected = 0
    failed_regions = 0
    cancelled_regions = 0
    retries = 0
    skipped = 0
    for region in result.regions:
        fault = region.meta.get("fault")
        if not fault:
            useful += region.total_busy
            continue
        useful += float(fault.get("useful", 0.0))
        wasted += float(fault.get("wasted", 0.0))
        recovery += float(fault.get("recovery", 0.0))
        faults_injected += len(fault.get("triggered", ()))
        if fault.get("failed"):
            failed_regions += 1
        if fault.get("cancelled"):
            cancelled_regions += 1
        if fault.get("recovery", 0.0) > 0.0:
            retries += 1  # a backoff was charged: this attempt was retried
        skipped += int(fault.get("skipped", 0))
    return {
        "useful_seconds": useful,
        "wasted_seconds": wasted,
        "recovery_seconds": recovery,
        "faults_injected": faults_injected,
        "failed_regions": failed_regions,
        "cancelled_regions": cancelled_regions,
        "retries": retries,
        "skipped_items": skipped,
    }
