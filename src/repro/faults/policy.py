"""Region-level recovery policies: retry, timeout, backoff.

A :class:`Policy` governs what :func:`repro.runtime.run.run_program`
does when a region attempt fails (its error-handling mode detected an
injected failure) or exceeds a simulated-time budget:

- retry the region up to ``max_retries`` times, charging an
  exponential-backoff delay between attempts (recovery work);
- on exhaustion, either raise :class:`RegionFailedError` (``raise``)
  or continue the program with the region marked failed
  (``continue`` — graceful degradation).

Everything is simulated time; a policy never consults the wall clock,
so policied runs are exactly as deterministic as fault-free ones.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional, Union

__all__ = ["Policy", "RegionFailedError"]

_ON_FAILURE = ("raise", "continue")


class RegionFailedError(RuntimeError):
    """A region exhausted its retry budget under an ``on_failure="raise"``
    policy (or failed with no policy at all)."""

    def __init__(self, region: str, error: str, attempts: int) -> None:
        super().__init__(
            f"region {region!r} failed after {attempts} attempt(s): {error}"
        )
        self.region = region
        self.error = error
        self.attempts = attempts


@dataclass(frozen=True)
class Policy:
    """Recovery policy applied per program region.

    ``max_retries``     extra attempts after the first failure (0 = none).
    ``backoff``         simulated seconds charged before retry ``k`` is
                        ``backoff * backoff_factor ** k``.
    ``backoff_factor``  exponential growth of the backoff delay.
    ``timeout``         region simulated-time budget; an attempt whose
                        time exceeds it counts as failed (kind
                        ``timeout``) even if no fault fired.
    ``on_failure``      ``"raise"`` or ``"continue"`` once retries are
                        exhausted.
    """

    max_retries: int = 0
    backoff: float = 0.0
    backoff_factor: float = 2.0
    timeout: Optional[float] = None
    on_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff < 0.0:
            raise ValueError("backoff must be >= 0")
        if self.timeout is not None and self.timeout <= 0.0:
            raise ValueError("timeout must be > 0")
        if self.on_failure not in _ON_FAILURE:
            raise ValueError(
                f"unknown on_failure {self.on_failure!r}; expected one of "
                + ", ".join(_ON_FAILURE)
            )

    def retry_delay(self, attempt: int) -> float:
        """Backoff charged before retrying after failed attempt ``attempt``."""
        return self.backoff * self.backoff_factor**attempt

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                doc[f.name] = value
        return doc

    @classmethod
    def coerce(cls, value: Union["Policy", dict, None]) -> Optional["Policy"]:
        if value is None:
            return None
        if isinstance(value, Policy):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise ValueError(f"cannot coerce {value!r} into a Policy")
