"""Executable demos for Table III's "Error handling" column.

The paper's table is a static claim ("OpenMP: omp cancel", "Cilk Plus:
x").  Each :class:`FaultDemo` here turns one row into a runnable
experiment: inject a deterministic task failure into the runtime that
models the row and observe the semantics the construct implies —
cancellation draining in-flight work (``omp cancel``), poisoned
stealing deques (TBB / Cilk exception semantics), a future carrying the
exception to the join point (C++11 ``std::async``), asynchronous thread
termination (``pthread_cancel``), a failed command-queue event
(OpenCL), or — for the "x" rows — the kernel running to completion with
every busy second wasted.

:func:`run_demo` executes one demo; :mod:`repro.validate.faultcheck`
runs the whole matrix and checks the observed fault documents against
each row's expectations.  The feature database
(:mod:`repro.features.data`) cross-links each Table III cell to its
demo via ``Support.demo``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import FaultPlan
from repro.runtime.base import ExecContext
from repro.sim.trace import RegionResult

__all__ = ["FaultDemo", "FAULT_DEMOS", "run_demo"]


@dataclass(frozen=True)
class FaultDemo:
    """One Table III row made executable.

    ``expect_*`` fields are the observable semantics the row's construct
    implies; :func:`repro.validate.faultcheck.run_fault_matrix` asserts
    them against the ``meta["fault"]`` document of an actual run.
    """

    model: str            # feature-table model name (repro.features)
    construct: str        # the Table III cell text being demonstrated
    mode: str             # error mode (repro.faults.semantics)
    spec: str             # default --inject spec for the demo
    runtime: str          # which executor family carries the demo
    expect_failed: bool   # attempt counts as failed
    expect_cancelled: bool    # issuing stops at the cancellation point
    expect_skipped: bool      # some work items are never issued
    expect_wasted: bool       # busy seconds are written off as wasted

    def run(
        self, nthreads: int, ctx: ExecContext, tracer=None,
        spec: Optional[str] = None,
    ) -> RegionResult:
        """Execute the demo and return the faulted region result."""
        faults = FaultPlan.parse(spec if spec is not None else self.spec)
        return _RUNNERS[self.model](self, nthreads, ctx, faults, tracer)


def _space(ctx: ExecContext, n: int = 40_000):
    from repro.kernels import axpy

    return axpy.space(ctx.machine, n)


def _run_openmp(demo, p, ctx, faults, tracer):
    # omp cancel for: the failing chunk requests cancellation, chunks
    # already issued drain, the dynamic dispatcher issues no new ones.
    from repro.runtime.worksharing import run_worksharing_loop

    space = _space(ctx)
    return run_worksharing_loop(
        space, p, ctx, schedule="dynamic", chunk=max(1, space.niter // 64),
        tracer=tracer, faults=faults.for_region(space.name, 0), error_mode=demo.mode,
    )


def _run_tbb(demo, p, ctx, faults, tracer):
    # task_group cancellation / exception: the failing task poisons the
    # scheduler; workers stop acquiring, undone descendants are skipped.
    from repro.kernels import fib
    from repro.runtime.workstealing import run_stealing_graph

    graph = fib.graph(12)
    return run_stealing_graph(
        graph, p, ctx, tracer=tracer,
        faults=faults.for_region("fib", 0), error_mode=demo.mode,
    )


def _run_cxx11(demo, p, ctx, faults, tracer):
    # std::async/future: the exception is stored in the shared state and
    # rethrown at future.get(); peers run to completion first.
    from repro.runtime.threadpool import run_threadpool_loop

    space = _space(ctx)
    return run_threadpool_loop(
        space, p, ctx, mode="async", nchunks=8, tracer=tracer,
        faults=faults.for_region(space.name, 0), error_mode=demo.mode,
    )


def _run_pthreads(demo, p, ctx, faults, tracer):
    # pthread_cancel: asynchronous termination — threads not yet created
    # at the cancellation point never start.
    from repro.runtime.threadpool import run_threadpool_loop

    space = _space(ctx)
    return run_threadpool_loop(
        space, p, ctx, mode="thread", nchunks=64, tracer=tracer,
        faults=faults.for_region(space.name, 0), error_mode=demo.mode,
    )


def _run_opencl(demo, p, ctx, faults, tracer):
    # command-queue error event: the kernel fails, the copy-back is
    # skipped and the error surfaces on the host.
    from repro.runtime.offload import run_offload_loop

    space = _space(ctx)
    return run_offload_loop(
        space, p, ctx, to_bytes=space.total_bytes, from_bytes=space.total_bytes,
        tracer=tracer, faults=faults.for_region(space.name, 0),
        error_mode=demo.mode,
    )


def _run_cuda(demo, p, ctx, faults, tracer):
    # Table III "x": no error handling — the kernel runs to completion,
    # the failure is silent, all busy seconds are wasted.
    from repro.runtime.offload import run_offload_loop

    space = _space(ctx)
    return run_offload_loop(
        space, p, ctx, to_bytes=space.total_bytes, from_bytes=space.total_bytes,
        tracer=tracer, faults=faults.for_region(space.name, 0),
        error_mode=demo.mode,
    )


def _run_cilk(demo, p, ctx, faults, tracer):
    # Table III "x" for cilk_for data parallelism: every chunk executes,
    # the wasted-work counter records the cost of not being able to stop.
    from repro.runtime.workstealing import run_stealing_loop

    space = _space(ctx)
    return run_stealing_loop(
        space, p, ctx, style="cilk_for", tracer=tracer,
        faults=faults.for_region(space.name, 0), error_mode=demo.mode,
    )


def _run_charm(demo, p, ctx, faults, tracer):
    # message-driven run-to-completion: a failed entry method cannot be
    # recalled; every chare executes, the failure surfaces at quiescence.
    from repro.runtime.amt import run_charm_loop

    space = _space(ctx)
    return run_charm_loop(
        space, p, ctx, nchares=32, tracer=tracer,
        faults=faults.for_region(space.name, 0), error_mode=demo.mode,
    )


def _run_hpx(demo, p, ctx, faults, tracer):
    # future poisoning: the failed future stores the exception and its
    # transitive dependents never fire (skipped); siblings complete.
    from repro.kernels import fib
    from repro.runtime.amt import run_hpx_graph

    graph = fib.graph(12)
    return run_hpx_graph(
        graph, p, ctx, tracer=tracer,
        faults=faults.for_region("fib", 0), error_mode=demo.mode,
    )


def _run_mpi(demo, p, ctx, faults, tracer):
    # MPI_Abort: the failing rank tears the job down — running chunks
    # are cut off at the failure instant, unstarted chunks never issue.
    from repro.runtime.amt import run_mpi_loop

    space = _space(ctx)
    return run_mpi_loop(
        space, p, ctx, nchunks=32, tracer=tracer,
        faults=faults.for_region(space.name, 0), error_mode=demo.mode,
    )


_RUNNERS = {
    "OpenMP": _run_openmp,
    "TBB": _run_tbb,
    "C++11": _run_cxx11,
    "PThreads": _run_pthreads,
    "OpenCL": _run_opencl,
    "CUDA": _run_cuda,
    "OpenACC": _run_cuda,   # same offload pipeline, same "x" semantics
    "Cilk Plus": _run_cilk,
    "Charm++": _run_charm,
    "HPX": _run_hpx,
    "MPI": _run_mpi,
}


#: Every Table III row, keyed by feature-table model name.  "Yes" rows
#: demonstrate the construct; "x" rows demonstrate its absence (run to
#: completion, non-zero wasted work).
FAULT_DEMOS: dict[str, FaultDemo] = {
    "OpenMP": FaultDemo(
        model="OpenMP", construct="omp cancel", mode="cancel",
        spec="fail:task=2", runtime="worksharing",
        expect_failed=True, expect_cancelled=True,
        expect_skipped=True, expect_wasted=True,
    ),
    "TBB": FaultDemo(
        model="TBB", construct="cancellation and exception", mode="poison",
        spec="fail:task=5", runtime="workstealing",
        expect_failed=True, expect_cancelled=True,
        expect_skipped=True, expect_wasted=True,
    ),
    "C++11": FaultDemo(
        model="C++11", construct="C++ exception", mode="rethrow",
        spec="fail:task=1", runtime="threadpool",
        expect_failed=True, expect_cancelled=False,
        expect_skipped=False, expect_wasted=True,
    ),
    "PThreads": FaultDemo(
        model="PThreads", construct="pthread_cancel", mode="async_cancel",
        spec="fail:task=0", runtime="threadpool",
        expect_failed=True, expect_cancelled=True,
        expect_skipped=True, expect_wasted=True,
    ),
    "OpenCL": FaultDemo(
        model="OpenCL", construct="exceptions", mode="rethrow",
        spec="fail:task=0", runtime="offload",
        expect_failed=True, expect_cancelled=True,
        expect_skipped=True, expect_wasted=True,
    ),
    "CUDA": FaultDemo(
        model="CUDA", construct="x (no error handling)", mode="none",
        spec="fail:task=0", runtime="offload",
        expect_failed=False, expect_cancelled=False,
        expect_skipped=False, expect_wasted=True,
    ),
    "OpenACC": FaultDemo(
        model="OpenACC", construct="x (no error handling)", mode="none",
        spec="fail:task=0", runtime="offload",
        expect_failed=False, expect_cancelled=False,
        expect_skipped=False, expect_wasted=True,
    ),
    "Cilk Plus": FaultDemo(
        model="Cilk Plus", construct="x (no error handling)", mode="none",
        spec="fail:task=3", runtime="workstealing",
        expect_failed=False, expect_cancelled=False,
        expect_skipped=False, expect_wasted=True,
    ),
    "Charm++": FaultDemo(
        model="Charm++", construct="message loss at quiescence", mode="msg_loss",
        spec="fail:task=2", runtime="amt",
        expect_failed=True, expect_cancelled=False,
        expect_skipped=False, expect_wasted=True,
    ),
    "HPX": FaultDemo(
        model="HPX", construct="future poisoning", mode="future_poison",
        spec="fail:task=5", runtime="amt",
        expect_failed=True, expect_cancelled=False,
        expect_skipped=True, expect_wasted=True,
    ),
    "MPI": FaultDemo(
        model="MPI", construct="MPI_Abort on rank failure", mode="rank_fail",
        spec="fail:task=0", runtime="amt",
        expect_failed=True, expect_cancelled=True,
        expect_skipped=True, expect_wasted=True,
    ),
}


def run_demo(
    name: str,
    nthreads: int = 4,
    ctx: Optional[ExecContext] = None,
    tracer=None,
    spec: Optional[str] = None,
) -> RegionResult:
    """Execute one Table III demo by feature-model name."""
    try:
        demo = FAULT_DEMOS[name]
    except KeyError:
        raise KeyError(
            f"unknown fault demo {name!r}; known: {sorted(FAULT_DEMOS)}"
        ) from None
    return demo.run(nthreads, ctx or ExecContext(), tracer=tracer, spec=spec)
