"""Mapping from models/executors to error-handling modes (Table III).

Each mode names the discipline the corresponding runtime executor
implements when a :class:`~repro.faults.plan.FaultPlan` injects a task
failure:

==============  ======================================================
mode            behaviour
==============  ======================================================
``cancel``      ``omp cancel``: running chunks drain, no chunk issues
                past the cancellation point (worksharing executor).
``poison``      Cilk/TBB exception + implicit-sync abort: the spawn
                tree is poisoned, in-flight tasks and steals finish,
                nothing new becomes ready (work-stealing executor).
``rethrow``     C++11 futures / OpenCL host errors: all launched work
                completes, the error is rethrown at the join/get
                (thread-pool and offload executors).
``async_cancel``  ``pthread_cancel``: running threads terminate at the
                failure instant, uncreated threads never start.
``none``        Table III "No" (CUDA, OpenACC, Cilk data-parallel):
                the failure goes undetected; the region completes and
                reports all its busy time as wasted work.
``msg_loss``    Charm++ message-driven execution: entry methods run to
                completion, nothing can be recalled once sent; the
                failure surfaces at quiescence/completion detection.
``future_poison``  HPX dataflow: the failed future stores the
                exception, its transitive dependents never fire
                (skipped), unrelated futures complete.
``rank_fail``   MPI: a rank failure aborts the job (``MPI_Abort``) —
                running chunks cut off at the failure instant,
                unstarted chunks never issue.
==============  ======================================================
"""

from __future__ import annotations

__all__ = ["ERROR_MODES", "error_mode"]

#: All recognised error-handling modes.
ERROR_MODES = (
    "cancel", "poison", "rethrow", "async_cancel", "none",
    "msg_loss", "future_poison", "rank_fail",
)

#: Model-version prefix -> mode.  Matches registry version names
#: (``omp_for``, ``cilk_spawn``, ``cxx_async``, ...) and feature-table
#: model keys (``openmp``, ``tbb``, ``pthreads``, ...).
_PREFIX_MODES = (
    ("omp", "cancel"),
    ("openmp", "cancel"),
    ("tbb", "poison"),
    ("cxx", "rethrow"),
    ("c++11", "rethrow"),
    ("pthread", "async_cancel"),
    ("ocl", "rethrow"),
    ("opencl", "rethrow"),
    ("cuda", "none"),
    ("acc", "none"),
    ("openacc", "none"),
    ("charm", "msg_loss"),
    ("hpx", "future_poison"),
    ("parallex", "future_poison"),
    ("mpi", "rank_fail"),
)

#: Fallback when the version string says nothing: the discipline most
#: natural to the executor itself.  ``stealing_loop`` (cilk_for-style
#: data parallelism) is "none" per Table III's Cilk Plus row; the task
#: executors default to their canonical models.
_EXECUTOR_MODES = {
    "worksharing": "cancel",
    "stealing": "poison",
    "stealing_loop": "none",
    "threadpool": "rethrow",
    "threadpool_graph": "rethrow",
    "offload": "none",
    "charm_loop": "msg_loss",
    "charm_graph": "msg_loss",
    "hpx_loop": "future_poison",
    "hpx_graph": "future_poison",
    "mpi_loop": "rank_fail",
    "mpi_graph": "rank_fail",
}


def error_mode(version: str = "", executor: str = "") -> str:
    """Resolve the error-handling mode for a model version and executor.

    Cilk is the subtle case: ``cilk_spawn`` task parallelism propagates
    exceptions through the implicit sync (``poison``), while ``cilk_for``
    data parallelism has no cancellation story in Table III (``none``) —
    so for ``cilk*`` versions the executor decides.
    """
    v = (version or "").lower()
    if v.startswith("cilk"):
        return "poison" if executor in ("stealing", "") else "none"
    for prefix, mode in _PREFIX_MODES:
        if v.startswith(prefix):
            return mode
    return _EXECUTOR_MODES.get(executor, "none")
