"""Fault plans: deterministic, simulated-time fault descriptions.

A :class:`FaultPlan` is an immutable set of :class:`Fault` records.
Faults are keyed on *simulated* quantities only — region name, task
ordinal, simulated time, worker id — never on wall-clock time or host
randomness, so a plan applied to a fixed-seed run produces bit-identical
results on every execution path (direct, forked sweep worker, cache
replay).

The textual spec grammar accepted by :meth:`FaultPlan.parse` (used by
``repro faults --inject`` and ``repro validate --inject``) is::

    spec    := fault (';' fault)*
    fault   := kind (':' arg (',' arg)*)?
    arg     := key '=' value

e.g. ``fail:task=5``, ``stall:worker=2,at=0.001,duration=0.005``,
``fail:at=1e-3;bandwidth:at=0,duration=0.01,factor=0.5``.

Unknown kinds and unknown argument keys raise :class:`ValueError`, which
the CLI maps to exit code 2 — the same contract as unknown workloads and
models.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Iterable, Optional, Sequence, Union

__all__ = ["FAULT_KINDS", "Fault", "FaultPlan", "RegionFaults"]

#: The four injectable fault kinds.
FAULT_KINDS = ("task_fail", "worker_stall", "lock_delay", "bandwidth_degrade")

#: Short spec aliases accepted by :meth:`FaultPlan.parse`.
_KIND_ALIASES = {
    "fail": "task_fail",
    "task_fail": "task_fail",
    "stall": "worker_stall",
    "worker_stall": "worker_stall",
    "lockdelay": "lock_delay",
    "lock_delay": "lock_delay",
    "bandwidth": "bandwidth_degrade",
    "bandwidth_degrade": "bandwidth_degrade",
}

_FLOAT_KEYS = frozenset({"at", "duration", "factor"})
_INT_KEYS = frozenset({"task", "worker", "attempts"})
_STR_KEYS = frozenset({"region", "error"})


@dataclass(frozen=True)
class Fault:
    """One injectable fault.

    ``kind``      one of :data:`FAULT_KINDS`.
    ``region``    substring of the region name to target ("" = any region).
    ``task``      task/chunk ordinal to fail (``task_fail``; None = first
                  task starting at or after ``at``).
    ``at``        simulated-time trigger (seconds into the region).
    ``worker``    worker id to stall (``worker_stall``; None = any worker).
    ``duration``  stall length / degradation window length (seconds).
    ``factor``    bandwidth multiplier during a degradation window.
    ``error``     error message carried by a ``task_fail``.
    ``attempts``  the fault fires on region attempts ``0..attempts-1``;
                  a retry beyond that runs fault-free (so retries can
                  actually recover).
    """

    kind: str
    region: str = ""
    task: Optional[int] = None
    at: Optional[float] = None
    worker: Optional[int] = None
    duration: float = 0.0
    factor: float = 1.0
    error: str = "injected fault"
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                + ", ".join(FAULT_KINDS)
            )
        if self.kind == "task_fail" and self.task is None and self.at is None:
            raise ValueError("task_fail needs task= or at=")
        if self.kind == "bandwidth_degrade" and not 0.0 < self.factor:
            raise ValueError("bandwidth_degrade needs factor > 0")
        if self.duration < 0.0:
            raise ValueError("duration must be >= 0")
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            if f.name == "kind":
                continue
            value = getattr(self, f.name)
            if value != f.default:
                doc[f.name] = value
        return doc


def _parse_one(text: str) -> Fault:
    head, _, argstr = text.strip().partition(":")
    kind = _KIND_ALIASES.get(head.strip().lower())
    if kind is None:
        raise ValueError(
            f"unknown fault kind {head.strip()!r}; expected one of "
            + ", ".join(sorted(set(_KIND_ALIASES)))
        )
    kwargs: dict[str, Any] = {}
    if argstr.strip():
        for part in argstr.split(","):
            key, eq, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if not eq or not key:
                raise ValueError(f"malformed fault argument {part.strip()!r}")
            if key in _FLOAT_KEYS:
                kwargs[key] = float(raw)
            elif key in _INT_KEYS:
                kwargs[key] = int(raw)
            elif key in _STR_KEYS:
                kwargs[key] = raw
            else:
                raise ValueError(
                    f"unknown fault argument {key!r} for {kind}; expected one of "
                    + ", ".join(sorted(_FLOAT_KEYS | _INT_KEYS | _STR_KEYS))
                )
    return Fault(kind=kind, **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, order-preserving collection of faults."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``--inject`` spec string; raises ValueError on bad input."""
        parts = [p for p in spec.split(";") if p.strip()]
        if not parts:
            raise ValueError(f"empty fault spec {spec!r}")
        return cls(tuple(_parse_one(p) for p in parts))

    @classmethod
    def coerce(
        cls, value: Union["FaultPlan", str, Sequence, dict, None]
    ) -> Optional["FaultPlan"]:
        """Accept a plan, a spec string, a fault list, or a dict form."""
        if value is None:
            return None
        if isinstance(value, FaultPlan):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        faults = []
        for item in value:
            if isinstance(item, Fault):
                faults.append(item)
            elif isinstance(item, dict):
                faults.append(Fault(**item))
            elif isinstance(item, str):
                faults.append(_parse_one(item))
            else:
                raise ValueError(f"cannot coerce {item!r} into a Fault")
        return cls(tuple(faults))

    def to_dict(self) -> dict[str, Any]:
        return {"faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FaultPlan":
        return cls(tuple(Fault(**f) for f in doc.get("faults", ())))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __iter__(self) -> Iterable[Fault]:
        return iter(self.faults)

    def for_region(
        self, name: str, index: int, attempt: int = 0
    ) -> Optional["RegionFaults"]:
        """The live fault set for one attempt of one region, or None.

        A fault matches when its ``region`` field is empty, equals the
        region's positional index (as a decimal string), or is a
        substring of the region's name, and the attempt number is still
        within the fault's ``attempts`` budget.
        """
        live = [
            f
            for f in self.faults
            if attempt < f.attempts
            and (not f.region or f.region == str(index) or f.region in name)
        ]
        if not live:
            return None
        return RegionFaults(live)


class RegionFaults:
    """Stateful per-attempt view of the faults aimed at one region.

    Executors consult it at well-defined points of simulated time; each
    one-shot fault fires at most once per attempt.  ``triggered``
    collects ``(kind, time)`` pairs for accounting.
    """

    def __init__(self, faults: Sequence[Fault]) -> None:
        self._fail = [f for f in faults if f.kind == "task_fail"]
        self._stall = [f for f in faults if f.kind == "worker_stall"]
        self._lock = [f for f in faults if f.kind == "lock_delay"]
        self._bandwidth = [f for f in faults if f.kind == "bandwidth_degrade"]
        self._fail_fired = False
        self._stall_fired = [False] * len(self._stall)
        self._lock_fired = [False] * len(self._lock)
        self.triggered: list[tuple[str, float]] = []

    # -- task failure ---------------------------------------------------
    def fail_task(self, ordinal: int, t: float) -> Optional[str]:
        """Error message if the task with this ordinal, starting at
        simulated time ``t``, should fail; else None.  Fires once."""
        if self._fail_fired:
            return None
        for f in self._fail:
            if f.task is not None:
                if ordinal == f.task:
                    self._fail_fired = True
                    self.triggered.append(("task_fail", t))
                    return f.error
            elif f.at is not None and t >= f.at:
                self._fail_fired = True
                self.triggered.append(("task_fail", t))
                return f.error
        return None

    # -- worker stall ---------------------------------------------------
    def stall(self, worker: int, t: float) -> float:
        """Extra delay (seconds) injected before work starting at ``t``
        on ``worker``.  Each stall fault fires once."""
        delay = 0.0
        for i, f in enumerate(self._stall):
            if self._stall_fired[i]:
                continue
            if f.worker is not None and f.worker != worker:
                continue
            if f.at is not None and t < f.at:
                continue
            self._stall_fired[i] = True
            self.triggered.append(("worker_stall", t))
            delay += f.duration
        return delay

    # -- lock-holder delay ----------------------------------------------
    def lock_delay(self, t: float) -> float:
        """Extra hold time injected into the next lock acquisition at
        or after each fault's trigger time.  Fires once per fault."""
        delay = 0.0
        for i, f in enumerate(self._lock):
            if self._lock_fired[i]:
                continue
            if f.at is not None and t < f.at:
                continue
            self._lock_fired[i] = True
            self.triggered.append(("lock_delay", t))
            delay += f.duration
        return delay

    # -- transient bandwidth degradation --------------------------------
    def slow_factor(self, t: float) -> float:
        """Duration multiplier for work starting at simulated time ``t``.

        A degradation with ``factor=0.5`` halves effective bandwidth, so
        memory-bound durations double (multiplier ``1/factor``) inside
        the window ``[at, at + duration)``.
        """
        mult = 1.0
        for f in self._bandwidth:
            start = f.at or 0.0
            if start <= t < start + f.duration:
                if ("bandwidth_degrade", start) not in self.triggered:
                    self.triggered.append(("bandwidth_degrade", start))
                mult *= 1.0 / f.factor
        return mult

    @property
    def has_fail(self) -> bool:
        return bool(self._fail)

    @property
    def any_fired(self) -> bool:
        return bool(self.triggered)
