"""Sweep-as-a-service: a long-running query service over the sweep cache.

ROADMAP item 2.  The paper's conclusions are one point in a huge
runtime × schedule × grainsize × machine space; this package turns
:func:`repro.sweep.run_sweep` + the sharded content-addressed
:class:`~repro.sweep.cache.ResultCache` into a service that answers
"what-if" experiment matrices from a store that stays cheap at
millions of entries:

- :mod:`repro.serve.protocol` — the wire protocol: JSON matrix
  queries in, NDJSON cell-event streams out;
- :mod:`repro.serve.server`  — the asyncio HTTP front end:
  single-flight dedupe of identical in-flight cells across concurrent
  requests (keyed by ``cache_key``), process-pool fan-out for misses,
  write-through to the shared store, streaming results as cells land;
- :mod:`repro.serve.client`  — the client library;
  ``run_sweep(..., server=URL)`` and ``repro sweep --server`` route
  through it, and the assembled ``SweepResult`` is byte-identical to
  a locally executed sweep.

Stdlib only (``asyncio`` + ``http.client``): no new dependencies.
"""

from repro.serve.client import SERVER_ENV, ServerError, SweepClient, run_sweep_remote
from repro.serve.protocol import PROTOCOL_VERSION, MatrixQuery, ProtocolError
from repro.serve.server import SweepServer

__all__ = [
    "PROTOCOL_VERSION",
    "SERVER_ENV",
    "MatrixQuery",
    "ProtocolError",
    "ServerError",
    "SweepClient",
    "SweepServer",
    "run_sweep_remote",
]
