"""Wire protocol of the sweep service: matrix queries and NDJSON events.

The service speaks minimal HTTP/1.1 carrying a thin JSON protocol —
no framework, no new dependencies:

- ``POST /sweep`` with a :class:`MatrixQuery` JSON body answers with a
  chunk-framed ``application/x-ndjson`` stream: one ``start`` event,
  one ``cell`` event *per cell as it lands* (cache hit, fresh
  simulation, or recorded cell error), and one ``end`` event carrying
  the request's accounting counters.  Cells stream in completion
  order; each names its ``(version, nthreads)`` slot so the client can
  assemble the canonical :class:`~repro.core.experiment.SweepResult`
  regardless of arrival order.
- ``GET /stats`` answers with the server's lifetime telemetry snapshot
  (the ``serve.*`` counters — requests, single-flight dedup hits,
  cache hits, simulations — plus store and in-flight gauges).
- ``GET /healthz`` answers ``{"ok": true}``.

Every ``cell`` event's ``payload`` is the *exact* cache-entry document
(:func:`repro.sweep.executor._encode_entry` output) the direct
``run_sweep`` path stores and replays, so a served result decodes
byte-identically to a local one — the protocol adds framing, never
representation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro.core.experiment import PAPER_THREADS

__all__ = [
    "PROTOCOL_VERSION",
    "MatrixQuery",
    "ProtocolError",
    "cell_event",
    "decode_event",
    "encode_event",
    "end_event",
    "expand_query",
    "fatal_event",
    "start_event",
]

#: Bump when the event vocabulary or query schema changes shape.
PROTOCOL_VERSION = 1

_QUERY_FIELDS = {
    "workload", "versions", "threads", "params", "fidelity", "trace", "refresh",
}


class ProtocolError(ValueError):
    """A malformed query or event document."""


@dataclass(frozen=True)
class MatrixQuery:
    """One experiment-matrix query: the sweep service's unit of request.

    Mirrors :func:`repro.sweep.run_sweep`'s cell-determining arguments
    (workload, versions, threads, params, fidelity, trace) plus the
    ``refresh`` escape hatch.  Jobs/caching are the *server's* policy,
    so they are deliberately absent; fault injection and validation are
    not part of protocol v1 (the local path serves those).
    """

    workload: str
    versions: Optional[tuple[str, ...]] = None
    threads: tuple[int, ...] = tuple(PAPER_THREADS)
    params: Mapping[str, Any] = field(default_factory=dict)
    fidelity: int = 2
    trace: bool = False
    refresh: bool = False

    def __post_init__(self) -> None:
        if not self.workload or not isinstance(self.workload, str):
            raise ProtocolError("workload must be a non-empty string")
        if self.fidelity not in (0, 1, 2):
            raise ProtocolError(f"fidelity must be 0, 1 or 2, got {self.fidelity!r}")
        if not self.threads:
            raise ProtocolError("threads must be non-empty")
        object.__setattr__(self, "threads", tuple(int(p) for p in self.threads))
        if self.versions is not None:
            object.__setattr__(
                self, "versions", tuple(str(v) for v in self.versions)
            )
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "workload": self.workload,
            "threads": list(self.threads),
            "params": dict(self.params),
            "fidelity": self.fidelity,
            "trace": self.trace,
            "refresh": self.refresh,
        }
        if self.versions is not None:
            doc["versions"] = list(self.versions)
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "MatrixQuery":
        if not isinstance(doc, Mapping):
            raise ProtocolError("query must be a JSON object")
        unknown = set(doc) - _QUERY_FIELDS
        if unknown:
            raise ProtocolError(f"unknown query fields: {sorted(unknown)}")
        if "workload" not in doc:
            raise ProtocolError("query is missing 'workload'")
        kwargs: dict[str, Any] = {"workload": doc["workload"]}
        if doc.get("versions") is not None:
            kwargs["versions"] = tuple(doc["versions"])
        if doc.get("threads") is not None:
            kwargs["threads"] = tuple(doc["threads"])
        kwargs["params"] = dict(doc.get("params") or {})
        kwargs["fidelity"] = int(doc.get("fidelity", 2))
        kwargs["trace"] = bool(doc.get("trace", False))
        kwargs["refresh"] = bool(doc.get("refresh", False))
        return cls(**kwargs)


def context_digest(ctx) -> str:
    """Fingerprint of everything an :class:`ExecContext` contributes to
    cell identity (machine, costs, seed, budgets — *not* fidelity,
    which is per-query).  The server advertises its digest in every
    ``start`` event; the client compares against its own expectation,
    so a server simulating a different machine answers with a protocol
    error instead of silently-wrong numbers."""
    from dataclasses import asdict

    doc = {
        "machine": asdict(ctx.machine),
        "costs": asdict(ctx.costs),
        "seed": ctx.seed,
        "max_events": ctx.max_events,
        "thread_cap": ctx.thread_cap,
    }
    import hashlib

    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# NDJSON events
# ---------------------------------------------------------------------------
def start_event(total: int, workload: str, ctx_digest: str = "") -> dict[str, Any]:
    return {
        "type": "start",
        "protocol": PROTOCOL_VERSION,
        "workload": workload,
        "total": int(total),
        "ctx": ctx_digest,
    }


def cell_event(
    version: str,
    nthreads: int,
    key: str,
    status: str,
    payload: dict[str, Any],
) -> dict[str, Any]:
    """One settled cell.  ``status`` is ``hit`` (served from the store),
    ``run`` (freshly simulated/estimated — possibly by *another*
    request this one single-flighted onto), or ``error`` (an expected
    cell error, carried in ``payload["error"]``)."""
    return {
        "type": "cell",
        "version": version,
        "nthreads": int(nthreads),
        "key": key,
        "status": status,
        "payload": payload,
    }


def end_event(counters: Mapping[str, int]) -> dict[str, Any]:
    return {"type": "end", "counters": {k: int(v) for k, v in sorted(counters.items())}}


def fatal_event(message: str) -> dict[str, Any]:
    return {"type": "fatal", "error": str(message)}


def encode_event(event: Mapping[str, Any]) -> bytes:
    """One NDJSON line, ready to write to the stream."""
    return json.dumps(event, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_event(line: bytes) -> dict[str, Any]:
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"undecodable event line: {exc}") from exc
    if not isinstance(doc, dict) or "type" not in doc:
        raise ProtocolError(f"event without a type: {doc!r}")
    return doc


def expand_query(query: MatrixQuery):
    """Expand a query into its (validated) spec, versions and cells.

    Shared by server and client so both sides agree on cell identity
    and ordering; raises ``ValueError`` for unknown workloads/versions
    exactly like :func:`repro.sweep.run_sweep`.
    """
    from repro.core.experiment import ExperimentConfig
    from repro.core.registry import get_workload
    from repro.sweep.cells import expand_cells

    spec = get_workload(query.workload)
    versions = query.versions if query.versions is not None else spec.versions
    for v in versions:
        if v not in spec.versions:
            raise ValueError(f"{query.workload} has no version {v!r}")
    config = ExperimentConfig(
        query.workload, tuple(versions), tuple(query.threads), dict(query.params)
    )
    cells = expand_cells(config, None, None, query.fidelity)
    return spec, config, cells
