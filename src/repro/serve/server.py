"""Sweep-as-a-service: the asyncio front end over the sharded store.

:class:`SweepServer` turns :func:`repro.sweep.run_sweep` + the
content-addressed :class:`~repro.sweep.cache.ResultCache` into a
long-running query service.  A what-if matrix arrives as one ``POST
/sweep`` (:class:`~repro.serve.protocol.MatrixQuery`), is expanded to
:class:`~repro.sweep.cells.SweepCell`\\ s, and every cell is resolved
through exactly one of:

- **store hit** — the cell's content address resolves in the shared
  :class:`ResultCache` (true-LRU, sharded — the PR's corrected store);
- **single-flight join** — an *identical cell of another in-flight
  request* is already being resolved; this request awaits the same
  future instead of re-simulating (``serve.dedup_hit``).  The future
  map is keyed by ``cache_key``, so "identical" means identical in
  every output-determining input, not merely same-named;
- **fresh simulation** — the miss is dispatched to the server's shared
  fork-based process pool (tier-0 estimates run in a thread: an
  estimate costs microseconds, a process hop costs more), written
  through to the store, and the future resolved for every waiter.

Results stream back as NDJSON *as cells land*, so a client sees its
first cells while later ones still simulate — hundreds-of-cells METG
matrices (Task Bench) render incrementally instead of at the end.

Single-flight correctness leans on asyncio's run-to-completion: the
in-flight map is checked and updated with no ``await`` in between, so
two racing requests can never both register the same key.  Eviction
policy lives in the store (``max_entries`` / ``ttl_seconds``); the
server prunes after each request batch that stored new entries.

Telemetry: every request, dedup join, hit, simulation and store error
lands in one lifetime :class:`~repro.perf.spans.PerfRecorder`
(``serve.request``, ``serve.dedup_hit``, ``serve.cache_hit``,
``serve.simulations``, ...) exposed live at ``GET /stats`` and
appended to the :mod:`repro.perf` run ledger on shutdown.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import sys
from time import perf_counter, process_time
from typing import Any, Optional, Union

from repro.perf.spans import PerfRecorder
from repro.runtime.base import ExecContext
from repro.serve import protocol
from repro.serve.protocol import MatrixQuery, ProtocolError
from repro.sweep import executor as _executor
from repro.sweep.cache import DEFAULT_CACHE_DIR, ResultCache, cache_key
from repro.sweep.cells import SweepCell

__all__ = ["SweepServer", "main"]

#: Cap on request body size (a matrix query is tiny; anything bigger
#: is a client bug or abuse).
MAX_BODY_BYTES = 1 << 20

_CRLF = b"\r\n"


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class SweepServer:
    """Async sweep service over one shared :class:`ResultCache`.

    Parameters
    ----------
    cache:
        The store to serve from — a :class:`ResultCache`, a directory
        path, or ``None`` for :data:`DEFAULT_CACHE_DIR`.  Its
        ``max_entries`` / ``ttl_seconds`` policy governs eviction.
    jobs:
        Worker processes for cache-miss simulation (tier-0 estimates
        run in-thread).  On platforms without ``fork`` misses run in a
        thread pool instead — slower, identical results.
    ctx:
        The execution context every query is keyed and simulated under
        (defaults to :class:`ExecContext`'s paper machine).  Protocol
        v1 serves one context per server, exactly like one cache
        directory serves one context's entries.
    """

    def __init__(
        self,
        cache: Union[None, str, ResultCache] = None,
        *,
        jobs: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        ctx: Optional[ExecContext] = None,
    ) -> None:
        if isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache if cache is not None else DEFAULT_CACHE_DIR)
        self.jobs = max(1, int(jobs))
        self.host = host
        self.port = int(port)
        self.ctx = ctx or ExecContext()
        self.perf = PerfRecorder("serve")
        self._inflight: dict[str, asyncio.Future] = {}
        self._conns: set[asyncio.Task] = set()
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._t0 = 0.0
        self._c0 = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> "SweepServer":
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._t0 = perf_counter()
        self._c0 = process_time()
        return self

    async def close(self) -> None:
        """Stop accepting, stop the pool, stamp the lifetime telemetry."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conns:
            # 3.11's Server.wait_closed does not wait for handlers;
            # drain them so no request is abandoned mid-stream
            await asyncio.wait(set(self._conns), timeout=10.0)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.perf.wall = perf_counter() - self._t0
        self.perf.cpu = process_time() - self._c0

    def write_ledger_record(self) -> Optional[dict[str, Any]]:
        """Append the server's lifetime record to the run ledger."""
        from repro.perf import Ledger, make_record

        try:
            ledger = Ledger()
            return ledger.append(
                make_record(
                    "serve",
                    "serve",
                    self.perf,
                    extra={
                        "cache": str(self.cache.root),
                        "jobs": self.jobs,
                        "entries": len(self.cache),
                    },
                )
            )
        except OSError:  # pragma: no cover - host FS dependent
            return None

    def stats(self) -> dict[str, Any]:
        """Live telemetry snapshot (the ``GET /stats`` document)."""
        snap = self.perf.snapshot()
        snap["wall_seconds"] = perf_counter() - self._t0 if self._t0 else 0.0
        snap["inflight"] = len(self._inflight)
        snap["store"] = {
            "root": str(self.cache.root),
            "entries": len(self.cache),
            "max_entries": self.cache.max_entries,
            "ttl_seconds": self.cache.ttl_seconds,
        }
        return snap

    # ------------------------------------------------------------------
    # cell resolution (single-flight + pool fan-out + write-through)
    # ------------------------------------------------------------------
    def _get_pool(self) -> Optional[concurrent.futures.Executor]:
        if self._pool is None:
            pool_ctx = _executor._pool_context()
            if pool_ctx is None:  # pragma: no cover - platform dependent
                return None
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=pool_ctx
            )
        return self._pool

    async def _simulate(self, cell: SweepCell, ctx: ExecContext, trace: bool
                        ) -> dict[str, Any]:
        """Run one miss and return its cache-entry document."""
        loop = asyncio.get_running_loop()
        if cell.fidelity == 0:
            res, err = await loop.run_in_executor(
                None, _executor._estimate_cell_local, cell, ctx
            )
            self.perf.count("serve.estimates")
        else:
            payload = _executor._cell_payload(cell, ctx, trace, validate=False)
            pool = self._get_pool()
            # _exec_cell resolved through the executor module namespace,
            # like the serial path resolves run_program — the test seam.
            if pool is not None:
                out = await loop.run_in_executor(pool, _executor._exec_cell, payload)
            else:  # pragma: no cover - platform dependent
                out = await loop.run_in_executor(None, _executor._exec_cell, payload)
            if "crash" in out:
                raise RuntimeError(
                    f"cell {cell.describe()} failed in worker: "
                    f"{out['crash']}\n{out.get('traceback', '')}"
                )
            err = out.get("error")
            res = (
                _executor.codec.result_from_dict(out["result"])
                if "result" in out
                else None
            )
            self.perf.count("serve.simulations")
        return _executor._encode_entry(cell, res, err, trace)

    async def _resolve_cell(
        self, key: str, cell: SweepCell, ctx: ExecContext, trace: bool, refresh: bool
    ) -> tuple[dict[str, Any], str]:
        """Resolve one cell to ``(entry document, status)``.

        The single-flight discipline: between probing ``_inflight`` and
        registering our future there is no ``await``, so exactly one
        request owns each key's resolution; everyone else joins it.
        """
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.perf.count("serve.dedup_hit")
            doc = await asyncio.shield(inflight)
            return doc, "join"
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        self._inflight[key] = fut
        try:
            doc: Optional[dict[str, Any]] = None
            status = "run"
            if not refresh:
                payload = await loop.run_in_executor(None, self.cache.get, key)
                if payload is not None and _executor._decode_entry(
                    payload, cell.fidelity
                ) is not None:
                    self.perf.count("serve.cache_hit")
                    doc, status = payload, "hit"
            if doc is None:
                doc = await self._simulate(cell, ctx, trace)
                await loop.run_in_executor(None, self.cache.put, key, doc)
                self.perf.count("serve.store")
            fut.set_result(doc)
            return doc, status
        except BaseException as exc:
            if not fut.done():
                fut.set_exception(exc)
                # a joiner may or may not exist; don't let an unobserved
                # future exception warn at GC time
                fut.exception()
            raise
        finally:
            self._inflight.pop(key, None)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conns.add(task)
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._respond_json(
                    writer, exc.status, {"error": str(exc)}
                )
                return
            if method == "GET" and path in ("/healthz", "/health"):
                await self._respond_json(writer, 200, {"ok": True})
            elif method == "GET" and path == "/stats":
                await self._respond_json(writer, 200, self.stats())
            elif method == "POST" and path == "/sweep":
                await self._handle_sweep(writer, body)
            else:
                await self._respond_json(
                    writer, 404, {"error": f"no route {method} {path}"}
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        finally:
            if task is not None:
                self._conns.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader) -> tuple[str, str, bytes]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 3:
            raise _HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (_CRLF, b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise _HttpError(400, "bad Content-Length") from exc
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(content_length) if content_length else b""
        return method, target.split("?", 1)[0], body

    @staticmethod
    async def _write_head(
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        *,
        content_length: Optional[int] = None,
        chunked: bool = False,
    ) -> None:
        """Emit the status line and headers.

        Responses are explicitly framed (``Content-Length`` or chunked
        transfer-encoding) rather than close-delimited: pool workers
        forked mid-stream inherit the connection fd, so a client
        waiting for EOF could wait for the *worker's* lifetime, not the
        response's.
        """
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  413: "Payload Too Large", 500: "Internal Server Error"}
        head = (
            f"HTTP/1.1 {status} {reason.get(status, 'Status')}\r\n"
            f"Content-Type: {content_type}\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n"
        )
        if chunked:
            head += "Transfer-Encoding: chunked\r\n"
        elif content_length is not None:
            head += f"Content-Length: {content_length}\r\n"
        writer.write((head + "\r\n").encode("latin-1"))
        await writer.drain()

    @staticmethod
    async def _write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
        """One HTTP/1.1 chunk; empty ``data`` writes the terminator."""
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + _CRLF)
        await writer.drain()

    async def _respond_json(
        self, writer: asyncio.StreamWriter, status: int, doc: dict[str, Any]
    ) -> None:
        body = json.dumps(doc, separators=(",", ":")).encode("utf-8") + b"\n"
        await self._write_head(
            writer, status, "application/json", content_length=len(body)
        )
        writer.write(body)
        await writer.drain()

    # ------------------------------------------------------------------
    # the sweep route
    # ------------------------------------------------------------------
    async def _handle_sweep(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        self.perf.count("serve.request")
        t0 = perf_counter()
        try:
            query = MatrixQuery.from_dict(json.loads(body.decode("utf-8")))
            _spec, config, cells = protocol.expand_query(query)
        except (KeyError, ValueError, ProtocolError) as exc:
            # KeyError: get_workload's unknown-workload complaint
            self.perf.count("serve.bad_request")
            await self._respond_json(writer, 400, {"error": str(exc)})
            return
        ctx = self.ctx.with_fidelity(query.fidelity)
        keys = [cache_key(c, ctx, trace=query.trace) for c in cells]
        self.perf.count("serve.cells", len(cells))

        await self._write_head(writer, 200, "application/x-ndjson", chunked=True)
        await self._write_chunk(writer, protocol.encode_event(protocol.start_event(
            len(cells), query.workload, protocol.context_digest(self.ctx)
        )))

        async def settle(i: int) -> tuple[int, dict[str, Any], str]:
            doc, status = await self._resolve_cell(
                keys[i], cells[i], ctx, query.trace, query.refresh
            )
            return i, doc, status

        counters = {"cells": len(cells), "hits": 0, "runs": 0, "errors": 0,
                    "dedup_joins": 0}
        tasks = [asyncio.ensure_future(settle(i)) for i in range(len(cells))]
        stored = False
        try:
            for settled in asyncio.as_completed(tasks):
                try:
                    i, doc, status = await settled
                except Exception as exc:
                    # a crashed cell aborts the request, not the server
                    for t in tasks:
                        t.cancel()
                    self.perf.count("serve.failed_request")
                    await self._write_chunk(
                        writer,
                        protocol.encode_event(protocol.fatal_event(str(exc))),
                    )
                    await self._write_chunk(writer, b"")
                    return
                joined = status == "join"
                if joined:
                    # another request's single flight did the work; this
                    # request performed no simulation of its own
                    counters["dedup_joins"] += 1
                    status = "run"
                if status == "hit":
                    counters["hits"] += 1
                else:
                    counters["runs"] += 1
                    stored = stored or not joined
                if "error" in doc:
                    # orthogonal to how the cell was resolved: a cached
                    # or fresh cell error is still a hit/run above
                    status = "error"
                    counters["errors"] += 1
                await self._write_chunk(writer, protocol.encode_event(
                    protocol.cell_event(
                        cells[i].version, cells[i].nthreads, keys[i], status, doc
                    )
                ))
            await self._write_chunk(
                writer, protocol.encode_event(protocol.end_event(counters))
            )
            await self._write_chunk(writer, b"")
        finally:
            self.perf.observe("serve.request_seconds", perf_counter() - t0)
            if stored and (
                self.cache.max_entries is not None or self.cache.ttl_seconds is not None
            ):
                evicted = await asyncio.get_running_loop().run_in_executor(
                    None, self.cache.prune
                )
                if evicted:
                    self.perf.count("serve.evictions", evicted)


# ---------------------------------------------------------------------------
# CLI entry point (``repro serve``)
# ---------------------------------------------------------------------------
async def _serve_until_stopped(server: SweepServer, quiet: bool) -> None:
    await server.start()
    if not quiet:
        print(
            f"repro serve: listening on {server.url} "
            f"(store {server.cache.root}, jobs={server.jobs})",
            file=sys.stderr,
            flush=True,
        )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    import signal

    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-POSIX
            pass
    try:
        await stop.wait()
    finally:
        await server.close()
        record = server.write_ledger_record()
        if not quiet:
            counters = server.perf.counters
            print(
                "repro serve: stopped "
                f"(requests={counters.get('serve.request', 0)}, "
                f"dedup_hits={counters.get('serve.dedup_hit', 0)}, "
                f"cache_hits={counters.get('serve.cache_hit', 0)}, "
                f"simulations={counters.get('serve.simulations', 0)}, "
                f"estimates={counters.get('serve.estimates', 0)})"
                + ("" if record is None else " — ledger record appended"),
                file=sys.stderr,
                flush=True,
            )


def main(
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    cache_dir: Union[None, str] = None,
    jobs: int = 2,
    max_entries: Optional[int] = None,
    ttl_seconds: Optional[float] = None,
    quiet: bool = False,
) -> int:
    """Blocking server entry point behind ``repro serve``."""
    cache = ResultCache(
        cache_dir if cache_dir is not None else DEFAULT_CACHE_DIR,
        max_entries=max_entries,
        ttl_seconds=ttl_seconds,
    )
    server = SweepServer(cache, jobs=jobs, host=host, port=port)
    try:
        asyncio.run(_serve_until_stopped(server, quiet))
    except KeyboardInterrupt:  # pragma: no cover - signal path races
        pass
    return 0
