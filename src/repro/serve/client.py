"""Client library for the sweep service (:mod:`repro.serve.server`).

:class:`SweepClient` is the thin transport: it POSTs a
:class:`~repro.serve.protocol.MatrixQuery` and yields the NDJSON
events as they stream in (stdlib ``http.client`` only — the response
is chunk-framed, and ``http.client`` decodes chunked transfer
transparently, so ``readline`` on the response object is the whole
streaming story).

:func:`run_sweep_remote` is the drop-in integration:
``run_sweep(..., server=URL)`` (or ``REPRO_SWEEP_SERVER`` in the
environment) routes here, and the assembled
:class:`~repro.core.experiment.SweepResult` is indistinguishable from
a locally executed sweep — same decoded results (the payloads are the
exact cache-entry documents the local path stores), same series/errors
assembly, same metrics counter schema, same host-telemetry snapshot
shape.  The benchmark harness and the ``repro sweep`` CLI therefore
need no sweep-shaped code of their own to go remote.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Mapping, Optional, Sequence
from urllib.parse import urlsplit

from repro.core.experiment import PAPER_THREADS, SweepResult
from repro.obs.metrics import MetricsRegistry, result_metrics
from repro.perf.spans import recording as perf_recording
from repro.perf.spans import span as perf_span
from repro.runtime.base import ExecContext
from repro.serve import protocol
from repro.serve.protocol import MatrixQuery

__all__ = ["ServerError", "SweepClient", "run_sweep_remote"]

#: Environment variable naming the sweep service to route through.
SERVER_ENV = "REPRO_SWEEP_SERVER"


class ServerError(RuntimeError):
    """The service refused or aborted a query."""


class SweepClient:
    """Blocking HTTP client for one sweep service endpoint.

    ``url`` accepts ``http://host:port`` or bare ``host:port``.
    """

    def __init__(self, url: str, timeout: float = 600.0) -> None:
        if "//" not in url:
            url = "http://" + url
        parts = urlsplit(url)
        if parts.scheme not in ("", "http"):
            raise ValueError(f"sweep service URL must be http://, got {url!r}")
        if not parts.hostname:
            raise ValueError(f"sweep service URL has no host: {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _connection(self):
        import http.client

        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _get_json(self, path: str) -> dict[str, Any]:
        conn = self._connection()
        try:
            conn.request("GET", path)
            resp = conn.getresponse()
            body = resp.read()
            if resp.status != 200:
                raise ServerError(f"GET {path} -> {resp.status}: {body[:200]!r}")
            return json.loads(body.decode("utf-8"))
        finally:
            conn.close()

    def health(self) -> bool:
        """True when the service answers its health probe."""
        try:
            return bool(self._get_json("/healthz").get("ok"))
        except (OSError, ServerError, ValueError):
            return False

    def stats(self) -> dict[str, Any]:
        """The server's live telemetry snapshot (``serve.*`` counters)."""
        return self._get_json("/stats")

    def query(self, query: MatrixQuery) -> Iterator[dict[str, Any]]:
        """POST one matrix query; yield protocol events as they stream.

        Raises :class:`ServerError` on a non-200 answer or a ``fatal``
        event (the server aborted mid-stream, e.g. a worker crash).
        """
        body = json.dumps(query.to_dict(), separators=(",", ":")).encode("utf-8")
        conn = self._connection()
        try:
            conn.request(
                "POST",
                "/sweep",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            if resp.status != 200:
                detail = resp.read().decode("utf-8", "replace").strip()
                raise ServerError(f"POST /sweep -> {resp.status}: {detail[:500]}")
            while True:
                line = resp.readline()
                if not line:
                    raise ServerError("stream ended before the 'end' event "
                                      "(server died mid-query?)")
                if not line.strip():
                    continue
                event = protocol.decode_event(line)
                if event["type"] == "fatal":
                    raise ServerError(f"server aborted query: {event['error']}")
                yield event
                if event["type"] == "end":
                    # The protocol is self-terminating: 'end' is always
                    # the last event, so don't hold the generator open
                    # waiting on transport EOF.
                    break
        finally:
            conn.close()


def run_sweep_remote(
    workload: str,
    versions: Optional[Sequence[str]] = None,
    threads: Sequence[int] = PAPER_THREADS,
    ctx: Optional[ExecContext] = None,
    *,
    params: Optional[Mapping[str, Any]] = None,
    fidelity: int = 2,
    trace: bool = False,
    refresh: bool = False,
    server: str,
    metrics: Optional[MetricsRegistry] = None,
    progress=None,
) -> SweepResult:
    """Serve one sweep from a running service; returns a ``SweepResult``.

    The result is assembled exactly like the local executor's phase 3:
    every cell event's payload is decoded through the same
    ``_decode_entry``/codec pipeline a cache hit uses, so results are
    byte-identical to the direct :func:`~repro.sweep.run_sweep` path.
    Counter mapping: server ``hits`` → ``cache_hits``, ``runs`` →
    ``simulations``/``estimates`` (by tier), ``dedup_joins`` →
    ``dedup_hits`` — a warm service answers with ``simulations == 0``
    just like a warm local cache.
    """
    from repro.sweep.executor import _decode_entry

    # Protocol v1 serves one execution context per server (the default
    # paper machine) — exactly like one cache directory serves one
    # context's entries.  A custom machine/costs/seed sweep silently
    # answered from the server's context would be *wrong*, not slow, so
    # refuse it here instead.
    if ctx is not None and ctx.with_fidelity(2) != ExecContext().with_fidelity(2):
        raise ValueError(
            "server mode serves the default execution context (protocol v1); "
            "sweeps under a custom machine/cost-model/seed context must run "
            "locally (drop server=/REPRO_SWEEP_SERVER)"
        )
    query = MatrixQuery(
        workload=workload,
        versions=tuple(versions) if versions is not None else None,
        threads=tuple(threads),
        params=dict(params or {}),
        fidelity=int(fidelity),
        trace=bool(trace),
        refresh=bool(refresh),
    )
    spec, config, cells = protocol.expand_query(query)
    slots = {(c.version, c.nthreads): i for i, c in enumerate(cells)}
    client = SweepClient(server)
    reg = metrics if metrics is not None else MetricsRegistry()
    for name in ("sweep_cells", "cache_hits", "cache_misses", "cache_stores",
                 "cache_evictions", "simulations", "estimates", "sweep_errors",
                 "dedup_hits"):
        reg.counter(name)
    reg.counter("sweep_cells").inc(len(cells))

    sweep = SweepResult(config=config, figure=spec.figure, metrics=reg)
    done = 0
    with perf_recording("sweep") as host:
        with perf_span("serve.client_request"):
            events = client.query(query)
            expected_digest = protocol.context_digest(ExecContext())
            for event in events:
                if event["type"] == "start":
                    if event.get("ctx") and event["ctx"] != expected_digest:
                        raise ServerError(
                            "server simulates a different execution context "
                            "(machine/costs/seed) than this client expects; "
                            "refusing to mix result spaces"
                        )
                elif event["type"] == "cell":
                    slot = (event["version"], int(event["nthreads"]))
                    if slot not in slots:
                        raise ServerError(f"server answered unknown cell {slot}")
                    with perf_span("codec.decode"):
                        decoded = _decode_entry(event["payload"], query.fidelity)
                    if decoded is None:
                        raise ServerError(
                            f"undecodable payload for cell {slot} "
                            "(format/fidelity mismatch — server and client "
                            "package versions agree?)"
                        )
                    res, err = decoded
                    done += 1
                    if err is not None:
                        sweep.errors[slot] = err
                        reg.counter("sweep_errors").inc()
                    elif res is not None:
                        sweep.results[slot] = res
                        reg.merge(result_metrics(res))
                    if progress is not None:
                        progress(done, len(cells), cells[slots[slot]],
                                 event["status"])
                elif event["type"] == "end":
                    counters = event["counters"]
                    reg.counter("cache_hits").inc(counters.get("hits", 0))
                    reg.counter("cache_misses").inc(counters.get("runs", 0))
                    owned = counters.get("runs", 0) - counters.get("dedup_joins", 0)
                    sim_counter = "estimates" if query.fidelity == 0 else "simulations"
                    reg.counter(sim_counter).inc(max(0, owned))
                    reg.counter("dedup_hits").inc(counters.get("dedup_joins", 0))
    if done != len(cells):
        raise ServerError(f"server settled {done}/{len(cells)} cells")
    for v in config.versions:
        sweep.series[v] = [
            sweep.results[(v, p)].time if (v, p) in sweep.results else None
            for p in config.threads
        ]
    if host is not None:
        sweep.perf = host.snapshot()
    return sweep
