"""Differential runtime oracle.

Task Bench's lesson (Wu et al., PAPERS.md): overhead claims need an
*independent* oracle, not just the runtime's own accounting.  This
module provides two:

- :func:`run_differential_matrix` — the same iteration space / task
  graph executed by **every** runtime (fork-join worksharing, random
  work stealing over both deque protocols, bare threads) under every
  schedule combination, cross-checked for

  * **determinism** — two runs of the same configuration must produce
    bit-identical times and per-worker statistics (the engine's
    insertion-order tie-break guarantees this);
  * **useful-work equality** — all runtimes execute the same loop, so
    their single-thread busy time must agree within the roofline band
    (a runtime that skips or double-executes chunks falls outside it);
  * **speedup ordering** — one thread must cost about the serial time
    (no hidden parallel-only work), and adding threads must never slow
    a run down by more than the modelled overhead slack;
  * every trace-level invariant from :mod:`repro.validate.invariants`:
    each matrix run carries its own :class:`~repro.obs.tracer.Tracer`
    (stashed in ``meta["trace"]``) whose unified event stream —
    execution spans, lock grants, engine events — is put through
    :func:`~repro.validate.invariants.check_trace`, and whose
    per-worker execution-span seconds are cross-checked against the
    runtime's own ``WorkerStats`` busy accounting.

- :func:`run_registry_audit` — every registered workload x version
  built and executed at reduced size, each result put through the cheap
  invariant pass (the same check the benchmark suite applies).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.runtime.base import ExecContext, ThreadExplosionError
from repro.runtime.run import run_program
from repro.runtime.threadpool import run_threadpool_graph, run_threadpool_loop
from repro.runtime.worksharing import run_worksharing_loop
from repro.runtime.workstealing import run_stealing_graph, run_stealing_loop
from repro.obs.tracer import Tracer
from repro.sim.task import IterSpace, TaskGraph
from repro.sim.trace import RegionResult
from repro.validate.invariants import (
    ValidationReport,
    _tol,
    check_region,
    check_result,
    check_trace,
)

__all__ = [
    "DEFAULT_THREADS",
    "LOOP_KERNELS",
    "loop_runtime_matrix",
    "graph_runtime_matrix",
    "run_differential_matrix",
    "run_registry_audit",
]

#: Thread counts of the cheap matrix (all within the physical cores of
#: the paper machine, where speedup ordering must hold).
DEFAULT_THREADS: tuple[int, ...] = (1, 2, 4, 8)

#: Reduced kernel sizes: big enough that per-chunk overheads stay minor
#: (the ordering checks have modest slack), small enough for CI.
LOOP_KERNELS: dict[str, int] = {
    "axpy": 400_000,
    "sum": 400_000,
    "matvec": 2_000,
    "matmul": 128,
}

#: One thread may cost at most this multiple of the raw roofline serial
#: time (covers fork/join, chunk dispatch, thread creation).
_SERIAL_SLACK = 1.5
_SERIAL_ABS_SLACK = 1e-3
#: More threads may never cost more than this multiple of T_1 (covers
#: ramp-up serialization and placement penalties at these sizes).
_SPEEDUP_SLACK = 1.25
#: Single-thread busy time of any two runtimes on the same loop may
#: differ at most by this factor (roofline max-vs-sum plus split tasks).
_EQUALITY_SPREAD = 2.0


def _kernel_space(name: str, machine, n: int) -> IterSpace:
    from repro.kernels import axpy, matmul, matvec, sumreduce

    modules = {"axpy": axpy, "sum": sumreduce, "matvec": matvec, "matmul": matmul}
    return modules[name].space(machine, n)


def _traced(run):
    """Give every matrix run a fresh tracer, stashed in ``meta["trace"]``."""

    def wrapped(item, p, ctx):
        tracer = Tracer()
        res = run(item, p, ctx, tracer)
        res.meta["trace"] = tracer
        return res

    return wrapped


def loop_runtime_matrix() -> dict[str, Callable[[IterSpace, int, ExecContext], RegionResult]]:
    """Every loop runtime x schedule combination under test."""

    def ws(schedule):
        return _traced(
            lambda s, p, ctx, tr: run_worksharing_loop(s, p, ctx, schedule=schedule, tracer=tr)
        )

    def steal(style, deque):
        return _traced(
            lambda s, p, ctx, tr: run_stealing_loop(
                s, p, ctx, style=style, deque=deque, tracer=tr
            )
        )

    def pool(mode):
        return _traced(
            lambda s, p, ctx, tr: run_threadpool_loop(s, p, ctx, mode=mode, tracer=tr)
        )

    from repro.runtime.amt import run_charm_loop, run_hpx_loop, run_mpi_loop

    def amt(run_loop):
        return _traced(lambda s, p, ctx, tr: run_loop(s, p, ctx, tracer=tr))

    return {
        "worksharing/static": ws("static"),
        "worksharing/dynamic": ws("dynamic"),
        "worksharing/guided": ws("guided"),
        "workstealing/cilk_for/the": steal("cilk_for", "the"),
        "workstealing/cilk_for/locked": steal("cilk_for", "locked"),
        "workstealing/flat/the": steal("flat", "the"),
        "workstealing/flat/locked": steal("flat", "locked"),
        "threadpool/thread": pool("thread"),
        "threadpool/async": pool("async"),
        "charm/loop": amt(run_charm_loop),
        "hpx/loop": amt(run_hpx_loop),
        "mpi/loop": amt(run_mpi_loop),
    }


def graph_runtime_matrix() -> dict[str, Callable[[TaskGraph, int, ExecContext], RegionResult]]:
    """Every task-graph runtime under test (fib-style spawn trees)."""

    def steal(deque, work_first=False):
        return _traced(
            lambda g, p, ctx, tr: run_stealing_graph(
                g, p, ctx, deque=deque, work_first=work_first, tracer=tr
            )
        )

    from repro.runtime.amt import run_charm_graph, run_hpx_graph, run_mpi_graph

    def amt(run_graph):
        return _traced(lambda g, p, ctx, tr: run_graph(g, p, ctx, tracer=tr))

    return {
        "stealing/the": steal("the"),
        "stealing/locked": steal("locked"),
        "stealing/the/work_first": steal("the", work_first=True),
        "threadpool_graph/async": _traced(
            lambda g, p, ctx, tr: run_threadpool_graph(g, p, ctx, mode="async", tracer=tr)
        ),
        "charm_graph": amt(run_charm_graph),
        "hpx_graph": amt(run_hpx_graph),
        "mpi_graph": amt(run_mpi_graph),
    }


def _stats_snapshot(res: RegionResult) -> tuple:
    return (
        res.time,
        tuple((w.busy, w.overhead, w.tasks, w.steals, w.failed_steals) for w in res.workers),
    )


def _check_trace_busy(
    rep: ValidationReport, res: RegionResult, trace: Tracer, where: str
) -> None:
    """Tracer-vs-stats cross-check: the execution spans each worker
    emitted must account for exactly the busy seconds its stats claim."""
    if res.meta and res.meta.get("aggregate_workers"):
        return
    sums = [0.0] * len(res.workers)
    for s in trace.exec_spans():
        if 0 <= s.worker < len(sums):
            sums[s.worker] += s.duration
    for i, (w, got) in enumerate(zip(res.workers, sums)):
        rep.check(
            abs(w.busy - got) <= _tol(w.busy),
            "trace-busy-mismatch",
            f"{where} worker[{i}]",
            f"stats busy {w.busy:.9g} != traced exec spans {got:.9g}",
        )


def _check_case(
    rep: ValidationReport,
    runner: Callable[[int], RegionResult],
    threads: Sequence[int],
    ctx: ExecContext,
    where: str,
    *,
    serial: Optional[float] = None,
    per_thread: float = 0.0,
) -> dict[int, RegionResult]:
    """Run one (workload, runtime) cell across ``threads`` and check it.

    ``per_thread`` is the modelled per-thread fixed cost (serial thread
    creation + join for the bare-thread runtime) that legitimately makes
    T_p grow with p on small inputs — the speedup-ordering check allows
    it on top of the slack factor.
    """
    results: dict[int, RegionResult] = {}
    for p in threads:
        r1 = runner(p)
        r2 = runner(p)
        rep.check(
            _stats_snapshot(r1) == _stats_snapshot(r2),
            "determinism",
            f"{where} p={p}",
            f"repeated runs disagree: {r1.time!r} vs {r2.time!r}",
        )
        check_region(r1, ctx=ctx, report=rep, where=f"{where} p={p}")
        trace = (r1.meta or {}).get("trace")
        if trace is not None:
            trace2 = (r2.meta or {}).get("trace")
            if trace2 is not None:
                rep.check(
                    trace.spans == trace2.spans
                    and trace.engine_events == trace2.engine_events,
                    "determinism-trace",
                    f"{where} p={p}",
                    "repeated runs emitted different event traces",
                )
            check_trace(trace, horizon=r1.time, report=rep, where=f"{where} p={p}")
            _check_trace_busy(rep, r1, trace, f"{where} p={p}")
        results[p] = r1
    t1 = results[min(threads)].time if 1 in threads else None
    if 1 in threads:
        t1 = results[1].time
        if serial is not None:
            rep.check(
                t1 >= serial * (1 - 1e-9),
                "serial-lower",
                where,
                f"T_1 {t1:.9g} below raw serial time {serial:.9g}",
            )
            rep.check(
                t1 <= serial * _SERIAL_SLACK + _SERIAL_ABS_SLACK,
                "serial-band",
                where,
                f"T_1 {t1:.9g} not within {_SERIAL_SLACK}x of serial {serial:.9g}",
            )
        for p, res in results.items():
            if p > 1:
                allowed = t1 * _SPEEDUP_SLACK + p * per_thread
                rep.check(
                    res.time <= allowed,
                    "speedup-ordering",
                    f"{where} p={p}",
                    f"T_{p} {res.time:.9g} exceeds allowed {allowed:.9g} "
                    f"({_SPEEDUP_SLACK}x T_1 {t1:.9g} + {p} threads overhead)",
                )
    return results


def _per_thread_allowance(combo: str, ctx: ExecContext) -> float:
    """Modelled fixed cost per created thread for the given runtime."""
    if combo.startswith("threadpool"):
        c = ctx.costs
        if combo.endswith("async"):
            return c.async_create + c.future_get
        return c.thread_create + c.thread_join
    return 0.0


def run_differential_matrix(
    ctx: Optional[ExecContext] = None,
    *,
    threads: Sequence[int] = DEFAULT_THREADS,
    fib_n: int = 14,
    report: Optional[ValidationReport] = None,
) -> ValidationReport:
    """Cross-check every kernel x runtime x schedule combination."""
    from repro.kernels import fib

    ctx = ctx or ExecContext()
    rep = report if report is not None else ValidationReport()

    for kernel, n in LOOP_KERNELS.items():
        space = _kernel_space(kernel, ctx.machine, n)
        serial = ctx.duration(space.total_work, space.total_bytes, space.locality, 1)
        busy_at_1: dict[str, float] = {}
        for combo, run in loop_runtime_matrix().items():
            where = f"diff[{kernel}] {combo}"
            results = _check_case(
                rep, lambda p, run=run: run(space, p, ctx), threads, ctx, where,
                serial=serial, per_thread=_per_thread_allowance(combo, ctx),
            )
            if 1 in results:
                busy_at_1[combo] = results[1].total_busy
        # Useful-work equality: every runtime executed the same loop.
        if busy_at_1:
            lo_combo = min(busy_at_1, key=busy_at_1.get)
            hi_combo = max(busy_at_1, key=busy_at_1.get)
            lo, hi = busy_at_1[lo_combo], busy_at_1[hi_combo]
            rep.check(
                hi <= lo * _EQUALITY_SPREAD + 1e-12,
                "useful-work-equality",
                f"diff[{kernel}]",
                f"single-thread busy disagrees {hi / max(lo, 1e-30):.3f}x: "
                f"{hi_combo}={hi:.9g} vs {lo_combo}={lo:.9g}",
            )

    graph = fib.graph(fib_n)
    serial_graph = graph.total_work()
    for combo, run in graph_runtime_matrix().items():
        where = f"diff[fib({fib_n})] {combo}"
        # threadpool graphs pay a huge (modelled, intentional) per-task
        # thread-creation cost, so the serial band only applies to the
        # work-stealing runtimes.
        band = serial_graph if combo.startswith("stealing") else None
        _check_case(
            rep, lambda p, run=run: run(graph, p, ctx), threads, ctx, where,
            serial=band,
        )
    return rep


def run_registry_audit(
    ctx: Optional[ExecContext] = None,
    *,
    threads: Sequence[int] = (1, 4),
    versions: Optional[Sequence[str]] = None,
    report: Optional[ValidationReport] = None,
) -> ValidationReport:
    """Invariant-check every registered workload x version.

    Workloads run at their ``validation_params`` (tiny, structure-
    preserving sizes).  A :class:`ThreadExplosionError` is the modelled
    C++11 hang, not an invariant violation, and is skipped.  An explicit
    ``versions`` sequence restricts the audit to those version names
    (``repro validate --model``).
    """
    from repro.core.registry import WORKLOADS

    ctx = ctx or ExecContext()
    rep = report if report is not None else ValidationReport()
    for name, spec in sorted(WORKLOADS.items()):
        params = dict(spec.validation_params or spec.default_params)
        for version in spec.versions:
            if versions is not None and version not in versions:
                continue
            for p in threads:
                try:
                    prog = spec.build(version, ctx.machine, **params)
                    res = run_program(prog, p, ctx, version)
                except ThreadExplosionError:
                    continue  # the paper's reproduced "system hangs"
                check_result(res, ctx=ctx, report=rep,
                             where=f"registry[{name}/{version}] p={p}")
    return rep
