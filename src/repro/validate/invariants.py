"""Trace invariant checker: is a simulation result physically plausible?

Every invariant here rules out a class of runtime-accounting bug that
would silently invalidate the paper's cross-runtime comparisons:

- **interval-overlap** — a worker executing two tasks at once means the
  scheduler double-booked a core; any speedup measured from such a trace
  is fiction.
- **event-monotonic** — the engine's clock ran backwards (or broke its
  insertion-order tie-break), so "earlier/later" in the trace is
  meaningless.
- **work-conservation** — total busy seconds must land inside the cost
  model's envelope ``[max(W, B/bw_1), W/speed_p + B/bw_min]``: below it
  the runtime dropped work (chunks skipped), above it work was invented
  or double-executed.
- **lock-exclusivity** — two overlapping :class:`~repro.sim.engine.SimLock`
  grant windows mean the deque/loop-counter serialization the paper's
  contention findings rest on was not actually enforced.
- **makespan bounds** — a finish time below the critical path or below
  ``busy / p`` is a scheduling miracle, i.e. an accounting bug.
- **worker-wallclock** — one worker's busy + overhead seconds cannot
  exceed the region's wall-clock time (workers are sequential).
- **fault accounting** — regions run under a :mod:`repro.faults` plan
  must split busy seconds exactly into useful + wasted, credit no
  useful work to failed attempts, issue nothing after a cancellation
  point, and never re-run a region after a successful attempt
  (retry idempotency).  Work-conservation and critical-path bounds are
  suspended for attempts where a fault actually fired — dropped and
  slowed work is the *point* of the injection.

Checks accumulate into a :class:`ValidationReport`; callers either
inspect ``report.ok`` or call :meth:`ValidationReport.raise_if_failed`.
All tolerances are relative (``_RTOL``) with a tiny absolute floor, so
the checker works unchanged from nanosecond lock holds to second-scale
makespans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.runtime.base import ExecContext
from repro.sim.trace import RegionResult, SimResult

__all__ = [
    "SimulationInvariantError",
    "Violation",
    "ValidationReport",
    "busy_envelope",
    "check_event_times",
    "check_intervals",
    "check_lock_log",
    "check_region",
    "check_result",
    "check_trace",
]

#: Relative tolerance for float comparisons (sums accumulated in
#: different orders agree to far better than this).
_RTOL = 1e-6
#: Absolute floor so zero-valued quantities compare cleanly.
_ATOL = 1e-12


class SimulationInvariantError(AssertionError):
    """A simulation result violated a physical-plausibility invariant."""


@dataclass(frozen=True)
class Violation:
    """One failed invariant check."""

    invariant: str  # short id, e.g. "interval-overlap"
    where: str      # which result/region/worker
    detail: str     # the numbers that disagree

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.where}: {self.detail}"


@dataclass
class ValidationReport:
    """Accumulated outcome of a validation run."""

    checks: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def check(self, condition: bool, invariant: str, where: str, detail: str = "") -> bool:
        """Count one check; record a :class:`Violation` when it fails."""
        self.checks += 1
        if not condition:
            self.violations.append(Violation(invariant, where, detail))
        return condition

    def merge(self, other: "ValidationReport") -> "ValidationReport":
        self.checks += other.checks
        self.violations.extend(other.violations)
        return self

    def describe(self, max_violations: int = 25) -> str:
        if self.ok:
            return f"OK: {self.checks} invariant checks passed"
        lines = [f"FAILED: {len(self.violations)} of {self.checks} invariant checks"]
        for v in self.violations[:max_violations]:
            lines.append(f"  {v}")
        hidden = len(self.violations) - max_violations
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise SimulationInvariantError(self.describe())


def _tol(scale: float) -> float:
    """Comparison slack appropriate for a quantity of magnitude ``scale``."""
    return _RTOL * abs(scale) + _ATOL


# ---------------------------------------------------------------------------
# Primitive log checks
# ---------------------------------------------------------------------------
def check_intervals(
    intervals: Iterable[tuple[int, float, float, str]],
    nworkers: int,
    *,
    horizon: Optional[float] = None,
    report: Optional[ValidationReport] = None,
    where: str = "intervals",
) -> ValidationReport:
    """Audit recorded busy intervals ``(worker, start, end, tag)``.

    Checks: worker ids in range, intervals well-ordered (start <= end)
    and non-negative, within the region horizon when given, and — the
    key one — **no two intervals of the same worker overlap**.
    """
    rep = report if report is not None else ValidationReport()
    per_worker: dict[int, list[tuple[float, float]]] = {}
    for w, s, e, _tag in intervals:
        rep.check(0 <= w < nworkers, "interval-worker-range", where,
                  f"worker {w} outside 0..{nworkers - 1}")
        rep.check(s >= -_ATOL, "interval-nonnegative", where,
                  f"worker {w} interval starts at {s}")
        rep.check(e >= s - _tol(e), "interval-ordered", where,
                  f"worker {w} interval [{s}, {e}) ends before it starts")
        if horizon is not None:
            rep.check(e <= horizon + _tol(horizon), "interval-horizon", where,
                      f"worker {w} interval ends at {e} past horizon {horizon}")
        per_worker.setdefault(w, []).append((s, e))
    for w, ivs in per_worker.items():
        ivs.sort()
        prev_end = 0.0
        prev = None
        for s, e in ivs:
            if prev is not None:
                rep.check(
                    s >= prev_end - _tol(prev_end),
                    "interval-overlap",
                    where,
                    f"worker {w} busy [{s:.9g}, {e:.9g}) overlaps "
                    f"[{prev[0]:.9g}, {prev[1]:.9g})",
                )
            prev_end = max(prev_end, e)
            prev = (s, e)
    return rep


def check_lock_log(
    log: Sequence[tuple[float, float, float]],
    *,
    report: Optional[ValidationReport] = None,
    where: str = "lock",
) -> ValidationReport:
    """Audit a :class:`~repro.sim.engine.SimLock` grant log.

    Entries are ``(request, grant, hold)``.  Checks causality (no grant
    before its request, no negative hold) and mutual exclusion: sorted
    by grant time, each grant window ``[grant, grant + hold)`` must not
    overlap the previous one.
    """
    rep = report if report is not None else ValidationReport()
    for req, grant, hold in log:
        rep.check(grant >= req - _tol(req), "lock-causality", where,
                  f"granted at {grant} before request at {req}")
        rep.check(hold >= 0.0, "lock-hold-nonnegative", where, f"hold {hold} < 0")
    ordered = sorted(log, key=lambda entry: entry[1])
    prev_release = 0.0
    for _req, grant, hold in ordered:
        rep.check(
            grant >= prev_release - _tol(prev_release),
            "lock-exclusivity",
            where,
            f"grant at {grant:.9g} inside previous hold ending {prev_release:.9g}",
        )
        prev_release = max(prev_release, grant + hold)
    return rep


def check_event_times(
    events: Sequence[tuple[float, int]],
    *,
    report: Optional[ValidationReport] = None,
    where: str = "engine",
) -> ValidationReport:
    """Audit an engine event log ``(time, seq)``.

    The simulated clock must never run backwards, and simultaneous
    events must fire in insertion order (the determinism guarantee the
    whole reproduction rests on).
    """
    rep = report if report is not None else ValidationReport()
    prev_t, prev_seq = None, None
    for t, seq in events:
        if prev_t is not None:
            rep.check(t >= prev_t, "event-monotonic", where,
                      f"clock went backwards: {prev_t} -> {t}")
            if t == prev_t:
                rep.check(seq > prev_seq, "event-tie-order", where,
                          f"tie at t={t} fired seq {seq} after seq {prev_seq}")
        prev_t, prev_seq = t, seq
    return rep


# ---------------------------------------------------------------------------
# Work-conservation envelope
# ---------------------------------------------------------------------------
def busy_envelope(
    work: float,
    membytes: float,
    locality: float,
    p_eff: int,
    ctx: ExecContext,
    *,
    locality_min: Optional[float] = None,
) -> tuple[float, float]:
    """Bounds on total busy seconds for executing (``work``, ``membytes``).

    Lower bound: per-thread compute speed never exceeds 1.0 and
    per-thread bandwidth never exceeds the single-thread figure, and the
    roofline takes the max of the two terms, so total busy can never be
    below ``max(work, membytes / bw(1))``.  Upper bound: the slowest
    regime any of up to ``p_eff`` concurrently active threads can be in
    (SMT sharing, oversubscription, saturated bandwidth), with compute
    and memory fully serialized.  Anything outside this envelope dropped
    or invented work.

    When the bytes carry mixed access localities, ``locality`` must be
    the *best* (highest) one present — it bounds bandwidth from above for
    the lower edge — and ``locality_min`` the worst, for the upper edge.
    """
    machine = ctx.machine
    lower = work
    upper = 0.0
    # candidate active-thread counts: bandwidth share is not monotone
    # (socket spanning adds aggregate bandwidth), so scan the range.
    scan = min(p_eff, 4 * machine.hw_threads)
    candidates = set(range(1, scan + 1))
    candidates.add(p_eff)
    min_speed = min(machine.compute_speed(a) for a in candidates)
    upper = work / min_speed
    if membytes > 0:
        bw_best = machine.bandwidth_per_thread(1, locality)
        lower = max(lower, membytes / bw_best)
        loc_lo = locality if locality_min is None else locality_min
        bw_worst = min(machine.bandwidth_per_thread(a, loc_lo) for a in candidates)
        upper += membytes / bw_worst
    return lower, upper


# ---------------------------------------------------------------------------
# Region / result checks
# ---------------------------------------------------------------------------
def check_region(
    region: RegionResult,
    *,
    ctx: Optional[ExecContext] = None,
    report: Optional[ValidationReport] = None,
    where: str = "region",
) -> ValidationReport:
    """Audit one :class:`~repro.sim.trace.RegionResult`.

    Structural checks always run; work conservation and throughput caps
    additionally need ``ctx`` (for the machine model) and the
    ``expected_work``/``expected_bytes`` meta the executors record;
    interval / lock / event audits run whenever the region carries the
    corresponding logs (``meta["intervals"]``, ``meta["lock_audit"]``,
    ``meta["event_times"]``).
    """
    rep = report if report is not None else ValidationReport()
    meta = region.meta or {}
    time = region.time
    aggregate = bool(meta.get("aggregate_workers"))
    p_eff = max(region.nthreads, len(region.workers), 1)

    rep.check(time >= -_ATOL, "region-time-nonnegative", where, f"time {time} < 0")
    rep.check(region.nthreads >= 1, "region-nthreads-positive", where,
              f"nthreads {region.nthreads}")

    total_busy = 0.0
    max_busy = 0.0
    for i, w in enumerate(region.workers):
        wtag = f"{where} worker[{i}]"
        rep.check(w.busy >= -_ATOL and w.overhead >= -_ATOL,
                  "worker-stats-nonnegative", wtag,
                  f"busy={w.busy} overhead={w.overhead}")
        rep.check(w.tasks >= 0 and w.steals >= 0 and w.failed_steals >= 0,
                  "worker-counts-nonnegative", wtag,
                  f"tasks={w.tasks} steals={w.steals} failed={w.failed_steals}")
        if not aggregate:
            rep.check(
                w.busy + w.overhead <= time + _tol(time),
                "worker-wallclock",
                wtag,
                f"busy+overhead {w.busy + w.overhead:.9g} exceeds region time {time:.9g}",
            )
        total_busy += w.busy
        max_busy = max(max_busy, w.busy)

    # Aggregate throughput: the whole machine cannot deliver more busy
    # seconds than (workers) x (wall clock).
    if aggregate and ctx is not None:
        cap = max(float(p_eff), ctx.machine.physical_cores * ctx.machine.smt_throughput)
    else:
        cap = float(p_eff)
    rep.check(
        total_busy <= time * cap + _tol(time * cap),
        "aggregate-throughput",
        where,
        f"busy {total_busy:.9g} > {cap:.0f} workers x time {time:.9g}",
    )
    if region.workers and not aggregate:
        rep.check(time >= max_busy - _tol(max_busy), "makespan-worker", where,
                  f"time {time:.9g} below busiest worker {max_busy:.9g}")

    fault = meta.get("fault")
    fault_fired = bool(fault) and bool(
        fault.get("triggered") or fault.get("cancelled") or fault.get("skipped")
    )

    cp = meta.get("critical_path")
    if cp is not None and not fault_fired:
        # a cancelled/degraded region legitimately finishes off the
        # fault-free critical path (early on cancel, late on slowdown)
        rep.check(time >= cp - _tol(cp), "makespan-critical-path", where,
                  f"time {time:.9g} below critical path {cp:.9g}")

    if fault:
        useful = float(fault.get("useful", 0.0))
        wasted = float(fault.get("wasted", 0.0))
        rep.check(
            abs(useful + wasted - total_busy) <= _tol(total_busy) + _tol(useful + wasted),
            "fault-accounting",
            where,
            f"useful {useful:.9g} + wasted {wasted:.9g} != busy {total_busy:.9g}",
        )
        if fault.get("failed"):
            rep.check(useful <= _tol(wasted), "fault-failed-no-useful", where,
                      f"failed attempt credits useful work {useful:.9g}")
        if fault.get("cancelled"):
            issued = int(fault.get("issued_after_cancel", 0))
            rep.check(issued == 0, "fault-cancel-issues", where,
                      f"{issued} work items issued after the cancellation point")
            cancel_time = float(fault.get("cancel_time", 0.0))
            rep.check(cancel_time <= time + _tol(time), "fault-cancel-time", where,
                      f"cancel at {cancel_time:.9g} after region end {time:.9g}")

    expected = meta.get("expected_work")
    if expected is not None and ctx is not None and not fault_fired:
        membytes = float(meta.get("expected_bytes", 0.0))
        locality = float(meta.get("expected_locality", 1.0))
        loc_min = meta.get("expected_locality_min")
        lower, upper = busy_envelope(
            expected, membytes, locality, p_eff, ctx,
            locality_min=None if loc_min is None else float(loc_min),
        )
        if aggregate:
            # aggregate stats record raw work seconds (the coarse
            # thread-per-task model), so only pure work bounds it below
            lower = min(lower, expected)
        rep.check(
            total_busy >= lower - _tol(lower),
            "work-conservation-lower",
            where,
            f"busy {total_busy:.9g} below minimum {lower:.9g} "
            f"(work {expected:.9g}, bytes {membytes:.9g}) — work was dropped",
        )
        rep.check(
            total_busy <= upper + _tol(upper),
            "work-conservation-upper",
            where,
            f"busy {total_busy:.9g} above maximum {upper:.9g} "
            f"(work {expected:.9g}, bytes {membytes:.9g}) — work was invented",
        )

    intervals = meta.get("intervals")
    if intervals is not None:
        check_intervals(intervals, p_eff, horizon=time, report=rep, where=where)
        # Cross-check: recorded intervals must account for exactly the
        # busy seconds in the worker stats.
        if not aggregate:
            sums = [0.0] * len(region.workers)
            for w, s, e, _tag in intervals:
                if 0 <= w < len(sums):
                    sums[w] += e - s
            for i, (w, got) in enumerate(zip(region.workers, sums)):
                rep.check(
                    abs(w.busy - got) <= _tol(w.busy),
                    "interval-busy-mismatch",
                    f"{where} worker[{i}]",
                    f"stats busy {w.busy:.9g} != recorded intervals {got:.9g}",
                )

    for name, log in meta.get("lock_audit", ()):
        check_lock_log(log, report=rep, where=f"{where} {name}")
    events = meta.get("event_times")
    if events is not None:
        check_event_times(events, report=rep, where=where)
    return rep


def check_trace(
    tracer,
    *,
    horizon: Optional[float] = None,
    nworkers: Optional[int] = None,
    report: Optional[ValidationReport] = None,
    where: str = "trace",
) -> ValidationReport:
    """Audit a unified :class:`~repro.obs.tracer.Tracer` event stream.

    This is the tracer-era entry point that subsumes the per-log checks
    above: execution spans (task/chunk/serial/kernel/transfer) are held
    to the per-worker no-overlap invariant, overhead spans (steals, lock
    waits, barriers) to well-formedness only — a worker legitimately
    waits on the same row it later executes on.  Every recorded lock's
    grant log is checked for causality and mutual exclusion, and the
    engine event stream for a monotonic clock.

    A program tracer concatenates events from several
    :class:`~repro.sim.engine.Engine` incarnations (one per event-driven
    region), so the strict same-time insertion-order tie-break is only
    asserted per engine by :func:`check_event_times`; here ties are just
    required to be distinct ``(time, seq)`` pairs.
    """
    rep = report if report is not None else ValidationReport()
    p = nworkers if nworkers is not None else max(1, tracer.nworkers)
    check_intervals(
        tracer.intervals(), p, horizon=horizon, report=rep, where=f"{where} exec"
    )
    for s in tracer.spans:
        tag = f"{where} {s.kind}"
        rep.check(s.start >= -_ATOL, "span-nonnegative", tag,
                  f"worker {s.worker} span starts at {s.start}")
        rep.check(s.end >= s.start - _tol(s.end), "span-ordered", tag,
                  f"worker {s.worker} span [{s.start}, {s.end}) ends before it starts")
        if horizon is not None:
            rep.check(s.end <= horizon + _tol(horizon), "span-horizon", tag,
                      f"worker {s.worker} span ends at {s.end} past horizon {horizon}")
    for name, log in sorted(tracer.lock_events.items()):
        check_lock_log(log, report=rep, where=f"{where} {name}")
    prev_t, prev_seq = None, None
    for t, seq in tracer.engine_events:
        if prev_t is not None:
            rep.check(t >= prev_t, "event-monotonic", f"{where} engine",
                      f"clock went backwards: {prev_t} -> {t}")
            if t == prev_t:
                rep.check(seq != prev_seq, "event-tie-order", f"{where} engine",
                          f"duplicate event (t={t}, seq={seq})")
        prev_t, prev_seq = t, seq
    return rep


def check_result(
    result: SimResult,
    *,
    ctx: Optional[ExecContext] = None,
    report: Optional[ValidationReport] = None,
    where: Optional[str] = None,
) -> ValidationReport:
    """Audit a full :class:`~repro.sim.trace.SimResult`.

    Runs :func:`check_region` on every region and checks program-level
    consistency: non-negative total time that covers the sum of region
    times (program-level costs like pool setup may only add).
    """
    rep = report if report is not None else ValidationReport()
    tag = where or f"{result.program}/{result.version} p={result.nthreads}"
    rep.check(result.time >= -_ATOL, "program-time-nonnegative", tag,
              f"time {result.time}")
    rep.check(result.nthreads >= 1, "program-nthreads-positive", tag,
              f"nthreads {result.nthreads}")
    region_sum = sum(r.time for r in result.regions)
    rep.check(
        result.time >= region_sum - _tol(region_sum),
        "program-time-covers-regions",
        tag,
        f"program time {result.time:.9g} below region sum {region_sum:.9g}",
    )
    for i, region in enumerate(result.regions):
        check_region(region, ctx=ctx, report=rep, where=f"{tag} region[{i}]")

    # Retry idempotency: under a fault plan each source region may appear
    # several times (one RegionResult per attempt, grouped by the
    # ``region_index`` the runner records).  Once an attempt succeeds the
    # runner must stop retrying — useful work is never re-executed.
    attempts: dict[int, list[bool]] = {}
    for region in result.regions:
        meta = region.meta or {}
        if "region_index" not in meta:
            continue
        failed = bool((meta.get("fault") or {}).get("failed"))
        attempts.setdefault(int(meta["region_index"]), []).append(failed)
    for index, failures in sorted(attempts.items()):
        succeeded = [i for i, failed in enumerate(failures) if not failed]
        rep.check(
            len(succeeded) <= 1 and (not succeeded or succeeded[0] == len(failures) - 1),
            "fault-retry-idempotent",
            f"{tag} region_index={index}",
            f"attempt outcomes (failed?) {failures}: work re-ran after a success",
        )
    return rep
