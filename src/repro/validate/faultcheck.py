"""Differential oracle for error-handling semantics (Table III).

Every :class:`~repro.faults.demos.FaultDemo` — one per threading model
row of Table III — is executed at several thread counts and held to:

- **determinism** — a fault-injected run is still a simulation: two
  runs of the same configuration must be bit-identical;
- **declared semantics** — the observed ``meta["fault"]`` document must
  match the row's expectations (failed / cancelled / skipped items /
  wasted work), i.e. ``omp cancel`` really cancels, a poisoned TBB
  scheduler really stops issuing, and the "x" rows really run to
  completion with non-zero wasted work;
- **structural invariants** — every faulted region still passes
  :func:`~repro.validate.invariants.check_region` (fault-aware: the
  accounting must balance, cancelled regions must not issue work after
  the cancellation point).

:func:`run_fault_audit` additionally pushes a caller-supplied
``--inject`` spec through every registry workload under a
continue-on-failure policy, checking the resulting programs end to end
(retry idempotency included).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.faults.demos import FAULT_DEMOS
from repro.runtime.base import ExecContext, ThreadExplosionError
from repro.validate.invariants import ValidationReport, check_region, check_result

__all__ = ["run_fault_matrix", "run_fault_audit"]


def _snapshot(res) -> tuple:
    return (
        res.time,
        tuple((w.busy, w.overhead, w.tasks, w.steals, w.failed_steals) for w in res.workers),
    )


def run_fault_matrix(
    ctx: Optional[ExecContext] = None,
    *,
    threads: Sequence[int] = (1, 4),
    report: Optional[ValidationReport] = None,
) -> ValidationReport:
    """Run every Table III error-handling demo and check its semantics."""
    ctx = ctx or ExecContext()
    rep = report if report is not None else ValidationReport()
    for name, demo in sorted(FAULT_DEMOS.items()):
        for p in threads:
            where = f"fault[{name}] p={p}"
            r1 = demo.run(p, ctx)
            r2 = demo.run(p, ctx)
            rep.check(
                _snapshot(r1) == _snapshot(r2),
                "fault-determinism",
                where,
                f"repeated fault-injected runs disagree: {r1.time!r} vs {r2.time!r}",
            )
            check_region(r1, ctx=ctx, report=rep, where=where)
            fault = (r1.meta or {}).get("fault")
            if not rep.check(
                fault is not None, "fault-doc-present", where,
                "faulted run recorded no meta['fault'] document",
            ):
                continue
            rep.check(fault.get("mode") == demo.mode, "fault-mode", where,
                      f"ran under mode {fault.get('mode')!r}, demo declares {demo.mode!r}")
            rep.check(
                bool(fault.get("failed")) == demo.expect_failed,
                "fault-semantics-failed", where,
                f"failed={fault.get('failed')} but {demo.construct!r} "
                f"implies failed={demo.expect_failed}",
            )
            rep.check(
                bool(fault.get("cancelled")) == demo.expect_cancelled,
                "fault-semantics-cancelled", where,
                f"cancelled={fault.get('cancelled')} but {demo.construct!r} "
                f"implies cancelled={demo.expect_cancelled}",
            )
            skipped = int(fault.get("skipped", 0))
            if demo.expect_skipped:
                # cancellation must actually spare work once there is
                # enough of it in flight (p >= 2 for the graph demos)
                if p >= 2:
                    rep.check(skipped > 0, "fault-semantics-skipped", where,
                              f"{demo.construct!r} cancelled but skipped no work")
            else:
                rep.check(skipped == 0, "fault-semantics-skipped", where,
                          f"non-cancelling mode skipped {skipped} items")
            if demo.expect_wasted:
                rep.check(float(fault.get("wasted", 0.0)) > 0.0,
                          "fault-semantics-wasted", where,
                          "failure fired but no busy seconds were written off")
            rep.check(len(fault.get("triggered", ())) > 0, "fault-triggered", where,
                      "demo plan injected nothing")
    return rep


def run_fault_audit(
    spec: str,
    ctx: Optional[ExecContext] = None,
    *,
    threads: Sequence[int] = (1, 4),
    versions: Optional[Sequence[str]] = None,
    report: Optional[ValidationReport] = None,
) -> ValidationReport:
    """Inject ``spec`` into every registry workload and check the results.

    Raises :class:`ValueError` for an unparsable spec or unknown fault
    kind — the CLI maps that to a usage error (exit code 2).  Programs
    run under a one-retry continue-on-failure policy so every attempt,
    failed or not, lands in the result for the invariant layer (which
    includes the retry-idempotency check).  An explicit ``versions``
    sequence restricts the audit to those version names.
    """
    from repro.core.registry import WORKLOADS
    from repro.faults.plan import FaultPlan
    from repro.faults.policy import Policy
    from repro.runtime.run import run_program

    plan = FaultPlan.parse(spec)  # ValueError on unknown kind/key
    policy = Policy(max_retries=1, backoff=1e-6, on_failure="continue")
    ctx = ctx or ExecContext()
    rep = report if report is not None else ValidationReport()
    for name, wlspec in sorted(WORKLOADS.items()):
        params = dict(wlspec.validation_params or wlspec.default_params)
        for version in wlspec.versions:
            if versions is not None and version not in versions:
                continue
            for p in threads:
                try:
                    prog = wlspec.build(version, ctx.machine, **params)
                    res = run_program(prog, p, ctx, version, faults=plan, policy=policy)
                except ThreadExplosionError:
                    continue  # the paper's reproduced "system hangs"
                check_result(res, ctx=ctx, report=rep,
                             where=f"fault-audit[{name}/{version}] {spec!r} p={p}")
    return rep
