"""Tier audit: do the fidelity tiers keep their contracts?

Two contracts from :mod:`repro.sim.tiers`, checked over the registry:

- **tier0-bound** — the closed-form tier-0 estimate must bracket the
  tier-2 reference time within its own calibrated ``error_bound``:
  ``|t2 - t0| <= t0 * error_bound``.  Estimates that fall outside their
  declared bound are worse than slow — they are *misleading*, and the
  sweep layer advertises them as trustworthy.
- **tier1-equivalence** — a tier-1 (vectorized fast-path) run must be
  **bit-identical** to the tier-2 scalar reference: same times, same
  per-worker statistics, same meta, same complete trace event stream.
  Equality is checked on the full-fidelity codec form
  (:func:`repro.sweep.codec.result_to_dict`), the same representation
  the golden-trace suite pins.

Thread-per-task versions that explode past the thread cap must do so at
*every* tier (**tier-explosion-parity**) — an estimate that silently
returns a time for the paper's hanging C++11 fib would invert a
headline finding.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.validate.invariants import ValidationReport

__all__ = ["run_tier_audit"]


def run_tier_audit(
    threads: Iterable[int] = (1, 4),
    workloads: Optional[Iterable[str]] = None,
    calibration=None,
    report: Optional[ValidationReport] = None,
) -> ValidationReport:
    """Audit tier-0 accuracy and tier-1 equivalence over the registry.

    Every registered workload × version × thread count (at validation
    parameters) is run at tier 2 with the tracer attached, re-run at
    tier 1, and estimated at tier 0; ``calibration`` defaults to the
    shipped :data:`~repro.sim.tiers.DEFAULT_CALIBRATION`.
    """
    from repro.core.registry import WORKLOADS
    from repro.runtime.base import ExecContext, ThreadExplosionError
    from repro.runtime.run import run_program
    from repro.sim.tiers import estimate_program
    from repro.sweep.codec import result_to_dict

    rep = report if report is not None else ValidationReport()
    ctx2 = ExecContext()
    ctx1 = ctx2.with_fidelity(1)
    names = sorted(WORKLOADS)
    if workloads is not None:
        wanted = set(workloads)
        names = [n for n in names if n in wanted]
    for name in names:
        spec = WORKLOADS[name]
        params = dict(spec.validation_params or spec.default_params)
        for version in spec.versions:
            for p in threads:
                where = f"{name}/{version} p={p}"
                program = spec.build(version, ctx2.machine, **params)
                try:
                    ref = run_program(program, p, ctx2, version, trace=True)
                except ThreadExplosionError:
                    # the other tiers must refuse identically
                    for tier_name, run in (
                        ("tier1", lambda: run_program(
                            spec.build(version, ctx1.machine, **params), p, ctx1, version
                        )),
                        ("tier0", lambda: estimate_program(
                            spec.build(version, ctx2.machine, **params), p, ctx2,
                            version, calibration=calibration,
                        )),
                    ):
                        try:
                            run()
                        except ThreadExplosionError:
                            rep.check(True, "tier-explosion-parity", where)
                        else:
                            rep.check(
                                False, "tier-explosion-parity", where,
                                f"{tier_name} did not raise ThreadExplosionError",
                            )
                    continue
                # tier 1: bit-identical result and trace
                fast = run_program(
                    spec.build(version, ctx1.machine, **params), p, ctx1, version,
                    trace=True,
                )
                rep.check(
                    result_to_dict(fast) == result_to_dict(ref),
                    "tier1-equivalence", where,
                    f"tier1 t={fast.time!r} vs tier2 t={ref.time!r}",
                )
                # tier 0: reference time within the declared error bound
                est = estimate_program(
                    spec.build(version, ctx2.machine, **params), p, ctx2, version,
                    calibration=calibration,
                )
                if est.time > 0.0 and est.error_bound > 0.0:
                    rel = abs(ref.time - est.time) / est.time
                    rep.check(
                        rel <= est.error_bound,
                        "tier0-bound", where,
                        f"relative error {rel:.4f} exceeds bound {est.error_bound:.4f}",
                    )
                else:
                    # delegated-exact programs: the estimate IS the result
                    rep.check(
                        abs(ref.time - est.time) <= 1e-12 + 1e-9 * abs(ref.time),
                        "tier0-bound", where,
                        f"exact estimate {est.time!r} != reference {ref.time!r}",
                    )
    return rep
