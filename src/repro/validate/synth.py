"""Synthesized-workload audit: the differential oracle over generated apps.

Generated workloads are only trustworthy if they are deterministic and
invariant-clean, so this battery samples ``count`` applications from
the seeded synthesizer (:mod:`repro.workloads.synth`) and pushes each
through the full version matrix:

- **spec stability** — re-synthesizing from the same seed must yield a
  bit-identical spec document (name, fraction, recipe);
- **determinism** — building and running the same cell twice must
  produce bit-identical results (compared on the codec form, the same
  representation the sweep cache stores);
- **invariants** — every run goes through the cheap invariant pass
  (``run_program(validate=True)``): interval overlap, work
  conservation, makespan lower bounds;
- **speedup ordering** — more threads must never slow an app down
  beyond the modelled overhead slack (thread-per-task versions get a
  per-thread creation allowance per phase).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.validate.invariants import ValidationReport

__all__ = ["run_synth_audit"]

#: More threads may never cost more than this multiple of T_1 (same
#: rationale as the differential matrix's speedup slack).
_SPEEDUP_SLACK = 1.25


def run_synth_audit(
    seed: int = 0,
    count: int = 3,
    *,
    threads: Sequence[int] = (1, 4),
    ctx=None,
    config=None,
    report: Optional[ValidationReport] = None,
) -> ValidationReport:
    """Audit ``count`` synthesized apps across the full version matrix."""
    from repro.runtime.base import ExecContext
    from repro.runtime.run import run_program
    from repro.sweep.codec import result_to_dict
    from repro.workloads.synth import DEFAULT_CONFIG, generate, synthesize

    rep = report if report is not None else ValidationReport()
    ctx = ctx or ExecContext()
    cfg = config if config is not None else DEFAULT_CONFIG
    specs = generate(seed, count, cfg)
    names = {s.name for s in specs}
    rep.check(
        len(names) == len(specs),
        "synth-name-collision",
        f"synth[seed={seed}]",
        f"{len(specs)} specs share {len(names)} names",
    )
    costs = ctx.costs
    per_thread_unit = max(
        costs.thread_create + costs.thread_join, costs.async_create + costs.future_get
    )
    # chunk tasks on the stealing runtimes: spawn + (possibly contended)
    # steal + join bookkeeping, per chunk, and the chunk count scales
    # with p (chunks_per_thread * p per phase)
    per_task_unit = max(
        costs.omp_task_spawn + costs.locked_steal + costs.taskwait,
        costs.the_steal + costs.steal_latency,
    )
    for spec in specs:
        where = f"synth[{spec.name}]"
        replay = synthesize(spec.seed, cfg)
        rep.check(
            replay.document() == spec.document(),
            "synth-spec-stability",
            where,
            "re-synthesizing the same seed produced a different spec",
        )
        for version in spec.versions:
            results = {}
            for p in threads:
                r1 = run_program(
                    spec.build(version, ctx.machine), p, ctx, version, validate=True
                )
                r2 = run_program(
                    spec.build(version, ctx.machine), p, ctx, version
                )
                rep.check(
                    result_to_dict(r1) == result_to_dict(r2),
                    "synth-determinism",
                    f"{where} {version} p={p}",
                    f"repeated runs disagree: {r1.time!r} vs {r2.time!r}",
                )
                results[p] = r1
            if 1 in results:
                t1 = results[1].time
                # thread-per-task versions pay a modelled per-thread
                # creation cost in every phase; task versions pay per
                # chunk task, and chunk counts scale with p
                if version.startswith("cxx"):
                    per_p = len(spec.recipe) * per_thread_unit
                elif version in ("omp_task", "cilk_spawn"):
                    per_p = sum(
                        ph["chunks_per_thread"] for ph in spec.recipe
                    ) * per_task_unit
                else:
                    per_p = 0.0
                for p, res in results.items():
                    if p <= 1:
                        continue
                    allowed = t1 * _SPEEDUP_SLACK + p * per_p
                    rep.check(
                        res.time <= allowed,
                        "synth-speedup-ordering",
                        f"{where} {version} p={p}",
                        f"T_{p} {res.time:.9g} exceeds allowed {allowed:.9g} "
                        f"({_SPEEDUP_SLACK}x T_1 {t1:.9g})",
                    )
    return rep
