"""Seeded random-program harness (property tests without extra deps).

The invariant checker and differential oracle exercise the executors on
the *curated* workloads; this module closes the gap with adversarial
inputs: randomly generated programs mixing serial regions, skewed
parallel loops under every executor, and random DAGs, built from a
seeded :class:`random.Random` so every failure is reproducible from its
program index alone.  Each generated program is executed at several
thread counts (including an SMT-oversubscribed one on a deliberately
tiny machine), audited with :func:`repro.validate.invariants.check_result`,
and re-run to confirm determinism.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

import numpy as np

from repro.runtime.base import ExecContext
from repro.runtime.run import run_program
from repro.sim.machine import Machine
from repro.sim.task import (
    IterSpace,
    LoopRegion,
    Program,
    SerialRegion,
    TaskGraph,
    TaskRegion,
)
from repro.sim.trace import SimResult
from repro.validate.invariants import ValidationReport, check_result

__all__ = [
    "SMALL_MACHINE",
    "DEFAULT_THREADS",
    "random_space",
    "random_graph",
    "random_program",
    "run_property_suite",
]

#: A deliberately tiny machine so that modest thread counts already hit
#: the interesting regimes (socket spanning at 5 threads, SMT sharing
#: and oversubscription at 9) without simulating wide sweeps.
SMALL_MACHINE = Machine(sockets=2, cores_per_socket=4, smt=2, name="validate-small")

#: Thread counts per program: serial, in-socket, cross-socket, SMT+1.
DEFAULT_THREADS: tuple[int, ...] = (1, 2, 5, 9)


def random_space(rng: random.Random, *, max_iter: int = 5_000) -> IterSpace:
    """A random iteration space: uniform or heavily skewed per-iteration
    cost, optionally memory-bound with random access locality."""
    niter = rng.randint(40, max_iter)
    work_per_iter = 10.0 ** rng.uniform(-8.5, -6.5)
    if rng.random() < 0.5:
        bytes_per_iter = float(rng.choice([8, 24, 64, 256]))
        locality = rng.choice([1.0, 0.8, 0.3, 0.0])
    else:
        bytes_per_iter, locality = 0.0, 1.0
    if rng.random() < 0.5:
        return IterSpace.uniform(niter, work_per_iter, bytes_per_iter, locality)
    # skewed profile: triangular ramp plus random spikes
    nprng = np.random.default_rng(rng.getrandbits(32))
    work = work_per_iter * (0.25 + np.linspace(0.0, 1.5, niter))
    spikes = nprng.random(niter) < 0.02
    work = work + spikes * work_per_iter * 25.0
    membytes = np.full(niter, bytes_per_iter)
    return IterSpace.from_profile(work, membytes, locality, name="skewed")


def random_graph(rng: random.Random, *, max_tasks: int = 60) -> TaskGraph:
    """A random DAG (topological by construction, like real spawn trees)."""
    g = TaskGraph("random-dag")
    ntasks = rng.randint(1, max_tasks)
    for tid in range(ntasks):
        ndeps = rng.randint(0, min(tid, 3))
        deps = rng.sample(range(tid), ndeps) if ndeps else ()
        work = 10.0 ** rng.uniform(-7.5, -5.5)
        if rng.random() < 0.3:
            membytes = float(rng.choice([512, 4096, 65536]))
            locality = rng.choice([1.0, 0.5, 0.1])
        else:
            membytes, locality = 0.0, 1.0
        g.add(work, membytes, locality, deps=sorted(deps), tag="rnd")
    return g


def _random_region(rng: random.Random):
    kind = rng.choice(
        ["serial", "worksharing", "stealing_loop", "threadpool", "stealing", "threadpool_graph"]
    )
    if kind == "serial":
        return SerialRegion(
            work=10.0 ** rng.uniform(-6.0, -4.0),
            membytes=float(rng.choice([0, 0, 4096, 262144])),
            locality=rng.choice([1.0, 0.5]),
        )
    if kind == "worksharing":
        return LoopRegion(
            random_space(rng),
            "worksharing",
            {
                "schedule": rng.choice(["static", "dynamic", "guided"]),
                "reduction": rng.random() < 0.3,
            },
        )
    if kind == "stealing_loop":
        return LoopRegion(
            random_space(rng),
            "stealing_loop",
            {
                "style": rng.choice(["cilk_for", "flat"]),
                "deque": rng.choice(["the", "locked"]),
                "record": True,
                "audit": True,
            },
        )
    if kind == "threadpool":
        return LoopRegion(
            random_space(rng),
            "threadpool",
            {"mode": rng.choice(["thread", "async"])},
        )
    if kind == "stealing":
        return TaskRegion(
            random_graph(rng),
            "stealing",
            {
                "deque": rng.choice(["the", "locked"]),
                "work_first": rng.random() < 0.5,
                "central_queue": rng.random() < 0.2,
                "record": True,
                "audit": True,
            },
        )
    return TaskRegion(random_graph(rng), "threadpool_graph", {"mode": "async"})


def random_program(rng: random.Random, index: int = 0) -> Program:
    """A random multi-region program exercising every executor."""
    prog = Program(f"prop-{index}")
    for _ in range(rng.randint(1, 4)):
        prog.add(_random_region(rng))
    return prog


def _snapshot(res: SimResult) -> tuple:
    return (
        res.time,
        tuple(
            (
                r.time,
                tuple((w.busy, w.overhead, w.tasks, w.steals, w.failed_steals) for w in r.workers),
            )
            for r in res.regions
        ),
    )


def run_property_suite(
    *,
    seed: int = 0,
    programs: int = 20,
    threads: Sequence[int] = DEFAULT_THREADS,
    ctx: Optional[ExecContext] = None,
    report: Optional[ValidationReport] = None,
) -> ValidationReport:
    """Generate ``programs`` random programs and audit every execution."""
    ctx = ctx or ExecContext(machine=SMALL_MACHINE)
    rep = report if report is not None else ValidationReport()
    rng = random.Random(seed)
    for i in range(programs):
        prog = random_program(rng, i)
        for p in threads:
            where = f"prop[seed={seed} i={i}] p={p}"
            res = run_program(prog, p, ctx)
            check_result(res, ctx=ctx, report=rep, where=where)
            rerun = run_program(prog, p, ctx)
            rep.check(
                _snapshot(res) == _snapshot(rerun),
                "determinism",
                where,
                f"repeated runs disagree: {res.time!r} vs {rerun.time!r}",
            )
    return rep
