"""Simulation validation subsystem.

The paper's findings are only as credible as the discrete-event
simulator that reproduces them, so this package provides three
independent layers of correctness tooling:

- :mod:`repro.validate.invariants` — a checker that audits any
  :class:`~repro.sim.trace.SimResult` / :class:`~repro.sim.trace.RegionResult`
  for physical plausibility: no overlapping busy intervals per worker,
  monotonic event times, work conservation within the cost model's
  envelope, lock-hold exclusivity on :class:`~repro.sim.engine.SimLock`
  grant logs, and makespan at or above its greedy / critical-path lower
  bounds;
- :mod:`repro.validate.differential` — an oracle that runs shared
  workloads through every runtime (worksharing, work stealing,
  thread pool) and schedule combination and cross-checks determinism,
  useful-work equality, and speedup ordering;
- :mod:`repro.validate.properties` — a seeded random-program harness
  (no extra dependencies) generating nested loop/task/serial programs
  and checking every invariant under every executor;
- :mod:`repro.validate.faultcheck` — a differential oracle over the
  Table III error-handling demos (:mod:`repro.faults.demos`): every
  row's declared semantics (cancel / poison / rethrow / async-cancel /
  none) is executed under deterministic fault injection and checked
  for determinism, declared behaviour, and the fault-aware invariants;
- :mod:`repro.validate.tiers` — the fidelity-tier audit: tier-0
  analytic estimates within their calibrated error bounds and tier-1
  fast-path runs bit-identical (results *and* traces) to the tier-2
  reference, across the whole registry;
- :mod:`repro.validate.synth` — the synthesized-workload audit:
  seeded apps from :mod:`repro.workloads.synth` are re-synthesized
  (spec stability), run twice per cell (determinism), invariant-checked
  and speedup-ordered across the full version matrix.

``repro validate [--deep] [--inject SPEC]`` runs all of them;
``run_program(..., validate=True)`` runs the cheap invariant pass on a
single result (the benchmark suite does this for every result it
produces).
"""

from __future__ import annotations

from typing import Optional

from repro.validate.differential import run_differential_matrix, run_registry_audit
from repro.validate.faultcheck import run_fault_audit, run_fault_matrix
from repro.validate.invariants import (
    SimulationInvariantError,
    ValidationReport,
    Violation,
    check_event_times,
    check_intervals,
    check_lock_log,
    check_region,
    check_result,
)
from repro.validate.properties import random_program, run_property_suite
from repro.validate.synth import run_synth_audit
from repro.validate.tiers import run_tier_audit

__all__ = [
    "SimulationInvariantError",
    "ValidationReport",
    "Violation",
    "check_event_times",
    "check_intervals",
    "check_lock_log",
    "check_region",
    "check_result",
    "random_program",
    "run_differential_matrix",
    "run_fault_audit",
    "run_fault_matrix",
    "run_property_suite",
    "run_registry_audit",
    "run_synth_audit",
    "run_tier_audit",
    "run_validation",
]


def run_validation(
    *,
    deep: bool = False,
    seed: int = 0,
    programs: Optional[int] = None,
    inject: Optional[str] = None,
    models: Optional[list[str]] = None,
) -> ValidationReport:
    """Run the whole validation battery and return the merged report.

    The default (cheap) pass audits every registry workload at two
    thread counts, runs the differential runtime matrix, and exercises a
    modest random-program suite — a few seconds of work, suitable for
    CI.  ``deep=True`` widens the thread sweep into the SMT regime and
    multiplies the random-program count.

    ``inject`` is an optional fault spec (see
    :meth:`repro.faults.FaultPlan.parse`) pushed through every registry
    workload on top of the standard battery; an unparsable spec raises
    :class:`ValueError` before any simulation runs.

    ``models`` optionally restricts the per-version batteries (registry
    audit and fault audit) to the named model families or registry
    versions (``openmp``, ``charm++``, ``omp_task``, ...); an unknown
    name raises :class:`ValueError` before any simulation runs — the
    CLI maps that to a usage error (exit 2).  The model-independent
    batteries (differential, properties, tiers, synth) always run.
    """
    versions = None
    if models is not None:
        from repro.models import resolve_models

        versions = resolve_models(models)  # fail fast: bad names are usage errors
    if inject is not None:
        from repro.faults.plan import FaultPlan

        FaultPlan.parse(inject)  # fail fast: bad specs are usage errors
    # per-phase host-cost spans (repro.perf): `repro perf report` can
    # say which battery dominates a validation run's wall time
    from repro.perf.spans import span as perf_span

    report = ValidationReport()
    with perf_span("validate.registry_audit"):
        run_registry_audit(
            threads=(1, 4, 16, 36) if deep else (1, 4),
            versions=versions,
            report=report,
        )
    with perf_span("validate.differential"):
        run_differential_matrix(
            threads=(1, 2, 4, 8, 16, 32) if deep else (1, 2, 4, 8),
            report=report,
        )
    nprog = programs if programs is not None else (100 if deep else 20)
    with perf_span("validate.properties"):
        run_property_suite(seed=seed, programs=nprog, report=report)
    with perf_span("validate.faults"):
        run_fault_matrix(threads=(1, 4, 16) if deep else (1, 4), report=report)
    with perf_span("validate.tiers"):
        run_tier_audit(threads=(1, 4, 16) if deep else (1, 4), report=report)
    with perf_span("validate.synth"):
        run_synth_audit(
            seed=seed,
            count=5 if deep else 3,
            threads=(1, 4, 16) if deep else (1, 4),
            report=report,
        )
    if inject is not None:
        with perf_span("validate.inject"):
            run_fault_audit(inject, threads=(1, 4), versions=versions, report=report)
    return report
