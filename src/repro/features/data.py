"""The threading models' feature entries (Tables I-III).

Cell text for the paper's eight models is transcribed from the paper;
each entry also carries the section III.B runtime characterization.
The asynchronous many-tasking extension rows (Charm++, HPX, MPI —
ROADMAP item 4, after Kulkarni & Lumsdaine and Hasta & Mutiara) follow
the same schema so the tables, fault demos and differential oracle
cover them uniformly.
"""

from __future__ import annotations

from repro.features.model import FeatureSet, Support

__all__ = ["MODELS", "ALL_MODELS", "get_model"]

_Y = Support.yes
_N = Support.no
_NA = Support.na


CHARMPP = FeatureSet(
    name="Charm++",
    data_parallelism=_Y("chare arrays over partitioned data"),
    task_parallelism=_Y("entry-method messages drive execution"),
    data_event_driven=_Y("message-driven: delivery schedules work"),
    offloading=_N("host only (accelerator support out of scope)"),
    memory_hierarchy=_N(),
    data_binding=_Y("static chare placement + migration"),
    data_movement=_Y("location-transparent message sends"),
    barrier=_NA("N/A (quiescence detection)"),
    reduction=_Y("spanning-tree contribute/reduction"),
    join=_Y("quiescence / completion detection"),
    mutual_exclusion=_NA("N/A (chares run one entry method at a time)"),
    language="C++ library + translator (ci files)",
    error_handling=_N("message loss surfaces at quiescence", demo="faults:Charm++"),
    tool_support=_Y("Projections"),
    scheduling="message-driven: per-PE queues, run-to-completion entries",
    category="actor-style AMT runtime for overdecomposed objects",
)

HPX = FeatureSet(
    name="HPX",
    data_parallelism=_Y("parallel algorithms over futures"),
    task_parallelism=_Y("hpx::async + future"),
    data_event_driven=_Y("dataflow: future.then/when_all"),
    offloading=_N("host only"),
    memory_hierarchy=_N(),
    data_binding=_N(),
    data_movement=_NA("N/A (shared memory here)"),
    barrier=_N(),
    reduction=_Y("when_all + combining continuations"),
    join=_Y("future.get"),
    mutual_exclusion=_Y("hpx::mutex, atomics"),
    language="C++ library (ParalleX execution model)",
    error_handling=_Y("future poisoning", demo="faults:HPX"),
    tool_support=_Y("APEX, performance counters"),
    scheduling="lightweight user threads, continuation stealing",
    category="future-based AMT runtime for fine-grained dataflow",
)

MPI = FeatureSet(
    name="MPI",
    data_parallelism=_Y("rank-partitioned SPMD loops"),
    task_parallelism=_N("processes fixed at startup"),
    data_event_driven=_Y("message completion (Wait/Test)"),
    offloading=_N("host only"),
    memory_hierarchy=_Y("explicit: all sharing is messages"),
    data_binding=_Y("rank-to-core binding"),
    data_movement=_Y("Send/Recv, collectives"),
    barrier=_Y("MPI_Barrier"),
    reduction=_Y("MPI_Allreduce"),
    join=_Y("MPI_Wait / collectives"),
    mutual_exclusion=_NA("N/A (no shared state)"),
    language="C/C++/Fortran library",
    error_handling=_Y("MPI_Abort on rank failure", demo="faults:MPI"),
    tool_support=_Y("PMPI tools, mpiP"),
    scheduling="static block partition; user balances load",
    category="message-passing model for distributed and multicore memory",
)

CILK_PLUS = FeatureSet(
    name="Cilk Plus",
    data_parallelism=_Y("cilk_for, array operations, elemental functions"),
    task_parallelism=_Y("cilk_spawn/cilk_sync"),
    data_event_driven=_N(),
    offloading=_N("host only"),
    memory_hierarchy=_N(),
    data_binding=_N(),
    data_movement=_NA("N/A (host only)"),
    barrier=_Y("implicit for cilk_for only"),
    reduction=_Y("reducers"),
    join=_Y("cilk_sync"),
    mutual_exclusion=_Y("containers, mutex, atomic"),
    language="C/C++ elidable language extension",
    error_handling=_N(demo="faults:Cilk Plus"),
    tool_support=_Y("Cilkscreen, Cilkview"),
    scheduling="random work stealing (THE-protocol deques), work-first",
    category="task-based model for multi-core shared memory",
)

CUDA = FeatureSet(
    name="CUDA",
    data_parallelism=_Y("<<<--->>> kernel launch"),
    task_parallelism=_Y("async kernel launching and memcpy"),
    data_event_driven=_Y("stream"),
    offloading=_Y("device only"),
    memory_hierarchy=_Y("blocks/threads, shared memory"),
    data_binding=_N(),
    data_movement=_Y("cudaMemcpy function"),
    barrier=_Y("__syncthreads"),
    reduction=_N(),
    join=_N(),
    mutual_exclusion=_Y("atomic"),
    language="C/C++ extensions",
    error_handling=_N(demo="faults:CUDA"),
    tool_support=_Y("CUDA profiling tools"),
    scheduling="hardware thread-block scheduler on the GPU",
    category="low-level interface for NVIDIA GPUs",
)

CXX11 = FeatureSet(
    name="C++11",
    data_parallelism=_N(),
    task_parallelism=_Y("std::thread, std::async/future"),
    data_event_driven=_Y("std::future"),
    offloading=_N("host only"),
    memory_hierarchy=_N("x (but memory consistency model)"),
    data_binding=_N(),
    data_movement=_NA("N/A (host only)"),
    barrier=_N(),
    reduction=_N(),
    join=_Y("std::join, std::future"),
    mutual_exclusion=_Y("std::mutex, atomic"),
    language="C++",
    error_handling=_Y("C++ exception", demo="faults:C++11"),
    tool_support=_Y("System tools"),
    scheduling="none: std::thread maps ~1:1 to PThreads; user balances load",
    category="baseline language API for core threading functionality",
)

OPENACC = FeatureSet(
    name="OpenACC",
    data_parallelism=_Y("kernel/parallel"),
    task_parallelism=_Y("async/wait"),
    data_event_driven=_Y("wait"),
    offloading=_Y("device only (acc)"),
    memory_hierarchy=_Y("cache, gang/worker/vector"),
    data_binding=_N(),
    data_movement=_Y("data copy/copyin/copyout"),
    barrier=_N(),
    reduction=_Y("reduction"),
    join=_Y("wait"),
    mutual_exclusion=_Y("atomic"),
    language="directives for C/C++ and Fortran",
    error_handling=_N(demo="faults:OpenACC"),
    tool_support=_Y("System/vendor tools"),
    scheduling="compiler/runtime mapping of gangs/workers/vectors to device",
    category="high-level offloading interface for manycore accelerators",
)

OPENCL = FeatureSet(
    name="OpenCL",
    data_parallelism=_Y("kernel"),
    task_parallelism=_Y("clEnqueueTask()"),
    data_event_driven=_Y("pipe, general DAG"),
    offloading=_Y("host and device"),
    memory_hierarchy=_Y("work_group/item"),
    data_binding=_N(),
    data_movement=_Y("buffer Write function"),
    barrier=_Y("work_group_barrier"),
    reduction=_Y("work_group_reduction"),
    join=_N(),
    mutual_exclusion=_Y("atomic"),
    language="C/C++ extensions",
    error_handling=_Y("exceptions", demo="faults:OpenCL"),
    tool_support=_Y("System/vendor tools"),
    scheduling="command queues + device runtime; portable across vendors",
    category="low-level interface for manycore and accelerator architectures",
)

OPENMP = FeatureSet(
    name="OpenMP",
    data_parallelism=_Y("parallel for, simd, distribute"),
    task_parallelism=_Y("task/taskwait"),
    data_event_driven=_Y("depend (in/out/inout)"),
    offloading=_Y("host and device (target)"),
    memory_hierarchy=_Y("OMP_PLACES, teams and distribute"),
    data_binding=_Y("proc_bind clause"),
    data_movement=_Y("map(to/from/tofrom/alloc)"),
    barrier=_Y("barrier, implicit for parallel/for"),
    reduction=_Y("reduction clause"),
    join=_Y("taskwait"),
    mutual_exclusion=_Y("locks, critical, atomic, single, master"),
    language="directives for C/C++ and Fortran",
    error_handling=_Y("omp cancel", demo="faults:OpenMP"),
    tool_support=_Y("OMP Tool interface"),
    scheduling=(
        "fork-join + worksharing for loops; work-stealing (work-first/"
        "breadth-first, lock-based deques) for tasks"
    ),
    category="comprehensive standard covering all listed feature groups",
)

PTHREADS = FeatureSet(
    name="PThreads",
    data_parallelism=_N(),
    task_parallelism=_Y("pthread_create/join"),
    data_event_driven=_N(),
    offloading=_N("host only"),
    memory_hierarchy=_N(),
    data_binding=_N(),
    data_movement=_NA("N/A (host only)"),
    barrier=_Y("pthread_barrier"),
    reduction=_N(),
    join=_Y("pthread_join"),
    mutual_exclusion=_Y("pthread_mutex, pthread_cond"),
    language="C library",
    error_handling=_Y("pthread_cancel", demo="faults:PThreads"),
    tool_support=_Y("System tools"),
    scheduling="none: kernel threads, user schedules and balances",
    category="baseline library API for core threading functionality",
)

TBB = FeatureSet(
    name="TBB",
    data_parallelism=_Y("parallel_for/while/do, etc"),
    task_parallelism=_Y("task::spawn/wait"),
    data_event_driven=_Y("pipeline, parallel_pipeline, general DAG (flow::graph)"),
    offloading=_N("host only"),
    memory_hierarchy=_N(),
    data_binding=_Y("affinity_partitioner"),
    data_movement=_NA("N/A (host only)"),
    barrier=_NA("N/A (tasking)"),
    reduction=_Y("parallel_reduce"),
    join=_Y("wait"),
    mutual_exclusion=_Y("containers, mutex, atomic"),
    language="C++ library",
    error_handling=_Y("cancellation and exception", demo="faults:TBB"),
    tool_support=_Y("System tools"),
    scheduling="random work stealing over per-worker deques",
    category="task-based library for multi-core shared memory",
)


#: Paper ordering (alphabetical, as in Tables I-III); the AMT
#: extension rows slot into the same alphabetical order.
ALL_MODELS: tuple[FeatureSet, ...] = (
    CHARMPP,
    CILK_PLUS,
    CUDA,
    CXX11,
    HPX,
    MPI,
    OPENACC,
    OPENCL,
    OPENMP,
    PTHREADS,
    TBB,
)

MODELS: dict[str, FeatureSet] = {m.name: m for m in ALL_MODELS}

_ALIASES = {
    "cilk": "Cilk Plus",
    "cilk plus": "Cilk Plus",
    "cilkplus": "Cilk Plus",
    "cuda": "CUDA",
    "c++11": "C++11",
    "cxx11": "C++11",
    "c++": "C++11",
    "openacc": "OpenACC",
    "opencl": "OpenCL",
    "openmp": "OpenMP",
    "omp": "OpenMP",
    "pthreads": "PThreads",
    "pthread": "PThreads",
    "posix threads": "PThreads",
    "tbb": "TBB",
    "intel tbb": "TBB",
    "charm": "Charm++",
    "charm++": "Charm++",
    "charmpp": "Charm++",
    "hpx": "HPX",
    "parallex": "HPX",
    "mpi": "MPI",
    "message passing": "MPI",
}


def get_model(name: str) -> FeatureSet:
    """Look up a model by name (case-insensitive, common aliases)."""
    if name in MODELS:
        return MODELS[name]
    key = _ALIASES.get(name.strip().lower())
    if key is None:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODELS)}")
    return MODELS[key]
