"""Paper-style renderers for Tables I, II and III.

Each ``render_tableN`` returns the table as a string whose rows and
cells match the paper's; ``tableN_rows`` returns the underlying data
for programmatic use (and for the benchmark assertions).
"""

from __future__ import annotations

import textwrap
from typing import Iterable, Sequence

from repro.features.data import ALL_MODELS
from repro.features.model import FeatureSet

__all__ = [
    "render_table1",
    "render_table2",
    "render_table3",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "format_grid",
]


def format_grid(
    headers: Sequence[str],
    rows: Iterable[Sequence[str]],
    widths: Sequence[int],
    title: str = "",
) -> str:
    """Render a wrapped ASCII grid with fixed column widths."""
    if len(headers) != len(widths):
        raise ValueError("headers and widths must have the same length")
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = []
    if title:
        out.append(title)
    out.append(sep)

    def emit(cells: Sequence[str]) -> None:
        wrapped = [
            textwrap.wrap(str(c), width=w) or [""] for c, w in zip(cells, widths)
        ]
        height = max(len(col) for col in wrapped)
        for line in range(height):
            parts = []
            for col, w in zip(wrapped, widths):
                text = col[line] if line < len(col) else ""
                parts.append(f" {text:<{w}} ")
            out.append("|" + "|".join(parts) + "|")
        out.append(sep)

    emit(headers)
    for row in rows:
        if len(row) != len(widths):
            raise ValueError("row width mismatch")
        emit(row)
    return "\n".join(out)


def table1_rows(models: Sequence[FeatureSet] = ALL_MODELS) -> list[list[str]]:
    """Rows of Table I: parallelism patterns."""
    return [
        [
            m.name,
            m.data_parallelism.cell(),
            m.task_parallelism.cell(),
            m.data_event_driven.cell(),
            m.offloading.cell(),
        ]
        for m in models
    ]


def render_table1(models: Sequence[FeatureSet] = ALL_MODELS) -> str:
    return format_grid(
        ["Model", "Data parallelism", "Async task parallelism", "Data/event-driven", "Offloading"],
        table1_rows(models),
        [10, 24, 24, 22, 18],
        title="TABLE I: Comparison of Parallelism",
    )


def table2_rows(models: Sequence[FeatureSet] = ALL_MODELS) -> list[list[str]]:
    """Rows of Table II: memory abstraction and synchronization."""
    return [
        [
            m.name,
            m.memory_hierarchy.cell(),
            m.data_binding.cell(),
            m.data_movement.cell(),
            m.barrier.cell(),
            m.reduction.cell(),
            m.join.cell(),
        ]
        for m in models
    ]


def render_table2(models: Sequence[FeatureSet] = ALL_MODELS) -> str:
    return format_grid(
        [
            "Model",
            "Abstraction of memory hierarchy",
            "Data/computation binding",
            "Explicit data map/movement",
            "Barrier",
            "Reduction",
            "Join",
        ],
        table2_rows(models),
        [10, 20, 18, 18, 16, 14, 14],
        title="TABLE II: Comparison of Abstractions of Memory Hierarchy and Synchronizations",
    )


def table3_rows(models: Sequence[FeatureSet] = ALL_MODELS) -> list[list[str]]:
    """Rows of Table III: mutual exclusion, language, errors, tools."""
    return [
        [
            m.name,
            m.mutual_exclusion.cell(),
            m.language,
            m.error_handling.cell(),
            m.tool_support.cell(),
        ]
        for m in models
    ]


def render_table3(models: Sequence[FeatureSet] = ALL_MODELS) -> str:
    return format_grid(
        ["Model", "Mutual exclusion", "Language or library", "Error handling", "Tool support"],
        table3_rows(models),
        [10, 26, 24, 18, 20],
        title="TABLE III: Comparison of Mutual Exclusions and Others",
    )
