"""Schema for the threading-model feature database.

Every cell of the paper's Tables I-III is a :class:`Support`: either
unsupported (the paper's "x"), not applicable (the paper's "N/A"), or
supported with the construct(s) that provide it.  A
:class:`FeatureSet` gathers all cells for one programming model, with
one attribute per table column.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterator

__all__ = ["Support", "FeatureSet", "FEATURE_FIELDS"]


@dataclass(frozen=True)
class Support:
    """One table cell: support status plus the construct text.

    ``demo`` optionally names an executable demonstration of the cell —
    e.g. ``"faults:OpenMP"`` points the error-handling cell at the
    :data:`repro.faults.demos.FAULT_DEMOS` entry that runs ``omp
    cancel`` semantics under deterministic fault injection.
    """

    supported: bool
    how: str = ""
    note: str = ""
    demo: str = ""

    @classmethod
    def yes(cls, how: str, note: str = "", demo: str = "") -> "Support":
        return cls(True, how, note, demo)

    @classmethod
    def no(cls, note: str = "", demo: str = "") -> "Support":
        return cls(False, "", note, demo)

    @classmethod
    def na(cls, note: str = "", demo: str = "") -> "Support":
        """Not applicable (e.g. data movement on a host-only model)."""
        return cls(False, "", note or "N/A", demo)

    @property
    def not_applicable(self) -> bool:
        return not self.supported and self.note.startswith("N/A")

    def cell(self) -> str:
        """Rendered table-cell text, matching the paper's notation."""
        if self.supported:
            return self.how
        if self.note:
            return self.note
        return "x"

    def __bool__(self) -> bool:
        return self.supported


@dataclass(frozen=True)
class FeatureSet:
    """All feature cells for one threading programming model."""

    name: str

    # -- Table I: parallelism patterns ---------------------------------
    data_parallelism: Support
    task_parallelism: Support
    data_event_driven: Support
    offloading: Support

    # -- Table II: memory abstraction & synchronization ------------------
    memory_hierarchy: Support
    data_binding: Support
    data_movement: Support
    barrier: Support
    reduction: Support
    join: Support

    # -- Table III: mutual exclusion & others ----------------------------
    mutual_exclusion: Support
    language: str
    error_handling: Support
    tool_support: Support

    # -- runtime characterization (section III.B) -------------------------
    scheduling: str = ""
    category: str = ""

    def supports(self, feature: str) -> bool:
        """Whether ``feature`` (a field name) is supported."""
        value = getattr(self, feature, None)
        if not isinstance(value, Support):
            raise KeyError(f"{feature!r} is not a feature field")
        return value.supported

    def feature_cells(self) -> Iterator[tuple[str, Support]]:
        """(field name, cell) for every Support-typed field."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Support):
                yield f.name, value


#: Every Support-typed column, in table order.
FEATURE_FIELDS: tuple[str, ...] = (
    "data_parallelism",
    "task_parallelism",
    "data_event_driven",
    "offloading",
    "memory_hierarchy",
    "data_binding",
    "data_movement",
    "barrier",
    "reduction",
    "join",
    "mutual_exclusion",
    "error_handling",
    "tool_support",
)
