"""Feature database: the paper's Tables I, II and III as queryable data.

Section II of the paper categorizes threading-API features (parallelism
patterns, memory-hierarchy abstraction, synchronization, mutual
exclusion, error handling / tools / language bindings); section III
compares eight models cell by cell.  This package encodes every cell:

- :mod:`repro.features.model` — the schema (:class:`FeatureSet`, one
  instance per programming model);
- :mod:`repro.features.data` — the eight models' entries, transcribed
  from the paper;
- :mod:`repro.features.tables` — paper-style renderers for Tables
  I/II/III;
- :mod:`repro.features.query` — the "guide for users to choose the
  APIs" — filters and recommendations over the database.
"""

from repro.features.data import ALL_MODELS, MODELS, get_model
from repro.features.model import FeatureSet, Support
from repro.features.query import (
    compare,
    models_supporting,
    recommend,
    support_matrix,
)
from repro.features.tables import render_table1, render_table2, render_table3

__all__ = [
    "ALL_MODELS",
    "MODELS",
    "FeatureSet",
    "Support",
    "compare",
    "get_model",
    "models_supporting",
    "recommend",
    "render_table1",
    "render_table2",
    "render_table3",
    "support_matrix",
]
