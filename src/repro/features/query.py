"""Queries over the feature database — the paper's "guide for users to
choose the APIs for their applications".
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.features.data import ALL_MODELS, get_model
from repro.features.model import FEATURE_FIELDS, FeatureSet

__all__ = ["models_supporting", "compare", "support_matrix", "recommend"]


def models_supporting(
    feature: str, models: Sequence[FeatureSet] = ALL_MODELS
) -> list[FeatureSet]:
    """All models that support ``feature`` (a FEATURE_FIELDS name)."""
    if feature not in FEATURE_FIELDS:
        raise KeyError(f"unknown feature {feature!r}; known: {FEATURE_FIELDS}")
    return [m for m in models if m.supports(feature)]


def compare(names: Iterable[str], features: Optional[Sequence[str]] = None) -> str:
    """Side-by-side textual comparison of the named models."""
    models = [get_model(n) for n in names]
    feats = tuple(features) if features is not None else FEATURE_FIELDS
    for f in feats:
        if f not in FEATURE_FIELDS:
            raise KeyError(f"unknown feature {f!r}")
    width = max(len(f) for f in feats) + 2
    colw = max(max((len(m.name) for m in models), default=8) + 2, 26)
    lines = [" " * width + "".join(f"{m.name:<{colw}}" for m in models)]
    for f in feats:
        cells = [getattr(m, f).cell()[: colw - 2] for m in models]
        lines.append(f"{f:<{width}}" + "".join(f"{c:<{colw}}" for c in cells))
    return "\n".join(lines)


def support_matrix(
    models: Sequence[FeatureSet] = ALL_MODELS,
) -> dict[str, dict[str, bool]]:
    """{model name: {feature: supported}} over all feature fields."""
    return {m.name: {f: m.supports(f) for f in FEATURE_FIELDS} for m in models}


def recommend(
    required: Sequence[str],
    preferred: Sequence[str] = (),
    models: Sequence[FeatureSet] = ALL_MODELS,
) -> list[tuple[FeatureSet, int]]:
    """Rank models for a set of required and preferred features.

    Models missing any required feature are excluded; the rest are
    ranked by how many preferred features they support (ties broken by
    total feature count, mirroring the paper's observation that OpenMP
    is the most comprehensive model).
    """
    for f in tuple(required) + tuple(preferred):
        if f not in FEATURE_FIELDS:
            raise KeyError(f"unknown feature {f!r}; known: {FEATURE_FIELDS}")
    out = []
    for m in models:
        if all(m.supports(f) for f in required):
            score = sum(m.supports(f) for f in preferred)
            total = sum(m.supports(f) for f in FEATURE_FIELDS)
            out.append((m, score, total))
    out.sort(key=lambda t: (-t[1], -t[2], t[0].name))
    return [(m, score) for m, score, _total in out]
