"""Tiered-fidelity simulation: closed-form tier-0 estimates.

The reproduction has three fidelity tiers:

- **tier 2** (reference): the scalar discrete-event simulation — every
  steal, lock grant and chunk dispatch is an event.  This is what the
  validators, tracers and golden tests pin.
- **tier 1** (fast): the same simulation with vectorized/batched fast
  paths (batched ``cilk_for`` graph construction, memoized duration
  model, branch-hoisted engine drain).  Tier 1 is **bit-identical** to
  tier 2 — same event stream, same ``SimResult`` — which the
  equivalence property suite and the golden traces enforce.
- **tier 0** (analytic, this module): no events at all.  Makespan is
  predicted from closed-form terms — the iteration space's block
  profile against the roofline memory model, Amdahl/greedy-scheduling
  bounds (``max(T1/p, T_inf)``), and the per-model overhead constants
  of :mod:`repro.sim.costs` (fork, barrier, dispatch, spawn, steal).
  The result carries an **error bound** calibrated once against traced
  tier-2 runs (:func:`calibrate`).

Tier 0 trades exactness for cost: a cell that takes seconds of
event-driven simulation is estimated in well under a millisecond
(``benchmarks/bench_engine_tiers.py`` measures the ratio).  Executors
that are already analytic in the reference runtime (serial regions,
static worksharing, thread pools) are *delegated*, not re-modelled:
their tier-0 estimate equals the tier-2 result exactly and their error
bound is zero.

Calibration groups observations at three nesting levels — one global
group (level 0), per estimator kind (level 1), per kind/version
(level 2).  Each group's scale is the log-midrange of observed
``t2 / t0_raw`` ratios and its bound the half-range plus margin; by
construction the worst-case bound tightens (never widens) as the
partition refines, which ``tests/test_tiers_accuracy.py`` asserts.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

import numpy as np

from repro.perf.spans import span as _perf_span
from repro.sim.task import IterSpace, LoopRegion, Program, SerialRegion, TaskRegion
from repro.sim.trace import RegionResult, SimResult, WorkerStats

__all__ = [
    "TIER_ANALYTIC",
    "TIER_FAST",
    "TIER_REFERENCE",
    "Tier0Result",
    "Calibration",
    "DEFAULT_CALIBRATION",
    "estimate_program",
    "estimate_region",
    "calibrate",
]

TIER_ANALYTIC = 0
TIER_FAST = 1
TIER_REFERENCE = 2


@dataclass
class Tier0Result(SimResult):
    """A :class:`SimResult`-compatible analytic estimate.

    ``error_bound`` is the calibrated relative error bound: the tier-2
    time is expected within ``time * (1 ± error_bound)`` (a time-weighted
    combination of the per-region bounds, which are exact for delegated
    regions and calibrated for modelled ones).
    """

    error_bound: float = 0.0


# ---------------------------------------------------------------------------
# Calibration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Calibration:
    """Per-estimator scale factors and error bounds from tier-2 runs.

    ``level`` selects the partition the tables were built at: ``0`` one
    global group (key ``"*"``), ``1`` per estimator kind (``"steal_cilkfor"``),
    ``2`` per kind/version (``"steal_cilkfor/cilk_for"``).  Lookups fall
    back from the finest key the level allows down to ``"*"`` and then
    to the defaults (scale 1.0, ``fallback_bound``).
    """

    level: int = 1
    scales: Mapping[str, float] = field(default_factory=dict)
    bounds: Mapping[str, float] = field(default_factory=dict)
    fallback_bound: float = 0.5

    def _lookup(self, table: Mapping[str, float], kind: str, version: str, default: float) -> float:
        if self.level >= 2:
            v = table.get(f"{kind}/{version}")
            if v is not None:
                return v
        if self.level >= 1:
            v = table.get(kind)
            if v is not None:
                return v
        v = table.get("*")
        return default if v is None else v

    def scale(self, kind: str, version: str = "") -> float:
        return self._lookup(self.scales, kind, version, 1.0)

    def bound(self, kind: str, version: str = "") -> float:
        return self._lookup(self.bounds, kind, version, self.fallback_bound)

    @property
    def max_bound(self) -> float:
        """Worst-case bound over every calibrated group."""
        return max(self.bounds.values(), default=self.fallback_bound)


# ---------------------------------------------------------------------------
# Region estimators
# ---------------------------------------------------------------------------
def _block_durations(
    space: IterSpace, active: int, ctx, work_scale: float = 1.0, bytes_scale: float = 1.0
) -> np.ndarray:
    """Roofline duration of every profile block with ``active`` threads."""
    machine = ctx.machine
    speed = machine.compute_speed(active)
    bw = machine.bandwidth_per_thread(active, space.locality)
    bwork = np.diff(space._cum_work) * work_scale
    bbytes = np.diff(space._cum_bytes) * bytes_scale
    return np.maximum(bwork / speed, bbytes / bw)


def _aggregate_result(
    time: float, p: int, busy: float, overhead: float, tasks: int
) -> RegionResult:
    w = WorkerStats(busy=busy, overhead=overhead, tasks=tasks)
    return RegionResult(time=time, nthreads=p, workers=[w], meta={"aggregate_workers": True})


def _ws_dispatch_estimate(space: IterSpace, p: int, ctx, params: dict) -> RegionResult:
    """Closed form for dynamic/guided worksharing dispatch.

    The reference executor walks chunks through a lock-serialized
    dispatch heap.  Closed form: the loop is either throughput-bound
    (total duration plus dispatch shared by ``p`` threads) or
    lock-bound (every dispatch serializes through the loop counter),
    plus a tail term of the largest chunk.
    """
    from repro.runtime.worksharing import _chunk_durations, _dispatch_edges

    costs = ctx.costs
    schedule = params.get("schedule", "static")
    edges = _dispatch_edges(space, schedule, params.get("chunk"), p)
    durations = _chunk_durations(space, edges, p, ctx, params.get("work_scale", 1.0))
    n = int(durations.size)
    total_dur = float(durations.sum())
    dmax = float(durations.max()) if n else 0.0
    c = costs.dynamic_dispatch
    if p <= 1:
        loop = total_dur + n * c
    else:
        loop = max(total_dur / p + n * c / p, n * c) + dmax * (p - 1) / p
    time = loop
    if params.get("fork", True):
        time += costs.fork_cost(p)
    if params.get("barrier", True):
        time += costs.barrier_cost(p)
    if params.get("reduction", False):
        time += p * costs.reduction_per_thread
    return _aggregate_result(time, p, busy=total_dur, overhead=n * c, tasks=n)


def _cilk_leaf_count(niter: int, grainsize: int) -> int:
    """Exact leaf count of the halving splitter recursion (memoized on
    range size — each recursion level has at most two distinct sizes)."""
    counts: dict[int, int] = {}

    def rec(n: int) -> int:
        if n <= grainsize:
            return 1
        cached = counts.get(n)
        if cached is not None:
            return cached
        m = n // 2
        r = rec(m) + rec(n - m)
        counts[n] = r
        return r

    return rec(niter)


def _cilk_leaf_edges(niter: int, grainsize: int) -> np.ndarray:
    """Sorted leaf boundaries of the halving recursion.

    The recursion partitions ``[0, niter)`` contiguously, so the sorted
    leaf ``lo`` values plus ``niter`` form a consecutive edge array
    usable with :meth:`IterSpace.chunk_costs`.
    """
    los: list[int] = []
    stack = [(0, niter)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo <= grainsize:
            los.append(lo)
        else:
            mid = (lo + hi) // 2
            stack.append((lo, mid))
            stack.append((mid, hi))
    los.sort()
    los.append(niter)
    return np.asarray(los, dtype=np.float64)


def _edge_durations(
    space: IterSpace, edges: np.ndarray, active: int, ctx, work_scale: float, bytes_scale: float
) -> np.ndarray:
    """Roofline duration of each chunk between consecutive ``edges``."""
    machine = ctx.machine
    work, membytes = space.chunk_costs(edges)
    speed = machine.compute_speed(active)
    bw = machine.bandwidth_per_thread(active, space.locality)
    return np.maximum(work * work_scale / speed, membytes * bytes_scale / bw)


def _steal_cilkfor_estimate(
    space: IterSpace, p: int, ctx, params: dict, entry: float, exit_c: float
) -> RegionResult:
    """Closed form for the ``cilk_for`` splitter tree under work stealing."""
    from repro.runtime.workstealing import default_grainsize, scatter_penalty

    costs = ctx.costs
    machine = ctx.machine
    work_scale = params.get("work_scale", 1.0)
    if params.get("reducer", False):
        space = space.with_extra_work_per_iter(costs.reducer_access)
    grainsize = params.get("grainsize")
    gsize = grainsize if grainsize is not None else default_grainsize(space.niter, p)
    nleaves_cap = -(-space.niter // gsize)
    penalty = (
        scatter_penalty(space, nleaves_cap, p, ctx)
        if params.get("apply_scatter_penalty", True)
        else 1.0
    )
    leaves = _cilk_leaf_count(space.niter, gsize)
    # no more workers can be concurrently busy than there are leaves
    active = min(p, leaves) if p > 1 else 1
    speed = machine.compute_speed(active)
    if leaves <= 1 << 17:
        leaf_dur = _edge_durations(
            space, _cilk_leaf_edges(space.niter, gsize), active, ctx, work_scale, penalty
        )
        busy = float(leaf_dur.sum())
        leaf_max = float(leaf_dur.max())
    else:  # pathological grainsize: block-profile approximation
        block_dur = _block_durations(space, active, ctx, work_scale, penalty)
        busy = float(block_dur.sum())
        iters_per_block = space.niter / space.nblocks
        leaf_max = float(block_dur.max()) / iters_per_block * min(gsize, space.niter)
    splits = leaves - 1
    ntasks = leaves + splits
    split_dur = costs.cilk_split / speed
    spawn = costs.cilk_spawn if params.get("deque", "the") == "the" else costs.omp_task_spawn
    if params.get("deque", "the") == "the":
        push, pop, steal = costs.the_push, costs.the_pop, costs.the_steal
    else:
        push, pop, steal = costs.locked_push, costs.locked_pop, costs.locked_steal
    per_task = spawn + push + pop
    t1 = busy + splits * split_dur
    overhead = ntasks * per_task
    if p <= 1:
        time = t1 + overhead
    else:
        # critical path: subtree distribution is a chain of splits each
        # handed to a thief (split + spawn + steal round-trip per level),
        # ending in the worst leaf chunk
        depth = max(1, math.ceil(math.log2(leaves))) if leaves > 1 else 0
        steals = min(p * max(1, depth), leaves)
        tinf = costs.wake_latency + depth * (
            split_dur + per_task + steal + costs.steal_latency
        )
        tinf += leaf_max
        time = max((t1 + overhead + steals * (steal + costs.steal_latency)) / p, tinf)
        if params.get("reducer", False):
            # one view per steal on the thief, all views merged serially
            # at the sync
            time += steals * costs.reducer_merge + steals * costs.reducer_view / p
    return _aggregate_result(entry + time + exit_c, p, busy=t1, overhead=overhead, tasks=ntasks)


def _steal_flat_estimate(
    space: IterSpace, p: int, ctx, params: dict, entry: float, exit_c: float
) -> RegionResult:
    """Closed form for master-spawned flat chunk tasks (``omp task`` loops)."""
    costs = ctx.costs
    work_scale = params.get("work_scale", 1.0)
    if params.get("reducer", False):
        space = space.with_extra_work_per_iter(costs.reducer_access)
    nchunks = params.get("nchunks")
    nck = nchunks if nchunks is not None else p * max(1, params.get("chunks_per_thread", 1))
    nck = min(nck, space.niter)
    pto = params.get("per_task_overhead", 0.0)
    deque = params.get("deque", "the")
    spawn = costs.cilk_spawn if deque == "the" else costs.omp_task_spawn
    if deque == "the":
        push, pop, steal = costs.the_push, costs.the_pop, costs.the_steal
    else:
        push, pop, steal = costs.locked_push, costs.locked_pop, costs.locked_steal
    # no more workers can be concurrently busy than there are chunks
    active = min(p, nck) if p > 1 else 1
    edges = (np.arange(nck + 1, dtype=np.int64) * space.niter) // nck
    chunk_dur = _edge_durations(space, edges.astype(np.float64), active, ctx, work_scale, 1.0)
    busy = float(chunk_dur.sum())
    if p <= 1:
        if params.get("undeferred_single", False):
            time = busy + nck * (spawn + pto)
            overhead = nck * (spawn + pto)
        else:
            time = busy + nck * (spawn + push + pop + pto)
            overhead = nck * (spawn + push + pop + pto)
    else:
        # worker 0 enqueues every chunk serially before anyone runs
        seed = nck * (spawn + push)
        dmax = float(chunk_dur.max())
        # every chunk a thief executes costs one steal, and the steals
        # serialize through worker 0's deque; the owner/thief split is
        # the balance point of owner consumption rate vs serialized
        # steal rate (a locked deque makes the owner's pops contend
        # with in-flight steals, costing the owner about a steal slot)
        dur_avg = busy / nck
        owner_cost = pop + dur_avg
        if deque != "the":
            owner_cost += steal
        ns_bal = nck * owner_cost / (steal + owner_cost)
        nsteals = min(nck * (p - 1) / p, ns_bal)
        chain = nsteals * steal + dmax
        time = seed + costs.wake_latency + max(
            busy / p + nck * (pop + pto) / p, chain
        )
        if params.get("reducer", False):
            time += nsteals * costs.reducer_merge
        overhead = seed + nck * (pop + pto) + nsteals * steal
    return _aggregate_result(entry + time + exit_c, p, busy=busy, overhead=overhead, tasks=nck)


def _steal_graph_estimate(
    region: TaskRegion, p: int, ctx, params: dict, entry: float, exit_c: float
) -> RegionResult:
    """Closed form for an explicit task DAG under work stealing:
    greedy-scheduling bound ``max(T1/p, T_inf)`` on roofline-inflated
    durations plus per-task queue overheads."""
    costs = ctx.costs
    machine = ctx.machine
    g = region.graph_for(p)
    n = len(g)
    if n == 0:
        return _aggregate_result(entry + exit_c, p, busy=0.0, overhead=0.0, tasks=0)
    deque = params.get("deque", "the")
    default_spawn = params.get("spawn_cost")
    if default_spawn is None:
        default_spawn = costs.cilk_spawn if deque == "the" else costs.omp_task_spawn
    if deque == "the":
        push, pop, steal = costs.the_push, costs.the_pop, costs.the_steal
    else:
        push, pop, steal = costs.locked_push, costs.locked_pop, costs.locked_steal
    pto = params.get("per_task_overhead", 0.0)
    active = p if p > 1 else 1
    speed = machine.compute_speed(active)
    works = np.fromiter((t.work for t in g.tasks), np.float64, count=n)
    mbytes = np.fromiter((t.membytes for t in g.tasks), np.float64, count=n)
    durs = works / speed
    if mbytes.any():
        locs = np.fromiter((t.locality for t in g.tasks), np.float64, count=n)
        for loc in np.unique(locs):
            bw = machine.bandwidth_per_thread(active, float(loc))
            mask = locs == loc
            durs[mask] = np.maximum(durs[mask], mbytes[mask] / bw)
    busy = float(durs.sum())
    total_spawn = float(
        sum(t.spawn_cost if t.spawn_cost > 0 else default_spawn for t in g.tasks)
    )
    if p <= 1:
        if params.get("undeferred_single", False):
            overhead = total_spawn + n * pto
        else:
            overhead = total_spawn + n * (push + pop + pto)
        time = busy + overhead
    else:
        t1 = g.total_work()
        tinf = g.critical_path()
        inflation = busy / t1 if t1 > 0 else 1.0 / speed
        steals = min(n, p * max(1.0, math.log2(n)))
        overhead = total_spawn + n * (push + pop + pto)
        chain = math.log2(p) * (steal + costs.steal_latency + costs.wake_latency)
        time = max((busy + overhead + steals * steal) / p, tinf * inflation + chain)
    return _aggregate_result(entry + time + exit_c, p, busy=busy, overhead=overhead, tasks=n)


def _graph_durations(g, p: int, ctx) -> np.ndarray:
    """Roofline-inflated duration of every task with ``p`` workers."""
    machine = ctx.machine
    n = len(g)
    active = min(n, p) if p > 1 else 1
    speed = machine.compute_speed(active)
    works = np.fromiter((t.work for t in g.tasks), np.float64, count=n)
    mbytes = np.fromiter((t.membytes for t in g.tasks), np.float64, count=n)
    durs = works / speed
    if mbytes.any():
        locs = np.fromiter((t.locality for t in g.tasks), np.float64, count=n)
        for loc in np.unique(locs):
            bw = machine.bandwidth_per_thread(active, float(loc))
            mask = locs == loc
            durs[mask] = np.maximum(durs[mask], mbytes[mask] / bw)
    return durs


def _amt_graph_estimate(region: TaskRegion, p: int, ctx, kind: str) -> RegionResult:
    """Analytic estimate for the AMT graph executors (charm/hpx/mpi).

    The static-placement models are exactly analyzable: charm (round-
    robin chares) and mpi (block-partitioned ranks) reduce to one
    occupancy-coupled forward pass over the topologically-stored tasks
    — ``start = max(pe_free, deps ready)`` — with no events, faults or
    tracing, so their calibration bound collapses to the floor.  HPX's
    greedy earliest-free placement is approximated by the greedy-
    scheduling bound ``max((T1 + overhead)/p, T_inf)``; the gap left by
    dependency-induced idling is what its calibrated bound absorbs.
    """
    costs = ctx.costs
    g = region.graph_for(p)
    n = len(g)
    if n == 0:
        return _aggregate_result(0.0, p, busy=0.0, overhead=0.0, tasks=0)
    durs = _graph_durations(g, p, ctx)
    busy = float(durs.sum())

    if kind == "amt_hpx":
        ndeps = np.fromiter((len(t.deps) for t in g.tasks), np.float64, count=n)
        t1 = g.total_work()
        inflation = busy / t1 if t1 > 0 else 1.0
        tinf = g.critical_path() * inflation
        overhead = float(
            n * (costs.hpx_future_create + costs.hpx_continuation)
            + ndeps.sum() * costs.hpx_future_get
        )
        time = max((busy + overhead) / p, tinf) + costs.hpx_future_get
        return _aggregate_result(time, p, busy=busy, overhead=overhead, tasks=n)

    # charm / mpi: static placement, occupancy-coupled forward pass
    pe_free = [0.0] * p
    finish = [0.0] * n
    overhead = 0.0
    if kind == "amt_charm":
        root_ready = costs.charm_chare_create + costs.charm_msg_send
        pre = costs.charm_msg_recv + costs.charm_entry_dispatch
        for t in g.tasks:
            tid = t.tid
            pe = tid % p
            ready = max((finish[d] for d in t.deps), default=root_ready)
            post = len(g.successors[tid]) * costs.charm_msg_send
            end = max(pe_free[pe], ready) + pre + float(durs[tid]) + post
            pe_free[pe] = end
            finish[tid] = end
            overhead += pre + post
        time = max(pe_free) + costs.charm_msg_send + costs.charm_msg_recv
    else:  # amt_mpi
        for t in g.tasks:
            tid = t.tid
            pe = tid * p // n
            ready = 0.0
            pre = 0.0
            for d in t.deps:
                arr = finish[d]
                if d * p // n != pe:
                    arr += costs.mpi_latency
                    pre += costs.mpi_msg_overhead
                ready = max(ready, arr)
            post = sum(
                costs.mpi_msg_overhead for s in g.successors[tid] if s * p // n != pe
            )
            end = max(pe_free[pe], ready) + pre + float(durs[tid]) + post
            pe_free[pe] = end
            finish[tid] = end
            overhead += pre + post
        coll = 0.0
        if p > 1:
            coll = costs.mpi_allreduce_base + costs.mpi_allreduce_per_step * math.ceil(
                math.log2(p)
            )
        time = max(pe_free) + coll
    return _aggregate_result(time, p, busy=busy, overhead=overhead, tasks=n)


def estimate_region(region, nthreads: int, ctx) -> tuple[str, RegionResult]:
    """Estimate one region; returns ``(estimator_kind, raw_result)``.

    ``kind == "exact"`` means the region was delegated to its reference
    executor (already analytic — serial, static worksharing, thread
    pools, offload): the result *is* the tier-2 result and needs no
    calibration.  Every other kind is a closed-form estimate whose raw
    time a :class:`Calibration` scales and bounds.
    """
    from repro.runtime.run import _entry_cost, _exit_cost, execute_region

    p = nthreads
    if isinstance(region, LoopRegion) and region.executor == "stealing_loop":
        params = dict(region.params)
        entry = _entry_cost(params.pop("entry", "none"), p, ctx)
        exit_marker = params.pop("exit", None)
        exit_c = (
            _exit_cost(exit_marker, p, ctx) if exit_marker is not None else ctx.costs.taskwait
        )
        style = params.get("style", "cilk_for")
        if style == "cilk_for":
            return "steal_cilkfor", _steal_cilkfor_estimate(
                region.space, p, ctx, params, entry, exit_c
            )
        if style == "flat":
            return "steal_flat", _steal_flat_estimate(
                region.space, p, ctx, params, entry, exit_c
            )
        raise ValueError(f"unknown stealing loop style {style!r}")
    if isinstance(region, LoopRegion) and region.executor == "worksharing":
        schedule = region.params.get("schedule", "static")
        if schedule in ("dynamic", "guided"):
            return f"ws_{schedule}", _ws_dispatch_estimate(region.space, p, ctx, region.params)
        # static worksharing is already closed-form in the reference runtime
        return "exact", execute_region(region, p, ctx)
    if isinstance(region, TaskRegion) and region.executor == "stealing":
        params = dict(region.params)
        entry = _entry_cost(params.pop("entry", "none"), p, ctx)
        exit_c = _exit_cost(params.pop("exit", "none"), p, ctx)
        return "steal_graph", _steal_graph_estimate(region, p, ctx, params, entry, exit_c)
    if isinstance(region, TaskRegion) and region.executor in (
        "charm_graph", "hpx_graph", "mpi_graph"
    ):
        kind = {"charm_graph": "amt_charm", "hpx_graph": "amt_hpx", "mpi_graph": "amt_mpi"}[
            region.executor
        ]
        return kind, _amt_graph_estimate(region, p, ctx, kind)
    # SerialRegion, threadpool loop/graph, offload, AMT loops: the
    # reference executors are analytic already — delegate (exact, bound 0).
    return "exact", execute_region(region, p, ctx)


def estimate_program(
    program: Program,
    nthreads: int,
    ctx,
    version: str = "",
    calibration: Optional[Calibration] = None,
) -> Tier0Result:
    """Tier-0 analytic estimate of :func:`~repro.runtime.run.run_program`.

    Returns a :class:`Tier0Result` whose ``regions`` carry per-region
    ``meta["tier"] == 0``, the estimator kind, the applied calibration
    scale and the relative error bound; the program-level
    ``error_bound`` is the time-weighted combination of the region
    bounds.  Raises the same :class:`ThreadExplosionError` a tier-2 run
    would for thread-per-task versions past the cap (the check is
    delegated with the region).
    """
    if nthreads <= 0:
        raise ValueError("nthreads must be positive")
    cal = calibration if calibration is not None else DEFAULT_CALIBRATION
    ver = version or program.meta.get("version", "")
    regions: list[RegionResult] = []
    total = 0.0
    if program.meta.get("pool_setup"):
        total += nthreads * (ctx.costs.thread_create + ctx.costs.thread_join)
    # detail span under the executor's cell.estimate: how much of the
    # tier-0 path is estimation proper vs. program building around it
    with _perf_span("tier0.estimate"):
        for region in program:
            kind, res = estimate_region(region, nthreads, ctx)
            if kind == "exact":
                bound = 0.0
                scale = 1.0
            else:
                scale = cal.scale(kind, ver)
                bound = cal.bound(kind, ver)
                res = RegionResult(
                    time=res.time * scale, nthreads=res.nthreads, workers=res.workers, meta=res.meta
                )
            res.meta["tier"] = TIER_ANALYTIC
            res.meta["estimator"] = kind
            res.meta["scale"] = scale
            res.meta["error_bound"] = bound
            regions.append(res)
            total += res.time
    weight = sum(r.time for r in regions)
    if weight > 0:
        error_bound = sum(r.meta["error_bound"] * r.time for r in regions) / weight
    else:
        error_bound = 0.0
    return Tier0Result(
        program=program.name,
        version=ver,
        nthreads=nthreads,
        time=total,
        regions=regions,
        trace=None,
        error_bound=error_bound,
    )


# ---------------------------------------------------------------------------
# Calibration fitting
# ---------------------------------------------------------------------------
def _synthetic_calibration_programs() -> list[tuple[str, Program]]:
    """Dynamic/guided worksharing loops for :func:`calibrate`.

    Covers the schedule × profile-shape space the registry does not:
    uniform and linearly-skewed iteration costs, compute- and
    memory-bound, default and explicit chunk sizes.
    """
    from repro.models.openmp import parallel_for

    uniform = IterSpace.uniform(4096, 30e-9, 64.0, name="cal-uniform")
    skew_work = np.linspace(5e-9, 120e-9, 2048)
    skewed = IterSpace.from_profile(skew_work, np.full(2048, 24.0), name="cal-skewed")
    membound = IterSpace.uniform(8192, 2e-9, 512.0, locality=0.4, name="cal-membound")
    programs: list[tuple[str, Program]] = []
    for schedule in ("dynamic", "guided"):
        for chunk in (None, 16):
            prog = Program(name=f"cal-ws-{schedule}-{chunk or 'auto'}")
            for space in (uniform, skewed, membound):
                prog.add(parallel_for(space, schedule=schedule, chunk=chunk))
            programs.append((f"omp_for_{schedule}", prog))
    return programs


def calibrate(
    ctx=None,
    *,
    level: int = 1,
    threads: Iterable[int] = (1, 2, 4, 8, 16),
    workloads: Optional[Iterable[str]] = None,
    margin: float = 1.25,
    floor: float = 0.02,
) -> Calibration:
    """Fit per-estimator scales and bounds against tier-2 runs.

    Runs every registered workload × version × thread count (at
    validation parameters) at tier 2, pairs each region's reference
    time with its raw tier-0 estimate, and groups the log-ratios at the
    requested ``level``.  Scale is the log-midrange (the multiplicative
    centre of the observed ratios); the bound is the relative error the
    scaled estimate can reach at the range's edges
    (``exp(half_range) - 1``) widened by ``margin`` and ``floor``.

    The bound is monotone in the half-range, and refining the partition
    can only shrink each group's half-range, so
    ``calibrate(level=2).max_bound <= calibrate(level=1).max_bound <=
    calibrate(level=0).max_bound`` holds by construction.
    """
    from repro.core.registry import WORKLOADS
    from repro.runtime.base import ExecContext, ThreadExplosionError
    from repro.runtime.run import run_program

    if ctx is None:
        ctx = ExecContext()
    observations: list[tuple[str, str, float]] = []
    names = sorted(WORKLOADS)
    if workloads is not None:
        wanted = set(workloads)
        names = [n for n in names if n in wanted]
    for name in names:
        spec = WORKLOADS[name]
        params = dict(spec.validation_params or spec.default_params)
        for version in spec.versions:
            for p in threads:
                program = spec.build(version, ctx.machine, **params)
                try:
                    ref = run_program(program, p, ctx, version)
                except ThreadExplosionError:
                    continue  # tier 0 raises identically; nothing to fit
                for region, reg_res in zip(program, ref.regions):
                    kind, est = estimate_region(region, p, ctx)
                    if kind == "exact":
                        continue
                    if reg_res.time <= 0.0 or est.time <= 0.0:
                        continue
                    observations.append(
                        (kind, version, math.log(reg_res.time / est.time))
                    )
    # No registry workload exercises dynamic/guided worksharing at
    # validation parameters, so those estimator kinds are fitted against
    # synthetic loops (uniform and skewed profiles, with and without a
    # chunk clause) — otherwise they would fall back to the wide default.
    for version, program in _synthetic_calibration_programs():
        for p in threads:
            ref = run_program(program, p, ctx, version)
            for region, reg_res in zip(program, ref.regions):
                kind, est = estimate_region(region, p, ctx)
                if kind == "exact" or reg_res.time <= 0.0 or est.time <= 0.0:
                    continue
                observations.append((kind, version, math.log(reg_res.time / est.time)))
    if level <= 0:
        key_for = lambda kind, version: "*"
    elif level == 1:
        key_for = lambda kind, version: kind
    else:
        key_for = lambda kind, version: f"{kind}/{version}"
    groups: dict[str, list[float]] = defaultdict(list)
    for kind, version, logr in observations:
        groups[key_for(kind, version)].append(logr)
    scales: dict[str, float] = {}
    bounds: dict[str, float] = {}
    for key, logs in sorted(groups.items()):
        lo, hi = min(logs), max(logs)
        scales[key] = math.exp((lo + hi) / 2.0)
        half = (hi - lo) / 2.0
        bounds[key] = (math.exp(half) - 1.0) * margin + floor
    fallback = max(bounds.values(), default=0.5)
    return Calibration(level=level, scales=scales, bounds=bounds, fallback_bound=fallback)


#: Shipped calibration: ``calibrate(level=1)`` over the full registry at
#: validation parameters, threads (1, 2, 4, 8, 16), committed as
#: literals so tier-0 estimates are reproducible without a fitting run.
#: Regenerate with ``python -c "from repro.sim.tiers import calibrate;
#: print(calibrate())"`` after any cost-model or estimator change.
DEFAULT_CALIBRATION = Calibration(
    level=1,
    scales={
        "amt_charm": 1.000000,
        "amt_hpx": 1.289837,
        "amt_mpi": 1.000000,
        "steal_cilkfor": 1.070199,
        "steal_flat": 1.064074,
        "steal_graph": 1.337380,
        "ws_dynamic": 1.046891,
        "ws_guided": 0.843019,
    },
    bounds={
        "amt_charm": 0.020000,
        "amt_hpx": 0.382296,
        "amt_mpi": 0.020000,
        "steal_cilkfor": 0.434975,
        "steal_flat": 0.528671,
        "steal_graph": 0.441725,
        "ws_dynamic": 0.104426,
        "ws_guided": 0.252766,
    },
    fallback_bound=0.528671,
)
