"""Accelerator device model (for the offloading feature comparison).

Tables I and II of the paper compare *offloading* support (CUDA's
kernel launch, OpenACC's ``parallel``/``data`` constructs, OpenMP's
``target``/``map``) and explicit data movement between distinct memory
spaces.  The performance section does not benchmark accelerators, so
this subsystem is an **extension**: it lets the same workload IR run
through an offloading model and exposes the classic trade the paper's
feature discussion implies — kernel throughput vs. transfer cost vs.
launch latency.

:class:`Device` is deliberately coarse: a throughput machine with a
launch overhead, its own memory bandwidth, a PCIe-style link, and an
occupancy knee below which kernels cannot fill the device.  Defaults
approximate a 2017-era Tesla K40 against one Haswell core.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.task import IterSpace

__all__ = ["Device", "K40"]


@dataclass(frozen=True)
class Device:
    """An offload target (GPU/manycore accelerator).

    Parameters
    ----------
    compute_ratio:
        Sustained compute throughput relative to ONE host core running
        the same (vectorized) loop — i.e. how many host-core-equivalents
        the device provides when fully occupied.
    memory_bandwidth:
        Device-memory streaming bandwidth, bytes/second.
    link_bandwidth:
        Host<->device transfer bandwidth (PCIe), bytes/second.
    link_latency:
        Per-transfer fixed latency, seconds.
    launch_overhead:
        Per-kernel launch cost, seconds.
    min_parallel_iters:
        Iterations needed to occupy the device; smaller kernels run at
        proportionally lower efficiency (the occupancy knee).
    random_access_factor:
        Fraction of streaming bandwidth under fully random access
        (GPUs coalesce poorly on scattered loads too).
    """

    compute_ratio: float = 60.0
    memory_bandwidth: float = 288e9
    link_bandwidth: float = 12e9
    link_latency: float = 10e-6
    launch_overhead: float = 5e-6
    min_parallel_iters: int = 30_000
    random_access_factor: float = 0.15
    name: str = "device"

    def __post_init__(self) -> None:
        if self.compute_ratio <= 0:
            raise ValueError("compute_ratio must be positive")
        if min(self.memory_bandwidth, self.link_bandwidth) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.link_latency < 0 or self.launch_overhead < 0:
            raise ValueError("latencies must be non-negative")
        if self.min_parallel_iters < 1:
            raise ValueError("min_parallel_iters must be >= 1")
        if not 0 < self.random_access_factor <= 1:
            raise ValueError("random_access_factor must be in (0, 1]")

    # ------------------------------------------------------------------
    def occupancy(self, niter: int) -> float:
        """Fraction of the device a kernel with ``niter`` iterations fills."""
        if niter <= 0:
            raise ValueError("niter must be positive")
        return min(1.0, niter / self.min_parallel_iters)

    def effective_bandwidth(self, locality: float) -> float:
        """Device-memory bandwidth under the given access locality."""
        if not 0.0 <= locality <= 1.0:
            raise ValueError("locality must be in [0, 1]")
        factor = self.random_access_factor + locality * (1.0 - self.random_access_factor)
        return self.memory_bandwidth * factor

    def kernel_time(self, space: IterSpace) -> float:
        """Execution time of one data-parallel kernel over ``space``.

        Roofline over the device: compute at ``compute_ratio`` host-core
        equivalents (scaled by occupancy), memory at device bandwidth;
        plus the launch overhead.
        """
        occ = self.occupancy(space.niter)
        compute = space.total_work / (self.compute_ratio * occ)
        mem = (
            space.total_bytes / self.effective_bandwidth(space.locality)
            if space.total_bytes > 0
            else 0.0
        )
        return self.launch_overhead + max(compute, mem)

    def transfer_time(self, nbytes: float) -> float:
        """One host<->device copy of ``nbytes`` (0 bytes is free)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.link_latency + nbytes / self.link_bandwidth


#: A 2017-era discrete accelerator: Tesla K40-class throughput and
#: PCIe 3 x16 link, against one Haswell core as the unit.
K40 = Device(name="tesla-k40-class")
